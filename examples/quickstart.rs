//! Quickstart: train the three learned structures of the paper on one small
//! collection and query each of them.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use setlearn::hybrid::GuidedConfig;
use setlearn::model::DeepSetsConfig;
use setlearn::tasks::{
    BloomConfig, CardinalityConfig, IndexConfig, LearnedBloom, LearnedCardinality,
    LearnedSetIndex,
};
use setlearn_data::GeneratorConfig;

fn main() {
    // 1. A collection of sets (synthetic server-log shape, 2000 sets).
    let collection = GeneratorConfig::rw(2_000, 42).generate();
    let stats = collection.stats();
    println!(
        "collection: {} sets, {} unique elements, set sizes {}-{}",
        stats.num_sets, stats.unique_elements, stats.min_set_size, stats.max_set_size
    );

    let vocab = collection.num_elements();
    let guided = GuidedConfig {
        warmup_epochs: 15,
        rounds: 1,
        epochs_per_round: 10,
        percentile: 0.9,
        batch_size: 128,
        learning_rate: 3e-3,
        seed: 7,
    };

    // A query: the first two elements of a stored set.
    let query: Vec<u32> = collection.get(17)[..2].to_vec();

    // 2. Cardinality estimation (compressed hybrid — the paper's recommended
    //    variant).
    let mut card_cfg = CardinalityConfig::new(DeepSetsConfig::clsm(vocab));
    card_cfg.guided = guided.clone();
    card_cfg.max_subset_size = 3;
    let (estimator, card_report) = LearnedCardinality::build(&collection, &card_cfg);
    println!(
        "\ncardinality: trained on {} subsets, {} outliers exiled",
        card_report.training_subsets, card_report.outliers
    );
    println!(
        "  estimate({query:?}) = {:.1}   (exact: {})",
        estimator.estimate(&query),
        collection.cardinality(&query)
    );
    println!("  structure size: {:.3} MB", estimator.size_bytes() as f64 / 1e6);

    // 3. Set indexing: first position of the query subset.
    let mut index_cfg = IndexConfig::new(DeepSetsConfig::clsm(vocab));
    index_cfg.guided = guided;
    index_cfg.max_subset_size = 2;
    let (index, index_report) = LearnedSetIndex::build(&collection, &index_cfg);
    let profile = index.lookup_profiled(&collection, &query);
    println!(
        "\nindex: global error {:.0}, mean local bound {:.0}",
        index_report.global_error, index_report.mean_local_error
    );
    println!(
        "  first position of {query:?}: {:?} (exact: {:?}, scanned {} sets, aux: {})",
        profile.position,
        collection.first_position(&query),
        profile.scanned,
        profile.from_aux
    );

    // 4. Membership (learned Bloom filter with backup — no false negatives).
    let bloom_cfg = BloomConfig::new(DeepSetsConfig::clsm(vocab));
    let (filter, bloom_report) =
        LearnedBloom::build_from_collection(&collection, 1_000, 1_000, 4, &bloom_cfg);
    println!(
        "\nbloom: training accuracy {:.4}, {} false negatives backed up",
        bloom_report.training_accuracy, bloom_report.false_negatives
    );
    println!("  contains({query:?}) = {}", filter.contains(&query));
    let absent = vec![0u32, vocab - 1];
    println!(
        "  contains({absent:?}) = {} (exact: {})",
        filter.contains(&absent),
        collection.contains_subset(&absent)
    );
}
