//! Hashtag analytics — the paper's Figure 1 scenario: estimate how many
//! tweets contain a given combination of hashtags, without storing every
//! combination.
//!
//! ```sh
//! cargo run --release --example hashtag_analytics
//! ```

use setlearn::hybrid::GuidedConfig;
use setlearn::model::DeepSetsConfig;
use setlearn::tasks::{CardinalityConfig, LearnedCardinality};
use setlearn_baselines::CardinalityMap;
use setlearn_data::{Dictionary, GeneratorConfig, SetCollection};
use setlearn_nn::q_error;

/// Renders an id set back into hashtags.
fn tags(dict: &Dictionary, set: &[u32]) -> String {
    set.iter()
        .map(|&id| dict.decode(id).unwrap_or("?").to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() {
    // Simulated tweet crawl: hashtags are strings, dictionary-encoded into
    // element ids. A handful of curated tweets (Figure 1) ride on top of a
    // larger Zipf-shaped synthetic crawl.
    let mut dict = Dictionary::new();
    let curated = [
        vec!["#pizza", "#dinner", "#yummy"],
        vec!["#restaurant", "#bbq", "#steak"],
        vec!["#pizza", "#dinner", "#restaurant"],
        vec!["#pizza", "#dinner", "#dessert"],
    ];
    let mut raw_sets: Vec<Vec<u32>> =
        curated.iter().map(|t| dict.encode_set(t)).collect();

    // Background crawl: synthetic tweet tag sets over a hashtag vocabulary.
    let background = GeneratorConfig::tweets(4_000, 11).generate();
    let base = dict.len() as u32;
    // Name the background vocabulary in id order so dictionary ids line up
    // with the shifted element ids.
    for e in 0..background.num_elements() {
        dict.encode(&format!("#tag{e}"));
    }
    for (_, set) in background.iter() {
        raw_sets.push(set.iter().map(|&e| e + base).collect());
    }
    let vocab = base + background.num_elements();
    let collection = SetCollection::new(raw_sets, vocab);
    println!(
        "crawl: {} tweets, {} distinct hashtags",
        collection.len(),
        collection.stats().unique_elements
    );

    // Train the compressed hybrid estimator.
    let mut cfg = CardinalityConfig::new(DeepSetsConfig::clsm(vocab));
    cfg.guided = GuidedConfig {
        warmup_epochs: 15,
        rounds: 1,
        epochs_per_round: 10,
        percentile: 0.9,
        batch_size: 128,
        learning_rate: 3e-3,
        seed: 5,
    };
    cfg.max_subset_size = 3;
    let (estimator, _) = LearnedCardinality::build(&collection, &cfg);
    let exact = CardinalityMap::build(&collection, 3);

    // The Figure 1 query: Q = {#pizza, #dinner}.
    let q = {
        let mut ids =
            vec![dict.get("#pizza").expect("known tag"), dict.get("#dinner").expect("known tag")];
        ids.sort_unstable();
        ids
    };
    let est = estimator.estimate(&q);
    let truth = exact.cardinality(&q) as f64;
    println!("\nQ = {{{}}}", tags(&dict, &q));
    println!(
        "  learned estimate: {est:.1}   exact: {truth}   q-error: {:.3}",
        q_error(est, truth, 1.0)
    );

    // Trending analysis: estimated counts for every curated pair.
    println!("\ntrending pairs (learned vs exact):");
    for t in &curated {
        let ids = {
            let mut v: Vec<u32> = t[..2].iter().map(|s| dict.get(s).unwrap()).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let est = estimator.estimate(&ids);
        let truth = exact.cardinality(&ids);
        println!("  {{{}}}: {est:.1} vs {truth}", tags(&dict, &ids));
    }

    println!(
        "\nmemory: learned {:.3} MB vs exact subset map {:.3} MB",
        estimator.size_bytes() as f64 / 1e6,
        exact.size_bytes() as f64 / 1e6
    );
}
