//! Message filtering — the paper's §7.1.2 use case for the learned Bloom
//! filter: negative training data (malicious token combinations) exists up
//! front, positives are token sets of benign messages.
//!
//! ```sh
//! cargo run --release --example malicious_filter
//! ```

use setlearn::model::DeepSetsConfig;
use setlearn::tasks::{BloomConfig, LearnedBloom};
use setlearn_baselines::SetMembershipBloom;
use setlearn_data::{negative::sample_negatives, workload::positive_queries, GeneratorConfig};

fn main() {
    // Benign message corpus: each message is a set of token ids.
    let corpus = GeneratorConfig::tweets(3_000, 13).generate();
    println!(
        "corpus: {} messages, {} distinct tokens",
        corpus.len(),
        corpus.stats().unique_elements
    );

    // Positives: token subsets seen in benign messages. Negatives: known
    // malicious token combinations (co-occurrences absent from the corpus).
    let positives = positive_queries(&corpus, 1_500, 1);
    let malicious = sample_negatives(&corpus, 1_500, 4, 2);
    println!("training: {} benign subsets, {} malicious combinations", positives.len(), malicious.len());

    let mut workload: Vec<(setlearn_data::ElementSet, bool)> = Vec::new();
    workload.extend(positives.into_iter().map(|s| (s, true)));
    workload.extend(malicious.iter().cloned().map(|s| (s, false)));

    let mut cfg = BloomConfig::new(DeepSetsConfig::clsm(corpus.num_elements()));
    cfg.epochs = 40;
    let (filter, report) = LearnedBloom::build(&workload, &cfg);
    println!(
        "\nlearned filter: accuracy {:.4}, {} false negatives backed up, {:.1} KB",
        report.training_accuracy,
        report.false_negatives,
        filter.size_bytes() as f64 / 1e3
    );

    // Traditional filter over all benign subsets, for comparison.
    let traditional = SetMembershipBloom::build(&corpus, 4, 0.01);
    println!(
        "traditional filter: {:.1} KB for {} indexed subsets",
        traditional.size_bytes() as f64 / 1e3,
        traditional.len()
    );

    // Filtering malicious messages: a message passes if its token set is a
    // known-benign combination.
    let mut caught = 0;
    for m in &malicious {
        if !filter.contains(m) {
            caught += 1;
        }
    }
    println!(
        "\n{} of {} malicious combinations rejected by the learned filter",
        caught,
        malicious.len()
    );

    // Benign traffic must always pass (no false negatives by construction).
    let benign_pass = workload
        .iter()
        .filter(|(_, l)| *l)
        .all(|(s, _)| filter.contains(s));
    println!("all benign training subsets pass: {benign_pass}");
}
