//! End-to-end engine demo (§8.5.3): the learned estimator as a UDF behind a
//! SQL COUNT, against exact plans.
//!
//! ```sh
//! cargo run --release --example engine_demo
//! ```

use setlearn::hybrid::GuidedConfig;
use setlearn::model::DeepSetsConfig;
use setlearn::tasks::{CardinalityConfig, LearnedCardinality};
use setlearn_data::GeneratorConfig;
use setlearn_engine::{Engine, SetTable};
use std::time::Instant;

fn main() {
    let collection = GeneratorConfig::rw(5_000, 3).generate();
    let engine = Engine::new();
    engine.create_table(SetTable::from_collection("logs", collection.clone()), "tags");
    engine.create_index("logs").expect("table exists");

    // Train and register the estimator UDF.
    let mut cfg = CardinalityConfig::new(DeepSetsConfig::clsm(collection.num_elements()));
    cfg.guided = GuidedConfig {
        warmup_epochs: 15,
        rounds: 1,
        epochs_per_round: 10,
        percentile: 0.9,
        batch_size: 128,
        learning_rate: 3e-3,
        seed: 9,
    };
    cfg.max_subset_size = 3;
    let (estimator, _) = LearnedCardinality::build(&collection, &cfg);
    engine.register_estimator("logs", estimator).expect("table exists");

    let set = collection.get(123);
    let lit = set[..2].iter().map(u32::to_string).collect::<Vec<_>>().join(", ");

    for mode in ["seqscan", "index", "estimate"] {
        let sql = format!("SELECT COUNT(*) FROM logs WHERE tags @> {{{lit}}} USING {mode}");
        let start = Instant::now();
        let result = engine.execute_sql(&sql).expect("valid query");
        println!(
            "{sql}\n  -> count {:.1} ({}) in {:.3} ms\n",
            result.count,
            if result.exact { "exact" } else { "estimate" },
            start.elapsed().as_secs_f64() * 1e3
        );
    }

    // The other two verbs map onto the remaining learned structures.
    let exists = engine
        .execute_sql(&format!("SELECT EXISTS FROM logs WHERE tags @> {{{lit}}} USING index"))
        .expect("valid query");
    let first = engine
        .execute_sql(&format!("SELECT FIRST FROM logs WHERE tags @> {{{lit}}} USING index"))
        .expect("valid query");
    println!("EXISTS -> {} ; FIRST -> row {}", exists.count == 1.0, first.count);

    // Error handling is part of the API surface.
    match engine.execute_sql("SELECT COUNT(*) FROM missing WHERE tags @> {1}") {
        Err(e) => println!("expected error: {e}"),
        Ok(_) => unreachable!(),
    }
}
