//! Server-log indexing — the paper's RW scenario: find the first log record
//! whose attribute set contains a queried combination, using the hybrid
//! learned index (§6) instead of a B+ tree.
//!
//! ```sh
//! cargo run --release --example server_log_index
//! ```

use setlearn::hybrid::GuidedConfig;
use setlearn::model::DeepSetsConfig;
use setlearn::tasks::{IndexConfig, LearnedSetIndex};
use setlearn_baselines::{set_hash, BPlusTree};
use setlearn_data::GeneratorConfig;

fn main() {
    // Server logs: each record is a set of access/login attribute ids.
    let logs = GeneratorConfig::rw(3_000, 77).generate();
    println!("log: {} records, {} distinct attributes", logs.len(), logs.stats().unique_elements);

    let mut cfg = IndexConfig::new(DeepSetsConfig::clsm(logs.num_elements()));
    cfg.guided = GuidedConfig {
        warmup_epochs: 15,
        rounds: 1,
        epochs_per_round: 10,
        percentile: 0.9,
        batch_size: 128,
        learning_rate: 3e-3,
        seed: 3,
    };
    cfg.max_subset_size = 2;
    cfg.range_length = 100.0;
    let (index, report) = LearnedSetIndex::build(&logs, &cfg);
    println!(
        "index: {} training subsets, {} outliers in aux tree, global error {:.0}, mean local bound {:.0}",
        report.training_subsets, report.outliers, report.global_error, report.mean_local_error
    );

    // Query: first record containing a pair of attributes.
    for record in [10usize, 500, 2_500] {
        let q: Vec<u32> = logs.get(record)[..2].to_vec();
        let profile = index.lookup_profiled(&logs, &q);
        println!(
            "first record with {q:?}: {:?} (exact {:?}; scanned {} records, aux={})",
            profile.position,
            logs.first_position(&q),
            profile.scanned,
            profile.from_aux
        );
    }

    // A B+ tree answers whole-record equality only, for comparison.
    let mut tree = BPlusTree::new(100);
    for (pos, set) in logs.iter() {
        tree.insert(set_hash(set), pos as u32);
    }
    let whole = logs.get(500);
    println!(
        "\nB+ tree equality lookup of record 500's full set: {:?} ({} MB vs learned {:.3} MB)",
        tree.first_position(set_hash(whole)),
        tree.size_bytes() as f64 / 1e6,
        index.size_bytes() as f64 / 1e6
    );

    // §7.2 updates: a record moves; the auxiliary tree absorbs the change
    // until the next rebuild.
    let moved: Vec<u32> = logs.get(2_500)[..2].to_vec();
    index_update_demo(index, &logs, &moved);
}

fn index_update_demo(
    mut index: LearnedSetIndex,
    logs: &setlearn_data::SetCollection,
    q: &[u32],
) {
    index.record_update(q, 5);
    let profile = index.lookup_profiled(logs, q);
    println!(
        "\nafter update, {q:?} resolves to position {:?} straight from the aux tree (aux={})",
        profile.position, profile.from_aux
    );
}
