//! Umbrella facade for the `setlearn` workspace.
//!
//! Re-exports the public crates so examples and downstream users can depend on
//! a single package. See the individual crates for full documentation:
//!
//! * [`setlearn`] — the learned set structures (the paper's contribution)
//! * [`setlearn_nn`] — the neural-network substrate
//! * [`setlearn_data`] — dataset generators and workloads
//! * [`setlearn_baselines`] — traditional competitors
//! * [`setlearn_engine`] — mini query engine integration

pub use setlearn;
pub use setlearn_baselines;
pub use setlearn_data;
pub use setlearn_engine;
pub use setlearn_nn;
