//! Hermetic stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, deterministic implementation of exactly the API subset the
//! `setlearn` crates use: [`rngs::StdRng`] seeded via [`SeedableRng`], the
//! [`Rng`] sampling methods (`gen`, `gen_range`, `gen_bool`), and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** (public domain, Blackman & Vigna) seeded
//! through SplitMix64 — statistically solid for test workloads and fully
//! deterministic for a given seed. It intentionally does *not* reproduce the
//! stream of the real `rand::rngs::StdRng` (ChaCha12); all in-repo consumers
//! only rely on determinism, not on a specific stream.

#![warn(missing_docs)]

/// Concrete RNG implementations.
pub mod rngs {
    /// Deterministic xoshiro256** generator, API-compatible with the subset
    /// of `rand::rngs::StdRng` the workspace uses.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Seeding support.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        rngs::StdRng { s }
    }
}

/// A type that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample(rng: &mut rngs::StdRng) -> Self;
}

impl Standard for u64 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range admissible to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from(self, rng: &mut rngs::StdRng) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as u128 + r) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut rngs::StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as u128).wrapping_add(r) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut rngs::StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
float_range!(f32, f64);

/// Sampling methods, mirroring `rand::Rng`.
pub trait Rng {
    /// Uniform value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T;
    /// Uniform value from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    /// Bernoulli draw.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for rngs::StdRng {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        <f64 as Standard>::sample(self) < p
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, SeedableRng};

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle(&mut self, rng: &mut super::rngs::StdRng);
        /// Uniformly chosen element, `None` when empty.
        fn choose<'a>(&'a self, rng: &mut super::rngs::StdRng) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle(&mut self, rng: &mut super::rngs::StdRng) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a>(&'a self, rng: &mut super::rngs::StdRng) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }

    // Silence unused-import lints in downstream `use rand::SeedableRng` that
    // only exist for seeding — nothing to do here, the trait is in scope.
    const _: fn() = || {
        fn _assert<T: SeedableRng>() {}
        _assert::<super::rngs::StdRng>();
    };
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = rngs::StdRng::seed_from_u64(1);
        let mut b = rngs::StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let v = rng.gen_range(5usize..=5);
            assert_eq!(v, 5);
            let v = rng.gen_range(-1.5f32..1.5);
            assert!((-1.5..1.5).contains(&v));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = rngs::StdRng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = rngs::StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = rngs::StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits}");
    }
}
