//! Hermetic stand-in for `parking_lot`.
//!
//! Wraps the standard-library synchronization primitives behind parking_lot's
//! non-poisoning API: `lock()`/`read()`/`write()` return guards directly
//! rather than `Result`s. A poisoned std lock (a writer panicked) propagates
//! the panic, which matches parking_lot's practical behavior for this
//! workspace — a panic mid-update means the protected state is suspect.

#![warn(missing_docs)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Reader-writer lock with parking_lot's infallible guard API.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().expect("rwlock poisoned by a panicked writer")
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().expect("rwlock poisoned by a panicked writer")
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("rwlock poisoned by a panicked writer")
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("rwlock poisoned by a panicked writer")
    }
}

/// Mutex with parking_lot's infallible guard API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Acquires the mutex.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().expect("mutex poisoned by a panicked holder")
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("mutex poisoned by a panicked holder")
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("mutex poisoned by a panicked holder")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(5u32);
        assert_eq!(*lock.read(), 5);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
    }

    #[test]
    fn rwlock_shared_across_threads() {
        let lock = Arc::new(RwLock::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *lock.write() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.read(), 4000);
    }

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
    }
}
