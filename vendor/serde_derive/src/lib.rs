//! Derive macros for the vendored `serde` stand-in.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against the
//! Value-tree traits in the companion `serde` stub, without depending on
//! `syn`/`quote` (unavailable offline). The input item is parsed by walking
//! the raw `TokenStream`, which is sufficient for the shapes this workspace
//! uses:
//!
//! - structs with named fields (plus the `#[serde(skip)]` and
//!   `#[serde(default)]` field attributes; skipped fields are restored with
//!   `Default::default()`),
//! - enums with unit, tuple, and struct variants, encoded with serde's
//!   external tagging (`"Variant"`, `{"Variant": value}`,
//!   `{"Variant": {...}}`).
//!
//! Generics, tuple structs, and other serde attributes are rejected with a
//! `compile_error!` so unsupported shapes fail loudly instead of producing a
//! silently incompatible encoding.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Ser,
    De,
}

struct Field {
    name: String,
    skip: bool,
    default: bool,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

enum Data {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct TypeDef {
    name: String,
    data: Data,
}

/// Derives `serde::Serialize` for named-field structs and C-like/data enums.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Ser)
}

/// Derives `serde::Deserialize` for named-field structs and C-like/data enums.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::De)
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let code = match parse_type(input) {
        Ok(def) => match mode {
            Mode::Ser => gen_serialize(&def),
            Mode::De => gen_deserialize(&def),
        },
        Err(msg) => format!("::core::compile_error!({msg:?});"),
    };
    code.parse().unwrap_or_else(|e| {
        format!("::core::compile_error!(\"serde_derive produced invalid code: {e:?}\");")
            .parse()
            .unwrap()
    })
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_type(input: TokenStream) -> Result<TypeDef, String> {
    let mut it = input.into_iter().peekable();
    skip_attributes(&mut it)?;
    skip_visibility(&mut it);

    let keyword = expect_ident(&mut it, "`struct` or `enum`")?;
    let name = expect_ident(&mut it, "type name")?;
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("serde_derive stub: generics on `{name}` are not supported"));
    }

    let body = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => {
            return Err(format!(
                "serde_derive stub: `{name}` must have a braced body (tuple and unit structs are not supported)"
            ))
        }
    };

    let data = match keyword.as_str() {
        "struct" => Data::Struct(parse_fields(body)?),
        "enum" => Data::Enum(parse_variants(body)?),
        other => return Err(format!("serde_derive stub: expected struct or enum, found `{other}`")),
    };
    Ok(TypeDef { name, data })
}

fn parse_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut it = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let (skip, default) = field_attributes(&mut it)?;
        if it.peek().is_none() {
            break;
        }
        skip_visibility(&mut it);
        let name = expect_ident(&mut it, "field name")?;
        expect_punct(&mut it, ':')?;
        consume_type(&mut it);
        fields.push(Field { name, skip, default });
    }
    Ok(fields)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut it = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut it)?;
        if it.peek().is_none() {
            break;
        }
        let name = expect_ident(&mut it, "variant name")?;
        let kind = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_type_list(g.stream());
                it.next();
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_fields(g.stream())?;
                it.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            return Err(format!(
                "serde_derive stub: explicit discriminant on variant `{name}` is not supported"
            ));
        }
        if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            it.next();
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

/// Skips leading `#[...]` outer attributes without interpreting them.
fn skip_attributes(it: &mut Tokens) -> Result<(), String> {
    while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        it.next();
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
            _ => return Err("serde_derive stub: malformed attribute".to_string()),
        }
    }
    Ok(())
}

/// Skips leading attributes on a field, recording `#[serde(skip)]` and
/// `#[serde(default)]`. Unknown serde attributes are rejected so that shapes
/// the stub cannot encode fail at compile time.
fn field_attributes(it: &mut Tokens) -> Result<(bool, bool), String> {
    let (mut skip, mut default) = (false, false);
    while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        it.next();
        let group = match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            _ => return Err("serde_derive stub: malformed attribute".to_string()),
        };
        let mut inner = group.stream().into_iter();
        let is_serde = matches!(inner.next(), Some(TokenTree::Ident(i)) if i.to_string() == "serde");
        if !is_serde {
            continue;
        }
        let args = match inner.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
            _ => return Err("serde_derive stub: malformed #[serde(...)] attribute".to_string()),
        };
        for tok in args {
            match tok {
                TokenTree::Ident(i) if i.to_string() == "skip" => skip = true,
                TokenTree::Ident(i) if i.to_string() == "default" => default = true,
                TokenTree::Punct(p) if p.as_char() == ',' => {}
                other => {
                    return Err(format!(
                        "serde_derive stub: unsupported serde attribute `{other}` (only skip/default)"
                    ))
                }
            }
        }
    }
    Ok((skip, default))
}

fn skip_visibility(it: &mut Tokens) {
    if matches!(it.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        it.next();
        if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            it.next();
        }
    }
}

fn expect_ident(it: &mut Tokens, what: &str) -> Result<String, String> {
    match it.next() {
        Some(TokenTree::Ident(i)) => Ok(i.to_string()),
        other => Err(format!("serde_derive stub: expected {what}, found {other:?}")),
    }
}

fn expect_punct(it: &mut Tokens, ch: char) -> Result<(), String> {
    match it.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == ch => Ok(()),
        other => Err(format!("serde_derive stub: expected `{ch}`, found {other:?}")),
    }
}

/// Consumes one type, stopping after the top-level `,` that terminates it (or
/// at end of stream). Tracks `<`/`>` depth so commas inside generic argument
/// lists (e.g. `HashMap<u64, u64>`) are not mistaken for field separators.
fn consume_type(it: &mut Tokens) {
    let mut angle_depth = 0i32;
    while let Some(tok) = it.peek() {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    it.next();
                    return;
                }
                _ => {}
            }
        }
        it.next();
    }
}

/// Counts top-level comma-separated types in a tuple-variant body.
fn count_type_list(stream: TokenStream) -> usize {
    let mut it = stream.into_iter().peekable();
    let mut count = 0;
    while it.peek().is_some() {
        consume_type(&mut it);
        count += 1;
    }
    count
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

const IMPL_ATTRS: &str = "#[automatically_derived]\n#[allow(unused_mut, unused_variables, clippy::all)]\n";

fn gen_serialize(def: &TypeDef) -> String {
    let name = &def.name;
    let body = match &def.data {
        Data::Struct(fields) => {
            let mut b = String::from("let mut m = ::serde::value::new_object();\n");
            for f in fields.iter().filter(|f| !f.skip) {
                b.push_str(&format!(
                    "m.push(({:?}.to_string(), ::serde::Serialize::serialize(&self.{})));\n",
                    f.name, f.name
                ));
            }
            b.push_str("::serde::Value::Object(m)");
            b
        }
        Data::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::String({vname:?}.to_string()),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::serialize(__f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => {{\n\
                             let mut m = ::serde::value::new_object();\n\
                             m.push(({vname:?}.to_string(), {payload}));\n\
                             ::serde::Value::Object(m)\n\
                             }}\n",
                            binds = binds.join(", "),
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<&str> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| f.name.as_str())
                            .collect();
                        let mut inner =
                            String::from("let mut inner = ::serde::value::new_object();\n");
                        for f in &binds {
                            inner.push_str(&format!(
                                "inner.push(({f:?}.to_string(), ::serde::Serialize::serialize({f})));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} .. }} => {{\n\
                             {inner}\
                             let mut m = ::serde::value::new_object();\n\
                             m.push(({vname:?}.to_string(), ::serde::Value::Object(inner)));\n\
                             ::serde::Value::Object(m)\n\
                             }}\n",
                            binds = binds.iter().map(|b| format!("{b}, ")).collect::<String>(),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(def: &TypeDef) -> String {
    let name = &def.name;
    let body = match &def.data {
        Data::Struct(fields) => {
            let mut b = format!(
                "if v.as_object().is_none() {{\n\
                 return ::core::result::Result::Err(::serde::Error::type_mismatch(\"object\", v));\n\
                 }}\n\
                 ::core::result::Result::Ok({name} {{\n"
            );
            for f in fields {
                b.push_str(&field_expr(f, "v"));
            }
            b.push_str("})");
            b
        }
        Data::Enum(variants) => {
            let mut string_arms = String::new();
            let mut tag_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => string_arms.push_str(&format!(
                        "{vname:?} => ::core::result::Result::Ok({name}::{vname}),\n"
                    )),
                    VariantKind::Tuple(1) => tag_arms.push_str(&format!(
                        "{vname:?} => ::core::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::deserialize(inner)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::deserialize(&__a[{i}])?"))
                            .collect();
                        tag_arms.push_str(&format!(
                            "{vname:?} => {{\n\
                             let __a = inner.as_array().ok_or_else(|| \
                             ::serde::Error::type_mismatch(\"array\", inner))?;\n\
                             if __a.len() != {n} {{\n\
                             return ::core::result::Result::Err(::serde::Error::custom(\
                             format!(\"variant `{vname}` expects {n} elements, found {{}}\", __a.len())));\n\
                             }}\n\
                             ::core::result::Result::Ok({name}::{vname}({elems}))\n\
                             }}\n",
                            elems = elems.join(", "),
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let mut ctor = format!(
                            "{vname:?} => ::core::result::Result::Ok({name}::{vname} {{\n"
                        );
                        for f in fields {
                            ctor.push_str(&field_expr(f, "inner"));
                        }
                        ctor.push_str("}),\n");
                        tag_arms.push_str(&ctor);
                    }
                }
            }
            format!(
                "if let ::core::option::Option::Some(s) = v.as_str() {{\n\
                 return match s {{\n\
                 {string_arms}\
                 other => ::core::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown variant `{{other}}` of `{name}`\"))),\n\
                 }};\n\
                 }}\n\
                 if let ::core::option::Option::Some(entries) = v.as_object() {{\n\
                 if entries.len() == 1 {{\n\
                 let (tag, inner) = &entries[0];\n\
                 return match tag.as_str() {{\n\
                 {tag_arms}\
                 other => ::core::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown variant `{{other}}` of `{name}`\"))),\n\
                 }};\n\
                 }}\n\
                 }}\n\
                 ::core::result::Result::Err(::serde::Error::custom(\
                 \"expected `{name}` as a variant string or single-key object\"))"
            )
        }
    };
    format!(
        "{IMPL_ATTRS}impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}

/// One `field: <expr>,` line of a struct(-variant) constructor.
fn field_expr(f: &Field, source: &str) -> String {
    let fname = &f.name;
    if f.skip {
        format!("{fname}: ::core::default::Default::default(),\n")
    } else if f.default {
        format!(
            "{fname}: match {source}.get({fname:?}) {{\n\
             ::core::option::Option::Some(x) => ::serde::Deserialize::deserialize(x)?,\n\
             ::core::option::Option::None => ::core::default::Default::default(),\n\
             }},\n"
        )
    } else {
        format!(
            "{fname}: match {source}.get({fname:?}) {{\n\
             ::core::option::Option::Some(x) => ::serde::Deserialize::deserialize(x)?,\n\
             ::core::option::Option::None => return ::core::result::Result::Err(\
             ::serde::Error::missing_field({fname:?})),\n\
             }},\n"
        )
    }
}
