//! Hermetic stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal serialization framework under the same crate name. Unlike real
//! serde's visitor architecture, this implementation converts values through
//! an owned JSON-like [`Value`] tree: [`Serialize`] renders into a `Value`,
//! [`Deserialize`] reads back out of one. The `serde_json` stub then prints
//! and parses that tree.
//!
//! The derive macros (`#[derive(Serialize, Deserialize)]`) are re-exported
//! from the companion `serde_derive` proc-macro crate and support the shapes
//! this workspace uses: named-field structs, unit/newtype/struct enum
//! variants, and the `#[serde(skip)]` field attribute (skipped fields are
//! restored via `Default`). The wire format matches serde_json's external
//! enum tagging, so files written by the real stack parse identically.

#![warn(missing_docs)]

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree — the interchange representation between
/// [`Serialize`], [`Deserialize`] and the `serde_json` printer/parser.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also the encoding of non-finite floats).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (negative values only; non-negative parse as `UInt`).
    Int(i64),
    /// Unsigned integer. Kept separate from `Float` so 64-bit hash keys
    /// round-trip losslessly.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object. Order-preserving association list; field counts in this
    /// workspace are small, so linear lookup is fine.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Looks up a field of an object (first match wins).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Borrows the array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrows the string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Short human description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Helpers for building [`Value::Object`]s (used by generated code).
pub mod value {
    pub use super::Value;

    /// The object representation behind [`Value::Object`].
    pub type Map = Vec<(String, Value)>;

    /// Creates an empty object map.
    pub fn new_object() -> Map {
        Vec::new()
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }

    /// A required field was absent.
    pub fn missing_field(field: &str) -> Self {
        Error(format!("missing field `{field}`"))
    }

    /// A value had the wrong JSON type.
    pub fn type_mismatch(expected: &str, got: &Value) -> Self {
        Error(format!("expected {expected}, found {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into a [`Value`] tree.
pub trait Serialize {
    /// Converts to the interchange tree.
    fn serialize(&self) -> Value;
}

/// Reconstructs `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses from the interchange tree.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

/// Deserialization traits, mirroring `serde::de`.
pub mod de {
    /// Owned deserialization — an alias for [`crate::Deserialize`] kept for
    /// path compatibility with real serde bounds.
    pub trait DeserializeOwned: super::Deserialize {}
    impl<T: super::Deserialize> DeserializeOwned for T {}
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::UInt(u) => <$t>::try_from(u)
                        .map_err(|_| Error::custom(format!("{u} out of range for {}", stringify!($t)))),
                    Value::Int(i) => <$t>::try_from(i)
                        .map_err(|_| Error::custom(format!("{i} out of range for {}", stringify!($t)))),
                    ref other => Err(Error::type_mismatch("integer", other)),
                }
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let i = *self as i64;
                if i < 0 { Value::Int(i) } else { Value::UInt(i as u64) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::Int(i) => <$t>::try_from(i)
                        .map_err(|_| Error::custom(format!("{i} out of range for {}", stringify!($t)))),
                    Value::UInt(u) => <$t>::try_from(u)
                        .map_err(|_| Error::custom(format!("{u} out of range for {}", stringify!($t)))),
                    ref other => Err(Error::type_mismatch("integer", other)),
                }
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| Error::type_mismatch("number", v))
            }
        }
    )*};
}
ser_de_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            ref other => Err(Error::type_mismatch("bool", other)),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_string).ok_or_else(|| Error::type_mismatch("string", v))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::type_mismatch("array", v))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(Vec::<T>::deserialize(v)?.into())
    }
}

impl<T: Serialize> Serialize for Box<[T]> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Box<[T]> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(Vec::<T>::deserialize(v)?.into_boxed_slice())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::deserialize(v)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(t) => t.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::type_mismatch("array", v))?;
                let expected = [$(stringify!($n)),+].len();
                if a.len() != expected {
                    return Err(Error::custom(format!(
                        "expected a {expected}-tuple, found {} elements", a.len())));
                }
                Ok(($($t::deserialize(&a[$n])?,)+))
            }
        }
    )+};
}
ser_de_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

/// Map keys encodable as JSON object keys (mirrors serde_json's stringified
/// integer keys).
pub trait JsonKey: Sized {
    /// Renders the key as an object-key string.
    fn to_key(&self) -> String;
    /// Parses the key back from an object-key string.
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! json_int_key {
    ($($t:ty),*) => {$(
        impl JsonKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|_| Error::custom(format!(
                    "invalid {} map key: {s:?}", stringify!($t))))
            }
        }
    )*};
}
json_int_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Element-set keys (`Box<[u32]>`) encode as comma-separated id strings, so
// set-keyed maps have a JSON object representation.
impl JsonKey for Box<[u32]> {
    fn to_key(&self) -> String {
        self.iter().map(|id| id.to_string()).collect::<Vec<_>>().join(",")
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        if s.is_empty() {
            return Ok(Vec::new().into_boxed_slice());
        }
        s.split(',')
            .map(|part| {
                part.parse::<u32>()
                    .map_err(|_| Error::custom(format!("invalid element-set map key: {s:?}")))
            })
            .collect::<Result<Vec<u32>, Error>>()
            .map(Vec::into_boxed_slice)
    }
}

impl<K: JsonKey + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_key(), v.serialize())).collect())
    }
}

impl<K: JsonKey + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::type_mismatch("object", v))?
            .iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::deserialize(val)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::deserialize(&u64::MAX.serialize()).unwrap(), u64::MAX);
        assert_eq!(i64::deserialize(&(-7i64).serialize()).unwrap(), -7);
        assert_eq!(f32::deserialize(&0.3f32.serialize()).unwrap(), 0.3);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(String::deserialize(&"hi".to_string().serialize()).unwrap(), "hi");
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(Vec::<u32>::deserialize(&v.serialize()).unwrap(), v);
        let d: VecDeque<f64> = vec![1.5, 2.5].into();
        assert_eq!(VecDeque::<f64>::deserialize(&d.serialize()).unwrap(), d);
        let b: Box<[u32]> = vec![4, 5].into_boxed_slice();
        assert_eq!(Box::<[u32]>::deserialize(&b.serialize()).unwrap(), b);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::deserialize(&o.serialize()).unwrap(), None);
        let t = (3u32, 4.5f64);
        assert_eq!(<(u32, f64)>::deserialize(&t.serialize()).unwrap(), t);
    }

    #[test]
    fn u64_hash_keys_are_lossless() {
        let mut m = HashMap::new();
        m.insert(u64::MAX - 1, 3u64);
        m.insert(1u64 << 60, 4u64);
        let back = HashMap::<u64, u64>::deserialize(&m.serialize()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn type_mismatch_is_an_error_not_a_panic() {
        assert!(u32::deserialize(&Value::String("x".into())).is_err());
        assert!(bool::deserialize(&Value::UInt(1)).is_err());
        assert!(Vec::<u32>::deserialize(&Value::Null).is_err());
        assert!(u32::deserialize(&Value::Int(-1)).is_err());
    }
}
