//! Hermetic stand-in for `criterion`.
//!
//! Provides the `Criterion`/`Bencher` types and the `criterion_group!` /
//! `criterion_main!` macros so the workspace's `harness = false` bench
//! targets compile and run offline. Timing is a simple mean over a fixed
//! number of iterations — adequate for relative comparisons, with none of
//! real criterion's statistics, warm-up, or HTML reports.

#![warn(missing_docs)]

use std::time::Instant;

/// Benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher { samples: Vec::with_capacity(self.sample_size) };
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        let n = bencher.samples.len().max(1);
        let mean_ns = bencher.samples.iter().sum::<u128>() / n as u128;
        println!("bench {name:<40} {mean_ns:>12} ns/iter (n={n})");
        self
    }
}

/// Times one routine, mirroring `criterion::Bencher`.
pub struct Bencher {
    samples: Vec<u128>,
}

impl Bencher {
    /// Times one invocation of `routine` and records it as a sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.samples.push(start.elapsed().as_nanos());
        drop(out);
    }
}

/// Re-export for code written against criterion's old `black_box` path.
pub use std::hint::black_box;

/// Bundles benchmark functions into a group runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                let mut c: $crate::Criterion = $config;
                $target(&mut c);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        c.bench_function("sum_small", |b| {
            b.iter(|| (0..100u64).map(black_box).sum::<u64>())
        });
    }

    criterion_group!(
        name = benches;
        config = Criterion::default().sample_size(5);
        targets = trivial_bench
    );

    #[test]
    fn group_runs_to_completion() {
        benches();
    }
}
