//! Hermetic stand-in for `serde_json`.
//!
//! Prints and parses JSON text against the vendored `serde` crate's
//! [`Value`] interchange tree. Covers the API subset the workspace uses:
//! [`to_string`], [`to_vec`], [`to_writer`], [`from_str`], [`from_slice`],
//! [`from_reader`], and [`Error`].
//!
//! Wire-format notes:
//! - Integers print without a decimal point; 64-bit values round-trip
//!   losslessly through dedicated `Int`/`UInt` variants.
//! - Floats print via Rust's shortest-round-trip `{:?}` formatting; an
//!   integral float gains a `.0` suffix so it re-parses as a float.
//! - Non-finite floats serialize as `null`, matching real serde_json.

#![warn(missing_docs)]

use serde::{de::DeserializeOwned, Serialize, Value};
use std::fmt;
use std::io::{Read, Write};

/// JSON serialization/deserialization error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error(format!("io error: {e}"))
    }
}

/// Serializes a value to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize());
    Ok(out)
}

/// Serializes a value to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    Ok(to_string(value)?.into_bytes())
}

/// Serializes a value as JSON into a writer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    writer.write_all(to_string(value)?.as_bytes())?;
    Ok(())
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = Parser::new(s).parse_document()?;
    Ok(T::deserialize(&value)?)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Deserializes a value from a JSON reader.
pub fn from_reader<R: Read, T: DeserializeOwned>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // {:?} is Rust's shortest representation that round-trips;
                // integral floats already include a trailing `.0`.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn parse_document(mut self) -> Result<Value, Error> {
        let value = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after JSON document"));
        }
        Ok(value)
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(b) => Err(self.err(&format!("unexpected character `{}`", b as char))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string object key"));
            }
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc =
                        *self.bytes.get(self.pos).ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low surrogate.
                                if self.bytes.get(self.pos) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 1) != Some(&b'u')
                                {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                }
                // Multi-byte UTF-8: the input came from &str, so continuation
                // bytes are valid; copy the whole scalar through.
                b if b < 0x80 => out.push(b as char),
                b => {
                    let len = if b >= 0xF0 {
                        4
                    } else if b >= 0xE0 {
                        3
                    } else {
                        2
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let negative = self.bytes.get(self.pos) == Some(&b'-');
        if negative {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if text == "-" || text.is_empty() {
            return Err(self.err("invalid number"));
        }
        if !is_float {
            if negative {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn scalars_roundtrip_through_text() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for &f in &[0.1f64, 1.0, -2.5e300, std::f64::consts::PI, f64::MIN_POSITIVE] {
            let s = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), f, "via {s}");
        }
        for &f in &[0.1f32, 1.0, 6.02e23, -1.1754944e-38] {
            let s = to_string(&f).unwrap();
            assert_eq!(from_str::<f32>(&s).unwrap(), f, "via {s}");
        }
    }

    #[test]
    fn u64_extremes_survive() {
        let s = to_string(&u64::MAX).unwrap();
        assert_eq!(s, u64::MAX.to_string());
        assert_eq!(from_str::<u64>(&s).unwrap(), u64::MAX);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "line\nbreak \"quoted\" back\\slash tab\t snowman ☃".to_string();
        let s = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&s).unwrap(), original);
        assert_eq!(from_str::<String>(r#""☃ 😀""#).unwrap(), "☃ 😀");
    }

    #[test]
    fn nested_containers_roundtrip() {
        let v: Vec<Vec<f32>> = vec![vec![1.5, -2.5], vec![], vec![0.0]];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<f32>>>(&s).unwrap(), v);

        let mut m: HashMap<u64, i64> = HashMap::new();
        m.insert(u64::MAX - 5, -9);
        m.insert(7, 12);
        let s = to_string(&m).unwrap();
        assert_eq!(from_str::<HashMap<u64, i64>>(&s).unwrap(), m);
    }

    #[test]
    fn malformed_documents_error_cleanly() {
        for bad in ["", "{", "[1,", "tru", "\"abc", "{\"a\":}", "1 2", "{1: 2}", "nanx", "--5"] {
            assert!(from_str::<serde::Value>(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v: Vec<u32> = from_str(" [ 1 , 2 ,\n 3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }
}
