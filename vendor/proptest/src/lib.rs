//! Hermetic stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! range/tuple/`collection::vec`/`ANY` strategies, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from real proptest, acceptable for this test suite:
//! - **No shrinking.** A failing case reports its inputs via the panic
//!   message (`Debug`-formatted) but is not minimized.
//! - **Deterministic seeding.** Cases derive from a fixed per-test seed
//!   (a hash of the test name), so runs are reproducible; there is no
//!   `.proptest-regressions` persistence (existing regression files are
//!   ignored).
//! - `prop_assume!` skips the case rather than resampling it.

#![warn(missing_docs)]

use rand::{rngs::StdRng, Rng, SeedableRng};

/// Runner configuration; only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps model-training properties
        // fast while still exploring the input space.
        ProptestConfig { cases: 64 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )+};
}
tuple_strategy!((0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy producing vectors with lengths drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: core::ops::Range<usize>,
    }

    /// Vector of `elem`-generated values, with length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy for uniform booleans.
    pub struct BoolAny;

    /// Uniformly random boolean.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = core::primitive::bool;
        fn sample(&self, rng: &mut StdRng) -> core::primitive::bool {
            rng.gen_bool(0.5)
        }
    }
}

/// Numeric strategies (`proptest::num::<type>::ANY`).
pub mod num {
    /// `u64` strategies.
    pub mod u64 {
        use crate::{StdRng, Strategy};
        use rand::Rng;

        /// Strategy for uniform `u64` values over the full domain.
        pub struct U64Any;

        /// Uniformly random `u64`.
        pub const ANY: U64Any = U64Any;

        impl Strategy for U64Any {
            type Value = core::primitive::u64;
            fn sample(&self, rng: &mut StdRng) -> core::primitive::u64 {
                rng.gen()
            }
        }
    }
}

/// Why a property case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped, not failed.
    Reject(String),
    /// A `prop_assert*!` failed; the test panics with this message.
    Fail(String),
}

impl TestCaseError {
    /// Resolves the outcome: rejections are silent, failures panic.
    pub fn handle(self, test_name: &str, case_inputs: &str) {
        match self {
            TestCaseError::Reject(_) => {}
            TestCaseError::Fail(msg) => {
                panic!("property `{test_name}` failed: {msg}\n  inputs: {case_inputs}")
            }
        }
    }
}

/// Per-test deterministic sampler.
pub struct Runner {
    rng: StdRng,
}

impl Runner {
    /// Builds a runner seeded from the test's name, so every run of a given
    /// test explores the same sequence of cases.
    pub fn new(test_name: &str) -> Self {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        test_name.hash(&mut h);
        Runner { rng: StdRng::seed_from_u64(h.finish()) }
    }

    /// Draws one value from a strategy.
    pub fn sample<S: Strategy>(&mut self, strategy: &S) -> S::Value {
        strategy.sample(&mut self.rng)
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` that runs the body over `config.cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::Runner::new(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                $(let $arg = runner.sample(&($strat));)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, ",)+ ""),
                    $(&$arg),+
                );
                let __outcome = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = __outcome {
                    e.handle(stringify!($name), &__inputs);
                }
            }
        }
    )*};
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts two expressions are equal inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&($left), &($right));
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Asserts two expressions are unequal inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&($left), &($right));
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 5u32..50, f in 0.0f64..1.0) {
            prop_assert!((5..50).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in crate::collection::vec(0u32..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuples_and_any(pair in (0u64..100, 0u32..7), b in crate::bool::ANY, raw in crate::num::u64::ANY) {
            prop_assert!(pair.0 < 100);
            prop_assert!(pair.1 < 7);
            // Exercise prop_assume with a data-dependent (but usually true)
            // condition instead of a tautology, which clippy rejects.
            prop_assume!(b || pair.0 < 100);
            prop_assert_ne!(raw.wrapping_add(1), raw);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }

    #[test]
    fn assume_skips_without_failing() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            fn rejects_everything(x in 0u32..10) {
                prop_assume!(x > 100);
                prop_assert!(false);
            }
        }
        rejects_everything();
    }
}
