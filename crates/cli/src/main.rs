//! `setlearn` — command-line front end for the learned set structures.

mod args;
mod commands;
mod telemetry;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            commands::help();
            std::process::exit(2);
        }
    };
    if let Err(e) = commands::run(&parsed) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
