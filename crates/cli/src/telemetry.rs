//! `--telemetry <path>` plumbing: turns on full tracing for the invocation
//! and persists a three-file run artifact next to `<path>`:
//!
//! - `<path>.prom`         — Prometheus text exposition of all metrics
//! - `<path>.metrics.json` — the raw [`RegistrySnapshot`] (machine-readable)
//! - `<path>.jsonl`        — the structured trace, one record per line
//!
//! Artifacts *accumulate*: on startup any existing `<path>.metrics.json` is
//! absorbed back into the live registry and the trace file is appended to,
//! so `train --telemetry run && query --telemetry run` yields one artifact
//! covering both phases (train-epoch spans and serve-query spans together).
//! All files are written through the same crash-safe atomic-rename path as
//! model files ([`setlearn::persist::write_atomic`]).

use crate::commands::CliError;
use setlearn::persist::write_atomic;
use setlearn_obs::RegistrySnapshot;
use std::path::{Path, PathBuf};

/// An active `--telemetry` sink for one CLI invocation.
pub struct TelemetrySink {
    base: PathBuf,
}

/// Reads the `--telemetry` option; when present, raises the global telemetry
/// level to `Full` (per-query/per-epoch spans) and absorbs any prior metrics
/// artifact at the same base path so counters keep accumulating across
/// invocations.
pub fn begin(args: &crate::args::Args) -> Result<Option<TelemetrySink>, CliError> {
    let Some(base) = args.optional("telemetry") else {
        return Ok(None);
    };
    if base.is_empty() {
        return Err("--telemetry requires a non-empty path".into());
    }
    setlearn_obs::set_level(setlearn_obs::TelemetryLevel::Full);
    let sink = TelemetrySink { base: PathBuf::from(base) };
    let metrics_path = sink.metrics_path();
    if metrics_path.exists() {
        let text = std::fs::read_to_string(&metrics_path)
            .map_err(|e| format!("cannot read {}: {e}", metrics_path.display()))?;
        let snap: RegistrySnapshot = serde_json::from_str(&text)
            .map_err(|e| format!("cannot parse {}: {e}", metrics_path.display()))?;
        setlearn_obs::metrics().absorb(&snap);
    }
    Ok(Some(sink))
}

fn with_suffix(base: &Path, suffix: &str) -> PathBuf {
    let mut s = base.as_os_str().to_owned();
    s.push(suffix);
    PathBuf::from(s)
}

impl TelemetrySink {
    /// `<path>.prom`
    pub fn prom_path(&self) -> PathBuf {
        with_suffix(&self.base, ".prom")
    }

    /// `<path>.metrics.json`
    pub fn metrics_path(&self) -> PathBuf {
        with_suffix(&self.base, ".metrics.json")
    }

    /// `<path>.jsonl`
    pub fn trace_path(&self) -> PathBuf {
        with_suffix(&self.base, ".jsonl")
    }

    /// Flushes the run artifact: Prometheus exposition + metrics snapshot
    /// (overwritten — they already contain absorbed history) and the drained
    /// trace ring (appended to the existing trace).
    pub fn finish(&self) -> Result<(), CliError> {
        let tracer = setlearn_obs::tracer();
        setlearn_obs::publish_collector_metrics(tracer, setlearn_obs::metrics());
        let snap = setlearn_obs::metrics().snapshot();

        let prom = self.prom_path();
        write_atomic(&prom, setlearn_obs::to_prometheus(&snap).as_bytes())
            .map_err(|e| format!("cannot write {}: {e}", prom.display()))?;

        let metrics = self.metrics_path();
        let json = serde_json::to_string(&snap)
            .map_err(|e| format!("cannot serialize metrics snapshot: {e}"))?;
        write_atomic(&metrics, json.as_bytes())
            .map_err(|e| format!("cannot write {}: {e}", metrics.display()))?;

        let trace = self.trace_path();
        let mut text = match std::fs::read_to_string(&trace) {
            Ok(existing) => existing,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(format!("cannot read {}: {e}", trace.display()).into()),
        };
        text.push_str(&setlearn_obs::to_jsonl(&tracer.drain()));
        write_atomic(&trace, text.as_bytes())
            .map_err(|e| format!("cannot write {}: {e}", trace.display()))?;

        eprintln!(
            "telemetry: wrote {}, {}, {}",
            prom.display(),
            metrics.display(),
            trace.display()
        );
        Ok(())
    }
}
