//! `--telemetry <path>` plumbing: turns on full tracing for the invocation
//! and persists a three-file run artifact next to `<path>`:
//!
//! - `<path>.prom`         — Prometheus text exposition of all metrics
//! - `<path>.metrics.json` — the raw [`RegistrySnapshot`] (machine-readable)
//! - `<path>.jsonl`        — the structured trace, one record per line
//!
//! Artifacts *accumulate*: on startup any existing `<path>.metrics.json` is
//! absorbed back into the live registry and the trace file is appended to,
//! so `train --telemetry run && query --telemetry run` yields one artifact
//! covering both phases (train-epoch spans and serve-query spans together).
//! All files are written through the same crash-safe atomic-rename path as
//! model files ([`setlearn::persist::write_atomic`]).

use crate::commands::CliError;
use setlearn::persist::write_atomic;
use setlearn_obs::RegistrySnapshot;
use std::path::{Path, PathBuf};

/// An active `--telemetry` sink for one CLI invocation.
pub struct TelemetrySink {
    base: PathBuf,
    /// The metrics artifact as absorbed at [`begin`] — the baseline for the
    /// merge-on-write in [`TelemetrySink::finish`]. What another process
    /// writes to the artifact *after* our absorb is disk-minus-baseline, and
    /// is folded back in rather than clobbered.
    absorbed: RegistrySnapshot,
}

/// Reads the `--telemetry` option; when present, raises the global telemetry
/// level to `Full` (per-query/per-epoch spans) and absorbs any prior metrics
/// artifact at the same base path so counters keep accumulating across
/// invocations.
pub fn begin(args: &crate::args::Args) -> Result<Option<TelemetrySink>, CliError> {
    let Some(base) = args.optional("telemetry") else {
        return Ok(None);
    };
    if base.is_empty() {
        return Err("--telemetry requires a non-empty path".into());
    }
    setlearn_obs::set_level(setlearn_obs::TelemetryLevel::Full);
    let mut sink =
        TelemetrySink { base: PathBuf::from(base), absorbed: RegistrySnapshot::default() };
    let metrics_path = sink.metrics_path();
    if metrics_path.exists() {
        let text = std::fs::read_to_string(&metrics_path)
            .map_err(|e| format!("cannot read {}: {e}", metrics_path.display()))?;
        let snap: RegistrySnapshot = serde_json::from_str(&text)
            .map_err(|e| format!("cannot parse {}: {e}", metrics_path.display()))?;
        setlearn_obs::metrics().absorb(&snap);
        sink.absorbed = snap;
    }
    Ok(Some(sink))
}

fn with_suffix(base: &Path, suffix: &str) -> PathBuf {
    let mut s = base.as_os_str().to_owned();
    s.push(suffix);
    PathBuf::from(s)
}

impl TelemetrySink {
    /// `<path>.prom`
    pub fn prom_path(&self) -> PathBuf {
        with_suffix(&self.base, ".prom")
    }

    /// `<path>.metrics.json`
    pub fn metrics_path(&self) -> PathBuf {
        with_suffix(&self.base, ".metrics.json")
    }

    /// `<path>.jsonl`
    pub fn trace_path(&self) -> PathBuf {
        with_suffix(&self.base, ".jsonl")
    }

    /// Flushes the run artifact: Prometheus exposition + metrics snapshot
    /// and the drained trace ring (appended to the existing trace).
    ///
    /// The metrics artifact is *merged*, not blindly replaced: the file on
    /// disk is re-read and whatever accumulated there since [`begin`]'s
    /// absorb (another invocation finishing concurrently, an out-of-band
    /// writer) is folded into the live snapshot first. Without this, two
    /// overlapping `--telemetry` runs against one base path clobber each
    /// other — last writer wins and the other run's counters vanish.
    pub fn finish(&self) -> Result<(), CliError> {
        let tracer = setlearn_obs::tracer();
        setlearn_obs::publish_collector_metrics(tracer, setlearn_obs::metrics());
        let mut snap = setlearn_obs::metrics().snapshot();
        if let Ok(text) = std::fs::read_to_string(self.metrics_path()) {
            if let Ok(disk) = serde_json::from_str::<RegistrySnapshot>(&text) {
                // Only what landed on disk after our absorb is new to us;
                // merging the whole file would double-count the baseline.
                snap.merge(&disk.delta(&self.absorbed));
            }
        }

        let prom = self.prom_path();
        write_atomic(&prom, setlearn_obs::to_prometheus(&snap).as_bytes())
            .map_err(|e| format!("cannot write {}: {e}", prom.display()))?;

        let metrics = self.metrics_path();
        let json = serde_json::to_string(&snap)
            .map_err(|e| format!("cannot serialize metrics snapshot: {e}"))?;
        write_atomic(&metrics, json.as_bytes())
            .map_err(|e| format!("cannot write {}: {e}", metrics.display()))?;

        let trace = self.trace_path();
        let mut text = match std::fs::read_to_string(&trace) {
            Ok(existing) => existing,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(format!("cannot read {}: {e}", trace.display()).into()),
        };
        text.push_str(&setlearn_obs::to_jsonl(&tracer.drain()));
        write_atomic(&trace, text.as_bytes())
            .map_err(|e| format!("cannot write {}: {e}", trace.display()))?;

        eprintln!(
            "telemetry: wrote {}, {}, {}",
            prom.display(),
            metrics.display(),
            trace.display()
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;
    use setlearn_obs::{CounterSample, MetricKey};

    fn counter(name: &str, value: u64) -> CounterSample {
        CounterSample { key: MetricKey { name: name.to_string(), labels: Vec::new() }, value }
    }

    /// Regression: `finish` must merge what landed in the metrics artifact
    /// after `begin`'s absorb (an overlapping run, an out-of-band writer)
    /// instead of blindly overwriting it. The old write path lost the
    /// `extra` counter and rolled `seed` back to the absorbed value.
    #[test]
    fn finish_merges_out_of_band_artifact_writes_instead_of_clobbering() {
        let dir = std::env::temp_dir().join(format!("setlearn_tele_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("run");
        let args = Args::parse(
            ["query".to_string(), "--telemetry".to_string(), base.display().to_string()],
        )
        .unwrap();

        // Artifact v1 on disk before the run starts: seed = 5.
        let v1 = RegistrySnapshot {
            counters: vec![counter("tele_clobber_seed_total", 5)],
            ..RegistrySnapshot::default()
        };
        let metrics_path = {
            let mut s = base.as_os_str().to_owned();
            s.push(".metrics.json");
            PathBuf::from(s)
        };
        std::fs::write(&metrics_path, serde_json::to_string(&v1).unwrap()).unwrap();

        let sink = begin(&args).unwrap().expect("--telemetry given");

        // Out-of-band writer overwrites the artifact mid-run: seed bumped to
        // 9 (+4) and a counter this process never touches appears.
        let v2 = RegistrySnapshot {
            counters: vec![
                counter("tele_clobber_extra_total", 3),
                counter("tele_clobber_seed_total", 9),
            ],
            ..RegistrySnapshot::default()
        };
        std::fs::write(&metrics_path, serde_json::to_string(&v2).unwrap()).unwrap();

        sink.finish().unwrap();

        let text = std::fs::read_to_string(&metrics_path).unwrap();
        let merged: RegistrySnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(
            merged.counter_value("tele_clobber_extra_total", &[]),
            Some(3),
            "the out-of-band counter survives the finish"
        );
        assert_eq!(
            merged.counter_value("tele_clobber_seed_total", &[]),
            Some(9),
            "absorbed 5 plus the out-of-band +4, not rolled back"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
