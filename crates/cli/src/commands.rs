//! CLI subcommand implementations.

use crate::args::{ArgError, Args};
use setlearn::hybrid::GuidedConfig;
use setlearn::model::DeepSetsConfig;
use setlearn::tasks::{
    BloomConfig, CardinalityConfig, IndexConfig, LearnedBloom, LearnedCardinality,
    LearnedSetIndex,
};
use setlearn_data::{normalize, GeneratorConfig, SetCollection};
use setlearn_engine::{Engine, SetTable};

/// Uniform CLI error type.
pub type CliError = Box<dyn std::error::Error>;

/// Wraps an error with the file path it concerns, so `error: No such file
/// or directory` becomes actionable.
fn with_path<'a, E: std::fmt::Display>(
    action: &'static str,
    path: &'a str,
) -> impl FnOnce(E) -> CliError + 'a {
    move |e| format!("cannot {action} {path}: {e}").into()
}

fn load_collection(path: &str) -> Result<SetCollection, CliError> {
    load(path)
}

fn save<T: serde::Serialize>(value: &T, path: &str) -> Result<(), CliError> {
    let file = std::io::BufWriter::new(
        std::fs::File::create(path).map_err(with_path("create", path))?,
    );
    serde_json::to_writer(file, value).map_err(with_path("write", path))?;
    Ok(())
}

fn load<T: serde::de::DeserializeOwned>(path: &str) -> Result<T, CliError> {
    let file = std::io::BufReader::new(
        std::fs::File::open(path).map_err(with_path("open", path))?,
    );
    serde_json::from_reader(file).map_err(with_path("parse", path))
}

/// `setlearn generate --dataset rw|tweets|sd --sets N [--seed S] --out FILE`
pub fn generate(args: &Args) -> Result<(), CliError> {
    let dataset = args.required("dataset")?;
    let n = args.get_or("sets", 2_000usize)?;
    let seed = args.get_or("seed", 42u64)?;
    let out = args.required("out")?;
    let cfg = match dataset {
        "rw" => GeneratorConfig::rw(n, seed),
        "tweets" => GeneratorConfig::tweets(n, seed),
        "sd" => GeneratorConfig::sd(n, seed),
        other => return Err(ArgError(format!("unknown dataset '{other}' (rw|tweets|sd)")).into()),
    };
    let collection = cfg.generate();
    save(&collection, out)?;
    let stats = collection.stats();
    println!(
        "wrote {} sets ({} unique elements, sizes {}-{}) to {out}",
        stats.num_sets, stats.unique_elements, stats.min_set_size, stats.max_set_size
    );
    Ok(())
}

/// `setlearn import --text FILE --out FILE [--dict FILE] [--comment PREFIX]`
pub fn import(args: &Args) -> Result<(), CliError> {
    let text_path = args.required("text")?;
    let out = args.required("out")?;
    let mut format = setlearn_data::io::TextFormat::default();
    if let Some(prefix) = args.optional("comment") {
        format.comment_prefix = Some(prefix.to_string());
    }
    let (collection, dict) =
        setlearn_data::io::read_sets_file(std::path::Path::new(text_path), &format)?;
    save(&collection, out)?;
    if let Some(dict_path) = args.optional("dict") {
        save(&dict, dict_path)?;
    }
    let stats = collection.stats();
    println!(
        "imported {} sets ({} distinct tokens) from {text_path} into {out}",
        stats.num_sets, stats.unique_elements
    );
    Ok(())
}

/// `setlearn export --collection FILE --dict FILE --out FILE`
pub fn export(args: &Args) -> Result<(), CliError> {
    let collection = load_collection(args.required("collection")?)?;
    let dict: setlearn_data::Dictionary = load(args.required("dict")?)?;
    let out = args.required("out")?;
    let file = std::fs::File::create(out)?;
    setlearn_data::io::write_sets(file, &collection, &dict, ' ')?;
    println!("exported {} sets to {out}", collection.len());
    Ok(())
}

/// `setlearn reorder --collection FILE --out FILE --strategy lex|head|random [--seed S]`
pub fn reorder_cmd(args: &Args) -> Result<(), CliError> {
    let collection = load_collection(args.required("collection")?)?;
    let out = args.required("out")?;
    let strategy = args.optional("strategy").unwrap_or("lex");
    let (reordered, _) = match strategy {
        "lex" => setlearn_data::reorder::lexicographic(&collection),
        "head" => setlearn_data::reorder::by_head_element(&collection),
        "random" => setlearn_data::reorder::random(&collection, args.get_or("seed", 1u64)?),
        other => {
            return Err(ArgError(format!("unknown strategy '{other}' (lex|head|random)")).into())
        }
    };
    save(&reordered, out)?;
    println!("reordered {} sets ({strategy}) into {out}", reordered.len());
    Ok(())
}

/// `setlearn stats --collection FILE`
pub fn stats(args: &Args) -> Result<(), CliError> {
    let collection = load_collection(args.required("collection")?)?;
    let s = collection.stats();
    println!("sets:            {}", s.num_sets);
    println!("unique elements: {}", s.unique_elements);
    println!("max cardinality: {}", s.max_cardinality);
    println!("set sizes:       {}-{}", s.min_set_size, s.max_set_size);
    println!("resident bytes:  {}", collection.size_bytes());
    Ok(())
}

fn guided_from_args(args: &Args) -> Result<GuidedConfig, CliError> {
    Ok(GuidedConfig {
        warmup_epochs: args.get_or("epochs", 15usize)?,
        rounds: 1,
        epochs_per_round: args.get_or("refine-epochs", 10usize)?,
        percentile: args.get_or("percentile", 0.9f64)?,
        batch_size: args.get_or("batch", 128usize)?,
        learning_rate: args.get_or("lr", 3e-3f32)?,
        seed: args.get_or("seed", 7u64)?,
    })
}

/// Prints the harness training summary and warns (without failing the
/// command) when training ended in a degraded state.
fn report_training(train: &setlearn::TrainReport) {
    println!("training: {train}");
    if !train.is_healthy() {
        eprintln!("warning: training degraded ({}); consider lowering --lr", train.stop_reason);
    }
}

fn model_from_args(args: &Args, vocab: u32) -> Result<DeepSetsConfig, CliError> {
    let mut model = if args.has_flag("compressed") {
        DeepSetsConfig::clsm(vocab)
    } else {
        DeepSetsConfig::lsm(vocab)
    };
    let neurons = args.get_or("neurons", 32usize)?;
    model.phi_hidden = vec![neurons];
    model.rho_hidden = vec![neurons];
    model.embedding_dim = args.get_or("embedding", 8usize)?;
    Ok(model)
}

/// `setlearn train --task cardinality|index|bloom --collection FILE --out FILE
///  [--compressed] [--epochs N] [--percentile P] [--neurons N] [--embedding D]`
pub fn train(args: &Args) -> Result<(), CliError> {
    let task = args.required("task")?.to_string();
    let collection = load_collection(args.required("collection")?)?;
    let out = args.required("out")?;
    let vocab = collection.num_elements();
    let model = model_from_args(args, vocab)?;
    match task.as_str() {
        "cardinality" => {
            let cfg = CardinalityConfig {
                model,
                guided: guided_from_args(args)?,
                max_subset_size: args.get_or("max-subset", 3usize)?,
            };
            let (est, report) = LearnedCardinality::build(&collection, &cfg);
            save(&est, out)?;
            report_training(&report.train);
            println!(
                "trained cardinality estimator on {} subsets ({} outliers); saved to {out} ({:.3} MB)",
                report.training_subsets,
                report.outliers,
                est.size_bytes() as f64 / 1e6
            );
        }
        "index" => {
            let cfg = IndexConfig {
                model,
                guided: guided_from_args(args)?,
                max_subset_size: args.get_or("max-subset", 2usize)?,
                range_length: args.get_or("range", 100.0f64)?,
                target: if args.has_flag("last") {
                    setlearn::tasks::PositionTarget::Last
                } else {
                    setlearn::tasks::PositionTarget::First
                },
            };
            let (index, report) = LearnedSetIndex::build(&collection, &cfg);
            save(&index, out)?;
            report_training(&report.train);
            println!(
                "trained set index on {} subsets ({} outliers, global error {:.0}); saved to {out} ({:.3} MB)",
                report.training_subsets,
                report.outliers,
                report.global_error,
                index.size_bytes() as f64 / 1e6
            );
        }
        "bloom" => {
            let mut cfg = BloomConfig::new(model);
            cfg.epochs = args.get_or("epochs", 30usize)?;
            cfg.learning_rate = args.get_or("lr", 5e-3f32)?;
            let n = args.get_or("samples", 2_000usize)?;
            let (filter, report) = LearnedBloom::build_from_collection(
                &collection,
                n,
                n,
                args.get_or("max-subset", 4usize)?,
                &cfg,
            );
            save(&filter, out)?;
            report_training(&report.train);
            println!(
                "trained bloom filter (accuracy {:.4}, {} backed-up false negatives); saved to {out} ({:.1} KB)",
                report.training_accuracy,
                report.false_negatives,
                filter.size_bytes() as f64 / 1e3
            );
        }
        other => {
            return Err(
                ArgError(format!("unknown task '{other}' (cardinality|index|bloom)")).into()
            )
        }
    }
    Ok(())
}

/// `setlearn estimate --model FILE --query 1,2,3`
pub fn estimate(args: &Args) -> Result<(), CliError> {
    let est: LearnedCardinality = load(args.required("model")?)?;
    let q = normalize(args.id_list("query")?);
    println!("{:.1}", est.estimate(&q));
    Ok(())
}

/// `setlearn lookup --model FILE --collection FILE --query 1,2,3`
pub fn lookup(args: &Args) -> Result<(), CliError> {
    let index: LearnedSetIndex = load(args.required("model")?)?;
    let collection = load_collection(args.required("collection")?)?;
    let q = normalize(args.id_list("query")?);
    let profile = index.lookup_profiled(&collection, &q);
    match profile.position {
        Some(pos) => println!(
            "position {pos} (scanned {} sets, aux: {})",
            profile.scanned, profile.from_aux
        ),
        None => println!("not found (scanned {} sets)", profile.scanned),
    }
    Ok(())
}

/// `setlearn member --model FILE --query 1,2,3`
pub fn member(args: &Args) -> Result<(), CliError> {
    let filter: LearnedBloom = load(args.required("model")?)?;
    let q = normalize(args.id_list("query")?);
    println!(
        "{} (score {:.4})",
        if filter.contains(&q) { "present" } else { "absent" },
        filter.score(&q)
    );
    Ok(())
}

/// `setlearn sql --collection FILE --query "SELECT ..." [--model FILE]`
pub fn sql(args: &Args) -> Result<(), CliError> {
    let collection = load_collection(args.required("collection")?)?;
    let query = args.required("query")?;
    let engine = Engine::new();
    // The table name must match the FROM clause; parse first to learn it.
    let parsed = setlearn_engine::parse_count(query)?;
    engine.create_table(
        SetTable::from_collection(parsed.table.clone(), collection),
        parsed.column.clone(),
    );
    engine.create_index(&parsed.table)?;
    if let Some(model_path) = args.optional("model") {
        let est: LearnedCardinality = load(model_path)?;
        engine.register_estimator(&parsed.table, est)?;
    }
    let result = engine.execute(&parsed)?;
    println!(
        "count: {:.1} ({}, {:?})",
        result.count,
        if result.exact { "exact" } else { "estimate" },
        result.mode
    );
    Ok(())
}

/// `setlearn help`
pub fn help() {
    println!(
        "setlearn — learned data structures over collections of sets (EDBT 2024)

USAGE: setlearn <command> [--option value] [--flag]

COMMANDS:
  generate  --dataset rw|tweets|sd --sets N [--seed S] --out FILE
  import    --text FILE --out FILE [--dict FILE] [--comment PREFIX]
  export    --collection FILE --dict FILE --out FILE
  reorder   --collection FILE --out FILE [--strategy lex|head|random]
  stats     --collection FILE
  train     --task cardinality|index|bloom --collection FILE --out FILE
            [--compressed] [--epochs N] [--percentile P] [--neurons N]
            [--embedding D] [--max-subset K] [--lr F] [--batch N]
  estimate  --model FILE --query 1,2,3
  lookup    --model FILE --collection FILE --query 1,2,3
  member    --model FILE --query 1,2,3
  sql       --collection FILE --query \"SELECT COUNT(*) FROM t WHERE tags @> {{1,2}} [USING mode]\"
            [--model FILE]
  help"
    );
}

/// Dispatches a parsed command line.
pub fn run(args: &Args) -> Result<(), CliError> {
    match args.command.as_str() {
        "generate" => generate(args),
        "import" => import(args),
        "export" => export(args),
        "reorder" => reorder_cmd(args),
        "stats" => stats(args),
        "train" => train(args),
        "estimate" => estimate(args),
        "lookup" => lookup(args),
        "member" => member(args),
        "sql" => sql(args),
        "help" | "--help" | "-h" => {
            help();
            Ok(())
        }
        other => Err(ArgError(format!("unknown command '{other}'; try `setlearn help`")).into()),
    }
}


#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let mut p: std::path::PathBuf = std::env::temp_dir();
        p.push(format!("setlearn-cli-{name}-{}", std::process::id()));
        p.to_string_lossy().into_owned()
    }

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn generate_stats_train_estimate_pipeline() {
        let coll = tmp("pipe.json");
        let model = tmp("pipe-model.json");
        run(&args(&[
            "generate", "--dataset", "sd", "--sets", "200", "--seed", "3", "--out", &coll,
        ]))
        .unwrap();
        run(&args(&["stats", "--collection", &coll])).unwrap();
        run(&args(&[
            "train",
            "--task",
            "cardinality",
            "--collection",
            &coll,
            "--out",
            &model,
            "--compressed",
            "--epochs",
            "3",
            "--refine-epochs",
            "2",
            "--max-subset",
            "2",
        ]))
        .unwrap();
        run(&args(&["estimate", "--model", &model, "--query", "1,2"])).unwrap();
        let _ = std::fs::remove_file(coll);
        let _ = std::fs::remove_file(model);
    }

    #[test]
    fn sql_command_runs_exact_plans() {
        let coll = tmp("sql.json");
        run(&args(&[
            "generate", "--dataset", "rw", "--sets", "300", "--seed", "1", "--out", &coll,
        ]))
        .unwrap();
        run(&args(&[
            "sql",
            "--collection",
            &coll,
            "--query",
            "SELECT COUNT(*) FROM logs WHERE tags @> {1} USING index",
        ]))
        .unwrap();
        let _ = std::fs::remove_file(coll);
    }

    #[test]
    fn import_export_reorder_pipeline() {
        let text_in = tmp("tags.txt");
        let coll = tmp("imported.json");
        let dict = tmp("dict.json");
        let text_out = tmp("exported.txt");
        let sorted = tmp("sorted.json");
        std::fs::write(&text_in, "#a #b\n#b #c\n#a #b #c\n").unwrap();
        run(&args(&[
            "import", "--text", &text_in, "--out", &coll, "--dict", &dict,
        ]))
        .unwrap();
        run(&args(&["export", "--collection", &coll, "--dict", &dict, "--out", &text_out]))
            .unwrap();
        let exported = std::fs::read_to_string(&text_out).unwrap();
        assert_eq!(exported.lines().count(), 3);
        run(&args(&[
            "reorder", "--collection", &coll, "--out", &sorted, "--strategy", "lex",
        ]))
        .unwrap();
        for f in [&text_in, &coll, &dict, &text_out, &sorted] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn missing_files_error_with_path_context_instead_of_panicking() {
        let err = run(&args(&["stats", "--collection", "/nonexistent/nope.json"])).unwrap_err();
        assert!(err.to_string().contains("/nonexistent/nope.json"), "got: {err}");
        let err =
            run(&args(&["estimate", "--model", "/nonexistent/m.json", "--query", "1"]))
                .unwrap_err();
        assert!(err.to_string().contains("cannot open"), "got: {err}");
    }

    #[test]
    fn corrupt_model_file_errors_instead_of_panicking() {
        let path = tmp("garbage-model.json");
        std::fs::write(&path, b"{ not json ").unwrap();
        let err = run(&args(&["estimate", "--model", &path, "--query", "1"])).unwrap_err();
        assert!(err.to_string().contains("cannot parse"), "got: {err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn unknown_command_and_task_error() {
        assert!(run(&args(&["frobnicate"])).is_err());
        let coll = tmp("err.json");
        run(&args(&[
            "generate", "--dataset", "sd", "--sets", "100", "--seed", "2", "--out", &coll,
        ]))
        .unwrap();
        assert!(run(&args(&[
            "train", "--task", "nope", "--collection", &coll, "--out", "/dev/null"
        ]))
        .is_err());
        let _ = std::fs::remove_file(coll);
    }
}
