//! CLI subcommand implementations.

use crate::args::{ArgError, Args};
use crate::telemetry;
use setlearn::prelude::{
    aggregate_bloom, aggregate_cardinality, aggregate_index, BloomConfig, CardinalityConfig,
    DeepSetsConfig, DeltaMergeable, DriftMonitor, FallbackReason, GuidedConfig, IndexConfig,
    IndexStructure, LearnedBloom, LearnedCardinality, LearnedSetIndex, LearnedSetStructure,
    MonitorConfig, MutableCollection, MutableSink, Precision, QueryOutcome, QueryRequest,
    QueryResponse, QueryValue, ShardBy, ShardIndexStructure, ShardSpec, ShardedBloom,
    ShardedCardinality, ShardedCollection, ShardedIndex, ShardedIndexStructure, Wal, WalOp,
    WireTask,
};
use setlearn_data::{ElementSet, GeneratorConfig, SetCollection, SubsetIndex};
use setlearn_engine::{Engine, SetTable};
use setlearn_obs::RegistrySnapshot;
use setlearn_serve::{
    spawn_compactor, BloomTask, CardinalityTask, CollectionRegistry, CompactorConfig,
    IndexTask, MutableBackend, NetClient, NetConfig, NetServer, QuotaConfig, RegistryConfig,
    ServeConfig, ServeError, ServeReport, ServeRuntime, ServeTask, ShardedReport,
    ShardedRuntime, StatsFormat, StructureTask, WireBackend, WireOutcome,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Uniform CLI error type.
pub type CliError = Box<dyn std::error::Error>;

/// Wraps an error with the file path it concerns, so `error: No such file
/// or directory` becomes actionable.
fn with_path<'a, E: std::fmt::Display>(
    action: &'static str,
    path: &'a str,
) -> impl FnOnce(E) -> CliError + 'a {
    move |e| format!("cannot {action} {path}: {e}").into()
}

fn load_collection(path: &str) -> Result<SetCollection, CliError> {
    load(path)
}

fn save<T: serde::Serialize>(value: &T, path: &str) -> Result<(), CliError> {
    let file = std::io::BufWriter::new(
        std::fs::File::create(path).map_err(with_path("create", path))?,
    );
    serde_json::to_writer(file, value).map_err(with_path("write", path))?;
    Ok(())
}

fn load<T: serde::de::DeserializeOwned>(path: &str) -> Result<T, CliError> {
    let file = std::io::BufReader::new(
        std::fs::File::open(path).map_err(with_path("open", path))?,
    );
    serde_json::from_reader(file).map_err(with_path("parse", path))
}

/// The unified tenant addressing: `--root DIR --collection NAME` names one
/// collection directory — `DIR/NAME/{collection.json, model.json,
/// manifest.json, wal/}` — shared by train/query/serve/ingest/sql and the
/// multi-tenant serving registry. Without `--root`, the old path-valued
/// flags (`--collection FILE`, `--model FILE`, `--wal-dir DIR`) keep
/// working as deprecated aliases for one more release.
struct TenantPaths {
    name: String,
    dir: PathBuf,
}

impl TenantPaths {
    fn collection(&self) -> String {
        self.dir.join(setlearn::persist::COLLECTION_SETS).to_string_lossy().into_owned()
    }

    fn model(&self) -> String {
        self.dir.join(setlearn::persist::COLLECTION_MODEL).to_string_lossy().into_owned()
    }

    fn manifest(&self) -> PathBuf {
        self.dir.join(setlearn::persist::COLLECTION_MANIFEST)
    }

    fn wal_dir(&self) -> PathBuf {
        self.dir.join(setlearn::persist::COLLECTION_WAL)
    }
}

/// Resolves `--root DIR --collection NAME` when present; `None` means the
/// caller should fall back to the old path-valued flags.
fn tenant_paths(args: &Args) -> Result<Option<TenantPaths>, CliError> {
    let Some(root) = args.optional("root") else { return Ok(None) };
    let name = args.required("collection")?;
    if !setlearn::wire::valid_collection_name(name) {
        return Err(ArgError(format!(
            "invalid collection name '{name}' (1-{} chars of [A-Za-z0-9_-]); \
             with --root, --collection takes a name, not a path",
            setlearn::wire::MAX_COLLECTION_ID_LEN,
        ))
        .into());
    }
    Ok(Some(TenantPaths { name: name.to_string(), dir: Path::new(root).join(name) }))
}

/// One-line nudge from an old path-valued flag to the unified addressing;
/// printed at most once per process so scripted loops stay readable.
fn note_legacy_addressing(old: &str) {
    use std::sync::atomic::{AtomicBool, Ordering};
    static NOTED: AtomicBool = AtomicBool::new(false);
    if !NOTED.swap(true, Ordering::Relaxed) {
        eprintln!(
            "note: {old} is a deprecated spelling; prefer `--root DIR --collection NAME` \
             (one directory per collection)"
        );
    }
}

/// `setlearn generate --dataset rw|tweets|sd --sets N [--seed S] --out FILE`
pub fn generate(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&["dataset", "sets", "seed", "out"])?;
    let dataset = args.required("dataset")?;
    let n = args.get_or("sets", 2_000usize)?;
    let seed = args.get_or("seed", 42u64)?;
    let out = args.required("out")?;
    let cfg = match dataset {
        "rw" => GeneratorConfig::rw(n, seed),
        "tweets" => GeneratorConfig::tweets(n, seed),
        "sd" => GeneratorConfig::sd(n, seed),
        other => return Err(ArgError(format!("unknown dataset '{other}' (rw|tweets|sd)")).into()),
    };
    let collection = cfg.generate();
    save(&collection, out)?;
    let stats = collection.stats();
    println!(
        "wrote {} sets ({} unique elements, sizes {}-{}) to {out}",
        stats.num_sets, stats.unique_elements, stats.min_set_size, stats.max_set_size
    );
    Ok(())
}

/// `setlearn import --text FILE --out FILE [--dict FILE] [--comment PREFIX]`
pub fn import(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&["text", "out", "dict", "comment"])?;
    let text_path = args.required("text")?;
    let out = args.required("out")?;
    let mut format = setlearn_data::io::TextFormat::default();
    if let Some(prefix) = args.optional("comment") {
        format.comment_prefix = Some(prefix.to_string());
    }
    let (collection, dict) =
        setlearn_data::io::read_sets_file(std::path::Path::new(text_path), &format)?;
    save(&collection, out)?;
    if let Some(dict_path) = args.optional("dict") {
        save(&dict, dict_path)?;
    }
    let stats = collection.stats();
    println!(
        "imported {} sets ({} distinct tokens) from {text_path} into {out}",
        stats.num_sets, stats.unique_elements
    );
    Ok(())
}

/// `setlearn export --collection FILE --dict FILE --out FILE`
pub fn export(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&["collection", "dict", "out"])?;
    let collection = load_collection(args.required("collection")?)?;
    let dict: setlearn_data::Dictionary = load(args.required("dict")?)?;
    let out = args.required("out")?;
    let file = std::fs::File::create(out)?;
    setlearn_data::io::write_sets(file, &collection, &dict, ' ')?;
    println!("exported {} sets to {out}", collection.len());
    Ok(())
}

/// `setlearn reorder --collection FILE --out FILE --strategy lex|head|random [--seed S]`
pub fn reorder_cmd(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&["collection", "out", "strategy", "seed"])?;
    let collection = load_collection(args.required("collection")?)?;
    let out = args.required("out")?;
    let strategy = args.optional("strategy").unwrap_or("lex");
    let (reordered, _) = match strategy {
        "lex" => setlearn_data::reorder::lexicographic(&collection),
        "head" => setlearn_data::reorder::by_head_element(&collection),
        "random" => setlearn_data::reorder::random(&collection, args.get_or("seed", 1u64)?),
        other => {
            return Err(ArgError(format!("unknown strategy '{other}' (lex|head|random)")).into())
        }
    };
    save(&reordered, out)?;
    println!("reordered {} sets ({strategy}) into {out}", reordered.len());
    Ok(())
}

/// `setlearn stats --collection FILE` — collection statistics, or
/// `setlearn stats --telemetry PATH [--format table|prom]` — dump the
/// metrics from a `--telemetry` run artifact.
pub fn stats(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&["collection", "telemetry", "format"])?;
    if let Some(base) = args.optional("telemetry") {
        return stats_telemetry(base, args.optional("format").unwrap_or("table"));
    }
    let collection = load_collection(args.required("collection")?)?;
    let s = collection.stats();
    println!("sets:            {}", s.num_sets);
    println!("unique elements: {}", s.unique_elements);
    println!("max cardinality: {}", s.max_cardinality);
    println!("set sizes:       {}-{}", s.min_set_size, s.max_set_size);
    println!("resident bytes:  {}", collection.size_bytes());
    Ok(())
}

/// Loads `<base>.metrics.json`, renders it in the requested format (the
/// `prom` output is re-validated against the exposition grammar), and
/// summarizes `<base>.jsonl` when present.
fn stats_telemetry(base: &str, format: &str) -> Result<(), CliError> {
    let metrics_path = format!("{base}.metrics.json");
    let text =
        std::fs::read_to_string(&metrics_path).map_err(with_path("open", &metrics_path))?;
    let snap: RegistrySnapshot =
        serde_json::from_str(&text).map_err(with_path("parse", &metrics_path))?;
    if snap.is_empty() {
        return Err(format!("{metrics_path} contains no metrics").into());
    }
    match format {
        "table" => print!("{}", setlearn_obs::to_table(&snap)),
        "prom" => {
            let prom = setlearn_obs::to_prometheus(&snap);
            setlearn_obs::validate_prometheus(&prom)
                .map_err(|e| format!("internal error: invalid exposition: {e}"))?;
            print!("{prom}");
        }
        other => {
            return Err(ArgError(format!("unknown format '{other}' (table|prom)")).into())
        }
    }
    let trace_path = format!("{base}.jsonl");
    match std::fs::read_to_string(&trace_path) {
        Ok(text) => {
            let records = setlearn_obs::parse_jsonl(&text)
                .map_err(|e| format!("cannot parse {trace_path}: {e}"))?;
            let spans =
                records.iter().filter(|r| r.kind == setlearn_obs::RecordKind::Span).count();
            println!(
                "trace: {} records ({} spans, {} events) in {trace_path}",
                records.len(),
                spans,
                records.len() - spans
            );
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(format!("cannot read {trace_path}: {e}").into()),
    }
    Ok(())
}

/// Parses `--shards N [--shard-by hash|range]` into an optional partition
/// spec. `None` means the classic unsharded path.
fn shard_spec_from_args(args: &Args) -> Result<Option<ShardSpec>, CliError> {
    let by: ShardBy = match args.optional("shard-by") {
        None => ShardBy::Hash,
        Some(raw) => raw.parse().map_err(ArgError)?,
    };
    match args.optional("shards") {
        None => {
            if args.optional("shard-by").is_some() {
                return Err(ArgError("--shard-by requires --shards".into()).into());
            }
            Ok(None)
        }
        Some(raw) => {
            let shards: usize = raw
                .parse()
                .map_err(|_| ArgError(format!("invalid value '{raw}' for --shards")))?;
            if shards == 0 {
                return Err(ArgError("--shards must be at least 1".into()).into());
            }
            Ok(Some(ShardSpec::new(shards, by)))
        }
    }
}

/// A persisted sharded model must be queried with the exact spec it was
/// trained with — the partition is recomputed from the spec at serve time,
/// so a different shard count *or* router would silently pair each shard's
/// model with the wrong sub-collection.
fn check_shard_spec(trained: ShardSpec, spec: ShardSpec) -> Result<(), CliError> {
    if trained.shards != spec.shards {
        return Err(ArgError(format!(
            "model was trained with {} shards but --shards {} was given",
            trained.shards, spec.shards
        ))
        .into());
    }
    if trained.by != spec.by {
        return Err(ArgError(format!(
            "model was trained with --shard-by {} but --shard-by {} was given",
            trained.by, spec.by
        ))
        .into());
    }
    Ok(())
}

fn guided_from_args(args: &Args) -> Result<GuidedConfig, CliError> {
    Ok(GuidedConfig {
        warmup_epochs: args.get_or("epochs", 15usize)?,
        rounds: 1,
        epochs_per_round: args.get_or("refine-epochs", 10usize)?,
        percentile: args.get_or("percentile", 0.9f64)?,
        batch_size: args.get_or("batch", 128usize)?,
        learning_rate: args.get_or("lr", 3e-3f32)?,
        seed: args.get_or("seed", 7u64)?,
    })
}

/// Prints the harness training summary and warns (without failing the
/// command) when training ended in a degraded state.
fn report_training(train: &setlearn::TrainReport) {
    println!("training: {train}");
    if !train.is_healthy() {
        eprintln!("warning: training degraded ({}); consider lowering --lr", train.stop_reason);
    }
}

/// Per-shard variant of [`report_training`].
fn report_sharded_training<'a, I: IntoIterator<Item = &'a setlearn::TrainReport>>(reports: I) {
    for (s, train) in reports.into_iter().enumerate() {
        println!("shard {s} training: {train}");
        if !train.is_healthy() {
            eprintln!(
                "warning: shard {s} training degraded ({}); consider lowering --lr",
                train.stop_reason
            );
        }
    }
}

fn model_from_args(args: &Args, vocab: u32) -> Result<DeepSetsConfig, CliError> {
    let mut model = if args.has_flag("compressed") {
        DeepSetsConfig::clsm(vocab)
    } else {
        DeepSetsConfig::lsm(vocab)
    };
    let neurons = args.get_or("neurons", 32usize)?;
    model.phi_hidden = vec![neurons];
    model.rho_hidden = vec![neurons];
    model.embedding_dim = args.get_or("embedding", 8usize)?;
    Ok(model)
}

/// Parses `--precision f32|f16|q8`; `None` keeps whatever the checkpoint
/// records (fresh training defaults to f32).
fn precision_from_args(args: &Args) -> Result<Option<Precision>, CliError> {
    match args.optional("precision") {
        None => Ok(None),
        Some(raw) => Ok(Some(raw.parse::<Precision>().map_err(ArgError)?)),
    }
}

/// Enforces the checkpoint's recorded precision against `--precision`: a
/// mismatch fails typed (retrain with the wanted precision) instead of
/// silently serving at a different accuracy than requested.
fn check_precision(args: &Args, recorded: Precision) -> Result<(), CliError> {
    setlearn::kernel::resolve_precision(precision_from_args(args)?, recorded)
        .map(|_| ())
        .map_err(|e| CliError::from(e.to_string()))
}

/// `setlearn train --task cardinality|index|bloom --collection FILE --out FILE
///  [--compressed] [--epochs N] [--percentile P] [--neurons N] [--embedding D]
///  [--shards N] [--shard-by hash|range] [--telemetry PATH]`
///
/// With `--shards N` the collection is partitioned by the chosen router and
/// one model is trained per shard; the persisted artifact is the sharded
/// aggregate (query/serve must be invoked with the same `--shards`/
/// `--shard-by` so the partition can be recomputed from the spec).
pub fn train(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&[
        "task", "collection", "root", "out", "compressed", "epochs", "refine-epochs",
        "percentile", "neurons", "embedding", "max-subset", "lr", "batch", "seed", "range",
        "last", "samples", "shards", "shard-by", "telemetry", "wal-dir", "precision",
    ])?;
    let sink = telemetry::begin(args)?;
    let task = args.required("task")?.to_string();
    // Recorded in the checkpoint; query/serve refuse a conflicting flag.
    let precision = precision_from_args(args)?.unwrap_or_default();
    let spec = shard_spec_from_args(args)?;
    let tenant = tenant_paths(args)?;
    // Unified addressing: the collection file, output model, and WAL all
    // live under ROOT/NAME; pending WAL records fold in automatically.
    // Lazy because a WAL checkpoint can stand in for the collection file.
    let collection_path = match &tenant {
        Some(t) => Some(t.collection()),
        None => {
            if args.optional("collection").is_some() {
                note_legacy_addressing("path-valued --collection");
            }
            args.optional("collection").map(str::to_string)
        }
    };
    let require_collection = || {
        collection_path
            .as_deref()
            .ok_or_else(|| ArgError("missing required option --collection".into()))
    };
    let wal_dir_arg = match (&tenant, args.optional("wal-dir")) {
        (None, Some(dir)) => {
            note_legacy_addressing("--wal-dir");
            Some(PathBuf::from(dir))
        }
        (Some(t), None) => t.wal_dir().exists().then(|| t.wal_dir()),
        (Some(_), Some(_)) => {
            return Err(ArgError("--wal-dir cannot be combined with --root".into()).into())
        }
        (None, None) => None,
    };
    // With a WAL, pending records are folded into the training collection
    // first; after a successful train the merged collection is checkpointed
    // next to the WAL and the log is marked applied.
    let mut wal_fold: Option<(Wal, u64, PathBuf)> = None;
    let collection = match wal_dir_arg {
        None => load_collection(require_collection()?)?,
        Some(dir) => {
            if spec.is_some() {
                return Err(ArgError("--wal-dir cannot be combined with --shards".into()).into());
            }
            let dir = dir.as_path();
            let checkpoint = dir.join("checkpoint.json");
            let base = if checkpoint.exists() {
                load::<SetCollection>(&checkpoint.to_string_lossy())?
            } else {
                load_collection(require_collection()?)?
            };
            let recovery = Wal::open(dir)?;
            if recovery.truncated {
                eprintln!("warning: damaged WAL tail was truncated during recovery");
            }
            let (merged, skipped) = setlearn::mutable::replay_into(&base, &recovery.records);
            println!(
                "folded {} WAL records into the training collection ({} invalid records skipped)",
                recovery.records.len() - skipped,
                skipped,
            );
            let watermark = recovery.wal.next_seq();
            wal_fold = Some((recovery.wal, watermark, checkpoint));
            merged
        }
    };
    // With --root the model lands in the collection directory by default;
    // --out still overrides for odd layouts.
    let out = match (&tenant, args.optional("out")) {
        (_, Some(out)) => out.to_string(),
        (Some(t), None) => {
            std::fs::create_dir_all(&t.dir)
                .map_err(|e| format!("cannot create {}: {e}", t.dir.display()))?;
            t.model()
        }
        (None, None) => args.required("out")?.to_string(),
    };
    let out = out.as_str();
    let vocab = collection.num_elements();
    let model = model_from_args(args, vocab)?;
    match task.as_str() {
        "cardinality" => {
            let cfg = CardinalityConfig {
                model,
                guided: guided_from_args(args)?,
                max_subset_size: args.get_or("max-subset", 3usize)?,
            };
            match spec {
                None => {
                    let (mut est, report) = LearnedCardinality::build(&collection, &cfg);
                    est.set_precision(precision);
                    save(&est, out)?;
                    report_training(&report.train);
                    println!(
                        "trained cardinality estimator on {} subsets ({} outliers); saved to {out} ({:.3} MB)",
                        report.training_subsets,
                        report.outliers,
                        est.size_bytes() as f64 / 1e6
                    );
                }
                Some(spec) => {
                    let sharded = ShardedCollection::partition(&collection, spec)?;
                    let (mut est, reports) = ShardedCardinality::build(&sharded, &cfg)?;
                    est.set_precision(precision);
                    save(&est, out)?;
                    report_sharded_training(reports.iter().map(|r| &r.train));
                    println!(
                        "trained sharded cardinality estimator ({} shards, {} subsets, {} outliers); saved to {out} ({:.3} MB)",
                        est.num_shards(),
                        reports.iter().map(|r| r.training_subsets).sum::<usize>(),
                        reports.iter().map(|r| r.outliers).sum::<usize>(),
                        est.size_bytes() as f64 / 1e6
                    );
                }
            }
        }
        "index" => {
            let cfg = IndexConfig {
                model,
                guided: guided_from_args(args)?,
                max_subset_size: args.get_or("max-subset", 2usize)?,
                range_length: args.get_or("range", 100.0f64)?,
                target: if args.has_flag("last") {
                    setlearn::tasks::PositionTarget::Last
                } else {
                    setlearn::tasks::PositionTarget::First
                },
            };
            match spec {
                None => {
                    let (mut index, report) = LearnedSetIndex::build(&collection, &cfg);
                    index.set_precision(precision);
                    save(&index, out)?;
                    report_training(&report.train);
                    println!(
                        "trained set index on {} subsets ({} outliers, global error {:.0}); saved to {out} ({:.3} MB)",
                        report.training_subsets,
                        report.outliers,
                        report.global_error,
                        index.size_bytes() as f64 / 1e6
                    );
                }
                Some(spec) => {
                    let sharded = ShardedCollection::partition(&collection, spec)?;
                    let (mut index, reports) = ShardedIndex::build(&sharded, &cfg)?;
                    index.set_precision(precision);
                    save(&index, out)?;
                    report_sharded_training(reports.iter().map(|r| &r.train));
                    println!(
                        "trained sharded set index ({} shards, {} subsets, worst shard error {:.0}); saved to {out} ({:.3} MB)",
                        index.num_shards(),
                        reports.iter().map(|r| r.training_subsets).sum::<usize>(),
                        reports.iter().map(|r| r.global_error).fold(0.0f64, f64::max),
                        index.size_bytes() as f64 / 1e6
                    );
                }
            }
        }
        "bloom" => {
            let mut cfg = BloomConfig::new(model);
            cfg.epochs = args.get_or("epochs", 30usize)?;
            cfg.learning_rate = args.get_or("lr", 5e-3f32)?;
            let n = args.get_or("samples", 2_000usize)?;
            let max_query = args.get_or("max-subset", 4usize)?;
            match spec {
                None => {
                    let (mut filter, report) =
                        LearnedBloom::build_from_collection(&collection, n, n, max_query, &cfg);
                    filter.set_precision(precision);
                    save(&filter, out)?;
                    report_training(&report.train);
                    println!(
                        "trained bloom filter (accuracy {:.4}, {} backed-up false negatives); saved to {out} ({:.1} KB)",
                        report.training_accuracy,
                        report.false_negatives,
                        filter.size_bytes() as f64 / 1e3
                    );
                }
                Some(spec) => {
                    let sharded = ShardedCollection::partition(&collection, spec)?;
                    let (mut filter, reports) =
                        ShardedBloom::build_from_collection(&sharded, n, n, max_query, &cfg)?;
                    filter.set_precision(precision);
                    save(&filter, out)?;
                    report_sharded_training(reports.iter().map(|r| &r.train));
                    println!(
                        "trained sharded bloom filter ({} shards, worst shard accuracy {:.4}, {} backed-up false negatives); saved to {out} ({:.1} KB)",
                        filter.num_shards(),
                        reports.iter().map(|r| r.training_accuracy).fold(1.0f64, f64::min),
                        reports.iter().map(|r| r.false_negatives).sum::<usize>(),
                        filter.size_bytes() as f64 / 1e3
                    );
                }
            }
        }
        other => {
            return Err(
                ArgError(format!("unknown task '{other}' (cardinality|index|bloom)")).into()
            )
        }
    }
    if let Some(t) = &tenant {
        // The manifest is what lets a registry serve this directory without
        // being told the task: record it (and the shard layout) alongside.
        let manifest = setlearn::persist::CollectionManifest {
            task: task.clone(),
            shards: spec.map(|s| s.shards),
            shard_by: spec.map(|s| {
                match s.by {
                    ShardBy::Hash => "hash",
                    ShardBy::Range => "range",
                }
                .to_string()
            }),
        };
        setlearn::persist::save_manifest(&t.dir, &manifest)?;
        println!("manifest written to {}", t.manifest().display());
    }
    if let Some((mut wal, watermark, checkpoint)) = wal_fold {
        // Checkpoint before advancing the watermark: a crash in between
        // replays the (already folded) tail again, it never loses it.
        setlearn::persist::save_json(&collection, &checkpoint)?;
        wal.mark_applied(watermark)?;
        println!(
            "checkpoint written to {}; WAL applied through seq {watermark}",
            checkpoint.display()
        );
    }
    if let Some(sink) = sink {
        sink.finish()?;
    }
    Ok(())
}

/// Renders an outcome's degradation flags (guard fallback, bound miss) as a
/// bracketed suffix, or nothing when the answer is clean.
fn degradation_notes(fallback: &Option<FallbackReason>, bound_miss: bool) -> String {
    let mut notes = Vec::new();
    if let Some(reason) = fallback {
        notes.push(format!("guard fallback: {reason:?}"));
    }
    if bound_miss {
        notes.push("bound miss".to_string());
    }
    if notes.is_empty() {
        String::new()
    } else {
        format!(" [{}]", notes.join(", "))
    }
}

/// The ad-hoc mode of `query`: `--query 1,2,3` answers one query through
/// the same [`LearnedSetStructure`] API as workload replay and prints the
/// typed outcome with its degradation flags. This is the one-shot
/// counterpart of `client --query` for models not (yet) behind a server.
fn query_adhoc(
    args: &Args,
    task: &str,
    model_path: &str,
    collection_path: Option<&str>,
) -> Result<(), CliError> {
    let q = QueryRequest::new(args.id_list("query")?).canonicalize();
    let spec = shard_spec_from_args(args)?;
    match task {
        "cardinality" => {
            let outcome = match spec {
                None => {
                    let est: LearnedCardinality = load(model_path)?;
                    check_precision(args, est.precision())?;
                    est.query(&q)
                }
                Some(spec) => {
                    let est: ShardedCardinality = load(model_path)?;
                    check_shard_spec(est.spec(), spec)?;
                    check_precision(args, est.precision())?;
                    est.query(&q)
                }
            };
            println!(
                "cardinality: {:.1}{}",
                outcome.value,
                degradation_notes(&outcome.fallback, outcome.bound_miss)
            );
        }
        "index" => {
            let collection_path = collection_path
                .ok_or_else(|| ArgError("missing required option --collection".into()))?;
            let collection = Arc::new(load_collection(collection_path)?);
            let outcome = match spec {
                None => {
                    let index: LearnedSetIndex = load(model_path)?;
                    check_precision(args, index.precision())?;
                    IndexStructure { index, collection: Arc::clone(&collection) }.query(&q)
                }
                Some(spec) => {
                    let index: ShardedIndex = load(model_path)?;
                    check_shard_spec(index.spec(), spec)?;
                    check_precision(args, index.precision())?;
                    let sharded = ShardedCollection::partition(&collection, spec)?;
                    ShardedIndexStructure::new(index, &sharded).query(&q)
                }
            };
            let notes = degradation_notes(&outcome.fallback, outcome.bound_miss);
            match outcome.value {
                Some(pos) => println!("position: {pos}{notes}"),
                None => println!("not found{notes}"),
            }
        }
        "bloom" => {
            let outcome = match spec {
                None => {
                    let filter: LearnedBloom = load(model_path)?;
                    check_precision(args, filter.precision())?;
                    filter.query(&q)
                }
                Some(spec) => {
                    let filter: ShardedBloom = load(model_path)?;
                    check_shard_spec(filter.spec(), spec)?;
                    check_precision(args, filter.precision())?;
                    filter.query(&q)
                }
            };
            println!(
                "{}{}",
                if outcome.value { "present" } else { "absent" },
                degradation_notes(&outcome.fallback, outcome.bound_miss)
            );
        }
        other => {
            return Err(
                ArgError(format!("unknown task '{other}' (cardinality|index|bloom)")).into()
            )
        }
    }
    Ok(())
}

/// Replays the workload through any [`LearnedSetStructure`]: per query (the
/// instrumented serve path) at `--threads 1`, or through the structure's
/// parallel batched path — which answers bit-for-bit identically — above.
fn run_structure<S: LearnedSetStructure>(
    structure: &S,
    queries: &[ElementSet],
    threads: usize,
) -> Vec<QueryOutcome<S::Output>> {
    if threads > 1 {
        structure.query_batch_parallel(queries, threads)
    } else {
        queries.iter().map(|q| structure.query(q)).collect()
    }
}

/// `setlearn query --task cardinality|index|bloom --model FILE --collection FILE
///  [--query 1,2,3] [--limit N] [--max-subset K] [--threads N] [--shards N]
///  [--shard-by hash|range] [--telemetry PATH]`
///
/// With `--query IDS` a single ad-hoc query is answered instead of a
/// replayed workload (see [`query_adhoc`]); `--collection` is then only
/// needed for the index task.
///
/// Replays a workload of subset queries enumerated from the collection
/// against a trained model through the unified [`LearnedSetStructure`] query
/// API, with a [`DriftMonitor`] watching accuracy and fallbacks. This is the
/// serving-side counterpart of `train`: run it with `--telemetry` to capture
/// serve-latency histograms, query/fallback counters, and `serve_query`
/// spans in the run artifact.
///
/// `--threads N` routes the whole workload (any task) through
/// [`LearnedSetStructure::query_batch_parallel`], which produces answers
/// identical to the sequential path. `--shards N` loads the sharded model
/// trained with the same spec and fans each query out across shards.
pub fn query(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&[
        "task", "model", "collection", "root", "query", "limit", "max-subset", "threads",
        "shards", "shard-by", "telemetry", "precision",
    ])?;
    let sink = telemetry::begin(args)?;
    let task = args.required("task")?.to_string();
    let tenant = tenant_paths(args)?;
    let model_path = match &tenant {
        Some(t) => t.model(),
        None => {
            if args.optional("model").is_some() {
                note_legacy_addressing("--model");
            }
            args.required("model")?.to_string()
        }
    };
    let model_path = model_path.as_str();
    if args.optional("query").is_some() {
        let collection_path = match &tenant {
            Some(t) => Some(t.collection()),
            None => args.optional("collection").map(str::to_string),
        };
        query_adhoc(args, &task, model_path, collection_path.as_deref())?;
        if let Some(sink) = sink {
            sink.finish()?;
        }
        return Ok(());
    }
    let collection_path = match &tenant {
        Some(t) => t.collection(),
        None => args.required("collection")?.to_string(),
    };
    let collection = Arc::new(load_collection(&collection_path)?);
    let limit = args.get_or("limit", 500usize)?;
    let max_subset = args.get_or("max-subset", 2usize)?;
    let threads = args.get_or("threads", 1usize)?;
    if threads == 0 {
        return Err(ArgError("--threads must be at least 1".into()).into());
    }
    let spec = shard_spec_from_args(args)?;
    let subsets = SubsetIndex::build(&collection, max_subset);
    let (queries, counts): (Vec<ElementSet>, Vec<u64>) =
        subsets.iter().take(limit).map(|(s, i)| (s.clone(), i.count)).unzip();
    let mut monitor = DriftMonitor::try_new(1.0, MonitorConfig::default())?;

    match task.as_str() {
        "cardinality" => {
            let outcomes = match spec {
                None => {
                    let est: LearnedCardinality = load(model_path)?;
                    check_precision(args, est.precision())?;
                    run_structure(&est, &queries, threads)
                }
                Some(spec) => {
                    let est: ShardedCardinality = load(model_path)?;
                    check_shard_spec(est.spec(), spec)?;
                    check_precision(args, est.precision())?;
                    run_structure(&est, &queries, threads)
                }
            };
            let mut fallbacks = 0usize;
            for (o, count) in outcomes.iter().zip(&counts) {
                if o.fallback.is_some() {
                    monitor.record_fallback();
                    fallbacks += 1;
                }
                monitor.observe(o.value, *count as f64);
            }
            println!(
                "served {} cardinality queries: rolling q-error {:.3}, {fallbacks} guard fallbacks",
                outcomes.len(),
                monitor.rolling_q_error(),
            );
        }
        "index" => {
            let outcomes = match spec {
                None => {
                    let index: LearnedSetIndex = load(model_path)?;
                    check_precision(args, index.precision())?;
                    let structure =
                        IndexStructure { index, collection: Arc::clone(&collection) };
                    run_structure(&structure, &queries, threads)
                }
                Some(spec) => {
                    let index: ShardedIndex = load(model_path)?;
                    check_shard_spec(index.spec(), spec)?;
                    check_precision(args, index.precision())?;
                    let sharded = ShardedCollection::partition(&collection, spec)?;
                    let structure = ShardedIndexStructure::new(index, &sharded);
                    run_structure(&structure, &queries, threads)
                }
            };
            let found = outcomes.iter().filter(|o| o.value.is_some()).count();
            let mut fallbacks = 0usize;
            for o in &outcomes {
                if o.fallback.is_some() {
                    monitor.record_fallback();
                    fallbacks += 1;
                }
            }
            println!(
                "served {} index lookups: {found} found, {} bound misses, {fallbacks} guard fallbacks",
                outcomes.len(),
                outcomes.iter().filter(|o| o.bound_miss).count(),
            );
        }
        "bloom" => {
            let outcomes = match spec {
                None => {
                    let filter: LearnedBloom = load(model_path)?;
                    check_precision(args, filter.precision())?;
                    run_structure(&filter, &queries, threads)
                }
                Some(spec) => {
                    let filter: ShardedBloom = load(model_path)?;
                    check_shard_spec(filter.spec(), spec)?;
                    check_precision(args, filter.precision())?;
                    run_structure(&filter, &queries, threads)
                }
            };
            let present = outcomes.iter().filter(|o| o.value).count();
            let mut fallbacks = 0usize;
            for o in &outcomes {
                if o.fallback.is_some() {
                    monitor.record_fallback();
                    fallbacks += 1;
                }
            }
            println!(
                "served {} membership queries: {present} present \
                 (recall {:.3} — trained subsets must all be present), {fallbacks} guard fallbacks",
                outcomes.len(),
                present as f64 / outcomes.len().max(1) as f64,
            );
        }
        other => {
            return Err(
                ArgError(format!("unknown task '{other}' (cardinality|index|bloom)")).into()
            )
        }
    }
    monitor.publish_metrics();
    if let Some(reason) = monitor.should_retrain() {
        eprintln!("warning: drift monitor raised the retrain signal ({reason:?})");
    }
    if let Some(sink) = sink {
        sink.finish()?;
    }
    Ok(())
}

/// Feeds a request workload through a [`ServeRuntime`], optionally paced at
/// a target rate (open loop: requests shed at admission are *not* retried,
/// that is the backpressure contract), and returns the final accounting plus
/// the measured completion rate.
fn drive<T: ServeTask>(
    task: T,
    requests: Vec<T::Request>,
    cfg: ServeConfig,
    target_qps: f64,
) -> Result<(ServeReport, f64), CliError> {
    let runtime = ServeRuntime::start(task, cfg);
    let start = std::time::Instant::now();
    let gap = (target_qps > 0.0)
        .then(|| std::time::Duration::from_secs_f64(1.0 / target_qps));
    let mut tickets = Vec::with_capacity(requests.len());
    for (i, request) in requests.into_iter().enumerate() {
        if let Some(gap) = gap {
            let due = start + gap.mul_f64(i as f64);
            if let Some(wait) = due.checked_duration_since(std::time::Instant::now()) {
                std::thread::sleep(wait);
            }
        }
        match runtime.submit(request) {
            Ok(ticket) => tickets.push(ticket),
            Err(ServeError::Overloaded) => {} // shed: counted by the runtime
            Err(e) => return Err(format!("serve runtime failed: {e}").into()),
        }
    }
    for ticket in tickets {
        ticket.wait().map_err(|e| format!("request lost: {e}"))?;
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let report = runtime.shutdown();
    let qps = report.completed as f64 / elapsed;
    Ok((report, qps))
}

/// The sharded counterpart of [`drive`]: per-shard worker pools, every
/// request fanned out to all shards and aggregated. Returns the per-shard
/// accounting, the number of fully answered fan-out requests, and the
/// fan-out completion rate.
fn drive_sharded<T: ServeTask>(
    tasks: Vec<T>,
    aggregate: impl Fn(Vec<T::Response>) -> T::Response + Send + Sync + 'static,
    requests: Vec<T::Request>,
    cfg: ServeConfig,
    target_qps: f64,
) -> Result<(ShardedReport, u64, f64), CliError>
where
    T::Request: Clone,
{
    let runtime = ShardedRuntime::start(tasks, cfg, aggregate);
    let start = std::time::Instant::now();
    let gap = (target_qps > 0.0)
        .then(|| std::time::Duration::from_secs_f64(1.0 / target_qps));
    let mut tickets = Vec::with_capacity(requests.len());
    for (i, request) in requests.into_iter().enumerate() {
        if let Some(gap) = gap {
            let due = start + gap.mul_f64(i as f64);
            if let Some(wait) = due.checked_duration_since(std::time::Instant::now()) {
                std::thread::sleep(wait);
            }
        }
        match runtime.submit(request) {
            Ok(ticket) => tickets.push(ticket),
            // Any shard shedding fails the fan-out; already-admitted
            // sub-requests still complete and are counted per shard.
            Err(ServeError::Overloaded) => {}
            Err(e) => return Err(format!("sharded serve runtime failed: {e}").into()),
        }
    }
    let answered = tickets.len() as u64;
    for ticket in tickets {
        ticket.wait().map_err(|e| format!("request lost: {e}"))?;
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let report = runtime.shutdown();
    let qps = answered as f64 / elapsed;
    Ok((report, answered, qps))
}

/// Binds the `SLP1` TCP front-end on `addr`, prints (and optionally writes
/// to `addr_file`) the bound address — so scripts can recover the ephemeral
/// port behind `--listen 127.0.0.1:0` — then serves until the window
/// elapses or a remote shutdown frame arrives. Drain order is the contract
/// from [`NetServer::shutdown`]: the listener closes first and every
/// accepted frame is answered, then the backend runtime is drained.
fn listen_and_drain<B, R>(
    backend: Arc<B>,
    args: &Args,
    drain: impl FnOnce(B) -> R,
) -> Result<R, CliError>
where
    B: WireBackend + 'static,
{
    let addr = args.required("listen")?;
    let net = net_config_from_args(args)?;
    let server = NetServer::bind(addr, Arc::clone(&backend) as Arc<dyn WireBackend>, net)
        .map_err(with_path("listen on", addr))?;
    serve_until_drained(server, args)?;
    // The front-end joined all its threads, so this is the last reference.
    let backend = Arc::try_unwrap(backend)
        .map_err(|_| "front-end handlers still hold the runtime after shutdown")?;
    Ok(drain(backend))
}

/// Builds the [`NetConfig`] shared by the single-tenant and registry
/// front-ends from the common `serve` flags.
fn net_config_from_args(args: &Args) -> Result<NetConfig, CliError> {
    // Absent = slow-query log off; an explicit 0 means threshold zero,
    // i.e. record every request (useful for smoke tests and short probes).
    let slow_query_threshold = match args.optional("slow-query-ms") {
        Some(_) => Some(std::time::Duration::from_millis(args.get_or("slow-query-ms", 0u64)?)),
        None => None,
    };
    Ok(NetConfig {
        allow_remote_shutdown: args.has_flag("allow-remote-shutdown"),
        slow_query_threshold,
        drain_grace: std::time::Duration::from_millis(args.get_or("drain-grace-ms", 0u64)?),
        ..NetConfig::default()
    })
}

/// Prints (and optionally writes to `--addr-file`) the bound address, then
/// blocks until `--serve-for-s` elapses or a remote shutdown arrives, and
/// drains the front-end.
fn serve_until_drained(server: NetServer, args: &Args) -> Result<(), CliError> {
    println!("listening on {}", server.local_addr());
    if let Some(path) = args.optional("addr-file") {
        std::fs::write(path, server.local_addr().to_string())
            .map_err(with_path("write", path))?;
    }
    let serve_for_s = args.get_or("serve-for-s", 0.0f64)?;
    let deadline = (serve_for_s > 0.0)
        .then(|| std::time::Instant::now() + std::time::Duration::from_secs_f64(serve_for_s));
    loop {
        if server.is_shutting_down() {
            println!("remote shutdown requested; draining");
            break;
        }
        if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
            println!("serve window elapsed; draining");
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    server.shutdown();
    Ok(())
}

/// `setlearn serve --root DIR --listen HOST:PORT` (no `--task`): the
/// multi-tenant front-end. Every collection directory under DIR is
/// servable; checkpoints load lazily on the first frame that addresses
/// them (SLP1 v2 length-prefixed collection ids; v1 frames and empty ids
/// route to `--default-collection`), `--max-resident-bytes` LRU-evicts
/// idle residents, and `--quota-qps`/`--quota-burst` arm a per-tenant
/// token bucket that sheds with `TenantOverloaded`.
fn serve_listen_registry(args: &Args, cfg: ServeConfig) -> Result<(), CliError> {
    for solo_flag in ["model", "collection", "wal-dir", "shards"] {
        if args.optional(solo_flag).is_some() {
            return Err(ArgError(format!(
                "registry mode (--root without --task) serves every collection under \
                 --root; --{solo_flag} only applies to solo serving (add --task)"
            ))
            .into());
        }
    }
    let root = args.required("root")?;
    let addr = args.required("listen")?;
    let mut rcfg = RegistryConfig::new(root);
    rcfg.serve = cfg;
    rcfg.default_collection = args.optional("default-collection").map(str::to_string);
    if args.optional("max-resident-bytes").is_some() {
        rcfg.max_resident_bytes = Some(args.get_or("max-resident-bytes", u64::MAX)?);
    }
    let quota_qps = args.get_or("quota-qps", 0.0f64)?;
    if quota_qps > 0.0 {
        rcfg.quota = Some(QuotaConfig {
            rate: quota_qps,
            burst: args.get_or("quota-burst", quota_qps.max(1.0))?,
        });
    }
    rcfg.compact_after = args.get_or("compact-after", 0usize)?;
    let registry = Arc::new(CollectionRegistry::new(rcfg));
    let known = registry.list();
    println!(
        "registry over {root}: {} collection{} discovered ({})",
        known.len(),
        if known.len() == 1 { "" } else { "s" },
        if known.is_empty() {
            "none yet — train with --root to add one".to_string()
        } else {
            known.iter().map(|c| c.name.as_str()).collect::<Vec<_>>().join(", ")
        },
    );
    let server = NetServer::bind_registry(addr, Arc::clone(&registry), net_config_from_args(args)?)
        .map_err(with_path("listen on", addr))?;
    serve_until_drained(server, args)?;
    // Dropping the last registry handle drains every resident runtime and
    // stops their compactors.
    let resident = registry.resident_count();
    drop(registry);
    println!("drained registry: {resident} collection(s) were resident");
    Ok(())
}

/// `setlearn serve --listen HOST:PORT …` — the TCP front-end over the same
/// runtimes the replay path uses. Remote clients reach the bounded queue,
/// adaptive micro-batching, and typed shedding through the `SLP1` protocol;
/// the serve loop runs until `--serve-for-s` elapses or (with
/// `--allow-remote-shutdown`) a client requests a drain.
fn serve_listen(
    args: &Args,
    task: &str,
    model_path: &str,
    cfg: ServeConfig,
    spec: Option<ShardSpec>,
    collection_path: Option<&str>,
) -> Result<(), CliError> {
    match task {
        "cardinality" => match spec {
            None => {
                let est: LearnedCardinality = load(model_path)?;
                check_precision(args, est.precision())?;
                let report = listen_and_drain(
                    Arc::new(ServeRuntime::start(CardinalityTask::new(est), cfg)),
                    args,
                    |rt| rt.shutdown(),
                )?;
                print_drained(&report);
            }
            Some(spec) => {
                let est: ShardedCardinality = load(model_path)?;
                check_shard_spec(est.spec(), spec)?;
                check_precision(args, est.precision())?;
                let tasks: Vec<CardinalityTask> =
                    est.into_shards().into_iter().map(CardinalityTask::new).collect();
                let report = listen_and_drain(
                    Arc::new(ShardedRuntime::start(tasks, cfg, aggregate_cardinality)),
                    args,
                    |rt| rt.shutdown(),
                )?;
                print_drained_sharded(&report);
            }
        },
        "index" => {
            let collection_path = collection_path
                .ok_or_else(|| ArgError("missing required option --collection".into()))?;
            let collection = Arc::new(load_collection(collection_path)?);
            match spec {
                None => {
                    let index: LearnedSetIndex = load(model_path)?;
                    check_precision(args, index.precision())?;
                    let structure = IndexStructure { index, collection };
                    let report = listen_and_drain(
                        Arc::new(ServeRuntime::start(IndexTask::new(structure), cfg)),
                        args,
                        |rt| rt.shutdown(),
                    )?;
                    print_drained(&report);
                }
                Some(spec) => {
                    let index: ShardedIndex = load(model_path)?;
                    check_shard_spec(index.spec(), spec)?;
                    check_precision(args, index.precision())?;
                    let sharded = ShardedCollection::partition(&collection, spec)?;
                    let structure = ShardedIndexStructure::new(index, &sharded);
                    let target = structure.target();
                    let tasks: Vec<StructureTask<ShardIndexStructure>> = structure
                        .shard_structures()
                        .iter()
                        .cloned()
                        .map(StructureTask::new)
                        .collect();
                    let report = listen_and_drain(
                        Arc::new(ShardedRuntime::start(tasks, cfg, move |parts| {
                            aggregate_index(target, parts)
                        })),
                        args,
                        |rt| rt.shutdown(),
                    )?;
                    print_drained_sharded(&report);
                }
            }
        }
        "bloom" => match spec {
            None => {
                let filter: LearnedBloom = load(model_path)?;
                check_precision(args, filter.precision())?;
                let report = listen_and_drain(
                    Arc::new(ServeRuntime::start(BloomTask::new(filter), cfg)),
                    args,
                    |rt| rt.shutdown(),
                )?;
                print_drained(&report);
            }
            Some(spec) => {
                let filter: ShardedBloom = load(model_path)?;
                check_shard_spec(filter.spec(), spec)?;
                check_precision(args, filter.precision())?;
                let tasks: Vec<BloomTask> =
                    filter.into_shards().into_iter().map(BloomTask::new).collect();
                let report = listen_and_drain(
                    Arc::new(ShardedRuntime::start(tasks, cfg, aggregate_bloom)),
                    args,
                    |rt| rt.shutdown(),
                )?;
                print_drained_sharded(&report);
            }
        },
        other => {
            return Err(
                ArgError(format!("unknown task '{other}' (cardinality|index|bloom)")).into()
            )
        }
    }
    Ok(())
}

fn print_drained(report: &ServeReport) {
    println!(
        "drained: {} requests completed in {} batches, {} shed at admission, {} panicked batches",
        report.completed, report.batches, report.shed, report.panicked_batches
    );
}

fn print_drained_sharded(report: &ShardedReport) {
    println!(
        "drained: {} sub-requests completed across {} shards, {} shed at admission, {} panicked batches",
        report.completed(),
        report.per_shard.len(),
        report.shed(),
        report.panicked_batches()
    );
}

/// Durably checkpoints a compaction (retrained model + merged collection)
/// next to the WAL *before* the watermark advances. Returning `None` leaves
/// the delta pending so the compactor retries on the next poll.
fn persist_compaction<M: serde::Serialize>(
    wal_dir: &Path,
    model: &M,
    merged: &SetCollection,
) -> Option<()> {
    for (name, result) in [
        ("model", setlearn::persist::save_json(model, &wal_dir.join("model.json"))),
        ("collection", setlearn::persist::save_json(merged, &wal_dir.join("checkpoint.json"))),
    ] {
        if let Err(e) = result {
            eprintln!("warning: compaction checkpoint failed ({name}): {e}");
            return None;
        }
    }
    Some(())
}

/// Builds the [`MutableCollection`] around `structure`, reports WAL
/// recovery, starts the runtime (plus the compaction daemon when
/// `--compact-after` is set), and runs the SLP1 front-end with ingest
/// frames routed into the collection.
fn run_mutable_front<S>(
    args: &Args,
    structure: S,
    base: Arc<SetCollection>,
    wal_dir: &Path,
    cfg: ServeConfig,
    rebuild: impl FnMut(&SetCollection) -> Option<S> + Send + 'static,
) -> Result<(), CliError>
where
    S: DeltaMergeable + Send + Sync + 'static,
    S::Output: Send + 'static,
    QueryResponse: From<QueryOutcome<S::Output>>,
{
    let (collection, report) = MutableCollection::open(structure, base, wal_dir)?;
    println!(
        "WAL recovery: {} records replayed ({} skipped), applied through seq {}, next seq {}{}",
        report.replayed,
        report.skipped,
        report.applied_seq,
        report.next_seq,
        if report.truncated { " — damaged tail truncated" } else { "" },
    );
    let collection = Arc::new(collection);
    let runtime =
        Arc::new(ServeRuntime::start(StructureTask::new(Arc::clone(&collection)), cfg));
    let compactor = match args.get_or("compact-after", 0usize)? {
        0 => None,
        ops => Some(spawn_compactor(
            Arc::clone(&collection),
            Arc::clone(runtime.model()),
            rebuild,
            CompactorConfig { max_delta_ops: ops, ..CompactorConfig::default() },
        )),
    };
    let backend = Arc::new(MutableBackend::new(
        Arc::clone(&runtime) as Arc<dyn WireBackend>,
        collection as Arc<dyn MutableSink>,
    ));
    listen_and_drain(backend, args, drop)?;
    if let Some(compactor) = compactor {
        println!("compactions completed: {}", compactor.compactions());
        compactor.stop();
    }
    let runtime = Arc::try_unwrap(runtime)
        .map_err(|_| "front-end handlers still hold the runtime after shutdown")?;
    print_drained(&runtime.shutdown());
    Ok(())
}

/// `setlearn serve --wal-dir DIR --listen …` — the mutable front-end: the
/// loaded model becomes the frozen base of a [`MutableCollection`] whose
/// WAL lives in DIR, `client --insert/--delete` frames are fsync'd into it
/// before they are acknowledged, and queries merge the model's answer with
/// the exact delta overlay. On startup the base is DIR/checkpoint.json and
/// the model DIR/model.json when a compaction left them (falling back to
/// `--collection`/`--model`), and surviving WAL records are replayed — an
/// acknowledged write is never lost across a crash. `--compact-after N`
/// starts a background compactor that retrains (with the `train` knobs
/// given here) once N ops are pending, checkpoints, and hot-swaps.
fn serve_listen_mutable(
    args: &Args,
    task: &str,
    model_path: &str,
    cfg: ServeConfig,
    wal_dir: &Path,
    collection_path: Option<&str>,
) -> Result<(), CliError> {
    let checkpoint = wal_dir.join("checkpoint.json");
    let base = Arc::new(if checkpoint.exists() {
        load::<SetCollection>(&checkpoint.to_string_lossy())?
    } else {
        let collection_path = collection_path
            .ok_or_else(|| ArgError("missing required option --collection".into()))?;
        load_collection(collection_path)?
    });
    let compacted_model = wal_dir.join("model.json");
    let model_file = if compacted_model.exists() {
        compacted_model.to_string_lossy().into_owned()
    } else {
        model_path.to_string()
    };
    let vocab = base.num_elements();
    let wal_dir2 = wal_dir.to_path_buf();
    match task {
        "cardinality" => {
            let est: LearnedCardinality = load(&model_file)?;
            check_precision(args, est.precision())?;
            let precision = est.precision();
            let train_cfg = CardinalityConfig {
                model: model_from_args(args, vocab)?,
                guided: guided_from_args(args)?,
                max_subset_size: args.get_or("max-subset", 3usize)?,
            };
            run_mutable_front(args, est, base, wal_dir, cfg, move |merged| {
                let (mut est, _) = LearnedCardinality::build(merged, &train_cfg);
                est.set_precision(precision);
                persist_compaction(&wal_dir2, &est, merged)?;
                Some(est)
            })
        }
        "index" => {
            let index: LearnedSetIndex = load(&model_file)?;
            check_precision(args, index.precision())?;
            let precision = index.precision();
            let structure = IndexStructure { index, collection: Arc::clone(&base) };
            let train_cfg = IndexConfig {
                model: model_from_args(args, vocab)?,
                guided: guided_from_args(args)?,
                max_subset_size: args.get_or("max-subset", 2usize)?,
                range_length: args.get_or("range", 100.0f64)?,
                target: if args.has_flag("last") {
                    setlearn::tasks::PositionTarget::Last
                } else {
                    setlearn::tasks::PositionTarget::First
                },
            };
            run_mutable_front(args, structure, base, wal_dir, cfg, move |merged| {
                let (mut index, _) = LearnedSetIndex::build(merged, &train_cfg);
                index.set_precision(precision);
                persist_compaction(&wal_dir2, &index, merged)?;
                Some(IndexStructure { index, collection: Arc::new(merged.clone()) })
            })
        }
        "bloom" => {
            let filter: LearnedBloom = load(&model_file)?;
            check_precision(args, filter.precision())?;
            let precision = filter.precision();
            let mut bcfg = BloomConfig::new(model_from_args(args, vocab)?);
            bcfg.epochs = args.get_or("epochs", 30usize)?;
            bcfg.learning_rate = args.get_or("lr", 5e-3f32)?;
            let n = args.get_or("samples", 2_000usize)?;
            let max_query = args.get_or("max-subset", 4usize)?;
            run_mutable_front(args, filter, base, wal_dir, cfg, move |merged| {
                let (mut filter, _) =
                    LearnedBloom::build_from_collection(merged, n, n, max_query, &bcfg);
                filter.set_precision(precision);
                persist_compaction(&wal_dir2, &filter, merged)?;
                Some(filter)
            })
        }
        other => {
            Err(ArgError(format!("unknown task '{other}' (cardinality|index|bloom)")).into())
        }
    }
}

/// `setlearn serve --task cardinality|index|bloom --root DIR --collection NAME
///  [--requests N] [--threads N] [--max-batch N] [--max-delay-us U] [--queue N]
///  [--target-qps Q] [--max-subset K] [--shards N] [--shard-by hash|range]
///  [--listen HOST:PORT] [--serve-for-s S] [--addr-file PATH]
///  [--allow-remote-shutdown] [--telemetry PATH]`
///
/// Without `--task`, `--root DIR --listen HOST:PORT` starts the
/// multi-tenant registry front-end instead (see [`serve_listen_registry`]).
///
/// Loads a trained model, enumerates a subset-query workload from the
/// collection (cycled up to `--requests`), and replays it through the
/// concurrent [`ServeRuntime`]: a bounded admission queue, a worker pool
/// with adaptive micro-batching, and load shedding when the queue is full.
/// `--target-qps` paces submissions open-loop; 0 (the default) submits as
/// fast as possible. With `--telemetry`, queue-depth, batch-size, and
/// queue-wait metrics land in the run artifact.
///
/// With `--shards N` the model trained with the same spec is split into one
/// [`ServeRuntime`] per shard (each with its own queue, worker pool,
/// hot-swap slot, and `shard`-labeled telemetry); every request fans out to
/// all shards and the per-shard answers are aggregated.
pub fn serve(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&[
        "task", "model", "collection", "root", "requests", "threads", "max-batch",
        "max-delay-us", "queue", "target-qps", "max-subset", "shards", "shard-by",
        "telemetry", "listen", "serve-for-s", "addr-file", "allow-remote-shutdown",
        "wal-dir", "compact-after", "slow-query-ms", "drain-grace-ms", "precision",
        // Registry (multi-tenant) mode.
        "default-collection", "max-resident-bytes", "quota-qps", "quota-burst",
        // Retraining knobs, read by the `--compact-after` rebuild closure.
        "compressed", "epochs", "refine-epochs", "percentile", "neurons", "embedding", "lr",
        "batch", "seed", "samples", "range", "last",
    ])?;
    let sink = telemetry::begin(args)?;
    let cfg = ServeConfig {
        threads: args.get_or("threads", 2usize)?,
        max_batch: args.get_or("max-batch", 64usize)?,
        max_delay: std::time::Duration::from_micros(args.get_or("max-delay-us", 200u64)?),
        queue_capacity: args.get_or("queue", 1024usize)?,
    };
    cfg.validate().map_err(|e| CliError::from(ArgError(e)))?;

    // `--root DIR` without `--task` is the multi-tenant registry: no model
    // is loaded up front, collections become resident on first use.
    if args.optional("root").is_some() && args.optional("task").is_none() {
        if args.optional("listen").is_none() {
            return Err(ArgError(
                "registry mode requires --listen (multi-tenant serving is wire-only); \
                 pass --task for a single-collection replay"
                    .into(),
            )
            .into());
        }
        serve_listen_registry(args, cfg)?;
        if let Some(sink) = sink {
            sink.finish()?;
        }
        return Ok(());
    }

    let task = args.required("task")?.to_string();
    let tenant = tenant_paths(args)?;
    let model_path = match &tenant {
        Some(t) => t.model(),
        None => {
            if args.optional("model").is_some() {
                note_legacy_addressing("--model");
            }
            args.required("model")?.to_string()
        }
    };
    let model_path = model_path.as_str();
    // The collection file (needed by index serving, the replay workload,
    // and as the mutable base) resolves through the same tenant layout.
    let collection_path = match &tenant {
        Some(t) => Some(t.collection()),
        None => {
            if args.optional("collection").is_some() {
                note_legacy_addressing("path-valued --collection");
            }
            args.optional("collection").map(str::to_string)
        }
    };
    let collection_path = collection_path.as_deref();
    let target_qps = args.get_or("target-qps", 0.0f64)?;
    let total = args.get_or("requests", 2_000usize)?;
    let max_subset = args.get_or("max-subset", 2usize)?;
    let spec = shard_spec_from_args(args)?;

    // Tenant directories carry their WAL implicitly; `--wal-dir` stays as
    // the explicit legacy spelling.
    let wal_dir = match (&tenant, args.optional("wal-dir")) {
        (Some(_), Some(_)) => {
            return Err(ArgError("--wal-dir cannot be combined with --root".into()).into())
        }
        (Some(t), None) => t.wal_dir().exists().then(|| t.wal_dir()),
        (None, Some(dir)) => {
            note_legacy_addressing("--wal-dir");
            Some(PathBuf::from(dir))
        }
        (None, None) => None,
    };
    if let Some(wal_dir) = wal_dir {
        if spec.is_some() {
            return Err(ArgError("--wal-dir cannot be combined with --shards".into()).into());
        }
        if args.optional("listen").is_none() {
            return Err(ArgError(
                "--wal-dir requires --listen (mutable collections are served over the wire)"
                    .into(),
            )
            .into());
        }
        serve_listen_mutable(args, &task, model_path, cfg, &wal_dir, collection_path)?;
        if let Some(sink) = sink {
            sink.finish()?;
        }
        return Ok(());
    }

    if args.optional("listen").is_some() {
        serve_listen(args, &task, model_path, cfg, spec, collection_path)?;
        if let Some(sink) = sink {
            sink.finish()?;
        }
        return Ok(());
    }

    let collection_path = collection_path
        .ok_or_else(|| ArgError("missing required option --collection".into()))?;
    let collection = Arc::new(load_collection(collection_path)?);
    let pool: Vec<ElementSet> =
        SubsetIndex::build(&collection, max_subset).iter().map(|(s, _)| s.clone()).collect();
    if pool.is_empty() {
        return Err("collection yields no subset queries to serve".into());
    }
    let requests: Vec<ElementSet> = (0..total).map(|i| pool[i % pool.len()].clone()).collect();

    if let Some(spec) = spec {
        let (report, answered, qps) = match task.as_str() {
            "cardinality" => {
                let est: ShardedCardinality = load(model_path)?;
                check_shard_spec(est.spec(), spec)?;
                check_precision(args, est.precision())?;
                let tasks: Vec<CardinalityTask> =
                    est.into_shards().into_iter().map(CardinalityTask::new).collect();
                drive_sharded(tasks, aggregate_cardinality, requests, cfg, target_qps)?
            }
            "index" => {
                let index: ShardedIndex = load(model_path)?;
                check_shard_spec(index.spec(), spec)?;
                check_precision(args, index.precision())?;
                let sharded = ShardedCollection::partition(&collection, spec)?;
                let structure = ShardedIndexStructure::new(index, &sharded);
                let target = structure.target();
                let tasks: Vec<StructureTask<ShardIndexStructure>> = structure
                    .shard_structures()
                    .iter()
                    .cloned()
                    .map(StructureTask::new)
                    .collect();
                drive_sharded(
                    tasks,
                    move |parts| aggregate_index(target, parts),
                    requests,
                    cfg,
                    target_qps,
                )?
            }
            "bloom" => {
                let filter: ShardedBloom = load(model_path)?;
                check_shard_spec(filter.spec(), spec)?;
                check_precision(args, filter.precision())?;
                let tasks: Vec<BloomTask> =
                    filter.into_shards().into_iter().map(BloomTask::new).collect();
                drive_sharded(tasks, aggregate_bloom, requests, cfg, target_qps)?
            }
            other => {
                return Err(
                    ArgError(format!("unknown task '{other}' (cardinality|index|bloom)")).into()
                )
            }
        };
        println!(
            "served {answered} of {total} fan-out requests across {} shards at {qps:.0} QPS: \
             {} sub-requests completed, {} shed at admission, {} panicked batches",
            report.per_shard.len(),
            report.completed(),
            report.shed(),
            report.panicked_batches(),
        );
        for (s, r) in report.per_shard.iter().enumerate() {
            println!(
                "  shard {s}: {} completed in {} batches, {} shed, {} swaps",
                r.completed, r.batches, r.shed, r.swaps
            );
        }
        if let Some(sink) = sink {
            sink.finish()?;
        }
        return Ok(());
    }

    let (report, qps) = match task.as_str() {
        "cardinality" => {
            let estimator: LearnedCardinality = load(model_path)?;
            check_precision(args, estimator.precision())?;
            drive(CardinalityTask::new(estimator), requests, cfg, target_qps)?
        }
        "index" => {
            let index: LearnedSetIndex = load(model_path)?;
            check_precision(args, index.precision())?;
            let structure = IndexStructure { index, collection: Arc::clone(&collection) };
            drive(IndexTask::new(structure), requests, cfg, target_qps)?
        }
        "bloom" => {
            let filter: LearnedBloom = load(model_path)?;
            check_precision(args, filter.precision())?;
            drive(BloomTask::new(filter), requests, cfg, target_qps)?
        }
        other => {
            return Err(
                ArgError(format!("unknown task '{other}' (cardinality|index|bloom)")).into()
            )
        }
    };
    let mean_batch = report.completed as f64 / report.batches.max(1) as f64;
    println!(
        "served {} of {} requests at {qps:.0} QPS: {} batches (mean {mean_batch:.1} \
         requests/batch), {} shed at admission, {} panicked batches",
        report.completed,
        report.completed + report.shed,
        report.batches,
        report.shed,
        report.panicked_batches,
    );
    if let Some(sink) = sink {
        sink.finish()?;
    }
    Ok(())
}

/// Prints one wire outcome: the typed value with its degradation flags, or
/// the remote error code (shed, panic, worker lost — distinguishable
/// client-side).
fn print_wire_outcome(elements: &[u32], outcome: &WireOutcome) {
    let ids = elements.iter().map(u32::to_string).collect::<Vec<_>>().join(",");
    match outcome {
        Ok(response) => {
            let notes = degradation_notes(&response.fallback, response.bound_miss);
            match response.value {
                QueryValue::Cardinality(v) => println!("{{{ids}}} -> cardinality {v:.1}{notes}"),
                QueryValue::Position(Some(p)) => println!("{{{ids}}} -> position {p}{notes}"),
                QueryValue::Position(None) => println!("{{{ids}}} -> not found{notes}"),
                QueryValue::Membership(true) => println!("{{{ids}}} -> present{notes}"),
                QueryValue::Membership(false) => println!("{{{ids}}} -> absent{notes}"),
            }
        }
        Err(code) => println!("{{{ids}}} -> error {}: {code}", code.code()),
    }
}

/// Parses semicolon-separated id lists (`"1,2;3,4"`) into canonical
/// (sorted, deduplicated) sets, refusing empty sets.
fn id_set_lists(raw: &str, opt: &str) -> Result<Vec<Vec<u32>>, ArgError> {
    raw.split(';')
        .map(|part| {
            let ids = part
                .split(',')
                .map(|t| t.trim().parse::<u32>())
                .collect::<Result<Vec<u32>, _>>()
                .map_err(|_| ArgError(format!("invalid id list '{part}' in --{opt}")))?;
            let canonical = setlearn_data::normalize(ids);
            if canonical.is_empty() {
                return Err(ArgError(format!("empty set in --{opt}")));
            }
            Ok(canonical.into_vec())
        })
        .collect()
}

/// `setlearn ingest --root DIR --collection NAME [--insert "1,2;3,4"]
///  [--delete "5,6"]` (or the legacy `--wal-dir DIR`)
///
/// Offline durable ingest: appends insert/delete records straight to the
/// collection's WAL (creating it if needed) without loading a model. Every
/// record is fsync'd before the command returns. The records are folded in
/// by the next `train` over the same collection and replayed by mutable
/// serving. Sets are canonicalized here; ids outside the base vocabulary
/// are only detectable at replay time, where they are skipped and counted
/// instead of wedging recovery.
pub fn ingest(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&["root", "collection", "wal-dir", "insert", "delete"])?;
    let tenant = tenant_paths(args)?;
    let dir = match (&tenant, args.optional("wal-dir")) {
        (Some(_), Some(_)) => {
            return Err(ArgError("--wal-dir cannot be combined with --root".into()).into())
        }
        (Some(t), None) => t.wal_dir(),
        (None, Some(dir)) => {
            note_legacy_addressing("--wal-dir");
            PathBuf::from(dir)
        }
        (None, None) => {
            return Err(ArgError(
                "missing addressing: pass --root DIR --collection NAME (or --wal-dir DIR)"
                    .into(),
            )
            .into())
        }
    };
    let dir = dir.as_path();
    let mut ops: Vec<WalOp> = Vec::new();
    if let Some(raw) = args.optional("insert") {
        ops.extend(id_set_lists(raw, "insert")?.into_iter().map(WalOp::Insert));
    }
    if let Some(raw) = args.optional("delete") {
        ops.extend(id_set_lists(raw, "delete")?.into_iter().map(WalOp::Delete));
    }
    if ops.is_empty() {
        return Err(ArgError("nothing to do: pass --insert and/or --delete".into()).into());
    }
    let mut recovery = Wal::open(dir)?;
    if recovery.truncated {
        eprintln!("warning: damaged WAL tail was truncated during recovery");
    }
    let pending = recovery.records.len();
    let start = recovery.wal.next_seq();
    for op in &ops {
        recovery.wal.append(op)?;
    }
    println!(
        "appended {} records (seq {start}..{}) to {}; {pending} earlier records pending",
        ops.len(),
        recovery.wal.next_seq(),
        dir.display(),
    );
    Ok(())
}

/// `setlearn client --addr HOST:PORT [--task cardinality|index|bloom]
///  [--query 1,2,3] [--batch "1,2;3,4"] [--insert "1,2;3,4"]
///  [--delete "1,2"] [--ping] [--shutdown]`
///
/// Reference client for the `SLP1` wire protocol: connects to a
/// `serve --listen` front-end and, in order, pings, sends the ad-hoc
/// `--query` and/or the semicolon-separated `--batch`, and (with
/// `--shutdown`) asks the server to drain. Per-query failures come back as
/// typed error codes, not stringified I/O errors.
pub fn client(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&[
        "addr", "task", "collection", "query", "batch", "insert", "delete", "ping",
        "shutdown", "stats", "health", "slow-queries", "trace-id", "collections", "attach",
        "detach",
    ])?;
    let addr = args.required("addr")?;
    let mut client = NetClient::connect(addr).map_err(with_path("connect to", addr))?;
    // `--collection NAME` upgrades every frame to SLP1 v2 with that
    // collection id; without it the client speaks v1 and a multi-tenant
    // server routes to its default collection.
    if let Some(name) = args.optional("collection") {
        if !setlearn::wire::valid_collection_name(name) {
            return Err(ArgError(format!(
                "invalid collection name '{name}' (1..={} chars of [A-Za-z0-9_-])",
                setlearn::wire::MAX_COLLECTION_ID_LEN
            ))
            .into());
        }
        client.set_collection(Some(name.to_string()));
    }
    let mut acted = false;
    if args.has_flag("ping") {
        client.ping().map_err(|e| format!("ping failed: {e}"))?;
        println!("pong from {addr}");
        acted = true;
    }
    if args.has_flag("collections") {
        let rows = client.collections().map_err(|e| format!("collections failed: {e}"))?;
        println!("{} collection(s):", rows.len());
        for c in &rows {
            println!(
                "  {} task={} {} pending_ops={} disk_bytes={}",
                c.name,
                c.task.label(),
                if c.resident { "resident" } else { "cold" },
                c.pending_ops,
                c.disk_bytes,
            );
        }
        acted = true;
    }
    if let Some(name) = args.optional("attach") {
        client.attach_collection(name).map_err(|e| format!("attach failed: {e}"))?;
        println!("attached {name}");
        acted = true;
    }
    if let Some(name) = args.optional("detach") {
        client.detach_collection(name).map_err(|e| format!("detach failed: {e}"))?;
        println!("detached {name}");
        acted = true;
    }
    if args.has_flag("stats") || args.optional("stats").is_some() {
        let format = match args.optional("stats").unwrap_or("prom") {
            "prom" | "prometheus" => StatsFormat::Prometheus,
            "json" => StatsFormat::Json,
            other => {
                return Err(ArgError(format!("unknown stats format '{other}' (prom|json)")).into())
            }
        };
        let text = client.stats(format).map_err(|e| format!("stats failed: {e}"))?;
        println!("{text}");
        acted = true;
    }
    if args.has_flag("health") {
        // The extended (v2) probe also reports multi-tenant residency;
        // single-tenant servers answer it with empty tenant fields.
        let report = client.health_extended().map_err(|e| format!("health failed: {e}"))?;
        println!(
            "{}: draining={} queue={}/{} shards={} model_version={} wal_truncations={} \
             compactor_pending={}",
            if report.ready { "ready" } else { "not ready" },
            report.draining,
            report.queue_depth,
            report.queue_capacity,
            report.shards,
            report.model_version,
            report.wal_truncations,
            report.compactor_pending,
        );
        // Multi-tenant servers also report residency and per-collection
        // ingest lag (v1 single-tenant reports leave these empty).
        if report.resident_collections > 0 || !report.collection_pending.is_empty() {
            println!("resident collections: {}", report.resident_collections);
            for (name, pending) in &report.collection_pending {
                println!("  {name}: pending_ingest={pending}");
            }
        }
        for reason in &report.reasons {
            println!("  - {reason}");
        }
        // Probe semantics: a not-ready verdict is a nonzero exit, so the
        // command slots directly into load-balancer / orchestrator checks.
        if !report.ready {
            return Err(format!("server not ready: {}", report.reasons.join("; ")).into());
        }
        acted = true;
    }
    if args.has_flag("slow-queries") {
        let jsonl =
            client.stats(StatsFormat::SlowQueries).map_err(|e| format!("slow-queries failed: {e}"))?;
        print!("{jsonl}");
        acted = true;
    }
    // Ingest before queries, so `--insert … --query …` observes its own
    // writes (the server applies an ingest to the overlay before acking).
    if let Some(raw) = args.optional("insert") {
        for ids in id_set_lists(raw, "insert")? {
            let pretty = ids.iter().map(u32::to_string).collect::<Vec<_>>().join(",");
            let ack = client.insert(ids).map_err(|e| format!("insert failed: {e}"))?;
            println!(
                "{{{pretty}}} -> inserted at seq {}{}",
                ack.seq,
                if ack.applied { "" } else { " (not applied)" }
            );
        }
        acted = true;
    }
    if let Some(raw) = args.optional("delete") {
        for ids in id_set_lists(raw, "delete")? {
            let pretty = ids.iter().map(u32::to_string).collect::<Vec<_>>().join(",");
            let ack = client.delete(ids).map_err(|e| format!("delete failed: {e}"))?;
            println!(
                "{{{pretty}}} -> delete acknowledged at seq {}{}",
                ack.seq,
                if ack.applied { "" } else { " (no live occurrence)" }
            );
        }
        acted = true;
    }
    let mut batches: Vec<Vec<QueryRequest>> = Vec::new();
    if args.optional("query").is_some() {
        batches.push(vec![QueryRequest::new(args.id_list("query")?)]);
    }
    if let Some(raw) = args.optional("batch") {
        let batch = raw
            .split(';')
            .map(|part| {
                part.split(',')
                    .map(|t| t.trim().parse::<u32>())
                    .collect::<Result<Vec<u32>, _>>()
                    .map(QueryRequest::new)
                    .map_err(|_| ArgError(format!("invalid id list '{part}' in --batch")))
            })
            .collect::<Result<Vec<QueryRequest>, ArgError>>()?;
        batches.push(batch);
    }
    if !batches.is_empty() {
        let task: WireTask = args.required("task")?.parse().map_err(ArgError)?;
        // An explicit --trace-id rides the query frames, so the server's
        // slow-query records and spans carry the caller's id end to end.
        let trace_id = match args.optional("trace-id") {
            Some(raw) => Some(
                raw.parse::<u64>()
                    .map_err(|_| ArgError(format!("invalid --trace-id '{raw}'")))?,
            ),
            None => None,
        };
        for batch in batches {
            let outcomes = client
                .query_batch_traced(task, &batch, trace_id)
                .map_err(|e| format!("query failed: {e}"))?;
            for (request, outcome) in batch.iter().zip(&outcomes) {
                print_wire_outcome(&request.elements, outcome);
            }
        }
        acted = true;
    }
    if args.has_flag("shutdown") {
        client.shutdown_server().map_err(|e| format!("shutdown failed: {e}"))?;
        println!("server draining");
        acted = true;
    }
    if !acted {
        return Err(ArgError(
            "nothing to do: pass --ping, --query, --batch, --insert, --delete, --stats, \
             --health, --slow-queries, or --shutdown"
                .into(),
        )
        .into());
    }
    Ok(())
}

/// `setlearn watch --addr HOST:PORT [--interval-ms N] [--count N]
/// [--collection NAME]` — polls the server's metrics snapshot over the wire
/// and renders a per-interval delta (counter increments, histogram counts
/// per stage) so an operator can watch a live server's request mix without
/// a scrape stack. `--count 0` (the default) polls until interrupted; on a
/// multi-tenant server `--collection NAME` keeps only that tenant's series.
pub fn watch(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&["addr", "interval-ms", "count", "collection"])?;
    let addr = args.required("addr")?;
    let interval = std::time::Duration::from_millis(args.get_or("interval-ms", 1_000u64)?);
    let count = args.get_or("count", 0u64)?;
    // Tenant filter: keep series labeled with this collection. Unlabeled
    // (global) series are dropped so the view is purely that tenant's.
    let tenant_label = args
        .optional("collection")
        .map(|name| format!("collection=\"{name}\""));
    let keep = |rendered: &str| match &tenant_label {
        None => true,
        Some(label) => rendered.contains(label.as_str()),
    };
    let mut client = NetClient::connect(addr).map_err(with_path("connect to", addr))?;
    let mut baseline: Option<setlearn_obs::RegistrySnapshot> = None;
    let mut rounds = 0u64;
    loop {
        let text = client
            .stats(StatsFormat::Json)
            .map_err(|e| format!("stats poll failed: {e}"))?;
        let snap = setlearn_obs::from_json(&text)?;
        match &baseline {
            None => println!("watching {addr} (interval {}ms)", interval.as_millis()),
            Some(prev) => {
                let delta = snap.delta(prev);
                let mut lines = 0usize;
                for c in &delta.counters {
                    let rendered = c.key.render();
                    if c.value > 0 && keep(&rendered) {
                        println!("  {rendered} +{}", c.value);
                        lines += 1;
                    }
                }
                for h in &delta.histograms {
                    if h.value.count > 0 && keep(&h.key.render()) {
                        let mean = h.value.sum / h.value.count as f64;
                        // Latency families are recorded in seconds; render
                        // their means in µs. Anything else keeps raw units.
                        let pretty = if h.key.name.ends_with("_seconds") {
                            format!("{:.1}us", 1e6 * mean)
                        } else {
                            format!("{mean:.1}")
                        };
                        println!("  {} +{} (mean {pretty})", h.key.render(), h.value.count);
                        lines += 1;
                    }
                }
                if lines == 0 {
                    println!("  (idle)");
                }
            }
        }
        baseline = Some(snap);
        rounds += 1;
        if count > 0 && rounds > count {
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

/// `setlearn sql --root DIR --collection NAME --query "SELECT ..."
/// [--explain] [--telemetry PATH]` (legacy: `--collection FILE
/// [--model FILE] [--table NAME]`)
pub fn sql(args: &Args) -> Result<(), CliError> {
    args.reject_unknown(&[
        "root", "collection", "query", "model", "table", "explain", "telemetry",
    ])?;
    let sink = telemetry::begin(args)?;
    let tenant = tenant_paths(args)?;
    // With --root the tenant directory names everything: the collection
    // file, the trained estimator (when present), and — unless --table
    // overrides — the SQL table the query must target.
    let (collection_path, model_path, expected_table) = match &tenant {
        Some(t) => {
            if args.optional("model").is_some() {
                return Err(ArgError(
                    "--root/--collection NAME already name the model; drop --model".into(),
                )
                .into());
            }
            let model = Path::new(&t.model()).exists().then(|| t.model());
            let table =
                args.optional("table").map(str::to_string).or_else(|| Some(t.name.clone()));
            (t.collection(), model, table)
        }
        None => {
            if args.optional("collection").is_some() {
                note_legacy_addressing("path-valued --collection");
            }
            (
                args.required("collection")?.to_string(),
                args.optional("model").map(str::to_string),
                args.optional("table").map(str::to_string),
            )
        }
    };
    let collection = load_collection(&collection_path)?;
    let query = args.required("query")?;
    let engine = Engine::new();
    // The table name comes from the FROM clause; parse first to learn it.
    let mut parsed = setlearn_engine::parse_query(query)?;
    if args.has_flag("explain") {
        parsed.explain = true;
    }
    if let Some(expected) = &expected_table {
        if parsed.table != *expected {
            return Err(format!(
                "query targets table '{}' but the collection is '{expected}' \
                 (override with --table)",
                parsed.table
            )
            .into());
        }
    }
    // One collection file backs one column; every predicate must agree on
    // its name.
    let columns = parsed.filter.columns();
    let column = *columns.first().ok_or("query references no column")?;
    if let Some(other) = columns.iter().find(|c| **c != column) {
        return Err(format!(
            "query references columns '{column}' and '{other}' but --collection \
             provides only one"
        )
        .into());
    }
    engine.create_table(
        SetTable::from_collection(parsed.table.clone(), collection),
        column.to_string(),
    );
    engine.create_index(&parsed.table)?;
    if let Some(model_path) = &model_path {
        let est: LearnedCardinality = load(model_path)?;
        engine.register_estimator(&parsed.table, est)?;
    }
    let out = engine.run_query(&parsed)?;
    if let Some(text) = &out.explain {
        print!("{text}");
    }
    let result = out.result;
    println!(
        "count: {:.1} ({}, {:?}{})",
        result.count,
        if result.exact { "exact" } else { "estimate" },
        result.mode,
        if result.pinned { ", pinned" } else { ", planned" },
    );
    if let Some(sink) = sink {
        sink.finish()?;
    }
    Ok(())
}

/// `setlearn help`
pub fn help() {
    println!(
        "setlearn — learned data structures over collections of sets (EDBT 2024)

USAGE: setlearn <command> [--option value] [--flag]

COMMANDS:
  generate  --dataset rw|tweets|sd --sets N [--seed S] --out FILE
  import    --text FILE --out FILE [--dict FILE] [--comment PREFIX]
  export    --collection FILE --dict FILE --out FILE
  reorder   --collection FILE --out FILE [--strategy lex|head|random]
  stats     --collection FILE
            | --telemetry PATH [--format table|prom]   (dump a run artifact)
  train     --task cardinality|index|bloom --root DIR --collection NAME
            [--out FILE] [--compressed] [--epochs N] [--percentile P]
            [--neurons N] [--embedding D] [--max-subset K] [--lr F]
            [--batch N] [--shards N] [--shard-by hash|range]
            [--telemetry PATH]
  ingest    --root DIR --collection NAME [--insert \"1,2;3,4\"]
            [--delete \"5,6\"]
            (offline durable appends; folded in by the next `train`)
  query     --task cardinality|index|bloom --root DIR --collection NAME
            (--query 1,2,3 | [--limit N] [--max-subset K] [--threads N])
            [--shards N] [--shard-by hash|range] [--telemetry PATH]
  serve     --task cardinality|index|bloom --root DIR --collection NAME
            [--requests N] [--threads N] [--max-batch N] [--max-delay-us U]
            [--queue N] [--target-qps Q] [--max-subset K] [--shards N]
            [--shard-by hash|range] [--telemetry PATH]
            | --listen HOST:PORT [--serve-for-s S] [--addr-file PATH]
            [--allow-remote-shutdown]     (SLP1 TCP front-end; port 0 works)
            [--slow-query-ms N] [--drain-grace-ms N] [--compact-after N]
            | --root DIR --listen HOST:PORT   (multi-tenant registry: no
            --task; serves every collection under DIR, loading lazily)
            [--default-collection NAME] [--max-resident-bytes N]
            [--quota-qps Q [--quota-burst B]]
  client    --addr HOST:PORT [--collection NAME]
            [--task cardinality|index|bloom] [--query 1,2,3]
            [--batch \"1,2;3,4\"] [--insert \"1,2;3,4\"] [--delete \"1,2\"]
            [--trace-id N] [--ping] [--shutdown] [--stats [prom|json]]
            [--health] [--slow-queries] [--collections] [--attach NAME]
            [--detach NAME]
  watch     --addr HOST:PORT [--interval-ms N] [--count N]
            [--collection NAME]
            (poll a live server's metrics, print per-interval deltas)
  sql       --root DIR --collection NAME --query \"[EXPLAIN] SELECT
            COUNT(*) FROM t WHERE tags @> {{1,2}} [AND|OR|NOT ...]
            [USING mode]\" [--explain] [--telemetry PATH]
            (un-pinned queries are planned on cost; a trained estimator in
            the collection directory is registered with the planner)
  help

Addressing: `--root DIR --collection NAME` names one collection directory
DIR/NAME/ holding collection.json, model.json, manifest.json, and wal/ —
shared by train/query/serve/ingest/sql and the multi-tenant registry. The
old path-valued spellings (--collection FILE, --model FILE, --wal-dir DIR,
--table NAME) still work for one release and print a deprecation note.

Passing --telemetry PATH raises telemetry to Full (per-query/per-epoch
spans) and writes PATH.prom, PATH.metrics.json and PATH.jsonl; repeated
runs against the same PATH accumulate into one artifact.

Passing --shards N partitions the collection (hash by default, range with
--shard-by range), trains one model per shard, and serves every query by
fanning it out across per-shard worker pools; query and serve must be given
the same --shards/--shard-by used at training time.

Serving a collection whose directory has a wal/ (or passing the legacy
--wal-dir DIR) serves a *mutable* collection: client inserts/deletes are
fsync'd to a write-ahead log before they are acknowledged and answered from
an exact in-memory delta merged with the model, so a kill -9 loses no
acknowledged write (restart replays the WAL over the checkpoint).
`--compact-after N` retrains in the background once N ops are pending,
checkpoints atomically, and hot-swaps the model without dropping requests;
`train` over the same collection does the same fold offline.

`serve --root DIR --listen` (no --task) is the multi-tenant registry: one
process serves every collection under DIR over SLP1 v2 frames carrying a
collection id (plain v1 clients are routed to --default-collection
bit-for-bit). Collections load lazily on first use, --max-resident-bytes
LRU-evicts idle ones, and --quota-qps/--quota-burst arm a per-tenant token
bucket that sheds with TenantOverloaded. `client --collections/--attach/
--detach` administer it; all metrics carry a collection label.

The removed verbs estimate/lookup/member are spelled `query --task
cardinality|index|bloom --query IDS` since this release."
    );
}

/// Dispatches a parsed command line.
pub fn run(args: &Args) -> Result<(), CliError> {
    match args.command.as_str() {
        "generate" => generate(args),
        "import" => import(args),
        "export" => export(args),
        "reorder" => reorder_cmd(args),
        "stats" => stats(args),
        "train" => train(args),
        "query" => query(args),
        "serve" => serve(args),
        "ingest" => ingest(args),
        "client" => client(args),
        "watch" => watch(args),
        // The old estimate/lookup/member verbs are gone: point straight at
        // the unified replacement instead of a generic "unknown command".
        removed @ ("estimate" | "lookup" | "member") => {
            let task = match removed {
                "estimate" => "cardinality",
                "lookup" => "index",
                _ => "bloom",
            };
            Err(ArgError(format!(
                "`{removed}` was removed; use `setlearn query --task {task} --model FILE --query IDS`"
            ))
            .into())
        }
        "sql" => sql(args),
        "help" | "--help" | "-h" => {
            help();
            Ok(())
        }
        other => Err(ArgError(format!("unknown command '{other}'; try `setlearn help`")).into()),
    }
}


#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let mut p: std::path::PathBuf = std::env::temp_dir();
        p.push(format!("setlearn-cli-{name}-{}", std::process::id()));
        p.to_string_lossy().into_owned()
    }

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn generate_stats_train_estimate_pipeline() {
        let coll = tmp("pipe.json");
        let model = tmp("pipe-model.json");
        run(&args(&[
            "generate", "--dataset", "sd", "--sets", "200", "--seed", "3", "--out", &coll,
        ]))
        .unwrap();
        run(&args(&["stats", "--collection", &coll])).unwrap();
        run(&args(&[
            "train",
            "--task",
            "cardinality",
            "--collection",
            &coll,
            "--out",
            &model,
            "--compressed",
            "--epochs",
            "3",
            "--refine-epochs",
            "2",
            "--max-subset",
            "2",
        ]))
        .unwrap();
        run(&args(&[
            "query", "--task", "cardinality", "--model", &model, "--query", "1,2",
        ]))
        .unwrap();
        // The removed verb aliases point at the replacement.
        let err = run(&args(&["estimate", "--model", &model, "--query", "1,2"])).unwrap_err();
        assert!(err.to_string().contains("query --task cardinality"), "got: {err}");
        let _ = std::fs::remove_file(coll);
        let _ = std::fs::remove_file(model);
    }

    #[test]
    fn sql_command_runs_exact_plans() {
        let coll = tmp("sql.json");
        run(&args(&[
            "generate", "--dataset", "rw", "--sets", "300", "--seed", "1", "--out", &coll,
        ]))
        .unwrap();
        run(&args(&[
            "sql",
            "--collection",
            &coll,
            "--query",
            "SELECT COUNT(*) FROM logs WHERE tags @> {1} USING index",
        ]))
        .unwrap();
        // Boolean filters, --table validation, and --explain all run.
        run(&args(&[
            "sql",
            "--collection",
            &coll,
            "--table",
            "logs",
            "--explain",
            "--query",
            "SELECT COUNT(*) FROM logs WHERE tags @> {1} AND tags @> {2} OR NOT tags @> {3}",
        ]))
        .unwrap();
        // A --table mismatch is an error, as is a second column name (only
        // one collection file backs the table).
        let err = run(&args(&[
            "sql", "--collection", &coll, "--table", "other", "--query",
            "SELECT COUNT(*) FROM logs WHERE tags @> {1}",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--table"), "got: {err}");
        let err = run(&args(&[
            "sql", "--collection", &coll, "--query",
            "SELECT COUNT(*) FROM logs WHERE tags @> {1} AND mentions @> {2}",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("one"), "got: {err}");
        let _ = std::fs::remove_file(coll);
    }

    #[test]
    fn import_export_reorder_pipeline() {
        let text_in = tmp("tags.txt");
        let coll = tmp("imported.json");
        let dict = tmp("dict.json");
        let text_out = tmp("exported.txt");
        let sorted = tmp("sorted.json");
        std::fs::write(&text_in, "#a #b\n#b #c\n#a #b #c\n").unwrap();
        run(&args(&[
            "import", "--text", &text_in, "--out", &coll, "--dict", &dict,
        ]))
        .unwrap();
        run(&args(&["export", "--collection", &coll, "--dict", &dict, "--out", &text_out]))
            .unwrap();
        let exported = std::fs::read_to_string(&text_out).unwrap();
        assert_eq!(exported.lines().count(), 3);
        run(&args(&[
            "reorder", "--collection", &coll, "--out", &sorted, "--strategy", "lex",
        ]))
        .unwrap();
        for f in [&text_in, &coll, &dict, &text_out, &sorted] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn missing_files_error_with_path_context_instead_of_panicking() {
        let err = run(&args(&["stats", "--collection", "/nonexistent/nope.json"])).unwrap_err();
        assert!(err.to_string().contains("/nonexistent/nope.json"), "got: {err}");
        let err = run(&args(&[
            "query", "--task", "cardinality", "--model", "/nonexistent/m.json", "--query", "1",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("cannot open"), "got: {err}");
    }

    #[test]
    fn corrupt_model_file_errors_instead_of_panicking() {
        let path = tmp("garbage-model.json");
        std::fs::write(&path, b"{ not json ").unwrap();
        let err = run(&args(&[
            "query", "--task", "cardinality", "--model", &path, "--query", "1",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("cannot parse"), "got: {err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn unknown_flags_are_rejected_with_usage() {
        let err = run(&args(&["generate", "--dataset", "sd", "--sets", "10", "--outt", "x"]))
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("--outt"), "got: {msg}");
        assert!(msg.contains("usage: setlearn generate"), "got: {msg}");
        // A typo'd training knob fails instead of silently using defaults.
        let err = run(&args(&[
            "train", "--task", "bloom", "--collection", "c", "--out", "m", "--epoch", "3",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--epoch"), "got: {err}");
    }

    #[test]
    fn train_query_stats_telemetry_pipeline() {
        let coll = tmp("tele.json");
        let model = tmp("tele-model.json");
        let base = tmp("tele-run");
        run(&args(&[
            "generate", "--dataset", "sd", "--sets", "150", "--seed", "5", "--out", &coll,
        ]))
        .unwrap();
        run(&args(&[
            "train", "--task", "cardinality", "--collection", &coll, "--out", &model,
            "--epochs", "2", "--refine-epochs", "1", "--max-subset", "2",
            "--telemetry", &base,
        ]))
        .unwrap();
        run(&args(&[
            "query", "--task", "cardinality", "--model", &model, "--collection", &coll,
            "--limit", "40", "--max-subset", "2", "--telemetry", &base,
        ]))
        .unwrap();

        // The Prometheus export is parseable and holds the serve histogram,
        // a nonzero query counter, and the train/serve metric families.
        let prom = std::fs::read_to_string(format!("{base}.prom")).unwrap();
        setlearn_obs::validate_prometheus(&prom).expect("valid exposition");
        assert!(prom.contains("setlearn_serve_latency_seconds_bucket"), "prom:\n{prom}");
        assert!(prom.contains("setlearn_serve_queries_total{task=\"cardinality\"}"));
        assert!(prom.contains("setlearn_train_epochs_total"));
        assert!(prom.contains("setlearn_monitor_rolling_q_error"));

        // The trace holds both train-epoch and serve-query spans.
        let trace = std::fs::read_to_string(format!("{base}.jsonl")).unwrap();
        let records = setlearn_obs::parse_jsonl(&trace).expect("parseable trace");
        assert!(records.iter().any(|r| r.name == "train_epoch"), "no train_epoch span");
        assert!(records.iter().any(|r| r.name == "serve_query"), "no serve_query span");

        // The metrics snapshot round-trips and the query counter is nonzero.
        let snap: RegistrySnapshot = serde_json::from_str(
            &std::fs::read_to_string(format!("{base}.metrics.json")).unwrap(),
        )
        .unwrap();
        let queries = snap
            .counter_value("setlearn_serve_queries_total", &[("task", "cardinality")])
            .expect("query counter");
        assert!(queries >= 40, "served {queries}");

        // `stats --telemetry` renders both formats.
        run(&args(&["stats", "--telemetry", &base])).unwrap();
        run(&args(&["stats", "--telemetry", &base, "--format", "prom"])).unwrap();

        for f in [coll, model, format!("{base}.prom"), format!("{base}.metrics.json"),
                  format!("{base}.jsonl")] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn query_threads_serves_the_parallel_path_with_identical_answers() {
        let coll = tmp("par.json");
        let model = tmp("par-model.json");
        run(&args(&[
            "generate", "--dataset", "sd", "--sets", "150", "--seed", "9", "--out", &coll,
        ]))
        .unwrap();
        run(&args(&[
            "train", "--task", "cardinality", "--collection", &coll, "--out", &model,
            "--epochs", "3", "--refine-epochs", "2", "--max-subset", "2",
        ]))
        .unwrap();
        // The multi-threaded query path runs end to end…
        run(&args(&[
            "query", "--task", "cardinality", "--model", &model, "--collection", &coll,
            "--limit", "60", "--max-subset", "2", "--threads", "2",
        ]))
        .unwrap();
        // …and its answers are bit-for-bit the sequential ones.
        let est: LearnedCardinality = load(&model).unwrap();
        let collection = load_collection(&coll).unwrap();
        let qs: Vec<ElementSet> =
            SubsetIndex::build(&collection, 2).iter().map(|(s, _)| s.clone()).collect();
        assert_eq!(est.query_batch_parallel(&qs, 2), est.query_batch(&qs));
        // --threads now reaches every task through the unified structure
        // API: the bloom parallel path runs end to end too.
        let bloom = tmp("par-bloom.json");
        run(&args(&[
            "train", "--task", "bloom", "--collection", &coll, "--out", &bloom,
            "--epochs", "2", "--samples", "120", "--max-subset", "2",
        ]))
        .unwrap();
        run(&args(&[
            "query", "--task", "bloom", "--model", &bloom, "--collection", &coll,
            "--limit", "40", "--threads", "2",
        ]))
        .unwrap();
        let _ = std::fs::remove_file(coll);
        let _ = std::fs::remove_file(model);
        let _ = std::fs::remove_file(bloom);
    }

    #[test]
    fn sharded_train_query_serve_pipeline_labels_shards() {
        let coll = tmp("shard.json");
        let model = tmp("shard-model.json");
        let base = tmp("shard-run");
        run(&args(&[
            "generate", "--dataset", "sd", "--sets", "150", "--seed", "11", "--out", &coll,
        ]))
        .unwrap();
        run(&args(&[
            "train", "--task", "cardinality", "--collection", &coll, "--out", &model,
            "--epochs", "2", "--refine-epochs", "1", "--max-subset", "2",
            "--shards", "3", "--shard-by", "hash",
        ]))
        .unwrap();
        // The sharded model answers through the unified API, sequentially
        // and in parallel.
        run(&args(&[
            "query", "--task", "cardinality", "--model", &model, "--collection", &coll,
            "--limit", "40", "--max-subset", "2", "--shards", "3",
        ]))
        .unwrap();
        run(&args(&[
            "query", "--task", "cardinality", "--model", &model, "--collection", &coll,
            "--limit", "40", "--max-subset", "2", "--shards", "3", "--threads", "2",
        ]))
        .unwrap();
        // A mismatched spec is refused instead of answering nonsense —
        // wrong shard count and wrong router alike.
        let err = run(&args(&[
            "query", "--task", "cardinality", "--model", &model, "--collection", &coll,
            "--shards", "2",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("3 shards"), "got: {err}");
        let err = run(&args(&[
            "query", "--task", "cardinality", "--model", &model, "--collection", &coll,
            "--shards", "3", "--shard-by", "range",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--shard-by hash"), "got: {err}");
        // Fan-out serving works and every shard's telemetry is labeled.
        run(&args(&[
            "serve", "--task", "cardinality", "--model", &model, "--collection", &coll,
            "--requests", "200", "--threads", "3", "--shards", "3",
            "--telemetry", &base,
        ]))
        .unwrap();
        let prom = std::fs::read_to_string(format!("{base}.prom")).unwrap();
        setlearn_obs::validate_prometheus(&prom).expect("valid exposition");
        for shard in ["0", "1", "2"] {
            assert!(
                prom.contains(&format!("shard=\"{shard}\"")),
                "missing shard {shard} label in exposition:\n{prom}"
            );
        }
        for f in [coll, model, format!("{base}.prom"), format!("{base}.metrics.json"),
                  format!("{base}.jsonl")] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn serve_command_replays_workload_through_the_runtime() {
        let coll = tmp("serve.json");
        let model = tmp("serve-model.json");
        let base = tmp("serve-run");
        run(&args(&[
            "generate", "--dataset", "sd", "--sets", "150", "--seed", "4", "--out", &coll,
        ]))
        .unwrap();
        run(&args(&[
            "train", "--task", "cardinality", "--collection", &coll, "--out", &model,
            "--epochs", "2", "--refine-epochs", "1", "--max-subset", "2",
        ]))
        .unwrap();
        run(&args(&[
            "serve", "--task", "cardinality", "--model", &model, "--collection", &coll,
            "--requests", "300", "--threads", "2", "--max-batch", "32",
            "--telemetry", &base,
        ]))
        .unwrap();

        // The runtime's queue/batch metrics landed in the artifact.
        let prom = std::fs::read_to_string(format!("{base}.prom")).unwrap();
        setlearn_obs::validate_prometheus(&prom).expect("valid exposition");
        assert!(prom.contains("setlearn_serve_batches_total"), "prom:\n{prom}");
        assert!(prom.contains("setlearn_serve_batch_size_bucket"), "prom:\n{prom}");
        let snap: RegistrySnapshot = serde_json::from_str(
            &std::fs::read_to_string(format!("{base}.metrics.json")).unwrap(),
        )
        .unwrap();
        // `>=`: the registry is process-global, so parallel tests may add.
        let completed = snap
            .counter_value("setlearn_serve_completed_total", &[("task", "cardinality")])
            .expect("completed counter");
        assert!(completed >= 300, "every submitted request completed (saw {completed})");

        for f in [coll, model, format!("{base}.prom"), format!("{base}.metrics.json"),
                  format!("{base}.jsonl")] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn serve_listen_answers_the_cli_client() {
        let coll = tmp("net.json");
        let model = tmp("net-model.json");
        let addr_file = tmp("net-addr.txt");
        let _ = std::fs::remove_file(&addr_file);
        run(&args(&[
            "generate", "--dataset", "sd", "--sets", "150", "--seed", "8", "--out", &coll,
        ]))
        .unwrap();
        run(&args(&[
            "train", "--task", "cardinality", "--collection", &coll, "--out", &model,
            "--epochs", "2", "--refine-epochs", "1", "--max-subset", "2",
        ]))
        .unwrap();
        // The serve loop runs until the client requests a drain.
        let (model2, addr_file2) = (model.clone(), addr_file.clone());
        let server = std::thread::spawn(move || {
            run(&args(&[
                "serve", "--task", "cardinality", "--model", &model2,
                "--listen", "127.0.0.1:0", "--addr-file", &addr_file2,
                "--allow-remote-shutdown",
            ]))
            // `CliError` is not `Send`; carry the message across the join.
            .map_err(|e| e.to_string())
        });
        // The ephemeral port is published through --addr-file.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
        let addr = loop {
            match std::fs::read_to_string(&addr_file) {
                Ok(s) if !s.is_empty() => break s,
                _ if std::time::Instant::now() > deadline || server.is_finished() => {
                    panic!("server never published its address")
                }
                _ => std::thread::sleep(std::time::Duration::from_millis(20)),
            }
        };
        run(&args(&[
            "client", "--addr", &addr, "--task", "cardinality",
            "--ping", "--query", "1,2", "--batch", "1;2,3", "--shutdown",
        ]))
        .unwrap();
        server.join().unwrap().unwrap();
        for f in [&coll, &model, &addr_file] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn ingest_then_train_folds_the_wal_into_a_checkpoint() {
        let coll = tmp("wal-fold.json");
        let model = tmp("wal-fold-model.json");
        let wal_dir = tmp("wal-fold-dir");
        let _ = std::fs::remove_dir_all(&wal_dir);
        run(&args(&[
            "generate", "--dataset", "sd", "--sets", "120", "--seed", "6", "--out", &coll,
        ]))
        .unwrap();
        // Offline appends: two inserts, then a delete that consumes the
        // freshest matching insert — the net delta is one extra row.
        run(&args(&[
            "ingest", "--wal-dir", &wal_dir, "--insert", "1,2;2,3", "--delete", "1,2",
        ]))
        .unwrap();
        run(&args(&[
            "train", "--task", "cardinality", "--collection", &coll, "--out", &model,
            "--epochs", "2", "--refine-epochs", "1", "--max-subset", "2",
            "--wal-dir", &wal_dir,
        ]))
        .unwrap();
        let base = load_collection(&coll).unwrap();
        let merged: SetCollection =
            load(&format!("{wal_dir}/checkpoint.json")).unwrap();
        assert_eq!(merged.len(), base.len() + 1, "net delta folded into the checkpoint");
        // The fold consumed the log: nothing is pending on reopen, and a
        // second train starts from the checkpoint without --collection.
        let recovery = Wal::open(Path::new(&wal_dir)).unwrap();
        assert!(recovery.records.is_empty(), "WAL fully applied");
        drop(recovery);
        run(&args(&[
            "train", "--task", "cardinality", "--out", &model, "--epochs", "2",
            "--refine-epochs", "1", "--max-subset", "2", "--wal-dir", &wal_dir,
        ]))
        .unwrap();
        let _ = std::fs::remove_file(coll);
        let _ = std::fs::remove_file(model);
        let _ = std::fs::remove_dir_all(&wal_dir);
    }

    /// End-to-end mutable serving: acknowledged ingest survives a server
    /// restart (WAL replay), and the background compactor folds the delta
    /// into an atomic checkpoint while serving.
    #[test]
    fn serve_listen_wal_ingests_recovers_and_compacts() {
        let coll = tmp("wal-net.json");
        let model = tmp("wal-net-model.json");
        let wal_dir = tmp("wal-net-dir");
        let addr_file = tmp("wal-net-addr.txt");
        let _ = std::fs::remove_dir_all(&wal_dir);
        run(&args(&[
            "generate", "--dataset", "sd", "--sets", "120", "--seed", "7", "--out", &coll,
        ]))
        .unwrap();
        run(&args(&[
            "train", "--task", "cardinality", "--collection", &coll, "--out", &model,
            "--epochs", "2", "--refine-epochs", "1", "--max-subset", "2",
        ]))
        .unwrap();

        let serve_session = |extra: &[&str]| {
            let mut tokens = vec![
                "serve", "--task", "cardinality", "--model", &model, "--collection", &coll,
                "--listen", "127.0.0.1:0", "--addr-file", &addr_file,
                "--allow-remote-shutdown", "--wal-dir", &wal_dir,
            ];
            tokens.extend_from_slice(extra);
            let tokens: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
            let _ = std::fs::remove_file(&addr_file);
            std::thread::spawn(move || {
                run(&Args::parse(tokens).unwrap()).map_err(|e| e.to_string())
            })
        };
        let wait_addr = |server: &std::thread::JoinHandle<Result<(), String>>| {
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
            loop {
                match std::fs::read_to_string(&addr_file) {
                    Ok(s) if !s.is_empty() => break s,
                    _ if std::time::Instant::now() > deadline || server.is_finished() => {
                        panic!("server never published its address")
                    }
                    _ => std::thread::sleep(std::time::Duration::from_millis(20)),
                }
            }
        };

        // Session 1: ingest over the wire, query through the overlay, drain.
        let server = serve_session(&[]);
        let addr = wait_addr(&server);
        run(&args(&[
            "client", "--addr", &addr, "--task", "cardinality",
            "--insert", "1,2;2,3", "--query", "1,2", "--shutdown",
        ]))
        .unwrap();
        server.join().unwrap().unwrap();
        let recovery = Wal::open(Path::new(&wal_dir)).unwrap();
        assert_eq!(recovery.records.len(), 2, "acknowledged writes survive the restart");
        drop(recovery);

        // Session 2: recovery replays the pending delta; the compactor
        // (threshold already crossed) retrains and checkpoints.
        let server = serve_session(&[
            "--compact-after", "2", "--epochs", "2", "--refine-epochs", "1",
            "--max-subset", "2",
        ]);
        let addr = wait_addr(&server);
        let checkpoint = format!("{wal_dir}/checkpoint.json");
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        while !std::path::Path::new(&checkpoint).exists() {
            assert!(std::time::Instant::now() < deadline, "compaction never checkpointed");
            assert!(!server.is_finished(), "server died before compacting");
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        run(&args(&["client", "--addr", &addr, "--shutdown"])).unwrap();
        server.join().unwrap().unwrap();
        let base = load_collection(&coll).unwrap();
        let merged: SetCollection = load(&checkpoint).unwrap();
        assert_eq!(merged.len(), base.len() + 2, "compaction folded the delta");
        assert!(
            std::path::Path::new(&format!("{wal_dir}/model.json")).exists(),
            "compaction persisted the retrained model"
        );
        for f in [&coll, &model, &addr_file] {
            let _ = std::fs::remove_file(f);
        }
        let _ = std::fs::remove_dir_all(&wal_dir);
    }

    #[test]
    fn unknown_command_and_task_error() {
        assert!(run(&args(&["frobnicate"])).is_err());
        let coll = tmp("err.json");
        run(&args(&[
            "generate", "--dataset", "sd", "--sets", "100", "--seed", "2", "--out", &coll,
        ]))
        .unwrap();
        assert!(run(&args(&[
            "train", "--task", "nope", "--collection", &coll, "--out", "/dev/null"
        ]))
        .is_err());
        let _ = std::fs::remove_file(coll);
    }
}
