//! Minimal `--flag value` argument parsing (no external dependency).

use std::collections::HashMap;
use std::fmt;

/// Argument-parsing error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

/// Parsed command line: one subcommand plus `--key value` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses raw arguments (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, ArgError> {
        let mut iter = raw.into_iter().peekable();
        let command = iter
            .next()
            .ok_or_else(|| ArgError("missing subcommand; try `setlearn help`".into()))?;
        let mut options = HashMap::new();
        let mut flags = Vec::new();
        while let Some(tok) = iter.next() {
            let key = tok
                .strip_prefix("--")
                .ok_or_else(|| ArgError(format!("unexpected argument '{tok}'")))?
                .to_string();
            if key.is_empty() {
                return Err(ArgError("empty option name".into()));
            }
            match iter.next_if(|next| !next.starts_with("--")) {
                Some(value) => {
                    if options.insert(key.clone(), value).is_some() {
                        return Err(ArgError(format!("duplicate option --{key}")));
                    }
                }
                None => flags.push(key),
            }
        }
        Ok(Args { command, options, flags })
    }

    /// Required string option.
    pub fn required(&self, key: &str) -> Result<&str, ArgError> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| ArgError(format!("missing required option --{key}")))
    }

    /// Optional string option.
    pub fn optional(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Optional typed option with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("invalid value '{v}' for --{key}"))),
        }
    }

    /// Whether a bare `--flag` was given.
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Rejects any option or flag not in `allowed` with a usage message, so
    /// a typo like `--epoch 30` fails loudly instead of silently training
    /// with the default. Call once per subcommand with its full option list.
    pub fn reject_unknown(&self, allowed: &[&str]) -> Result<(), ArgError> {
        let mut unknown: Vec<&str> = self
            .options
            .keys()
            .map(String::as_str)
            .chain(self.flags.iter().map(String::as_str))
            .filter(|k| !allowed.contains(k))
            .collect();
        if unknown.is_empty() {
            return Ok(());
        }
        unknown.sort_unstable();
        let mut usage: Vec<&str> = allowed.to_vec();
        usage.sort_unstable();
        Err(ArgError(format!(
            "unknown option{} for '{}': {}\nusage: setlearn {} [--{}]",
            if unknown.len() == 1 { "" } else { "s" },
            self.command,
            unknown.iter().map(|k| format!("--{k}")).collect::<Vec<_>>().join(", "),
            self.command,
            usage.join("] [--"),
        )))
    }

    /// Parses a comma-separated id list (`--query 1,2,3`).
    pub fn id_list(&self, key: &str) -> Result<Vec<u32>, ArgError> {
        let raw = self.required(key)?;
        raw.split(',')
            .map(|t| {
                t.trim()
                    .parse::<u32>()
                    .map_err(|_| ArgError(format!("invalid id '{t}' in --{key}")))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, ArgError> {
        Args::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = parse(&["train", "--task", "cardinality", "--compressed", "--epochs", "30"])
            .unwrap();
        assert_eq!(a.command, "train");
        assert_eq!(a.required("task").unwrap(), "cardinality");
        assert!(a.has_flag("compressed"));
        assert_eq!(a.get_or("epochs", 10usize).unwrap(), 30);
        assert_eq!(a.get_or("batch", 64usize).unwrap(), 64);
    }

    #[test]
    fn id_list_parses_and_rejects() {
        let a = parse(&["q", "--query", "3, 1,2"]).unwrap();
        assert_eq!(a.id_list("query").unwrap(), vec![3, 1, 2]);
        let bad = parse(&["q", "--query", "1,x"]).unwrap();
        assert!(bad.id_list("query").is_err());
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["cmd", "loose"]).is_err());
        assert!(parse(&["cmd", "--a", "1", "--a", "2"]).is_err());
        let a = parse(&["cmd"]).unwrap();
        assert!(a.required("missing").is_err());
    }

    #[test]
    fn reject_unknown_names_the_offender_and_prints_usage() {
        let a = parse(&["train", "--task", "cardinality", "--epoch", "30"]).unwrap();
        let err = a.reject_unknown(&["task", "epochs", "out"]).unwrap_err();
        assert!(err.0.contains("--epoch"), "got: {}", err.0);
        assert!(err.0.contains("usage: setlearn train"), "got: {}", err.0);
        assert!(err.0.contains("--epochs"), "usage lists valid options: {}", err.0);

        // Unknown bare flags are rejected too.
        let a = parse(&["train", "--verbose"]).unwrap();
        assert!(a.reject_unknown(&["task"]).is_err());

        // A fully valid line passes.
        let a = parse(&["train", "--task", "bloom", "--compressed"]).unwrap();
        assert!(a.reject_unknown(&["task", "compressed"]).is_ok());
    }

    #[test]
    fn trailing_flag_is_a_flag() {
        let a = parse(&["cmd", "--verbose"]).unwrap();
        assert!(a.has_flag("verbose"));
        assert_eq!(a.optional("verbose"), None);
    }
}
