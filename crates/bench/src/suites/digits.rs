//! Digit-sum generalization suite (Figure 7): DeepSets and compressed
//! DeepSets against LSTM and GRU on text-digit summation.

use crate::timing::timed;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use setlearn::model::{CompressionKind, DeepSets, DeepSetsConfig, Pooling};
use setlearn_data::digits::{test_sets, training_sets, SumExample};
use setlearn_nn::{Activation, Dense, Embedding, Gru, Loss, Lstm, Matrix, Optimizer};

/// Which model family a run used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DigitModel {
    /// Plain DeepSets.
    DeepSets,
    /// Compressed DeepSets (`ns = 2`).
    CDeepSets,
    /// LSTM over the digit sequence.
    Lstm,
    /// GRU over the digit sequence.
    Gru,
}

impl DigitModel {
    /// Figure 7's legend label.
    pub fn name(&self) -> &'static str {
        match self {
            DigitModel::DeepSets => "DeepSets",
            DigitModel::CDeepSets => "CDeepSets",
            DigitModel::Lstm => "LSTM",
            DigitModel::Gru => "GRU",
        }
    }

    /// All four models.
    pub const ALL: [DigitModel; 4] =
        [DigitModel::DeepSets, DigitModel::CDeepSets, DigitModel::Lstm, DigitModel::Gru];
}

/// One model's Figure 7 series.
#[derive(Debug, Clone)]
pub struct DigitRun {
    /// Model family.
    pub model: DigitModel,
    /// `(test set size M, MAE)` series.
    pub mae_by_size: Vec<(usize, f64)>,
    /// Model bytes.
    pub memory_bytes: usize,
    /// Training seconds.
    pub training_secs: f64,
}

/// Suite parameters.
#[derive(Debug, Clone)]
pub struct DigitSuiteConfig {
    /// Largest digit value (10 for Figure 7a, 100 for 7b).
    pub max_value: u32,
    /// Training examples.
    pub n_train: usize,
    /// Maximum training set size (the paper uses 10).
    pub max_train_size: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Test set sizes M to probe.
    pub test_sizes: Vec<usize>,
    /// Test examples per size.
    pub n_test: usize,
}

impl DigitSuiteConfig {
    /// Bench-scale defaults mirroring the paper's setup.
    pub fn new(max_value: u32) -> Self {
        DigitSuiteConfig {
            max_value,
            n_train: 4_000,
            max_train_size: 10,
            epochs: 12,
            test_sizes: vec![5, 10, 20, 30, 50, 75, 100],
            n_test: 300,
        }
    }
}

/// Target scale: keeps sums in a sigmoid-free but numerically tame range.
fn target_scale(cfg: &DigitSuiteConfig) -> f32 {
    (cfg.max_train_size as f32) * (cfg.max_value as f32)
}

fn deepsets_config(cfg: &DigitSuiteConfig, compressed: bool) -> DeepSetsConfig {
    DeepSetsConfig {
        vocab: cfg.max_value + 1,
        embedding_dim: 16,
        phi_hidden: vec![32],
        rho_hidden: vec![],
        pooling: Pooling::Sum,
        hidden_activation: Activation::Tanh,
        // Identity head: sums grow linearly with set size, and a sigmoid
        // would cap extrapolation at the training range.
        output_activation: Activation::Identity,
        compression: if compressed {
            CompressionKind::Optimal { ns: 2 }
        } else {
            CompressionKind::None
        },
        seed: 3,
    }
}

fn eval_deepsets(model: &DeepSets, scale: f32, tests: &[SumExample]) -> f64 {
    let mut mae = 0.0;
    for ex in tests {
        let pred = model.predict_one(&ex.values) as f64 * scale as f64;
        mae += (pred - ex.label).abs();
    }
    mae / tests.len() as f64
}

fn run_deepsets(cfg: &DigitSuiteConfig, compressed: bool, train: &[SumExample]) -> DigitRun {
    let scale = target_scale(cfg);
    let data: Vec<(Vec<u32>, f32)> =
        train.iter().map(|ex| (ex.values.clone(), ex.label as f32 / scale)).collect();
    let mut model = DeepSets::new(deepsets_config(cfg, compressed));
    model.zero_grad();
    let mut opt = Optimizer::adam(3e-3);
    let mut rng = StdRng::seed_from_u64(5);
    let (_, training_secs) = timed(|| {
        for _ in 0..cfg.epochs {
            model.train_epoch(&data, Loss::Mae, &mut opt, 64, &mut rng);
        }
    });
    let mae_by_size = cfg
        .test_sizes
        .iter()
        .map(|&m| {
            let tests = test_sets(cfg.n_test, m, cfg.max_value, 900 + m as u64);
            (m, eval_deepsets(&model, scale, &tests))
        })
        .collect();
    DigitRun {
        model: if compressed { DigitModel::CDeepSets } else { DigitModel::DeepSets },
        mae_by_size,
        memory_bytes: model.size_bytes(),
        training_secs,
    }
}

/// A recurrent regressor: embedding → LSTM/GRU → linear head.
enum Cell {
    Lstm(Lstm),
    Gru(Gru),
}

struct RnnRegressor {
    emb: Embedding,
    cell: Cell,
    head: Dense,
}

impl RnnRegressor {
    fn new(kind: DigitModel, vocab: u32, emb_dim: usize, hidden: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let emb = Embedding::new(&mut rng, vocab as usize, emb_dim);
        let cell = match kind {
            DigitModel::Lstm => Cell::Lstm(Lstm::new(&mut rng, emb_dim, hidden)),
            DigitModel::Gru => Cell::Gru(Gru::new(&mut rng, emb_dim, hidden)),
            _ => unreachable!("recurrent kinds only"),
        };
        let head = Dense::new(&mut rng, hidden, 1, Activation::Identity);
        RnnRegressor { emb, cell, head }
    }

    fn zero_grad(&mut self) {
        self.emb.zero_grad();
        match &mut self.cell {
            Cell::Lstm(c) => c.zero_grad(),
            Cell::Gru(c) => c.zero_grad(),
        }
        self.head.zero_grad();
    }

    fn forward(&mut self, values: &[u32]) -> f32 {
        let e = self.emb.forward(values);
        let h = match &mut self.cell {
            Cell::Lstm(c) => c.forward(&e),
            Cell::Gru(c) => c.forward(&e),
        };
        self.head.forward(&h).data()[0]
    }

    fn predict(&self, values: &[u32]) -> f32 {
        let e = self.emb.predict(values);
        let h = match &self.cell {
            Cell::Lstm(c) => c.predict(&e),
            Cell::Gru(c) => c.predict(&e),
        };
        self.head.predict(&h).data()[0]
    }

    fn backward(&mut self, grad: f32) {
        let gh = self.head.backward(&Matrix::from_vec(1, 1, vec![grad]));
        let gx = match &mut self.cell {
            Cell::Lstm(c) => c.backward(&gh),
            Cell::Gru(c) => c.backward(&gh),
        };
        self.emb.backward(&gx);
    }

    fn step(&mut self, opt: &mut Optimizer) {
        opt.begin_step();
        for p in self.emb.params_mut() {
            opt.step(p);
        }
        match &mut self.cell {
            Cell::Lstm(c) => {
                for p in c.params_mut() {
                    opt.step(p);
                }
            }
            Cell::Gru(c) => {
                for p in c.params_mut() {
                    opt.step(p);
                }
            }
        }
        for p in self.head.params_mut() {
            opt.step(p);
        }
    }

    fn num_params(&self) -> usize {
        self.emb.num_params()
            + match &self.cell {
                Cell::Lstm(c) => c.num_params(),
                Cell::Gru(c) => c.num_params(),
            }
            + self.head.num_params()
    }
}

fn run_rnn(cfg: &DigitSuiteConfig, kind: DigitModel, train: &[SumExample]) -> DigitRun {
    let scale = target_scale(cfg);
    let mut model = RnnRegressor::new(kind, cfg.max_value + 1, 16, 32, 9);
    model.zero_grad();
    let mut opt = Optimizer::adam(3e-3);
    let mut rng = StdRng::seed_from_u64(6);
    let mut order: Vec<usize> = (0..train.len()).collect();
    let (_, training_secs) = timed(|| {
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(16) {
                for &i in chunk {
                    let ex = &train[i];
                    let pred = model.forward(&ex.values);
                    let target = ex.label as f32 / scale;
                    // MAE gradient, averaged over the micro-batch.
                    let g = (pred - target).signum() / chunk.len() as f32;
                    model.backward(g);
                }
                model.step(&mut opt);
            }
        }
    });
    let mae_by_size = cfg
        .test_sizes
        .iter()
        .map(|&m| {
            let tests = test_sets(cfg.n_test, m, cfg.max_value, 900 + m as u64);
            let mae = tests
                .iter()
                .map(|ex| (model.predict(&ex.values) as f64 * scale as f64 - ex.label).abs())
                .sum::<f64>()
                / tests.len() as f64;
            (m, mae)
        })
        .collect();
    DigitRun {
        model: kind,
        mae_by_size,
        memory_bytes: model.num_params() * 4,
        training_secs,
    }
}

/// Runs all four models for one digit range.
pub fn run(cfg: &DigitSuiteConfig) -> Vec<DigitRun> {
    let train = training_sets(cfg.n_train, cfg.max_train_size, cfg.max_value, 42);
    vec![
        run_deepsets(cfg, false, &train),
        run_deepsets(cfg, true, &train),
        run_rnn(cfg, DigitModel::Lstm, &train),
        run_rnn(cfg, DigitModel::Gru, &train),
    ]
}
