//! System-integration suite (Table 12): the learned estimator as a UDF
//! inside the mini engine, against exact COUNTs with and without an index.

use crate::configs::{cardinality_config, Variant};
use crate::datasets::BenchDataset;
use crate::timing::{avg_latency_ms, timed};
use setlearn::tasks::LearnedCardinality;
use setlearn_data::{Dataset, ElementSet, SubsetIndex};
use setlearn_engine::{Engine, SetTable};

/// Table 12's three columns.
#[derive(Debug, Clone)]
pub struct EngineIntegrationResult {
    /// Dataset label.
    pub dataset: &'static str,
    /// Avg COUNT latency without an index (seq scan), ms.
    pub seqscan_ms: f64,
    /// Avg COUNT latency with the inverted index, ms.
    pub index_ms: f64,
    /// Avg latency of the CLSM estimator UDF, ms.
    pub clsm_ms: f64,
    /// Inverted-index bytes.
    pub index_bytes: usize,
    /// CLSM structure bytes.
    pub clsm_bytes: usize,
    /// Index build seconds.
    pub index_build_secs: f64,
    /// CLSM build (training) seconds.
    pub clsm_build_secs: f64,
    /// Mean q-error of the CLSM estimates on the workload.
    pub clsm_avg_q_error: f64,
    /// Number of queries.
    pub num_queries: usize,
}

/// Runs Table 12 on the RW-3M-shaped dataset (the paper's choice).
pub fn run(num_queries: usize) -> EngineIntegrationResult {
    let bench = BenchDataset::load(Dataset::Rw3000k);
    let collection = bench.collection.clone();
    let vocab = collection.num_elements();

    // Workload: subsets of stored sets with their true counts.
    let subsets = SubsetIndex::build(&collection, 3);
    let eval = crate::suites::cardinality::eval_sample(&subsets, num_queries);
    let queries: Vec<ElementSet> = eval.iter().map(|(s, _)| s.clone()).collect();

    let engine = Engine::new();
    engine.create_table(SetTable::from_collection("rw", collection.clone()), "tags");

    let mk_sql = |q: &[u32], mode: &str| {
        format!(
            "SELECT COUNT(*) FROM rw WHERE tags @> {{{}}} USING {mode}",
            q.iter().map(u32::to_string).collect::<Vec<_>>().join(",")
        )
    };

    let seqscan_ms = avg_latency_ms(&queries, |q| {
        std::hint::black_box(engine.execute_sql(&mk_sql(q, "seqscan")).unwrap());
    });

    let (_, index_build_secs) = timed(|| engine.create_index("rw").unwrap());
    let index_ms = avg_latency_ms(&queries, |q| {
        std::hint::black_box(engine.execute_sql(&mk_sql(q, "index")).unwrap());
    });
    let index_bytes = engine.index_size_bytes("rw").unwrap();

    // Table 12's CLSM column is the pure compressed model (its memory in the
    // paper matches Table 3's model-only CLSM figure), so no outlier store.
    let cfg = cardinality_config(vocab, Variant::Clsm, 1.0);
    let ((clsm, _report), clsm_build_secs) =
        timed(|| LearnedCardinality::build_from_subsets(&subsets, &cfg));
    let clsm_bytes = clsm.model_size_bytes();
    // Q-error of the UDF's answers against the exact counts.
    let pairs: Vec<(f64, f64)> =
        eval.iter().map(|(s, c)| (clsm.estimate(s), *c as f64)).collect();
    let clsm_avg_q_error = crate::metrics::avg_q_error(&pairs);

    engine.register_estimator("rw", clsm).unwrap();
    let clsm_ms = avg_latency_ms(&queries, |q| {
        std::hint::black_box(engine.execute_sql(&mk_sql(q, "estimate")).unwrap());
    });

    EngineIntegrationResult {
        dataset: bench.name(),
        seqscan_ms,
        index_ms,
        clsm_ms,
        index_bytes,
        clsm_bytes,
        index_build_secs,
        clsm_build_secs,
        clsm_avg_q_error,
        num_queries: queries.len(),
    }
}
