//! Cardinality-estimation experiment suite: Figure 6, Table 3, Table 4.

use crate::configs::{cardinality_config, Variant};
use crate::datasets::BenchDataset;
use crate::metrics::q_error_by_result_size;
use crate::timing::{avg_latency_ms, timed};
use setlearn::tasks::LearnedCardinality;
use setlearn_baselines::CardinalityMap;
use setlearn_data::{Dataset, ElementSet, SubsetIndex};

/// One estimator's results on one dataset.
#[derive(Debug, Clone)]
pub struct EstimatorRun {
    /// Column label (`LSM`, `LSM-Hybrid`, ...).
    pub label: String,
    /// Mean q-error per Figure 6 result-size bucket: `(label, qerr, n)`.
    pub q_error_buckets: Vec<(String, f64, usize)>,
    /// Overall mean q-error.
    pub avg_q_error: f64,
    /// Structure bytes (model only for the pure variants; model + outlier
    /// store for the hybrids).
    pub memory_bytes: usize,
    /// Mean per-query latency (ms).
    pub latency_ms: f64,
    /// Training wall-clock seconds per epoch.
    pub seconds_per_epoch: f64,
}

/// All cardinality results for one dataset.
#[derive(Debug, Clone)]
pub struct CardinalityDatasetResult {
    /// Dataset label.
    pub dataset: &'static str,
    /// LSM, LSM-Hybrid, CLSM, CLSM-Hybrid in order.
    pub runs: Vec<EstimatorRun>,
    /// HashMap competitor bytes.
    pub hashmap_bytes: usize,
    /// HashMap competitor latency (ms).
    pub hashmap_latency_ms: f64,
    /// HashMap build seconds.
    pub hashmap_build_secs: f64,
    /// Number of evaluation queries.
    pub num_queries: usize,
}

/// Deterministic strided sample of `k` evaluation pairs from sorted subset
/// statistics.
pub fn eval_sample(subsets: &SubsetIndex, k: usize) -> Vec<(ElementSet, u64)> {
    let pairs = subsets.cardinality_pairs();
    let stride = (pairs.len() / k.max(1)).max(1);
    pairs
        .iter()
        .step_by(stride)
        .take(k)
        .map(|(s, c)| (s.clone(), *c as u64))
        .collect()
}

/// Runs the suite on one dataset.
pub fn run_dataset(dataset: Dataset, num_queries: usize) -> CardinalityDatasetResult {
    let bench = BenchDataset::load(dataset);
    let collection = &bench.collection;
    let vocab = collection.num_elements();
    let subsets = SubsetIndex::build(collection, 3);
    let eval = eval_sample(&subsets, num_queries);

    let mut runs = Vec::new();
    for variant in [Variant::Lsm, Variant::Clsm] {
        for (hybrid, percentile) in [(false, 1.0), (true, 0.9)] {
            let cfg = cardinality_config(vocab, variant, percentile);
            let ((est, report), secs) =
                timed(|| LearnedCardinality::build_from_subsets(&subsets, &cfg));
            let epochs = report.loss_history.len().max(1);
            let pairs: Vec<(f64, f64)> =
                eval.iter().map(|(s, c)| (est.estimate(s), *c as f64)).collect();
            let buckets = q_error_by_result_size(&pairs);
            let avg = crate::metrics::avg_q_error(&pairs);
            let latency = avg_latency_ms(&eval, |(s, _)| {
                std::hint::black_box(est.estimate(s));
            });
            let label =
                if hybrid { format!("{}-Hybrid", variant.name()) } else { variant.name().into() };
            let memory_bytes =
                if hybrid { est.size_bytes() } else { est.model_size_bytes() };
            runs.push(EstimatorRun {
                label,
                q_error_buckets: buckets,
                avg_q_error: avg,
                memory_bytes,
                latency_ms: latency,
                seconds_per_epoch: secs / epochs as f64,
            });
        }
    }

    let (map, build_secs) = timed(|| CardinalityMap::build(collection, 3));
    let hashmap_latency = avg_latency_ms(&eval, |(s, _)| {
        std::hint::black_box(map.cardinality(s));
    });

    CardinalityDatasetResult {
        dataset: bench.name(),
        runs,
        hashmap_bytes: map.size_bytes(),
        hashmap_latency_ms: hashmap_latency,
        hashmap_build_secs: build_secs,
        num_queries: eval.len(),
    }
}

/// Runs the suite over all five datasets.
pub fn run_all(num_queries: usize) -> Vec<CardinalityDatasetResult> {
    Dataset::ALL.iter().map(|&d| run_dataset(d, num_queries)).collect()
}
