//! Bloom-filter experiment suite: Tables 9, 10, 11.

use crate::configs::{bloom_config, Variant};
use crate::datasets::BenchDataset;
use crate::timing::{avg_latency_ms, timed};
use setlearn::tasks::LearnedBloom;
use setlearn_baselines::SetMembershipBloom;
use setlearn_data::{workload::membership_queries, Dataset, ElementSet};

/// The traditional filter's fp-rate columns (Tables 10/11).
pub const FP_RATES: [f64; 3] = [0.1, 0.01, 0.001];

/// Bloom-task results for one dataset.
#[derive(Debug, Clone)]
pub struct BloomDatasetResult {
    /// Dataset label.
    pub dataset: &'static str,
    /// `(variant, binary accuracy)` for LSM and CLSM (Table 9).
    pub accuracy: Vec<(String, f64)>,
    /// `(variant, model bytes)` (Table 10's learned columns).
    pub memory: Vec<(String, usize)>,
    /// `(variant, ms)` probe latency (Table 11's learned columns).
    pub latency: Vec<(String, f64)>,
    /// `(fp rate, bytes, ms)` for the traditional filter.
    pub bloom: Vec<(f64, usize, f64)>,
    /// Training seconds per epoch per variant.
    pub seconds_per_epoch: Vec<(String, f64)>,
    /// Size of the labeled workload.
    pub workload_size: usize,
}

/// Runs the Bloom suite on one dataset.
pub fn run_dataset(dataset: Dataset, n_pos: usize, n_neg: usize) -> BloomDatasetResult {
    let bench = BenchDataset::load(dataset);
    let collection = &bench.collection;
    let vocab = collection.num_elements();
    let max_query_size = 4;
    let train = membership_queries(collection, n_pos, n_neg, max_query_size, 101);
    // Held-out probe workload for latency (same distribution, fresh seed).
    let probe: Vec<ElementSet> =
        membership_queries(collection, 500, 500, max_query_size, 202)
            .into_iter()
            .map(|(s, _)| s)
            .collect();

    let mut accuracy = Vec::new();
    let mut memory = Vec::new();
    let mut latency = Vec::new();
    let mut seconds_per_epoch = Vec::new();

    for variant in [Variant::Lsm, Variant::Clsm] {
        let cfg = bloom_config(vocab, variant);
        let ((filter, report), secs) = timed(|| LearnedBloom::build(&train, &cfg));
        accuracy.push((variant.name().into(), report.training_accuracy));
        memory.push((variant.name().into(), filter.model_size_bytes()));
        let ms = avg_latency_ms(&probe, |s| {
            std::hint::black_box(filter.contains(s));
        });
        latency.push((variant.name().into(), ms));
        seconds_per_epoch
            .push((variant.name().into(), secs / report.loss_history.len().max(1) as f64));
    }

    let bloom = FP_RATES
        .iter()
        .map(|&fp| {
            let (bf, _) = timed(|| SetMembershipBloom::build(collection, max_query_size, fp));
            let ms = avg_latency_ms(&probe, |s| {
                std::hint::black_box(bf.contains(s));
            });
            (fp, bf.size_bytes(), ms)
        })
        .collect();

    BloomDatasetResult {
        dataset: bench.name(),
        accuracy,
        memory,
        latency,
        bloom,
        seconds_per_epoch,
        workload_size: train.len(),
    }
}

/// Runs the Bloom suite over all five datasets.
pub fn run_all(n_pos: usize, n_neg: usize) -> Vec<BloomDatasetResult> {
    Dataset::ALL.iter().map(|&d| run_dataset(d, n_pos, n_neg)).collect()
}
