//! Experiment suites, one per paper table/figure group.

pub mod bloom;
pub mod cardinality;
pub mod digits;
pub mod engine;
pub mod index;
