//! Set-index experiment suite: Tables 5, 6, 7, 8 and the §8.3.3
//! local-vs-global error analysis.

use crate::configs::{index_config, Variant};
use crate::datasets::BenchDataset;
use crate::metrics::{avg_abs_error, avg_q_error};
use crate::timing::{avg_latency_ms, timed};
use setlearn::compress::CompressionSpec;
use setlearn::model::CompressionKind;
use setlearn::tasks::LearnedSetIndex;
use setlearn_baselines::{set_hash, BPlusTree};
use setlearn_data::{Dataset, ElementSet, SubsetIndex};

/// The paper's Table 5 percentile columns.
pub const PERCENTILES: [f64; 5] = [0.50, 0.75, 0.90, 0.95, 1.0];

/// Label for a percentile column.
pub fn percentile_label(p: f64) -> String {
    if p >= 1.0 {
        "No Removal".into()
    } else {
        format!("<{}%", (p * 100.0).round() as u32)
    }
}

/// One accuracy cell of Table 5.
#[derive(Debug, Clone)]
pub struct IndexAccuracyCell {
    /// Percentile column label.
    pub percentile: String,
    /// Average q-error of the position estimates.
    pub avg_q_error: f64,
    /// Average absolute position error.
    pub avg_abs_error: f64,
}

/// Table 5 rows for one dataset and one variant.
#[derive(Debug, Clone)]
pub struct IndexAccuracyRow {
    /// Dataset label.
    pub dataset: &'static str,
    /// Variant label (`LSM-Hybrid` / `CLSM-Hybrid`).
    pub variant: String,
    /// One cell per percentile threshold.
    pub cells: Vec<IndexAccuracyCell>,
}

/// Deterministic strided evaluation sample: `(subset, first position)`.
pub fn eval_sample(subsets: &SubsetIndex, k: usize) -> Vec<(ElementSet, u64)> {
    let pairs = subsets.index_pairs();
    let stride = (pairs.len() / k.max(1)).max(1);
    pairs
        .iter()
        .step_by(stride)
        .take(k)
        .map(|(s, p)| (s.clone(), *p as u64))
        .collect()
}

/// Table 5: accuracy per outlier-removal percentile.
pub fn run_accuracy(dataset: Dataset, num_queries: usize) -> Vec<IndexAccuracyRow> {
    let bench = BenchDataset::load(dataset);
    let collection = &bench.collection;
    let vocab = collection.num_elements();
    let subsets = SubsetIndex::build(collection, 2);
    let eval = eval_sample(&subsets, num_queries);

    [Variant::Lsm, Variant::Clsm]
        .iter()
        .map(|&variant| {
            let cells = PERCENTILES
                .iter()
                .map(|&p| {
                    let cfg = index_config(vocab, variant, p);
                    let (index, _) =
                        LearnedSetIndex::build_from_subsets(collection, &subsets, &cfg);
                    let pairs: Vec<(f64, f64)> = eval
                        .iter()
                        .map(|(s, t)| {
                            // Q-error over 1-based positions (the paper's
                            // metric floors at 1).
                            (index.estimate_position(s) + 1.0, *t as f64 + 1.0)
                        })
                        .collect();
                    IndexAccuracyCell {
                        percentile: percentile_label(p),
                        avg_q_error: avg_q_error(&pairs),
                        avg_abs_error: avg_abs_error(&pairs),
                    }
                })
                .collect();
            IndexAccuracyRow {
                dataset: bench.name(),
                variant: format!("{}-Hybrid", variant.name()),
                cells,
            }
        })
        .collect()
}

/// One row of Table 6 (tunable compression on the Tweets dataset).
#[derive(Debug, Clone)]
pub struct CompressionFactorRow {
    /// Divisor label (`full comp.` ... `no comp.`).
    pub label: String,
    /// Average q-error of position estimates.
    pub avg_q_error: f64,
    /// Model bytes.
    pub model_bytes: usize,
    /// Total training seconds.
    pub training_secs: f64,
}

/// Table 6: sweep the compression divisor from maximal compression to none.
///
/// The paper sweeps `sv_d ∈ {full, 500, 1000, 5000, 10000, none}` against a
/// 73k vocabulary; at bench scale the vocabulary is smaller, so the sweep
/// uses multiples of the optimal divisor instead (the same spectrum,
/// relabeled with the actual divisors).
pub fn run_compression_factor(num_queries: usize) -> Vec<CompressionFactorRow> {
    let bench = BenchDataset::load(Dataset::Tweets);
    let collection = &bench.collection;
    let vocab = collection.num_elements();
    let subsets = SubsetIndex::build(collection, 2);
    let eval = eval_sample(&subsets, num_queries);

    let max_id = vocab.saturating_sub(1).max(1);
    let optimal = CompressionSpec::optimal(max_id, 2).divisor;
    let mut settings: Vec<(String, CompressionKind)> = Vec::new();
    settings.push(("full comp.".into(), CompressionKind::Optimal { ns: 2 }));
    for mult in [2u32, 4, 8, 16] {
        let divisor = optimal * mult;
        if (divisor as u64) < vocab as u64 {
            settings.push((
                format!("sv_d={divisor}"),
                CompressionKind::Divisor { ns: 2, divisor },
            ));
        }
    }
    settings.push(("no comp.".into(), CompressionKind::None));

    settings
        .into_iter()
        .map(|(label, compression)| {
            let mut cfg = index_config(vocab, Variant::Lsm, 0.9);
            cfg.model.compression = compression;
            let ((index, _), secs) =
                timed(|| LearnedSetIndex::build_from_subsets(collection, &subsets, &cfg));
            let pairs: Vec<(f64, f64)> = eval
                .iter()
                .map(|(s, t)| (index.estimate_position(s) + 1.0, *t as f64 + 1.0))
                .collect();
            CompressionFactorRow {
                label,
                avg_q_error: avg_q_error(&pairs),
                model_bytes: index.model_size_bytes(),
                training_secs: secs,
            }
        })
        .collect()
}

/// Memory/latency/scan results for one dataset (Tables 7, 8, §8.3.3).
#[derive(Debug, Clone)]
pub struct IndexStructureResult {
    /// Dataset label.
    pub dataset: &'static str,
    /// `(variant, model bytes, aux bytes, err bytes)` per hybrid variant.
    pub hybrid_memory: Vec<(String, usize, usize, usize)>,
    /// `(variant, ms)` lookup latency per hybrid variant.
    pub hybrid_latency: Vec<(String, f64)>,
    /// B+ tree bytes.
    pub btree_bytes: usize,
    /// B+ tree lookup latency (ms).
    pub btree_latency_ms: f64,
    /// B+ tree build seconds.
    pub btree_build_secs: f64,
    /// Mean sets scanned per lookup with local bounds (LSM-Hybrid).
    pub mean_scanned_local: f64,
    /// Mean sets that a single global bound would scan.
    pub mean_scanned_global: f64,
    /// Global max error vs mean local bound (§8.3.3 numbers).
    pub global_error: f64,
    /// Mean local bound.
    pub mean_local_error: f64,
}

/// Tables 7 and 8 (plus the local-vs-global §8.3.3 analysis) per dataset.
pub fn run_structure(dataset: Dataset, num_queries: usize, percentile: f64) -> IndexStructureResult {
    let bench = BenchDataset::load(dataset);
    let collection = &bench.collection;
    let vocab = collection.num_elements();
    let subsets = SubsetIndex::build(collection, 2);
    let eval = eval_sample(&subsets, num_queries);

    let mut hybrid_memory = Vec::new();
    let mut hybrid_latency = Vec::new();
    let mut mean_scanned_local = 0.0;
    let mut mean_scanned_global = 0.0;
    let mut global_error = 0.0;
    let mut mean_local_error = 0.0;

    for variant in [Variant::Lsm, Variant::Clsm] {
        let cfg = index_config(vocab, variant, percentile);
        let (index, report) = LearnedSetIndex::build_from_subsets(collection, &subsets, &cfg);
        let label = format!("{}-Hybrid", variant.name());
        hybrid_memory.push((
            label.clone(),
            index.model_size_bytes(),
            index.aux_size_bytes(),
            index.bounds_size_bytes(),
        ));
        let latency = avg_latency_ms(&eval, |(s, _)| {
            std::hint::black_box(index.lookup(collection, s));
        });
        hybrid_latency.push((label, latency));

        if variant == Variant::Lsm {
            // §8.3.3: scanning effort with local bounds vs one global bound.
            let mut local = 0u64;
            let mut n = 0u64;
            for (s, _) in &eval {
                let prof = index.lookup_profiled(collection, s);
                if !prof.from_aux {
                    local += prof.scanned as u64;
                    n += 1;
                }
            }
            mean_scanned_local = if n > 0 { local as f64 / n as f64 } else { 0.0 };
            // A global bound always scans up to 2·max_error + 1 sets in the
            // worst case; the expected scan is half the window on average.
            global_error = report.global_error;
            mean_local_error = report.mean_local_error;
            mean_scanned_global = report.global_error + 1.0;
        }
    }

    // B+ tree over whole-set hashes (equality index, as in §8.1.2).
    let (btree, btree_build_secs) = timed(|| {
        let mut t = BPlusTree::new(100);
        for (pos, set) in collection.iter() {
            t.insert(set_hash(set), pos as u32);
        }
        t
    });
    let full_sets: Vec<ElementSet> =
        collection.sets().iter().take(eval.len().max(1)).cloned().collect();
    let btree_latency = avg_latency_ms(&full_sets, |s| {
        std::hint::black_box(btree.first_position(set_hash(s)));
    });

    IndexStructureResult {
        dataset: bench.name(),
        hybrid_memory,
        hybrid_latency,
        btree_bytes: btree.size_bytes(),
        btree_latency_ms: btree_latency,
        btree_build_secs,
        mean_scanned_local,
        mean_scanned_global,
        global_error,
        mean_local_error,
    }
}
