//! Wall-clock helpers: the paper reports per-query latency measured one
//! query at a time ("to mimic the behavior of a real query system").

use std::time::Instant;

/// Runs `f` once per item and returns the mean latency in milliseconds.
pub fn avg_latency_ms<T, F: FnMut(&T)>(items: &[T], mut f: F) -> f64 {
    assert!(!items.is_empty(), "no items to time");
    let start = Instant::now();
    for item in items {
        f(item);
    }
    start.elapsed().as_secs_f64() * 1_000.0 / items.len() as f64
}

/// Times a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Per-query latency distribution in milliseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyProfile {
    /// Mean latency.
    pub mean: f64,
    /// Median (p50).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum observed.
    pub max: f64,
}

/// Times `f` per item individually and returns the latency distribution —
/// tail latencies matter for the hybrid index, whose scan window varies per
/// query (§8.3.3).
pub fn latency_profile<T, F: FnMut(&T)>(items: &[T], mut f: F) -> LatencyProfile {
    assert!(!items.is_empty(), "no items to profile");
    let mut samples: Vec<f64> = items
        .iter()
        .map(|item| {
            let start = Instant::now();
            f(item);
            start.elapsed().as_secs_f64() * 1_000.0
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| samples[((samples.len() as f64 - 1.0) * p).round() as usize];
    LatencyProfile {
        mean: samples.iter().sum::<f64>() / samples.len() as f64,
        p50: pct(0.50),
        p95: pct(0.95),
        p99: pct(0.99),
        max: *samples.last().expect("non-empty"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_positive_and_finite() {
        let items = vec![1u32; 100];
        let ms = avg_latency_ms(&items, |x| {
            std::hint::black_box(x * 2);
        });
        assert!(ms >= 0.0 && ms.is_finite());
    }

    #[test]
    fn timed_returns_result() {
        let (v, secs) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn latency_profile_is_ordered() {
        let items: Vec<u64> = (0..200).collect();
        let p = latency_profile(&items, |&x| {
            // Make latency grow with the item so the tail is real.
            let mut acc = 0u64;
            for i in 0..x * 50 {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
            std::hint::black_box(acc);
        });
        assert!(p.p50 <= p.p95);
        assert!(p.p95 <= p.p99);
        assert!(p.p99 <= p.max);
        assert!(p.mean > 0.0);
    }

    #[test]
    #[should_panic(expected = "no items to profile")]
    fn empty_profile_panics() {
        let empty: Vec<u32> = Vec::new();
        let _ = latency_profile(&empty, |_| {});
    }
}
