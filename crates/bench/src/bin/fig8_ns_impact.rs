//! Figure 8: impact of the compression factor `ns` on the model's input
//! dimensionality.

use setlearn::compress::CompressionSpec;
use setlearn_bench::report::Table;

fn main() {
    let mut t = Table::new(vec!["max elements", "ns=1 (none)", "ns=2", "ns=3", "ns=4", "ns=5"]);
    for max_id in [10_000u32, 100_000, 1_000_000, 10_000_000] {
        let mut row = vec![
            format!("{}", max_id as u64 + 1),
            CompressionSpec::uncompressed_input_dims(max_id).to_string(),
        ];
        for ns in 2..=5usize {
            row.push(CompressionSpec::optimal(max_id, ns).input_dims().to_string());
        }
        t.row(row);
    }
    t.print("Figure 8 — input dimensions vs compression factor ns");
    println!(
        "Takeaway: ns = 2 already collapses the input dimensionality by orders of \
         magnitude; the paper recommends ns of two or three (larger ns complicates \
         the sub-element patterns the network must learn)."
    );
}
