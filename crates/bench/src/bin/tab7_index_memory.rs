//! Table 7: memory consumption for the index task.

use setlearn_bench::printers::print_tab7;
use setlearn_bench::suites::index;
use setlearn_data::Dataset;

fn main() {
    // The paper's Table 7 omits RW-1.5M (its hybrid falls back entirely to
    // the auxiliary structure); we run all five for completeness.
    let results: Vec<_> =
        Dataset::ALL.iter().map(|&d| index::run_structure(d, 1_000, 0.9)).collect();
    print_tab7(&results);
}
