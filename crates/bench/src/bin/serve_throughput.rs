//! Serving-throughput scaling: QPS of the concurrent serve runtime over the
//! cardinality workload, across worker counts and with micro-batching on
//! (`max_batch = 64`) versus off (`max_batch = 1`), plus a sharded (N = 4)
//! versus unsharded comparison with a rolling shard-by-shard hot-swap
//! racing the load.
//!
//! On small hosts the win comes almost entirely from batching — one queue
//! round-trip and one model forward pass amortized over dozens of requests —
//! rather than from parallelism, so the table reports both axes separately.
//! The sharded win likewise does not come from parallelism: each shard holds
//! a quarter of the collection and gets a capacity-proportional (≈ quarter
//! sized) model, so even though every request fans out to all four shards,
//! the total forward-pass work per request drops below the one big
//! unsharded model's.
//!
//! `SERVE_THROUGHPUT_REQUESTS` overrides the per-cell request count (CI
//! smoke runs use a small value). `--precision <f32|f16|q8>` switches to a
//! smoke mode: serve the cardinality workload at f32 and at the requested
//! precision, assert the requested precision is not slower (with slack for
//! noisy hosts), and skip the full tables.

use setlearn::hybrid::GuidedConfig;
use setlearn::kernel::{kernel_isa, FrozenModel, Precision};
use setlearn::model::{DeepSets, DeepSetsConfig};
use setlearn::tasks::{
    aggregate_cardinality, CardinalityConfig, LearnedCardinality, ShardedCardinality,
};
use setlearn::{ShardBy, ShardSpec, ShardedCollection};
use setlearn_bench::report::Table;
use setlearn_data::{ElementSet, GeneratorConfig, SubsetIndex};
use setlearn_serve::{CardinalityTask, HotSwap, ServeConfig, ServeRuntime, ShardedRuntime};
use std::sync::Arc;
use std::time::{Duration, Instant};

const THREADS: [usize; 4] = [1, 2, 4, 8];
const BATCHED: usize = 128;
const SHARDS: usize = 4;
/// Repetitions per cell; the max is reported (capacity, not scheduler luck).
const REPS: usize = 3;

fn run(slot: &Arc<HotSwap<CardinalityTask>>, requests: &[ElementSet], threads: usize, max_batch: usize) -> f64 {
    let runtime = ServeRuntime::start_shared(
        Arc::clone(slot),
        ServeConfig {
            threads,
            max_batch,
            max_delay: Duration::from_micros(200),
            // Sized for the whole workload: this measures service throughput,
            // not admission control.
            queue_capacity: requests.len(),
        },
    );
    // Stage owned requests before the clock starts: workload materialization
    // is the load generator's cost, not the serving runtime's.
    let staged: Vec<ElementSet> = requests.to_vec();
    let start = Instant::now();
    // Bulk admission: the load generator arrives with the whole workload, so
    // it uses the one-lock producer path (same for both batching modes).
    for outcome in runtime.submit_many(staged) {
        let ticket = outcome.expect("queue sized for the full workload");
        ticket.wait().expect("request lost");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let report = runtime.shutdown();
    assert_eq!(report.completed, requests.len() as u64, "requests lost");
    assert_eq!(report.panicked_batches, 0, "serve batches panicked");
    assert_eq!(report.shed, 0, "sheds in a fully-buffered run");
    report.completed as f64 / elapsed
}

/// Fan-out QPS of a 4-shard runtime, with a rolling shard-by-shard hot-swap
/// racing the in-flight workload. Every fan-out must complete and every
/// shard's accounting must balance exactly — a swap never loses, sheds, or
/// double-counts a sub-request.
fn run_sharded(model: &ShardedCardinality, requests: &[ElementSet], threads: usize) -> f64 {
    let tasks: Vec<CardinalityTask> =
        model.shards().iter().cloned().map(CardinalityTask::new).collect();
    let swap_tasks: Vec<CardinalityTask> =
        model.shards().iter().cloned().map(CardinalityTask::new).collect();
    let runtime = ShardedRuntime::start(
        tasks,
        ServeConfig {
            threads,
            max_batch: BATCHED,
            max_delay: Duration::from_micros(200),
            queue_capacity: requests.len(),
        },
        aggregate_cardinality,
    );
    let start = Instant::now();
    let outcomes = runtime.submit_many(requests);
    // Replace every shard's model while the whole workload is in flight:
    // one shard transitions at a time, in-flight batches finish on their
    // old snapshots, and the collection is never paused.
    let versions = runtime.rolling_swap(swap_tasks);
    assert_eq!(versions, vec![1; SHARDS], "one swap per shard");
    for outcome in outcomes {
        let ticket = outcome.expect("queues sized for the full workload");
        ticket.wait().expect("fan-out request lost");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let report = runtime.shutdown();
    for (s, r) in report.per_shard.iter().enumerate() {
        // Zero shed-accounting discrepancies, mid-swap included.
        assert_eq!(r.completed, r.submitted, "shard {s}: admitted != answered");
        assert_eq!(r.completed, requests.len() as u64, "shard {s}: sub-requests lost");
        assert_eq!(r.shed, 0, "shard {s}: sheds in a fully-buffered run");
        assert_eq!(r.panicked_batches, 0, "shard {s}: panicked batches");
        assert_eq!(r.swaps, 1, "shard {s}: rolling swap touched it once");
    }
    requests.len() as f64 / elapsed
}

/// Parses an optional `--precision <f32|f16|q8>` CLI argument.
fn precision_arg() -> Option<Precision> {
    let mut args = std::env::args().skip(1);
    let mut precision = None;
    while let Some(a) = args.next() {
        if a == "--precision" {
            let v = args.next().expect("--precision needs a value");
            precision = Some(v.parse().expect("--precision value"));
        } else {
            panic!("unknown argument '{a}' (only --precision <f32|f16|q8> is accepted)");
        }
    }
    precision
}

/// Smoke mode: serve the same workload at f32 and at `precision` through the
/// real runtime, and assert the reduced precision is not slower. The 0.8
/// slack absorbs scheduler noise on loaded CI hosts — the point is catching
/// a quantized path that quietly falls off the kernel (q8 measures well
/// above 1x when healthy).
fn precision_smoke(estimator: &LearnedCardinality, requests: &[ElementSet], precision: Precision) {
    let serve_at = |p: Precision| {
        let mut model = estimator.clone();
        model.set_precision(p);
        let slot = Arc::new(HotSwap::new(CardinalityTask::new(model)));
        run(&slot, &requests[..requests.len().min(512)], 1, BATCHED); // warm-up
        (0..REPS).map(|_| run(&slot, requests, 1, BATCHED)).fold(0.0, f64::max)
    };
    let f32_qps = serve_at(Precision::F32);
    let alt_qps = serve_at(precision);
    println!(
        "precision smoke ({} kernel): {precision} {alt_qps:.0} QPS vs f32 {f32_qps:.0} QPS \
         ({:.2}x)",
        kernel_isa(),
        alt_qps / f32_qps,
    );
    assert!(
        alt_qps >= 0.8 * f32_qps,
        "{precision} serving ({alt_qps:.0} QPS) fell below f32 ({f32_qps:.0} QPS)"
    );
}

fn main() {
    let requests_per_cell: usize = std::env::var("SERVE_THROUGHPUT_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4_000);

    let collection = GeneratorConfig::sd(1_000, 17).generate();
    let mut cfg = CardinalityConfig::new(DeepSetsConfig::lsm(collection.num_elements()));
    cfg.guided = GuidedConfig {
        warmup_epochs: 3,
        rounds: 1,
        epochs_per_round: 2,
        percentile: 0.9,
        batch_size: 128,
        learning_rate: 5e-3,
        seed: 7,
    };
    cfg.max_subset_size = 2;
    let (estimator, _) = LearnedCardinality::build(&collection, &cfg);

    let pool: Vec<ElementSet> =
        SubsetIndex::build(&collection, 2).iter().map(|(s, _)| s.clone()).collect();
    let requests: Vec<ElementSet> =
        (0..requests_per_cell).map(|i| pool[i % pool.len()].clone()).collect();

    if let Some(precision) = precision_arg() {
        precision_smoke(&estimator, &requests, precision);
        return;
    }

    // One resident model shared by every runtime under test.
    let slot = Arc::new(HotSwap::new(CardinalityTask::new(estimator)));

    // Warm-up pass (page in the model, settle allocator state).
    run(&slot, &requests[..requests.len().min(512)], 2, BATCHED);

    let mut unbatched_1t = 0.0;
    let mut batched_best = 0.0;
    let mut batched_8t = 0.0;
    let mut t = Table::new(vec!["threads", "unbatched QPS", "batched QPS", "batching gain"]);
    let best = |threads: usize, max_batch: usize| {
        (0..REPS).map(|_| run(&slot, &requests, threads, max_batch)).fold(0.0, f64::max)
    };
    for threads in THREADS {
        let unbatched = best(threads, 1);
        let batched = best(threads, BATCHED);
        if threads == 1 {
            unbatched_1t = unbatched;
        }
        if threads == 8 {
            batched_8t = batched;
        }
        batched_best = f64::max(batched_best, batched);
        t.row(vec![
            threads.to_string(),
            format!("{unbatched:.0}"),
            format!("{batched:.0}"),
            format!("{:.2}x", batched / unbatched),
        ]);
    }
    t.print(&format!(
        "Serve throughput — cardinality workload, {requests_per_cell} requests/cell, \
         max_batch {BATCHED} vs 1"
    ));

    let speedup = batched_best / unbatched_1t;
    println!(
        "\nbatched 8-thread vs unbatched single-thread: {:.2}x ({batched_8t:.0} vs \
         {unbatched_1t:.0} QPS)\nbest batched vs unbatched single-thread:    {speedup:.2}x \
         ({batched_best:.0} vs {unbatched_1t:.0} QPS)",
        batched_8t / unbatched_1t,
    );
    assert!(speedup > 0.0 && speedup.is_finite(), "degenerate measurement");

    // ── Sharded (N = 4) vs unsharded ─────────────────────────────────────
    // This comparison runs in the compute-dominated regime sharding exists
    // for: a production-sized unsharded model (embedding 64, hidden 2×256)
    // against four capacity-proportional shard models (embedding 16, hidden
    // 2×64 — each shard holds ~1/4 of the collection and needs ~1/4 of the
    // capacity). Every request still fans out to all four shards, but the
    // four quarter-sized forward passes together cost far less than the one
    // big pass, which is what buys the QPS back on a single core. (The
    // frozen kernels sped both sides up; the model sizes here keep forward
    // compute — not fan-out bookkeeping — the dominant cost.) Every rep
    // also performs a rolling shard-by-shard hot-swap while the workload is
    // in flight and asserts exact per-shard accounting.
    let mut heavy_cfg = cfg.clone();
    heavy_cfg.model.embedding_dim = 64;
    heavy_cfg.model.phi_hidden = vec![256, 256];
    heavy_cfg.model.rho_hidden = vec![256, 256];
    let (heavy, _) = LearnedCardinality::build(&collection, &heavy_cfg);
    let heavy_slot = Arc::new(HotSwap::new(CardinalityTask::new(heavy)));

    let sharded_collection =
        ShardedCollection::partition(&collection, ShardSpec::new(SHARDS, ShardBy::Hash))
            .expect("partition");
    let mut shard_cfg = cfg.clone();
    shard_cfg.model.embedding_dim = 16;
    shard_cfg.model.phi_hidden = vec![64, 64];
    shard_cfg.model.rho_hidden = vec![64, 64];
    let (sharded_model, _) =
        ShardedCardinality::build(&sharded_collection, &shard_cfg).expect("sharded build");

    let unsharded_4t = (0..REPS)
        .map(|_| run(&heavy_slot, &requests, 4, BATCHED))
        .fold(0.0, f64::max);
    let sharded_4t = (0..REPS)
        .map(|_| run_sharded(&sharded_model, &requests, 4))
        .fold(0.0, f64::max);
    println!(
        "\nsharded N={SHARDS} (capacity-proportional shards, rolling swap under load) vs \
         unsharded, 4 threads, batched:\n  {sharded_4t:.0} vs {unsharded_4t:.0} QPS \
         ({:.2}x), zero lost/shed/panicked sub-requests",
        sharded_4t / unsharded_4t,
    );
    assert!(
        sharded_4t >= unsharded_4t,
        "sharded N={SHARDS} fan-out ({sharded_4t:.0} QPS) fell below the unsharded runtime \
         ({unsharded_4t:.0} QPS)"
    );

    // ── Inference kernels: frozen forward path vs scalar ─────────────────
    // Model-level comparison (no queueing) on the production-sized model at
    // the serve micro-batch size: the scalar `predict_batch` reference
    // against [`FrozenModel`] at each precision. f32 freezing must be
    // bit-identical; f16/q8 report their worst score deltas.
    let kmodel = DeepSets::new(heavy_cfg.model.clone());
    // Mixed 1–6 element sets: φ work scales with elements, and serve traffic
    // is not all pairs.
    let vocab = collection.num_elements();
    let ksets: Vec<ElementSet> = (0..requests.len() as u32)
        .map(|i| (0..=(i % 6)).map(|j| (i * 37 + j * 11) % vocab).collect())
        .collect();
    let kbatches: Vec<&[ElementSet]> = ksets.chunks(BATCHED).collect();
    let kbench = |f: &dyn Fn(&[ElementSet]) -> Vec<f32>| {
        let mut best = 0.0f64;
        for _ in 0..REPS {
            let start = Instant::now();
            let mut n = 0usize;
            for b in &kbatches {
                n += f(b).len();
            }
            best = best.max(n as f64 / start.elapsed().as_secs_f64());
        }
        best
    };
    let scalar_qps = kbench(&|b| kmodel.predict_batch(b));
    let scalar_scores: Vec<f32> =
        kbatches.iter().flat_map(|b| kmodel.predict_batch(b)).collect();
    let mut kt = Table::new(vec!["forward path", "QPS", "vs scalar", "max |Δscore|"]);
    kt.row(vec!["scalar f32".into(), format!("{scalar_qps:.0}"), "1.00x".into(), "0".into()]);
    let mut speedup_f32 = 0.0;
    let mut speedup_q8 = 0.0;
    for p in Precision::ALL {
        let frozen = FrozenModel::freeze(&kmodel, p);
        let qps = kbench(&|b| frozen.predict_batch(b));
        let maxd = kbatches
            .iter()
            .flat_map(|b| frozen.predict_batch(b))
            .zip(&scalar_scores)
            .map(|(a, &b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        let speedup = qps / scalar_qps;
        match p {
            Precision::F32 => {
                assert_eq!(maxd, 0.0, "frozen f32 must be bit-identical to scalar");
                speedup_f32 = speedup;
            }
            Precision::Q8 => speedup_q8 = speedup,
            Precision::F16 => {}
        }
        kt.row(vec![
            format!("frozen {p}"),
            format!("{qps:.0}"),
            format!("{speedup:.2}x"),
            format!("{maxd:.5}"),
        ]);
    }
    kt.print(&format!(
        "Inference kernels ({} dispatch) — embedding {}, φ {:?}, ρ {:?}, batch {BATCHED}",
        kernel_isa(),
        heavy_cfg.model.embedding_dim,
        heavy_cfg.model.phi_hidden,
        heavy_cfg.model.rho_hidden,
    ));
    assert!(
        speedup_f32 >= 1.5,
        "blocked f32 kernel ({speedup_f32:.2}x) fell below the 1.5x floor over scalar"
    );
    assert!(
        speedup_q8 >= 2.0,
        "q8 kernel ({speedup_q8:.2}x) fell below the 2x floor over scalar"
    );
}
