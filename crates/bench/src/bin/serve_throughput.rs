//! Serving-throughput scaling: QPS of the concurrent serve runtime over the
//! cardinality workload, across worker counts and with micro-batching on
//! (`max_batch = 64`) versus off (`max_batch = 1`).
//!
//! On small hosts the win comes almost entirely from batching — one queue
//! round-trip and one model forward pass amortized over dozens of requests —
//! rather than from parallelism, so the table reports both axes separately.
//!
//! `SERVE_THROUGHPUT_REQUESTS` overrides the per-cell request count (CI
//! smoke runs use a small value).

use setlearn::hybrid::GuidedConfig;
use setlearn::model::DeepSetsConfig;
use setlearn::tasks::{CardinalityConfig, LearnedCardinality};
use setlearn_bench::report::Table;
use setlearn_data::{ElementSet, GeneratorConfig, SubsetIndex};
use setlearn_serve::{CardinalityTask, HotSwap, ServeConfig, ServeRuntime};
use std::sync::Arc;
use std::time::{Duration, Instant};

const THREADS: [usize; 4] = [1, 2, 4, 8];
const BATCHED: usize = 128;
/// Repetitions per cell; the max is reported (capacity, not scheduler luck).
const REPS: usize = 3;

fn run(slot: &Arc<HotSwap<CardinalityTask>>, requests: &[ElementSet], threads: usize, max_batch: usize) -> f64 {
    let runtime = ServeRuntime::start_shared(
        Arc::clone(slot),
        ServeConfig {
            threads,
            max_batch,
            max_delay: Duration::from_micros(200),
            // Sized for the whole workload: this measures service throughput,
            // not admission control.
            queue_capacity: requests.len(),
        },
    );
    // Stage owned requests before the clock starts: workload materialization
    // is the load generator's cost, not the serving runtime's.
    let staged: Vec<ElementSet> = requests.to_vec();
    let start = Instant::now();
    // Bulk admission: the load generator arrives with the whole workload, so
    // it uses the one-lock producer path (same for both batching modes).
    for outcome in runtime.submit_many(staged) {
        let ticket = outcome.expect("queue sized for the full workload");
        ticket.wait().expect("request lost");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let report = runtime.shutdown();
    assert_eq!(report.completed, requests.len() as u64, "requests lost");
    assert_eq!(report.panicked_batches, 0, "serve batches panicked");
    assert_eq!(report.shed, 0, "sheds in a fully-buffered run");
    report.completed as f64 / elapsed
}

fn main() {
    let requests_per_cell: usize = std::env::var("SERVE_THROUGHPUT_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4_000);

    let collection = GeneratorConfig::sd(1_000, 17).generate();
    let mut cfg = CardinalityConfig::new(DeepSetsConfig::lsm(collection.num_elements()));
    cfg.guided = GuidedConfig {
        warmup_epochs: 3,
        rounds: 1,
        epochs_per_round: 2,
        percentile: 0.9,
        batch_size: 128,
        learning_rate: 5e-3,
        seed: 7,
    };
    cfg.max_subset_size = 2;
    let (estimator, _) = LearnedCardinality::build(&collection, &cfg);

    let pool: Vec<ElementSet> =
        SubsetIndex::build(&collection, 2).iter().map(|(s, _)| s.clone()).collect();
    let requests: Vec<ElementSet> =
        (0..requests_per_cell).map(|i| pool[i % pool.len()].clone()).collect();

    // One resident model shared by every runtime under test.
    let slot = Arc::new(HotSwap::new(CardinalityTask { estimator }));

    // Warm-up pass (page in the model, settle allocator state).
    run(&slot, &requests[..requests.len().min(512)], 2, BATCHED);

    let mut unbatched_1t = 0.0;
    let mut batched_best = 0.0;
    let mut batched_8t = 0.0;
    let mut t = Table::new(vec!["threads", "unbatched QPS", "batched QPS", "batching gain"]);
    let best = |threads: usize, max_batch: usize| {
        (0..REPS).map(|_| run(&slot, &requests, threads, max_batch)).fold(0.0, f64::max)
    };
    for threads in THREADS {
        let unbatched = best(threads, 1);
        let batched = best(threads, BATCHED);
        if threads == 1 {
            unbatched_1t = unbatched;
        }
        if threads == 8 {
            batched_8t = batched;
        }
        batched_best = f64::max(batched_best, batched);
        t.row(vec![
            threads.to_string(),
            format!("{unbatched:.0}"),
            format!("{batched:.0}"),
            format!("{:.2}x", batched / unbatched),
        ]);
    }
    t.print(&format!(
        "Serve throughput — cardinality workload, {requests_per_cell} requests/cell, \
         max_batch {BATCHED} vs 1"
    ));

    let speedup = batched_best / unbatched_1t;
    println!(
        "\nbatched 8-thread vs unbatched single-thread: {:.2}x ({batched_8t:.0} vs \
         {unbatched_1t:.0} QPS)\nbest batched vs unbatched single-thread:    {speedup:.2}x \
         ({batched_best:.0} vs {unbatched_1t:.0} QPS)",
        batched_8t / unbatched_1t,
    );
    assert!(speedup > 0.0 && speedup.is_finite(), "degenerate measurement");
}
