//! Figure 7: digit-sum generalization — DeepSets and compressed DeepSets vs
//! LSTM and GRU.

use setlearn_bench::printers::print_fig7;
use setlearn_bench::suites::digits::{run, DigitSuiteConfig};

fn main() {
    let a = run(&DigitSuiteConfig::new(10));
    print_fig7("Figure 7a — digit-sum MAE, values in [1, 10]", &a);
    let b = run(&DigitSuiteConfig::new(100));
    print_fig7("Figure 7b — digit-sum MAE, values in [1, 100]", &b);
}
