//! Measures the serve-path cost of the telemetry layer: the same query
//! stream is timed with telemetry fully off, at the default `Metrics`
//! level (counter + latency-histogram recording on every query), and at
//! `Full` (per-query spans into the trace ring on top of the metrics). The
//! acceptance budget for the *default* instrumented hot path is **≤ 5%
//! overhead**; `Full` is reported for operators deciding whether to leave
//! end-to-end tracing on in production, but carries no budget — it is an
//! opt-in debugging level.
//!
//! Each configuration is timed over several interleaved rounds and the best
//! round is compared, so one scheduler hiccup cannot fake a regression.

use setlearn::tasks::LearnedCardinality;
use setlearn_bench::configs::{cardinality_config, Variant};
use setlearn_bench::datasets::BenchDataset;
use setlearn_bench::report::{ms, Table};
use setlearn_bench::timing::avg_latency_ms;
use setlearn_data::{Dataset, SubsetIndex};
use setlearn_obs::TelemetryLevel;

const ROUNDS: usize = 5;
const BUDGET_PCT: f64 = 5.0;

fn main() {
    let bench = BenchDataset::load(Dataset::Rw200k);
    let collection = &bench.collection;
    let subsets = SubsetIndex::build(collection, 3);
    let cfg = cardinality_config(collection.num_elements(), Variant::Clsm, 0.9);
    let (est, _) = LearnedCardinality::build_from_subsets(&subsets, &cfg);
    let eval = setlearn_bench::suites::cardinality::eval_sample(&subsets, 4_000);

    let run = |level: TelemetryLevel| {
        setlearn_obs::set_level(level);
        avg_latency_ms(&eval, |(s, _)| {
            std::hint::black_box(est.estimate(s));
        })
    };

    // Warm caches and the lazily initialized metric handles before timing.
    let _ = run(TelemetryLevel::Off);
    let _ = run(TelemetryLevel::Metrics);
    let _ = run(TelemetryLevel::Full);
    // The warm-up filled the trace ring; drop those records so the timed
    // Full rounds measure steady-state span recording, not ring growth.
    let _ = setlearn_obs::tracer().drain();

    let mut off = f64::INFINITY;
    let mut metrics = f64::INFINITY;
    let mut full = f64::INFINITY;
    for _ in 0..ROUNDS {
        off = off.min(run(TelemetryLevel::Off));
        metrics = metrics.min(run(TelemetryLevel::Metrics));
        full = full.min(run(TelemetryLevel::Full));
        let _ = setlearn_obs::tracer().drain();
    }
    setlearn_obs::set_level(TelemetryLevel::Metrics);

    let overhead_pct = (metrics / off - 1.0) * 100.0;
    let full_pct = (full / off - 1.0) * 100.0;
    let mut t = Table::new(vec!["telemetry level", "ms/query (best of 5)"]);
    t.row(vec!["Off".to_string(), ms(off)]);
    t.row(vec!["Metrics (default)".to_string(), ms(metrics)]);
    t.row(vec!["Full (spans + tracing)".to_string(), ms(full)]);
    t.print("Telemetry overhead — cardinality serve path (RW-200k shape)");
    println!("Overhead at Metrics level: {overhead_pct:+.2}% (budget ≤ {BUDGET_PCT}%)");
    println!("Overhead at Full level:    {full_pct:+.2}% (informational — opt-in tracing)");
    if overhead_pct <= BUDGET_PCT {
        println!("PASS — instrumentation stays inside the serve-latency budget.");
    } else {
        println!("WARN — instrumentation exceeds the {BUDGET_PCT}% budget; profile Histogram::observe.");
    }
}
