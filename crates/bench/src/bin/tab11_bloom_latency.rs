//! Table 11: per-query execution time for the Bloom-filter task.

use setlearn_bench::printers::print_bloom;
use setlearn_bench::suites::bloom;

fn main() {
    print_bloom(&bloom::run_all(2_000, 2_000));
}
