//! Latency-distribution profile of the three learned structures: the paper
//! reports means (Tables 4/8/11); the hybrid index's per-query scan windows
//! make its *tail* the more operationally relevant number.

use setlearn::tasks::{LearnedBloom, LearnedCardinality, LearnedSetIndex};
use setlearn_bench::configs::{bloom_config, cardinality_config, index_config, Variant};
use setlearn_bench::datasets::BenchDataset;
use setlearn_bench::report::{ms, Table};
use setlearn_bench::timing::latency_profile;
use setlearn_data::{workload::membership_queries, Dataset, SubsetIndex};

fn main() {
    let bench = BenchDataset::load(Dataset::Rw200k);
    let collection = &bench.collection;
    let vocab = collection.num_elements();

    let mut t = Table::new(vec!["structure", "mean", "p50", "p95", "p99", "max (ms)"]);

    // Cardinality estimator.
    let subsets3 = SubsetIndex::build(collection, 3);
    let cfg = cardinality_config(vocab, Variant::Clsm, 0.9);
    let (est, _) = LearnedCardinality::build_from_subsets(&subsets3, &cfg);
    let eval = setlearn_bench::suites::cardinality::eval_sample(&subsets3, 2_000);
    let p = latency_profile(&eval, |(s, _)| {
        std::hint::black_box(est.estimate(s));
    });
    t.row(vec![
        "CLSM-Hybrid cardinality".to_string(),
        ms(p.mean),
        ms(p.p50),
        ms(p.p95),
        ms(p.p99),
        ms(p.max),
    ]);

    // Hybrid index — the interesting tail.
    let subsets2 = SubsetIndex::build(collection, 2);
    let icfg = index_config(vocab, Variant::Clsm, 0.9);
    let (index, _) = LearnedSetIndex::build_from_subsets(collection, &subsets2, &icfg);
    let ieval = setlearn_bench::suites::index::eval_sample(&subsets2, 2_000);
    let p = latency_profile(&ieval, |(s, _)| {
        std::hint::black_box(index.lookup(collection, s));
    });
    t.row(vec![
        "CLSM-Hybrid index".to_string(),
        ms(p.mean),
        ms(p.p50),
        ms(p.p95),
        ms(p.p99),
        ms(p.max),
    ]);

    // Learned Bloom filter.
    let workload = membership_queries(collection, 1_000, 1_000, 4, 31);
    let (filter, _) = LearnedBloom::build(&workload, &bloom_config(vocab, Variant::Clsm));
    let queries: Vec<_> = workload.into_iter().map(|(q, _)| q).collect();
    let p = latency_profile(&queries, |q| {
        std::hint::black_box(filter.contains(q));
    });
    t.row(vec![
        "CLSM Bloom filter".to_string(),
        ms(p.mean),
        ms(p.p50),
        ms(p.p95),
        ms(p.p99),
        ms(p.max),
    ]);

    t.print("Latency distributions (RW-200k shape, ms/query)");
    println!(
        "The index's p99 ≫ p50 gap is the §8.3.3 story: most lookups scan a \
         few sets, the mispredicted tail scans its whole local window."
    );
}
