//! Ablation: does storage order matter? The paper (§1, §6) attributes the
//! index task's difficulty to the collection's *arbitrary order*. When the
//! application may choose the order, reordering restores learnability; the
//! random shuffle is the adversarial control.

use setlearn::tasks::LearnedSetIndex;
use setlearn_bench::configs::{index_config, Variant};
use setlearn_bench::datasets::BenchDataset;
use setlearn_bench::metrics::{avg_abs_error, avg_q_error};
use setlearn_bench::report::{qe, Table};
use setlearn_bench::suites::index::eval_sample;
use setlearn_data::{reorder, Dataset, SetCollection, SubsetIndex};

fn evaluate(collection: &SetCollection, label: &str, t: &mut Table) {
    let subsets = SubsetIndex::build(collection, 2);
    let eval = eval_sample(&subsets, 2_000);
    let cfg = index_config(collection.num_elements(), Variant::Lsm, 1.0);
    let (index, _) = LearnedSetIndex::build_from_subsets(collection, &subsets, &cfg);
    let pairs: Vec<(f64, f64)> = eval
        .iter()
        .map(|(s, p)| (index.estimate_position(s) + 1.0, *p as f64 + 1.0))
        .collect();
    t.row(vec![
        label.to_string(),
        qe(avg_q_error(&pairs)),
        format!("{:.1}", avg_abs_error(&pairs)),
    ]);
}

fn main() {
    let bench = BenchDataset::load(Dataset::Rw200k);
    let base = &bench.collection;
    let mut t = Table::new(vec!["storage order", "avg q-error", "avg abs-error"]);
    evaluate(base, "generator order (arbitrary)", &mut t);
    let (shuffled, _) = reorder::random(base, 99);
    evaluate(&shuffled, "random shuffle (control)", &mut t);
    let (heads, _) = reorder::by_head_element(base);
    evaluate(&heads, "clustered by head element", &mut t);
    let (lex, _) = reorder::lexicographic(base);
    evaluate(&lex, "lexicographic", &mut t);
    t.print("Ablation — storage order vs index learnability (RW-200k shape, No-Removal model)");
    println!(
        "Sorting the collection gives the model a monotone-ish key→position \
         mapping — the advantage one-dimensional learned indexes get for free \
         and set collections normally lack (paper §6)."
    );
}
