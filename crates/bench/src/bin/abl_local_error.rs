//! Ablation: local per-range error bounds vs one global bound (paper §8.3.3).

use setlearn_bench::report::Table;
use setlearn_bench::suites::index;
use setlearn_data::Dataset;

fn main() {
    let mut t = Table::new(vec![
        "Datasets",
        "global max error",
        "mean local bound",
        "avg sets scanned (local)",
        "scan window (global)",
    ]);
    for d in Dataset::ALL {
        let r = index::run_structure(d, 1_000, 0.9);
        t.row(vec![
            r.dataset.to_string(),
            format!("{:.0}", r.global_error),
            format!("{:.0}", r.mean_local_error),
            format!("{:.1}", r.mean_scanned_local),
            format!("{:.0}", r.mean_scanned_global),
        ]);
    }
    t.print("Ablation — local vs global error bounds (index task)");
}
