//! Table 8: per-query execution time for the index task, plus the §8.3.3
//! local-vs-global error analysis.

use setlearn_bench::printers::print_tab8;
use setlearn_bench::suites::index;
use setlearn_data::Dataset;

fn main() {
    let results: Vec<_> =
        Dataset::ALL.iter().map(|&d| index::run_structure(d, 1_000, 0.9)).collect();
    print_tab8(&results);
}
