//! Table 6: impact of the tunable compression divisor sv_d (Tweets, index).

use setlearn_bench::printers::print_tab6;
use setlearn_bench::suites::index;

fn main() {
    print_tab6(&index::run_compression_factor(2_000));
}
