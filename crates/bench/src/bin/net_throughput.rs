//! Loopback-TCP vs in-process serving throughput: the same cardinality
//! workload, chunked into frames of `FRAME` queries, driven once through
//! [`ServeRuntime::submit_many`] directly and once through the `SLP1` wire
//! front-end (`NetServer`/`NetClient`) over 127.0.0.1 — same runtime, same
//! admission pattern, so the measured gap is the cost of the wire alone:
//! framing, CRC, two socket hops, and the response encode/decode.
//!
//! The model forward pass dominates a batch of 256 queries, so the wire
//! overhead must stay small: the run asserts loopback-TCP QPS within 2x of
//! the in-process batched path.
//!
//! `NET_THROUGHPUT_REQUESTS` overrides the per-rep request count (CI smoke
//! runs use a small value).

use setlearn::hybrid::GuidedConfig;
use setlearn::model::DeepSetsConfig;
use setlearn::tasks::{CardinalityConfig, LearnedCardinality};
use setlearn::wire::{QueryRequest, WireTask};
use setlearn_data::{ElementSet, GeneratorConfig, SubsetIndex};
use setlearn_serve::{
    CardinalityTask, NetClient, NetConfig, NetServer, ServeConfig, ServeRuntime, WireBackend,
};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Queries per frame (and per `submit_many` call): large enough that one
/// round-trip amortizes over a whole micro-batch, the regime the wire
/// protocol is designed for.
const FRAME: usize = 256;
/// Repetitions per path; the max is reported (capacity, not scheduler luck).
const REPS: usize = 3;

fn in_process_qps(runtime: &ServeRuntime<CardinalityTask>, requests: &[ElementSet]) -> f64 {
    let start = Instant::now();
    for chunk in requests.chunks(FRAME) {
        let tickets = runtime.submit_many(chunk.to_vec());
        for ticket in tickets {
            ticket.expect("queue sized for the workload").wait().expect("request lost");
        }
    }
    requests.len() as f64 / start.elapsed().as_secs_f64()
}

fn loopback_qps(addr: SocketAddr, requests: &[QueryRequest]) -> f64 {
    let mut client = NetClient::connect(addr).expect("connect to loopback server");
    let start = Instant::now();
    for chunk in requests.chunks(FRAME) {
        let outcomes =
            client.query_batch(WireTask::Cardinality, chunk).expect("wire batch failed");
        assert_eq!(outcomes.len(), chunk.len(), "responses lost on the wire");
        for outcome in outcomes {
            outcome.expect("query failed on an idle runtime");
        }
    }
    requests.len() as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let total: usize = std::env::var("NET_THROUGHPUT_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8_000);

    let collection = GeneratorConfig::sd(1_000, 17).generate();
    let mut cfg = CardinalityConfig::new(DeepSetsConfig::lsm(collection.num_elements()));
    cfg.guided = GuidedConfig {
        warmup_epochs: 3,
        rounds: 1,
        epochs_per_round: 2,
        percentile: 0.9,
        batch_size: 128,
        learning_rate: 5e-3,
        seed: 7,
    };
    cfg.max_subset_size = 2;
    let (estimator, _) = LearnedCardinality::build(&collection, &cfg);

    let pool: Vec<ElementSet> =
        SubsetIndex::build(&collection, 2).iter().map(|(s, _)| s.clone()).collect();
    let requests: Vec<ElementSet> = (0..total).map(|i| pool[i % pool.len()].clone()).collect();
    let wire_requests: Vec<QueryRequest> =
        requests.iter().map(|q| QueryRequest::new(q.to_vec())).collect();

    // One runtime serves both paths, so the backend cost is identical.
    let runtime = Arc::new(ServeRuntime::start(
        CardinalityTask::new(estimator),
        ServeConfig {
            threads: 2,
            max_batch: 128,
            max_delay: Duration::from_micros(200),
            queue_capacity: requests.len(),
        },
    ));
    let server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&runtime) as Arc<dyn WireBackend>,
        NetConfig::default(),
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    // Warm-up both paths (page in the model, settle allocator state).
    let warm = requests.len().min(512);
    in_process_qps(&runtime, &requests[..warm]);
    loopback_qps(addr, &wire_requests[..warm]);

    let in_process = (0..REPS)
        .map(|_| in_process_qps(&runtime, &requests))
        .fold(0.0, f64::max);
    let over_tcp =
        (0..REPS).map(|_| loopback_qps(addr, &wire_requests)).fold(0.0, f64::max);
    let overhead = in_process / over_tcp;

    println!(
        "Net throughput — cardinality workload, {total} requests/rep, {FRAME} queries/frame\n\
         \n  in-process batched: {in_process:.0} QPS\n  loopback TCP:       {over_tcp:.0} QPS\n  \
         wire overhead:      {overhead:.2}x"
    );

    server.shutdown();
    let report = Arc::try_unwrap(runtime)
        .map_err(|_| "front-end handlers still hold the runtime")
        .unwrap()
        .shutdown();
    assert_eq!(report.panicked_batches, 0, "serve batches panicked");
    assert!(overhead.is_finite() && overhead > 0.0, "degenerate measurement");
    assert!(
        over_tcp * 2.0 >= in_process,
        "loopback TCP ({over_tcp:.0} QPS) fell below half the in-process batched path \
         ({in_process:.0} QPS)"
    );
}
