//! Ablation: q-error training loss vs MSE vs MAE on the cardinality task
//! (DESIGN.md §4 — why the paper trains with q-error).

use setlearn::hybrid::{guided_train, GuidedConfig};
use setlearn::model::DeepSets;
use setlearn_bench::configs::{cardinality_config, Variant};
use setlearn_bench::datasets::BenchDataset;
use setlearn_bench::metrics::avg_q_error;
use setlearn_bench::report::{qe, Table};
use setlearn_bench::suites::cardinality::eval_sample;
use setlearn_data::{Dataset, ElementSet, SubsetIndex};
use setlearn_nn::{LogMinMaxScaler, Loss};

fn main() {
    let bench = BenchDataset::load(Dataset::Rw200k);
    let collection = &bench.collection;
    let subsets = SubsetIndex::build(collection, 3);
    let pairs = subsets.cardinality_pairs();
    let scaler = LogMinMaxScaler::from_range(1.0, subsets.max_cardinality() as f64);
    let data: Vec<(ElementSet, f32)> =
        pairs.iter().map(|(s, c)| (s.clone(), scaler.scale(*c))).collect();
    let eval = eval_sample(&subsets, 2_000);

    let losses: Vec<(&str, Loss)> = vec![
        ("q-error", Loss::QError { span: scaler.span() }),
        ("MSE", Loss::Mse),
        ("MAE", Loss::Mae),
    ];
    let mut t = Table::new(vec!["training loss", "avg q-error (eval)"]);
    for (name, loss) in losses {
        let cfg = cardinality_config(collection.num_elements(), Variant::Lsm, 1.0);
        let mut model = DeepSets::new(cfg.model.clone());
        let gcfg = GuidedConfig { percentile: 1.0, ..cfg.guided.clone() };
        guided_train(&mut model, &data, loss, &gcfg);
        let p: Vec<(f64, f64)> = eval
            .iter()
            .map(|(s, c)| (scaler.unscale(model.predict_one(s)), *c as f64))
            .collect();
        t.row(vec![name.to_string(), qe(avg_q_error(&p))]);
    }
    t.print("Ablation — training loss (cardinality, RW-200k shape)");
}
