//! Multi-tenant serving acceptance bench: one registry process hosting two
//! collections must be indistinguishable — in answers — from two dedicated
//! solo servers, and well-behaved under pressure:
//!
//!   1. every tenant's answers over the registry are bit-identical to its
//!      solo server;
//!   2. a plain v1 client (no collection id) gets the default collection's
//!      answers bit-identically;
//!   3. LRU eviction under a byte budget unloads the cold tenant and a
//!      reload answers bit-identically;
//!   4. with per-tenant quotas, a tenant hammering past its budget is shed
//!      typed (`TenantOverloaded`) while the other tenant's p99 stays
//!      within `MULTITENANT_P99_FACTOR` (default 1.2x) of its solo p99.
//!
//! `MULTITENANT_REQUESTS` overrides the per-measurement request count for
//! CI smoke runs. The run prints one greppable `MULTITENANT BENCH OK` line
//! on success.

use setlearn::hybrid::GuidedConfig;
use setlearn::model::DeepSetsConfig;
use setlearn::persist::{save_manifest, CollectionManifest, COLLECTION_MODEL, COLLECTION_SETS};
use setlearn::tasks::{CardinalityConfig, LearnedCardinality};
use setlearn::wire::{QueryRequest, QueryValue, WireTask};
use setlearn_data::GeneratorConfig;
use setlearn_serve::proto::{ErrorCode, ProtoError};
use setlearn_serve::{
    CardinalityTask, CollectionRegistry, NetClient, NetConfig, NetError, NetServer,
    QuotaConfig, RegistryConfig, ServeConfig, ServeRuntime, WireBackend,
};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TENANT_A: &str = "tenant-a";
const TENANT_B: &str = "tenant-b";

fn env_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn quick_serve() -> ServeConfig {
    ServeConfig {
        threads: 2,
        max_batch: 32,
        max_delay: Duration::from_micros(100),
        queue_capacity: 4096,
    }
}

/// Trains and persists a small cardinality collection under `root/<name>/`.
fn write_collection(root: &Path, name: &str, seed: u64) {
    let sets = GeneratorConfig::sd(300, seed).generate();
    let mut cfg = CardinalityConfig::new(DeepSetsConfig::lsm(sets.num_elements()));
    cfg.guided = GuidedConfig {
        warmup_epochs: 2,
        rounds: 1,
        epochs_per_round: 1,
        percentile: 0.9,
        batch_size: 128,
        learning_rate: 5e-3,
        seed,
    };
    cfg.max_subset_size = 2;
    let (est, _) = LearnedCardinality::build(&sets, &cfg);
    let dir = root.join(name);
    save_manifest(
        &dir,
        &CollectionManifest { task: "cardinality".into(), shards: None, shard_by: None },
    )
    .expect("write manifest");
    setlearn::persist::save_json(&est, &dir.join(COLLECTION_MODEL)).expect("write model");
    setlearn::persist::save_json(&sets, &dir.join(COLLECTION_SETS)).expect("write sets");
}

fn solo_server(root: &Path, name: &str) -> (NetServer, SocketAddr) {
    let est: LearnedCardinality =
        setlearn::persist::load_json(&root.join(name).join(COLLECTION_MODEL))
            .expect("load model");
    let runtime = Arc::new(ServeRuntime::start(CardinalityTask::new(est), quick_serve()));
    let server = NetServer::bind(
        "127.0.0.1:0",
        runtime as Arc<dyn WireBackend>,
        NetConfig::default(),
    )
    .expect("bind solo server");
    let addr = server.local_addr();
    (server, addr)
}

fn registry_server(
    root: &Path,
    default: Option<&str>,
    max_resident_bytes: Option<u64>,
    quota: Option<QuotaConfig>,
) -> (NetServer, SocketAddr, Arc<CollectionRegistry>) {
    let mut config = RegistryConfig::new(root);
    config.serve = quick_serve();
    config.default_collection = default.map(str::to_string);
    config.max_resident_bytes = max_resident_bytes;
    config.quota = quota;
    let registry = Arc::new(CollectionRegistry::new(config));
    let server =
        NetServer::bind_registry("127.0.0.1:0", Arc::clone(&registry), NetConfig::default())
            .expect("bind registry server");
    let addr = server.local_addr();
    (server, addr, registry)
}

fn workload(n: usize) -> Vec<QueryRequest> {
    // Ids must stay inside the trained vocab (sd(300) => 17 elements).
    (0..n).map(|i| QueryRequest::new(vec![(i % 9) as u32, (i * 7 % 8 + 9) as u32])).collect()
}

/// Answers as raw f64 bits, so "identical" means identical.
fn answer_bits(addr: SocketAddr, collection: Option<&str>, queries: &[QueryRequest]) -> Vec<u64> {
    let mut client = NetClient::connect(addr).expect("connect");
    if let Some(name) = collection {
        client.set_collection(Some(name.to_string()));
    }
    let mut bits = Vec::with_capacity(queries.len());
    for chunk in queries.chunks(64) {
        let outcomes = client.query_batch(WireTask::Cardinality, chunk).expect("query batch");
        for outcome in outcomes {
            match outcome.expect("query failed").value {
                QueryValue::Cardinality(v) => bits.push(v.to_bits()),
                other => panic!("wrong value kind: {other:?}"),
            }
        }
    }
    bits
}

/// p99 over single-query round-trips (the latency-sensitive shape).
fn p99(addr: SocketAddr, collection: Option<&str>, queries: &[QueryRequest]) -> Duration {
    let mut client = NetClient::connect(addr).expect("connect");
    if let Some(name) = collection {
        client.set_collection(Some(name.to_string()));
    }
    let mut samples = Vec::with_capacity(queries.len());
    for q in queries {
        let start = Instant::now();
        let outcomes = client
            .query_batch(WireTask::Cardinality, std::slice::from_ref(q))
            .expect("query");
        samples.push(start.elapsed());
        assert!(outcomes[0].is_ok(), "latency probe query failed");
    }
    samples.sort_unstable();
    samples[(samples.len() * 99) / 100]
}

fn main() {
    let total: usize = env_or("MULTITENANT_REQUESTS", 2_000);
    let p99_factor: f64 = env_or("MULTITENANT_P99_FACTOR", 1.2);

    let root: PathBuf = std::env::temp_dir()
        .join(format!("setlearn-multitenant-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("create bench root");
    write_collection(&root, TENANT_A, 21);
    write_collection(&root, TENANT_B, 22);
    let queries = workload(total);

    // Reference topology: one dedicated server per tenant.
    let (solo_a, addr_a) = solo_server(&root, TENANT_A);
    let (solo_b, addr_b) = solo_server(&root, TENANT_B);
    let want_a = answer_bits(addr_a, None, &queries);
    let want_b = answer_bits(addr_b, None, &queries);
    assert_ne!(want_a, want_b, "tenants trained genuinely different models");

    // 1+2: one registry process, both tenants, plus a v1 default client.
    let (server, addr, registry) = registry_server(&root, Some(TENANT_A), None, None);
    let got_a = answer_bits(addr, Some(TENANT_A), &queries);
    let got_b = answer_bits(addr, Some(TENANT_B), &queries);
    let got_v1 = answer_bits(addr, None, &queries);
    assert_eq!(got_a, want_a, "tenant-a diverged from its solo server");
    assert_eq!(got_b, want_b, "tenant-b diverged from its solo server");
    assert_eq!(got_v1, want_a, "v1 default routing diverged from the solo server");
    assert_eq!(registry.resident_count(), 2);
    server.shutdown();
    drop(registry);

    // 3: a byte budget that fits exactly one tenant forces LRU eviction;
    // the evicted tenant reloads on demand with identical answers.
    let disk_bytes = |name: &str| -> u64 {
        std::fs::read_dir(root.join(name))
            .expect("tenant dir")
            .flatten()
            .filter_map(|e| e.metadata().ok())
            .map(|m| m.len())
            .sum()
    };
    let budget = disk_bytes(TENANT_A).max(disk_bytes(TENANT_B)) + 1;
    let (server, addr, registry) = registry_server(&root, None, Some(budget), None);
    let evict_queries = &queries[..total.min(64)];
    let first_a = answer_bits(addr, Some(TENANT_A), evict_queries);
    assert_eq!(registry.resident_count(), 1);
    let _warm_b = answer_bits(addr, Some(TENANT_B), evict_queries);
    assert_eq!(registry.resident_count(), 1, "budget for one: loading B evicted A");
    let reloaded_a = answer_bits(addr, Some(TENANT_A), evict_queries);
    assert_eq!(first_a, reloaded_a, "reload after eviction changed answers");
    server.shutdown();
    drop(registry);

    // 4: tenant-a hammers past its quota and is shed typed; tenant-b's p99
    // stays within the configured factor of its solo baseline.
    let solo_p99_b = p99(addr_b, None, &queries);
    // Every tenant gets the same bucket: big enough that tenant-b's whole
    // measurement fits in the burst, with a refill too slow to matter — so
    // tenant-a's full-speed hammer drains its own bucket almost immediately
    // and spends the measurement window being shed.
    let quota = QuotaConfig { rate: 50.0, burst: (total as f64) * 2.0 + 256.0 };
    let (server, addr, registry) = registry_server(&root, None, None, Some(quota));
    // Warm both residents so the measurement never pays a lazy load.
    let _ = answer_bits(addr, Some(TENANT_A), &queries[..64]);
    let _ = answer_bits(addr, Some(TENANT_B), &queries[..64]);

    let stop = Arc::new(AtomicBool::new(false));
    let shed_count = Arc::new(AtomicU64::new(0));
    let hammer = {
        let stop = Arc::clone(&stop);
        let shed_count = Arc::clone(&shed_count);
        let hammer_queries = workload(64);
        std::thread::spawn(move || {
            let mut client = NetClient::connect(addr).expect("hammer connect");
            client.set_collection(Some(TENANT_A.to_string()));
            while !stop.load(Ordering::Relaxed) {
                match client.query_batch(WireTask::Cardinality, &hammer_queries) {
                    Ok(_) => {}
                    Err(NetError::Proto(ProtoError::Remote(ErrorCode::TenantOverloaded))) => {
                        shed_count.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => panic!("hammer saw an unexpected error: {e}"),
                }
            }
        })
    };
    let shared_p99_b = p99(addr, Some(TENANT_B), &queries);
    stop.store(true, Ordering::Relaxed);
    hammer.join().expect("hammer thread");
    let shed = shed_count.load(Ordering::Relaxed);
    assert!(shed > 0, "tenant-a never hit its quota — the hammer was not shed");
    server.shutdown();
    drop(registry);
    solo_a.shutdown();
    solo_b.shutdown();

    // Loopback p99 on a quiet machine is tens of microseconds; a small
    // absolute floor keeps scheduler noise from failing the ratio check.
    let limit = Duration::from_secs_f64(solo_p99_b.as_secs_f64() * p99_factor)
        .max(solo_p99_b + Duration::from_micros(500));
    println!(
        "Multi-tenant bench — {total} requests/measurement\n\
         \n  tenant-b solo p99:    {:>8.1}us\n  tenant-b shared p99:  {:>8.1}us \
         (limit {:.1}us at {p99_factor}x)\n  tenant-a quota sheds: {shed}",
        solo_p99_b.as_secs_f64() * 1e6,
        shared_p99_b.as_secs_f64() * 1e6,
        limit.as_secs_f64() * 1e6,
    );
    assert!(
        shared_p99_b <= limit,
        "tenant-b p99 under tenant-a quota pressure ({shared_p99_b:?}) exceeded {limit:?}"
    );

    let _ = std::fs::remove_dir_all(&root);
    println!(
        "MULTITENANT BENCH OK: bit-identical={} v1-default=ok eviction-reload=ok \
         quota-sheds={shed} p99-ratio={:.2}",
        total,
        shared_p99_b.as_secs_f64() / solo_p99_b.as_secs_f64().max(1e-9),
    );
}
