//! Table 4: per-query execution time for the cardinality-estimation task.

use setlearn_bench::printers::print_tab4;
use setlearn_bench::suites::cardinality;

fn main() {
    let results = cardinality::run_all(2_000);
    print_tab4(&results);
}
