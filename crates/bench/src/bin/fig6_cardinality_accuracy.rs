//! Figure 6: cardinality-estimation accuracy per query-result-size range.

use setlearn_bench::printers::print_fig6;
use setlearn_bench::suites::cardinality;

fn main() {
    let results = cardinality::run_all(2_000);
    print_fig6(&results);
}
