//! Ablation: sum vs mean vs max pooling on the cardinality task
//! (DESIGN.md §4 — the paper's compressed architecture uses sum).

use setlearn::model::Pooling;
use setlearn::tasks::LearnedCardinality;
use setlearn_bench::configs::{cardinality_config, Variant};
use setlearn_bench::datasets::BenchDataset;
use setlearn_bench::metrics::avg_q_error;
use setlearn_bench::report::{qe, Table};
use setlearn_bench::suites::cardinality::eval_sample;
use setlearn_data::{Dataset, SubsetIndex};

fn main() {
    let bench = BenchDataset::load(Dataset::Rw200k);
    let collection = &bench.collection;
    let subsets = SubsetIndex::build(collection, 3);
    let eval = eval_sample(&subsets, 2_000);

    let mut t = Table::new(vec!["pooling", "avg q-error (eval)"]);
    for (name, pooling) in
        [("sum", Pooling::Sum), ("mean", Pooling::Mean), ("max", Pooling::Max)]
    {
        let mut cfg = cardinality_config(collection.num_elements(), Variant::Lsm, 1.0);
        cfg.model.pooling = pooling;
        let (est, _) = LearnedCardinality::build_from_subsets(&subsets, &cfg);
        let p: Vec<(f64, f64)> =
            eval.iter().map(|(s, c)| (est.estimate_model_only(s), *c as f64)).collect();
        t.row(vec![name.to_string(), qe(avg_q_error(&p))]);
    }
    t.print("Ablation — pooling operator (cardinality, RW-200k shape)");
    println!(
        "Sum pooling carries set-size information that cardinality estimation \
         needs; mean discards it and max keeps only feature extrema."
    );
}
