//! Ablation: DeepSets vs Set Transformer (paper §3.2) — accuracy, latency,
//! and model size on the cardinality task. The paper chooses DeepSets
//! because the attention model's accuracy edge on simple tasks does not
//! justify its cost.

use rand::rngs::StdRng;
use rand::SeedableRng;
use setlearn::model::DeepSets;
use setlearn::settransformer::{SetTransformer, SetTransformerConfig};
use setlearn_bench::configs::{cardinality_config, Variant};
use setlearn_bench::datasets::BenchDataset;
use setlearn_bench::metrics::avg_q_error;
use setlearn_bench::report::{mb, ms, qe, Table};
use setlearn_bench::suites::cardinality::eval_sample;
use setlearn_bench::timing::{avg_latency_ms, timed};
use setlearn_data::{Dataset, ElementSet, SubsetIndex};
use setlearn_nn::{LogMinMaxScaler, Loss, Optimizer};

fn main() {
    let bench = BenchDataset::load(Dataset::Rw200k);
    let collection = &bench.collection;
    let vocab = collection.num_elements();
    let subsets = SubsetIndex::build(collection, 3);
    let pairs = subsets.cardinality_pairs();
    let scaler = LogMinMaxScaler::from_range(1.0, subsets.max_cardinality() as f64);
    let data: Vec<(ElementSet, f32)> =
        pairs.iter().map(|(s, c)| (s.clone(), scaler.scale(*c))).collect();
    let eval = eval_sample(&subsets, 2_000);
    let loss = Loss::QError { span: scaler.span() };
    let epochs = 25;

    let mut t = Table::new(vec![
        "model",
        "avg q-error",
        "ms/query",
        "size (MB)",
        "train (s)",
    ]);

    // DeepSets (LSM).
    let cfg = cardinality_config(vocab, Variant::Lsm, 1.0);
    let mut ds = DeepSets::new(cfg.model.clone());
    ds.zero_grad();
    let mut opt = Optimizer::adam(3e-3);
    let mut rng = StdRng::seed_from_u64(1);
    let (_, ds_train) = timed(|| {
        for _ in 0..epochs {
            ds.train_epoch(&data, loss, &mut opt, 128, &mut rng);
        }
    });
    let p: Vec<(f64, f64)> = eval
        .iter()
        .map(|(s, c)| (scaler.unscale(ds.predict_one(s)), *c as f64))
        .collect();
    let lat = avg_latency_ms(&eval, |(s, _)| {
        std::hint::black_box(ds.predict_one(s));
    });
    t.row(vec![
        "DeepSets".to_string(),
        qe(avg_q_error(&p)),
        ms(lat),
        mb(ds.size_bytes()),
        format!("{ds_train:.1}"),
    ]);

    // Set Transformer.
    let mut st = SetTransformer::new(SetTransformerConfig::new(vocab));
    st.zero_grad();
    let mut opt = Optimizer::adam(3e-3);
    let mut rng = StdRng::seed_from_u64(1);
    let (_, st_train) = timed(|| {
        for _ in 0..epochs {
            st.train_epoch(&data, loss, &mut opt, 128, &mut rng);
        }
    });
    let p: Vec<(f64, f64)> = eval
        .iter()
        .map(|(s, c)| (scaler.unscale(st.predict_one(s)), *c as f64))
        .collect();
    let lat = avg_latency_ms(&eval, |(s, _)| {
        std::hint::black_box(st.predict_one(s));
    });
    t.row(vec![
        "SetTransformer".to_string(),
        qe(avg_q_error(&p)),
        ms(lat),
        mb(st.size_bytes()),
        format!("{st_train:.1}"),
    ]);

    t.print("Ablation — DeepSets vs Set Transformer (cardinality, RW-200k shape)");
    println!(
        "The paper (§3.2) picks DeepSets: comparable accuracy on these tasks at a \
         fraction of the execution time and memory."
    );
}
