//! Ablation: Algorithm 1's lossless quotient/remainder compression vs the
//! lossy hashing trick at a matched parameter budget (cardinality task).
//!
//! The paper's compression is invertible — distinct ids stay distinct —
//! while hash buckets alias rare elements together. This bench measures what
//! that aliasing costs.

use setlearn::model::CompressionKind;
use setlearn::tasks::LearnedCardinality;
use setlearn::CompressionSpec;
use setlearn_bench::configs::{cardinality_config, Variant};
use setlearn_bench::datasets::BenchDataset;
use setlearn_bench::metrics::avg_q_error;
use setlearn_bench::report::{mb, qe, Table};
use setlearn_bench::suites::cardinality::eval_sample;
use setlearn_data::{Dataset, SubsetIndex};

fn main() {
    let bench = BenchDataset::load(Dataset::Rw200k);
    let collection = &bench.collection;
    let vocab = collection.num_elements();
    let subsets = SubsetIndex::build(collection, 3);
    let eval = eval_sample(&subsets, 2_000);

    // Match the hashed table's budget to the CLSM sub-tables.
    let spec = CompressionSpec::optimal(vocab.saturating_sub(1).max(1), 2);
    let clsm_rows = spec.sub_vocab(0) + spec.sub_vocab(1);

    let settings: Vec<(&str, CompressionKind)> = vec![
        ("CLSM (Algorithm 1, lossless)", CompressionKind::Optimal { ns: 2 }),
        (
            "hashed, k=2 (lossy, same rows)",
            CompressionKind::Hashed { buckets: clsm_rows, num_hashes: 2 },
        ),
        (
            "hashed, k=1 (lossy, same rows)",
            CompressionKind::Hashed { buckets: clsm_rows, num_hashes: 1 },
        ),
    ];

    let mut t = Table::new(vec!["encoder", "avg q-error", "model (MB)"]);
    for (label, compression) in settings {
        let mut cfg = cardinality_config(vocab, Variant::Clsm, 1.0);
        cfg.model.compression = compression;
        let (est, _) = LearnedCardinality::build_from_subsets(&subsets, &cfg);
        let pairs: Vec<(f64, f64)> = eval
            .iter()
            .map(|(s, c)| (est.estimate_model_only(s), *c as f64))
            .collect();
        t.row(vec![
            label.to_string(),
            qe(avg_q_error(&pairs)),
            mb(est.model_size_bytes()),
        ]);
    }
    t.print("Ablation — Algorithm 1 compression vs hashing trick (RW-200k shape)");
    println!(
        "Losslessness matters: divmod sub-elements keep distinct ids distinct, \
         hash buckets alias the Zipf tail together."
    );
}
