//! Runs every table and figure of the paper in sequence, sharing work where
//! the paper's tables reuse the same trained models.

use setlearn_bench::printers::*;
use setlearn_bench::suites::{bloom, cardinality, digits, engine, index};
use setlearn_bench::timing::timed;
use setlearn_data::Dataset;

fn main() {
    let (_, total) = timed(|| {
        println!("setlearn — full experiment suite (scale x{})", setlearn_bench::datasets::scale_from_env());

        // Figures 3 and 8 are analytic.
        run_fig3();
        run_fig8();

        // Cardinality: Fig 6 + Tables 3/4 share the trained models.
        let card = cardinality::run_all(2_000);
        print_fig6(&card);
        print_tab3(&card);
        print_tab4(&card);

        // Index: Table 5 (accuracy sweep), Table 6 (divisor sweep),
        // Tables 7/8 (+§8.3.3) share the structure runs.
        let mut tab5 = Vec::new();
        for d in Dataset::ALL {
            tab5.extend(index::run_accuracy(d, 1_000));
        }
        print_tab5(&tab5);
        print_tab6(&index::run_compression_factor(1_000));
        let structures: Vec<_> =
            Dataset::ALL.iter().map(|&d| index::run_structure(d, 1_000, 0.9)).collect();
        print_tab7(&structures);
        print_tab8(&structures);

        // Bloom: Tables 9/10/11 share the trained filters.
        let blooms = bloom::run_all(2_000, 2_000);
        print_bloom(&blooms);

        // Figure 7 digit-sum generalization.
        let f7a = digits::run(&digits::DigitSuiteConfig::new(10));
        print_fig7("Figure 7a — digit-sum MAE, values in [1, 10]", &f7a);
        let f7b = digits::run(&digits::DigitSuiteConfig::new(100));
        print_fig7("Figure 7b — digit-sum MAE, values in [1, 100]", &f7b);

        // Table 12 engine integration.
        print_tab12(&engine::run(2_000));

        // Every serve call above went through the instrumented task heads at
        // the default Metrics level, so the suite run doubles as a telemetry
        // smoke check: dump what the registry accumulated.
        print_telemetry_appendix();
    });
    println!("\nTotal suite wall-clock: {total:.1}s");
}

fn print_telemetry_appendix() {
    let snap = setlearn_obs::metrics().snapshot();
    println!("\n== Telemetry appendix — metrics recorded during the suite ==\n");
    println!("{}", setlearn_obs::to_table(&snap));
}

fn run_fig3() {
    use setlearn::memory::fig3_series;
    use setlearn_bench::report::{mb, Table};
    let item_counts = [1_000usize, 10_000, 100_000, 1_000_000];
    let mut t = Table::new(vec!["items", "emb dim=25 MB", "emb dim=100 MB", "bloom 0.1 MB", "bloom 0.001 MB"]);
    let e25 = fig3_series(25, 0.1, &item_counts);
    let e100 = fig3_series(100, 0.1, &item_counts);
    let b1 = fig3_series(25, 0.1, &item_counts);
    let b3 = fig3_series(25, 0.001, &item_counts);
    for i in 0..item_counts.len() {
        t.row(vec![
            item_counts[i].to_string(),
            mb(e25[i].embedding),
            mb(e100[i].embedding),
            mb(b1[i].bloom),
            mb(b3[i].bloom),
        ]);
    }
    t.print("Figure 3 — embedding vs Bloom filter size (condensed)");
}

fn run_fig8() {
    use setlearn::compress::CompressionSpec;
    use setlearn_bench::report::Table;
    let mut t = Table::new(vec!["max elements", "ns=1 (none)", "ns=2", "ns=3", "ns=4"]);
    for max_id in [100_000u32, 1_000_000] {
        let mut row = vec![
            format!("{}", max_id as u64 + 1),
            CompressionSpec::uncompressed_input_dims(max_id).to_string(),
        ];
        for ns in 2..=4usize {
            row.push(CompressionSpec::optimal(max_id, ns).input_dims().to_string());
        }
        t.row(row);
    }
    t.print("Figure 8 — input dimensions vs ns (condensed)");
}
