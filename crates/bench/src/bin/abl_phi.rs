//! Ablation: φ must be a *nonlinear* transformation after the sub-element
//! concatenation (paper §5). A linear φ distributes over the sum pooling, so
//! sets with swapped quotient/remainder pairings collapse to the same
//! representation.

use setlearn::model::{CompressionKind, DeepSets, DeepSetsConfig, Pooling};
use setlearn::tasks::{CardinalityConfig, LearnedCardinality};
use setlearn_bench::configs::{cardinality_config, Variant};
use setlearn_bench::datasets::BenchDataset;
use setlearn_bench::metrics::avg_q_error;
use setlearn_bench::report::{qe, Table};
use setlearn_bench::suites::cardinality::eval_sample;
use setlearn_data::{Dataset, SubsetIndex};
use setlearn_nn::Activation;

fn swapped_pair_gap(cfg: &DeepSetsConfig) -> f32 {
    // 91 = (1, 9) and 12 = (2, 1) vs 92 = (2, 9) and 11 = (1, 1) under
    // divisor 10: same multiset of sub-elements, different pairings.
    let model = DeepSets::new(DeepSetsConfig {
        vocab: 100,
        compression: CompressionKind::Divisor { ns: 2, divisor: 10 },
        ..cfg.clone()
    });
    (model.predict_one(&[12, 91]) - model.predict_one(&[11, 92])).abs()
}

fn main() {
    let bench = BenchDataset::load(Dataset::Rw200k);
    let collection = &bench.collection;
    let subsets = SubsetIndex::build(collection, 3);
    let eval = eval_sample(&subsets, 2_000);

    let mut t = Table::new(vec!["phi", "swapped-pair gap", "avg q-error (eval)"]);
    for (name, act) in [("nonlinear (ReLU)", Activation::Relu), ("linear (Identity)", Activation::Identity)] {
        let mut cfg: CardinalityConfig =
            cardinality_config(collection.num_elements(), Variant::Clsm, 1.0);
        cfg.model.hidden_activation = act;
        cfg.model.pooling = Pooling::Sum;
        let gap = swapped_pair_gap(&cfg.model);
        let (est, _) = LearnedCardinality::build_from_subsets(&subsets, &cfg);
        let p: Vec<(f64, f64)> =
            eval.iter().map(|(s, c)| (est.estimate_model_only(s), *c as f64)).collect();
        t.row(vec![name.to_string(), format!("{gap:.6}"), qe(avg_q_error(&p))]);
    }
    t.print("Ablation — φ nonlinearity in the compressed model (paper §5)");
    println!(
        "A zero swapped-pair gap means the model cannot tell apart sets whose \
         quotient/remainder pairings differ — exactly the failure §5 warns about."
    );
}
