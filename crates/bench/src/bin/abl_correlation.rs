//! Ablation: learned estimator vs the independence assumption on correlated
//! data — the classic motivation for learned cardinality estimation. On a
//! collection where element pairs co-occur, the independence baseline
//! systematically underestimates pair queries; the DeepSets model learns the
//! correlation.

use setlearn::tasks::LearnedCardinality;
use setlearn_baselines::IndependenceEstimator;
use setlearn_bench::configs::{cardinality_config, Variant};
use setlearn_bench::metrics::avg_q_error;
use setlearn_bench::report::{qe, Table};
use setlearn_data::{GeneratorConfig, SubsetIndex};

fn main() {
    let collection = GeneratorConfig {
        num_sets: 6_000,
        vocab: 256,
        zipf_s: 0.6,
        min_set_size: 4,
        max_set_size: 6,
        seed: 5,
    }
    .generate_correlated(0.9);
    let subsets = SubsetIndex::build(&collection, 2);

    let mut cfg = cardinality_config(collection.num_elements(), Variant::Lsm, 1.0);
    // Correlations need more optimization than the marginal patterns of the
    // main suite; give the model a longer schedule.
    cfg.guided.warmup_epochs = 60;
    cfg.guided.epochs_per_round = 20;
    cfg.guided.learning_rate = 5e-3;
    let (learned, _) = LearnedCardinality::build_from_subsets(&subsets, &cfg);
    let indep = IndependenceEstimator::build(&collection);

    // Evaluate on the correlated pairs specifically, and on all subsets.
    let mut pair_l = Vec::new();
    let mut pair_i = Vec::new();
    let mut all_l = Vec::new();
    let mut all_i = Vec::new();
    for (s, info) in subsets.iter() {
        let truth = info.count as f64;
        let l = (learned.estimate_model_only(s), truth);
        let i = (indep.estimate(s), truth);
        // Focus the pair bucket on pairs frequent enough to carry a real
        // correlation signal (rare tail pairs are noise for both).
        if s.len() == 2 && s[1] == s[0] + 1 && s[0] % 2 == 0 && info.count >= 10 {
            pair_l.push(l);
            pair_i.push(i);
        }
        all_l.push(l);
        all_i.push(i);
    }

    let mut t = Table::new(vec!["estimator", "qerr (correlated pairs)", "qerr (all subsets)"]);
    t.row(vec![
        "learned (LSM)".to_string(),
        qe(avg_q_error(&pair_l)),
        qe(avg_q_error(&all_l)),
    ]);
    t.row(vec![
        "independence".to_string(),
        qe(avg_q_error(&pair_i)),
        qe(avg_q_error(&all_i)),
    ]);
    t.print(&format!(
        "Ablation — learned vs independence assumption ({} correlated-pair queries)",
        pair_l.len()
    ));
    println!(
        "Independence multiplies marginal selectivities and misses the pair \
         correlation entirely; the set model learns it from the subsets."
    );
}
