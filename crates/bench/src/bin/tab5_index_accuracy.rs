//! Table 5: index accuracy across outlier-removal percentiles.

use setlearn_bench::printers::print_tab5;
use setlearn_bench::suites::index;
use setlearn_data::Dataset;

fn main() {
    let mut rows = Vec::new();
    for d in Dataset::ALL {
        rows.extend(index::run_accuracy(d, 2_000));
    }
    print_tab5(&rows);
}
