//! Planner bench: the cost-based planner against both static strategies on
//! a skewed workload.
//!
//! The collection is bimodal: *head* elements appear in ~90% of rows (huge
//! posting lists), while *tail* elements appear in a handful of rows each
//! (tiny posting lists). The workload mixes
//!
//! - tail queries, where the inverted index is orders of magnitude faster
//!   than a sequential scan, and
//! - multi-element containments over head elements, where the index path
//!   must intersect several near-full posting lists (and allocate the large
//!   intermediates) while the seq scan touches each row once.
//!
//! No static choice wins both halves; the planner picks per query and must
//! land within 1.1x of the best static strategy while beating the worst by
//! at least 1.5x.
//!
//! Env knobs for CI: `PLANNER_BENCH_ROWS` (default 20000),
//! `PLANNER_BENCH_QUERIES` (queries per workload half, default 60).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use setlearn_bench::timing::timed;
use setlearn_data::SetCollection;
use setlearn_engine::{Engine, ExecMode, SetTable};

const VOCAB: u32 = 1_000;
const HEAD: u32 = 10; // elements 0..HEAD are hot
const TAIL_START: u32 = 900; // elements TAIL_START..VOCAB are rare

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Bimodal skewed collection: every row holds ~90% of the head elements plus
/// two mid-range ones; roughly one row in 400 also carries a tail element.
fn skewed_collection(rows: usize, rng: &mut StdRng) -> SetCollection {
    let raw: Vec<Vec<u32>> = (0..rows)
        .map(|_| {
            let mut set: Vec<u32> =
                (0..HEAD).filter(|_| rng.gen_range(0..10u32) < 9).collect();
            set.push(rng.gen_range(HEAD..TAIL_START));
            set.push(rng.gen_range(HEAD..TAIL_START));
            if rng.gen_range(0..400u32) == 0 {
                set.push(rng.gen_range(TAIL_START..VOCAB));
            }
            set
        })
        .collect();
    SetCollection::new(raw, VOCAB)
}

/// The two workload halves, as WHERE clauses.
fn workload(per_half: usize, rng: &mut StdRng) -> Vec<String> {
    let mut filters = Vec::with_capacity(per_half * 2);
    for _ in 0..per_half {
        // Tail half: AND of two rare elements — tiny posting lists, so the
        // index answers in microseconds while a seq scan walks every row.
        let a = rng.gen_range(TAIL_START..VOCAB);
        let b = rng.gen_range(TAIL_START..VOCAB);
        filters.push(format!("tags @> {{{a}}} AND tags @> {{{b}}}"));
        // Head half: containment of several hot elements — every posting
        // list holds ~0.9N rows, so the index path walks and intersects
        // near-full lists while the seq scan checks each row once.
        let mut heads: Vec<u32> = (0..HEAD).collect();
        for i in (1..heads.len()).rev() {
            heads.swap(i, rng.gen_range(0..i + 1));
        }
        let ids: Vec<String> = heads[..6].iter().map(u32::to_string).collect();
        filters.push(format!("tags @> {{{}}}", ids.join(",")));
    }
    filters
}

/// Runs every query under one strategy (`hint` empty = let the planner
/// choose), returning (total seconds, counts, per-path plan tally).
fn run_strategy(engine: &Engine, filters: &[String], hint: &str) -> (f64, Vec<f64>, [usize; 2]) {
    let mut counts = Vec::with_capacity(filters.len());
    let mut tally = [0usize; 2]; // [seqscan, index]
    let (_, secs) = timed(|| {
        for f in filters {
            let sql = format!("SELECT COUNT(*) FROM logs WHERE {f}{hint}");
            let r = engine.execute_sql(&sql).expect("query runs");
            assert!(r.exact, "no estimator registered; every path is exact");
            match r.mode {
                ExecMode::SeqScan => tally[0] += 1,
                ExecMode::Index => tally[1] += 1,
                ExecMode::Estimate => unreachable!("no estimator registered"),
            }
            counts.push(r.count);
        }
    });
    (secs, counts, tally)
}

/// Min-of-reps total for one strategy, checking answers agree across reps.
fn best_of(engine: &Engine, filters: &[String], hint: &str, reps: usize) -> (f64, Vec<f64>, [usize; 2]) {
    let mut best: Option<(f64, Vec<f64>, [usize; 2])> = None;
    for _ in 0..reps {
        let run = run_strategy(engine, filters, hint);
        best = match best {
            Some(prev) if prev.0 <= run.0 => Some(prev),
            _ => Some(run),
        };
    }
    best.expect("reps >= 1")
}

fn main() {
    let rows = env_usize("PLANNER_BENCH_ROWS", 20_000);
    let per_half = env_usize("PLANNER_BENCH_QUERIES", 60);
    let mut rng = StdRng::seed_from_u64(0x5e7_1ea1);

    let collection = skewed_collection(rows, &mut rng);
    let filters = workload(per_half, &mut rng);

    let engine = Engine::new();
    engine.create_table(SetTable::from_collection("logs", collection), "tags");
    engine.create_index("logs").expect("index builds");

    println!(
        "planner_bench: rows={rows} queries={} (tail-AND + head-containment halves)",
        filters.len()
    );

    let (seq_secs, seq_counts, _) = best_of(&engine, &filters, " USING seqscan", 3);
    let (idx_secs, idx_counts, _) = best_of(&engine, &filters, " USING index", 3);
    let (plan_secs, plan_counts, tally) = best_of(&engine, &filters, "", 3);

    assert_eq!(seq_counts, idx_counts, "static strategies disagree on answers");
    assert_eq!(seq_counts, plan_counts, "planner changed query answers");

    let best = seq_secs.min(idx_secs);
    let worst = seq_secs.max(idx_secs);
    println!("  always-seqscan : {:8.1} ms", seq_secs * 1e3);
    println!("  always-index   : {:8.1} ms", idx_secs * 1e3);
    println!(
        "  planner        : {:8.1} ms  (chose seqscan x{}, index x{})",
        plan_secs * 1e3,
        tally[0],
        tally[1]
    );
    println!(
        "  planner vs best static: {:.2}x   worst static vs planner: {:.2}x",
        plan_secs / best,
        worst / plan_secs
    );

    // The acceptance bar: adaptive planning is never meaningfully worse than
    // the best static choice and clearly beats the worst one.
    assert!(
        plan_secs <= best * 1.1,
        "planner {plan_secs:.4}s must be within 1.1x of best static {best:.4}s"
    );
    assert!(
        worst >= plan_secs * 1.5,
        "worst static {worst:.4}s must be at least 1.5x the planner {plan_secs:.4}s"
    );
    // The skew must actually exercise both paths.
    assert!(tally[0] > 0 && tally[1] > 0, "planner never switched paths: {tally:?}");
    println!("planner_bench: OK");
}
