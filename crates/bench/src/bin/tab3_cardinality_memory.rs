//! Table 3: memory consumption for the cardinality-estimation task.

use setlearn_bench::printers::print_tab3;
use setlearn_bench::suites::cardinality;

fn main() {
    let results = cardinality::run_all(2_000);
    print_tab3(&results);
}
