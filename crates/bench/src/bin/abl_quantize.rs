//! Ablation: f16 weight quantization — accuracy cost vs the halved storage
//! footprint, on trained cardinality models.

use setlearn::quantize::quantized_size_bytes;
use setlearn::tasks::LearnedCardinality;
use setlearn_bench::configs::{cardinality_config, Variant};
use setlearn_bench::datasets::BenchDataset;
use setlearn_bench::metrics::avg_q_error;
use setlearn_bench::report::{mb, qe, Table};
use setlearn_bench::suites::cardinality::eval_sample;
use setlearn_data::{Dataset, SubsetIndex};

fn main() {
    let bench = BenchDataset::load(Dataset::Rw200k);
    let collection = &bench.collection;
    let subsets = SubsetIndex::build(collection, 3);
    let eval = eval_sample(&subsets, 2_000);

    let mut t = Table::new(vec!["variant", "precision", "avg q-error", "weights (MB)"]);
    for variant in [Variant::Lsm, Variant::Clsm] {
        let cfg = cardinality_config(collection.num_elements(), variant, 1.0);
        let (mut est, _) = LearnedCardinality::build_from_subsets(&subsets, &cfg);

        let qerr = |est: &LearnedCardinality| {
            let pairs: Vec<(f64, f64)> = eval
                .iter()
                .map(|(s, c)| (est.estimate_model_only(s), *c as f64))
                .collect();
            avg_q_error(&pairs)
        };

        t.row(vec![
            variant.name().to_string(),
            "f32".into(),
            qe(qerr(&est)),
            mb(est.model().size_bytes()),
        ]);
        est.quantize_weights();
        t.row(vec![
            variant.name().to_string(),
            "f16".into(),
            qe(qerr(&est)),
            mb(quantized_size_bytes(est.model())),
        ]);
    }
    t.print("Ablation — f16 weight quantization (cardinality, RW-200k shape)");
    println!("Half the storage for a near-zero accuracy perturbation on these models.");
}
