//! Ablation: serve-precision trade-off — accuracy cost vs weight footprint
//! for the frozen f16 and q8 inference kernels, on trained cardinality
//! models.
//!
//! Two footprints matter and they differ: f16 rounds weights so checkpoints
//! *store* half the bytes but the kernel still serves from f32 values, while
//! q8 packs dense weights to one byte each and serves from the pack.

use setlearn::kernel::Precision;
use setlearn::quantize::quantized_size_bytes;
use setlearn::tasks::LearnedCardinality;
use setlearn_bench::configs::{cardinality_config, Variant};
use setlearn_bench::datasets::BenchDataset;
use setlearn_bench::metrics::avg_q_error;
use setlearn_bench::report::{mb, qe, Table};
use setlearn_bench::suites::cardinality::eval_sample;
use setlearn_data::{Dataset, SubsetIndex};

fn main() {
    let bench = BenchDataset::load(Dataset::Rw200k);
    let collection = &bench.collection;
    let subsets = SubsetIndex::build(collection, 3);
    let eval = eval_sample(&subsets, 2_000);

    let mut t =
        Table::new(vec!["variant", "precision", "avg q-error", "kernel (MB)", "storable (MB)"]);
    for variant in [Variant::Lsm, Variant::Clsm] {
        let cfg = cardinality_config(collection.num_elements(), variant, 1.0);
        let (mut est, _) = LearnedCardinality::build_from_subsets(&subsets, &cfg);

        let qerr = |est: &LearnedCardinality| {
            let pairs: Vec<(f64, f64)> = eval
                .iter()
                .map(|(s, c)| (est.estimate_model_only(s), *c as f64))
                .collect();
            avg_q_error(&pairs)
        };

        for precision in [Precision::F32, Precision::F16, Precision::Q8] {
            est.set_precision(precision);
            // Computing the q-error freezes the kernel, so its footprint is
            // available afterwards without a second freeze.
            let err = qerr(&est);
            let kernel_bytes = est.kernel().size_bytes();
            let storable = match precision {
                Precision::F32 => est.model().size_bytes(),
                Precision::F16 => quantized_size_bytes(est.model()),
                // The q8 pack (i8 codes + per-column scales + f32 biases) is
                // self-contained, so it is also the storable form.
                Precision::Q8 => kernel_bytes,
            };
            t.row(vec![
                variant.name().to_string(),
                precision.to_string(),
                qe(err),
                mb(kernel_bytes),
                mb(storable),
            ]);
        }
    }
    t.print("Ablation — serve precision (cardinality, RW-200k shape)");
    println!(
        "f16 halves storable bytes at near-zero accuracy cost; q8 quarters the \
         resident kernel too, at a still-small q-error premium."
    );
}
