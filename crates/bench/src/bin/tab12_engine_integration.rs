//! Table 12: the CLSM estimator as a UDF inside the mini engine vs exact
//! COUNTs with and without an inverted index.

use setlearn_bench::printers::print_tab12;
use setlearn_bench::suites::engine;

fn main() {
    print_tab12(&engine::run(2_000));
}
