//! Figure 3: size of the shared embedding matrix vs a Bloom filter across
//! embedding dimensions and false-positive rates.

use setlearn::memory::fig3_series;
use setlearn_bench::report::{mb, Table};

fn main() {
    let item_counts = [1_000usize, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000];
    for dim in [25usize, 50, 100] {
        let mut t = Table::new(vec![
            "items".to_string(),
            format!("embedding(dim={dim}) MB"),
            "bloom(fp=0.1) MB".into(),
            "bloom(fp=0.01) MB".into(),
            "bloom(fp=0.001) MB".into(),
        ]);
        let e = fig3_series(dim, 0.1, &item_counts);
        let b1 = fig3_series(dim, 0.1, &item_counts);
        let b2 = fig3_series(dim, 0.01, &item_counts);
        let b3 = fig3_series(dim, 0.001, &item_counts);
        for i in 0..item_counts.len() {
            t.row(vec![
                item_counts[i].to_string(),
                mb(e[i].embedding),
                mb(b1[i].bloom),
                mb(b2[i].bloom),
                mb(b3[i].bloom),
            ]);
        }
        t.print(&format!("Figure 3 — embedding vs Bloom filter size (dim {dim})"));
    }
    println!(
        "Takeaway: as item counts grow, the uncompressed embedding matrix always \
         overtakes every Bloom-filter configuration — the motivation for §5's \
         per-element compression."
    );
}
