//! Shared table printers for the experiment binaries.

use crate::report::{mb, ms, qe, Table};
use crate::suites::bloom::BloomDatasetResult;
use crate::suites::cardinality::CardinalityDatasetResult;
use crate::suites::digits::DigitRun;
use crate::suites::engine::EngineIntegrationResult;
use crate::suites::index::{CompressionFactorRow, IndexAccuracyRow, IndexStructureResult};

/// Figure 6: q-error per result-size bucket, per dataset.
pub fn print_fig6(results: &[CardinalityDatasetResult]) {
    for r in results {
        let mut headers = vec!["variant".to_string()];
        if let Some(first) = r.runs.first() {
            headers.extend(first.q_error_buckets.iter().map(|(l, _, _)| format!("qerr[{l}]")));
        }
        headers.push("avg".into());
        let mut t = Table::new(headers);
        for run in &r.runs {
            let mut row = vec![run.label.clone()];
            row.extend(run.q_error_buckets.iter().map(|(_, q, n)| {
                if *n == 0 {
                    "-".to_string()
                } else {
                    qe(*q)
                }
            }));
            row.push(qe(run.avg_q_error));
            t.row(row);
        }
        t.print(&format!(
            "Figure 6 — cardinality accuracy by query result size ({}, {} queries)",
            r.dataset, r.num_queries
        ));
    }
}

/// Table 3: memory for the cardinality task.
pub fn print_tab3(results: &[CardinalityDatasetResult]) {
    let mut headers = vec!["Datasets".to_string()];
    if let Some(first) = results.first() {
        headers.extend(first.runs.iter().map(|run| run.label.clone()));
    }
    headers.push("HashMap".into());
    let mut t = Table::new(headers);
    for r in results {
        let mut row = vec![r.dataset.to_string()];
        row.extend(r.runs.iter().map(|run| mb(run.memory_bytes)));
        row.push(mb(r.hashmap_bytes));
        t.row(row);
    }
    t.print("Table 3 — memory consumption (MB), cardinality estimation");
}

/// Table 4: execution time for the cardinality task.
pub fn print_tab4(results: &[CardinalityDatasetResult]) {
    let mut headers = vec!["Datasets".to_string()];
    if let Some(first) = results.first() {
        headers.extend(first.runs.iter().map(|run| run.label.clone()));
    }
    headers.push("HashMap".into());
    let mut t = Table::new(headers);
    for r in results {
        let mut row = vec![r.dataset.to_string()];
        row.extend(r.runs.iter().map(|run| ms(run.latency_ms)));
        row.push(ms(r.hashmap_latency_ms));
        t.row(row);
    }
    t.print("Table 4 — execution time (ms/query), cardinality estimation");
    // §8.1 training-time commentary.
    let mut tt = Table::new(vec!["Datasets", "variant", "s/epoch", "HashMap build (s)"]);
    for r in results {
        for run in &r.runs {
            tt.row(vec![
                r.dataset.to_string(),
                run.label.clone(),
                format!("{:.3}", run.seconds_per_epoch),
                format!("{:.3}", r.hashmap_build_secs),
            ]);
        }
    }
    tt.print("§8.1 — cardinality training time per epoch / competitor build time");
}

/// Table 5: index accuracy across outlier-removal percentiles.
pub fn print_tab5(rows: &[IndexAccuracyRow]) {
    if rows.is_empty() {
        return;
    }
    let mut headers = vec!["Datasets".to_string(), "variant".into(), "metric".into()];
    headers.extend(rows[0].cells.iter().map(|c| c.percentile.clone()));
    let mut t = Table::new(headers);
    for row in rows {
        let mut q = vec![row.dataset.to_string(), row.variant.clone(), "avg q-error".into()];
        q.extend(row.cells.iter().map(|c| qe(c.avg_q_error)));
        t.row(q);
        let mut a = vec![row.dataset.to_string(), row.variant.clone(), "avg abs-error".into()];
        a.extend(row.cells.iter().map(|c| format!("{:.2}", c.avg_abs_error)));
        t.row(a);
    }
    t.print("Table 5 — index accuracy (q-error / abs-error) vs percentile threshold");
}

/// Table 6: tunable compression divisor.
pub fn print_tab6(rows: &[CompressionFactorRow]) {
    let mut t = Table::new(vec!["sv_d", "Accuracy (Q-error)", "Memory (MB)", "Training Time (s)"]);
    for r in rows {
        t.row(vec![
            r.label.clone(),
            qe(r.avg_q_error),
            mb(r.model_bytes),
            format!("{:.2}", r.training_secs),
        ]);
    }
    t.print("Table 6 — impact of compression factor sv_d (Tweets, index task)");
}

/// Table 7: index memory.
pub fn print_tab7(results: &[IndexStructureResult]) {
    let mut t = Table::new(vec![
        "Datasets",
        "variant",
        "Model (MB)",
        "Aux.Str. (MB)",
        "Err (MB)",
        "B+ Tree (MB)",
    ]);
    for r in results {
        for (label, model, aux, err) in &r.hybrid_memory {
            t.row(vec![
                r.dataset.to_string(),
                label.clone(),
                mb(*model),
                mb(*aux),
                mb(*err),
                mb(r.btree_bytes),
            ]);
        }
    }
    t.print("Table 7 — memory consumption (MB), index task");
}

/// Table 8: index execution time plus the §8.3.3 local-vs-global analysis.
pub fn print_tab8(results: &[IndexStructureResult]) {
    let mut t = Table::new(vec!["Datasets", "variant", "ms/query", "B+ Tree ms/query"]);
    for r in results {
        for (label, latency) in &r.hybrid_latency {
            t.row(vec![
                r.dataset.to_string(),
                label.clone(),
                ms(*latency),
                ms(r.btree_latency_ms),
            ]);
        }
    }
    t.print("Table 8 — execution time (ms/query), index task");

    let mut l = Table::new(vec![
        "Datasets",
        "global max error",
        "mean local bound",
        "scanned/query (local)",
        "scan window (global)",
    ]);
    for r in results {
        l.row(vec![
            r.dataset.to_string(),
            format!("{:.0}", r.global_error),
            format!("{:.0}", r.mean_local_error),
            format!("{:.1}", r.mean_scanned_local),
            format!("{:.0}", r.mean_scanned_global),
        ]);
    }
    l.print("§8.3.3 — local vs global error bounds (LSM-Hybrid)");
}

/// Tables 9, 10, 11: the Bloom-filter task.
pub fn print_bloom(results: &[BloomDatasetResult]) {
    let mut t9 = Table::new(vec!["Datasets", "LSM", "CLSM"]);
    for r in results {
        t9.row(vec![
            r.dataset.to_string(),
            format!("{:.4}", r.accuracy[0].1),
            format!("{:.4}", r.accuracy[1].1),
        ]);
    }
    t9.print("Table 9 — binary accuracy, Bloom filter task");

    let mut t10 = Table::new(vec![
        "Datasets",
        "LSM",
        "CLSM",
        "BF 0.1",
        "BF 0.01",
        "BF 0.001",
    ]);
    for r in results {
        t10.row(vec![
            r.dataset.to_string(),
            mb(r.memory[0].1),
            mb(r.memory[1].1),
            mb(r.bloom[0].1),
            mb(r.bloom[1].1),
            mb(r.bloom[2].1),
        ]);
    }
    t10.print("Table 10 — memory consumption (MB), Bloom filter task");

    let mut t11 = Table::new(vec![
        "Datasets",
        "LSM",
        "CLSM",
        "BF 0.1",
        "BF 0.01",
        "BF 0.001",
    ]);
    for r in results {
        t11.row(vec![
            r.dataset.to_string(),
            ms(r.latency[0].1),
            ms(r.latency[1].1),
            ms(r.bloom[0].2),
            ms(r.bloom[1].2),
            ms(r.bloom[2].2),
        ]);
    }
    t11.print("Table 11 — execution time (ms/query), Bloom filter task");
}

/// Figure 7: digit-sum MAE series.
pub fn print_fig7(title: &str, runs: &[DigitRun]) {
    if runs.is_empty() {
        return;
    }
    let mut headers = vec!["M (test set size)".to_string()];
    headers.extend(runs.iter().map(|r| r.model.name().to_string()));
    let mut t = Table::new(headers);
    for (i, &(m, _)) in runs[0].mae_by_size.iter().enumerate() {
        let mut row = vec![m.to_string()];
        row.extend(runs.iter().map(|r| format!("{:.2}", r.mae_by_size[i].1)));
        t.row(row);
    }
    t.print(title);
    let mut m = Table::new(vec!["model", "memory (KB)", "training (s)"]);
    for r in runs {
        m.row(vec![
            r.model.name().to_string(),
            format!("{:.3}", r.memory_bytes as f64 / 1_000.0),
            format!("{:.1}", r.training_secs),
        ]);
    }
    m.print("Figure 7 — model memory and training time");
}

/// Table 12: engine integration.
pub fn print_tab12(r: &EngineIntegrationResult) {
    let mut t = Table::new(vec!["", "Engine w/o Index", "Engine w/ Index", "CLSM"]);
    t.row(vec![
        "Avg. Exec. Time (ms)".to_string(),
        ms(r.seqscan_ms),
        ms(r.index_ms),
        ms(r.clsm_ms),
    ]);
    t.row(vec![
        "Memory (MB)".to_string(),
        "-".into(),
        mb(r.index_bytes),
        mb(r.clsm_bytes),
    ]);
    t.row(vec![
        "Build Time (s)".to_string(),
        "-".into(),
        format!("{:.2}", r.index_build_secs),
        format!("{:.2}", r.clsm_build_secs),
    ]);
    t.print(&format!(
        "Table 12 — estimator inside the engine ({}, {} queries; CLSM avg q-error {:.3})",
        r.dataset, r.num_queries, r.clsm_avg_q_error
    ));
}
