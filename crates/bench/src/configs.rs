//! Model/training configurations matching the paper's §8.1 settings,
//! scaled for bench-mode epoch counts.

use setlearn::hybrid::GuidedConfig;
use setlearn::model::{CompressionKind, DeepSetsConfig, Pooling};
use setlearn::tasks::{BloomConfig, CardinalityConfig, IndexConfig};
use setlearn_nn::Activation;

/// Model variant labels used throughout the tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Non-compressed learned set model.
    Lsm,
    /// Compressed learned set model (`ns = 2`).
    Clsm,
}

impl Variant {
    /// Paper label.
    pub fn name(&self) -> &'static str {
        match self {
            Variant::Lsm => "LSM",
            Variant::Clsm => "CLSM",
        }
    }

    /// The encoder kind for this variant.
    pub fn compression(&self) -> CompressionKind {
        match self {
            Variant::Lsm => CompressionKind::None,
            Variant::Clsm => CompressionKind::Optimal { ns: 2 },
        }
    }
}

/// Base DeepSets config for a task. `neurons` is the paper's per-layer
/// width; embedding dims follow §8.1.
pub fn model_config(vocab: u32, embedding_dim: usize, neurons: usize, variant: Variant) -> DeepSetsConfig {
    DeepSetsConfig {
        vocab,
        embedding_dim,
        phi_hidden: vec![neurons],
        rho_hidden: vec![neurons],
        pooling: Pooling::Sum,
        hidden_activation: Activation::Relu,
        output_activation: Activation::Sigmoid,
        compression: variant.compression(),
        seed: 0xC0FFEE,
    }
}

/// Guided schedule: bench-mode epoch counts (the paper trains 50–100 epochs;
/// these defaults reach the same qualitative regime in less wall-clock).
pub fn guided(percentile: f64, seed: u64) -> GuidedConfig {
    GuidedConfig {
        warmup_epochs: 15,
        rounds: 1,
        epochs_per_round: 10,
        percentile,
        batch_size: 128,
        learning_rate: 3e-3,
        seed,
    }
}

/// Cardinality-task config (paper: 64–256 neurons).
pub fn cardinality_config(vocab: u32, variant: Variant, percentile: f64) -> CardinalityConfig {
    CardinalityConfig {
        model: model_config(vocab, 8, 64, variant),
        guided: guided(percentile, 17),
        max_subset_size: 3,
    }
}

/// Index-task config (paper: 8–32 neurons, range length 100).
pub fn index_config(vocab: u32, variant: Variant, percentile: f64) -> IndexConfig {
    IndexConfig {
        model: model_config(vocab, 8, 32, variant),
        guided: guided(percentile, 23),
        max_subset_size: 2,
        range_length: 100.0,
        target: setlearn::tasks::PositionTarget::First,
    }
}

/// Bloom-task config (paper §8.4: embedding 2, two 8-neuron layers,
/// 50 epochs).
pub fn bloom_config(vocab: u32, variant: Variant) -> BloomConfig {
    let mut model = model_config(vocab, 2, 8, variant);
    model.phi_hidden = vec![8];
    model.rho_hidden = vec![8];
    BloomConfig {
        model,
        epochs: 30,
        batch_size: 128,
        learning_rate: 5e-3,
        threshold: 0.5,
        backup_fp_rate: 0.01,
        seed: 29,
    }
}
