//! Accuracy metrics: q-error aggregation and Figure 6's result-size buckets.

use setlearn_nn::q_error;

/// The query-result-size ranges Figure 6 groups by (powers of ten).
pub const RESULT_SIZE_BUCKETS: [(u64, u64); 5] =
    [(1, 1), (2, 9), (10, 99), (100, 999), (1_000, u64::MAX)];

/// Human label for a bucket.
pub fn bucket_label(bucket: (u64, u64)) -> String {
    if bucket.1 == u64::MAX {
        format!(">={}", bucket.0)
    } else if bucket.0 == bucket.1 {
        format!("{}", bucket.0)
    } else {
        format!("{}-{}", bucket.0, bucket.1)
    }
}

/// Mean q-error of `(estimate, truth)` pairs.
pub fn avg_q_error(pairs: &[(f64, f64)]) -> f64 {
    if pairs.is_empty() {
        return f64::NAN;
    }
    pairs.iter().map(|&(e, t)| q_error(e, t, 1.0)).sum::<f64>() / pairs.len() as f64
}

/// Mean absolute error of `(estimate, truth)` pairs.
pub fn avg_abs_error(pairs: &[(f64, f64)]) -> f64 {
    if pairs.is_empty() {
        return f64::NAN;
    }
    pairs.iter().map(|&(e, t)| (e - t).abs()).sum::<f64>() / pairs.len() as f64
}

/// Buckets `(estimate, truth)` pairs by truth into [`RESULT_SIZE_BUCKETS`]
/// and returns the mean q-error per bucket (NaN where a bucket is empty).
pub fn q_error_by_result_size(pairs: &[(f64, f64)]) -> Vec<(String, f64, usize)> {
    RESULT_SIZE_BUCKETS
        .iter()
        .map(|&(lo, hi)| {
            let in_bucket: Vec<(f64, f64)> = pairs
                .iter()
                .copied()
                .filter(|&(_, t)| (t as u64) >= lo && (t as u64) <= hi)
                .collect();
            (bucket_label((lo, hi)), avg_q_error(&in_bucket), in_bucket.len())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_q_error_of_perfect_predictions_is_one() {
        assert_eq!(avg_q_error(&[(3.0, 3.0), (10.0, 10.0)]), 1.0);
    }

    #[test]
    fn bucketing_routes_by_truth() {
        let pairs = [(1.0, 1.0), (20.0, 10.0), (2_000.0, 1_000.0)];
        let buckets = q_error_by_result_size(&pairs);
        assert_eq!(buckets[0].2, 1); // truth 1
        assert_eq!(buckets[2].2, 1); // truth 10
        assert_eq!(buckets[4].2, 1); // truth 1000
        assert_eq!(buckets[1].2, 0);
        assert!((buckets[2].1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn labels() {
        assert_eq!(bucket_label((1, 1)), "1");
        assert_eq!(bucket_label((2, 9)), "2-9");
        assert_eq!(bucket_label((1_000, u64::MAX)), ">=1000");
    }

    #[test]
    fn empty_bucket_is_nan() {
        assert!(avg_q_error(&[]).is_nan());
        assert!(avg_abs_error(&[]).is_nan());
    }
}
