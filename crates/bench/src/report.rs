//! Plain-text table rendering for the experiment binaries.

use std::io::Write;

/// A simple fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table under a title.
    pub fn print(&self, title: &str) {
        let mut stdout = std::io::stdout().lock();
        let _ = writeln!(stdout, "\n== {title} ==\n{}", self.render());
    }
}

/// Formats bytes as MB with three decimals (the paper's unit).
pub fn mb(bytes: usize) -> String {
    format!("{:.3}", bytes as f64 / 1_000_000.0)
}

/// Formats a duration-per-query in milliseconds.
pub fn ms(v: f64) -> String {
    if v < 0.01 {
        format!("{v:.5}")
    } else {
        format!("{v:.3}")
    }
}

/// Formats a q-error.
pub fn qe(v: f64) -> String {
    format!("{v:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["Dataset", "QErr"]);
        t.row(vec!["RW-200k", "1.01"]);
        t.row(vec!["SD", "2.3456"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("Dataset"));
        assert!(lines[2].starts_with("RW-200k"));
        assert_eq!(lines.len(), 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(mb(3_817_000), "3.817");
        assert_eq!(ms(0.00059), "0.00059");
        assert_eq!(ms(0.53), "0.530");
        assert_eq!(qe(1.00123), "1.0012");
    }
}
