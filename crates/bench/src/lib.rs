//! # setlearn-bench
//!
//! The benchmark harness that regenerates every table and figure of
//! *Learning over Sets for Databases* (EDBT 2024). Each `src/bin/` target
//! prints one table/figure; `all_experiments` runs the full suite. Shared
//! pieces:
//!
//! * [`datasets`] — bench-scale instantiations of the paper's Table 2
//!   datasets (`SETLEARN_SCALE` env var scales them up).
//! * [`configs`] — model/training settings per task (§8.1).
//! * [`metrics`] — q-error aggregation and Figure 6's result-size buckets.
//! * [`timing`] — one-query-at-a-time latency measurement (§8.2.3).
//! * [`report`] — plain-text table rendering.
//! * [`suites`] — the experiment implementations.

#![warn(missing_docs)]

pub mod configs;
pub mod datasets;
pub mod metrics;
pub mod printers;
pub mod report;
pub mod suites;
pub mod timing;
