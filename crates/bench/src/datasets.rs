//! Bench-scale dataset instantiation.
//!
//! The paper's collections (Table 2) range up to 3M sets; the default bench
//! scale keeps their *relative* sizes and distribution shapes while running
//! the whole suite on a laptop-class CPU. `SETLEARN_SCALE` multiplies the
//! bench sizes (e.g. `SETLEARN_SCALE=10` approaches paper scale for the
//! smaller datasets); see EXPERIMENTS.md.

use setlearn_data::{Dataset, SetCollection};

/// Default bench-mode number of sets per dataset (paper sizes ÷ ~250,
/// ordering preserved).
pub fn bench_num_sets(dataset: Dataset) -> usize {
    match dataset {
        Dataset::Rw200k => 4_000,
        Dataset::Rw1500k => 8_000,
        Dataset::Rw3000k => 12_000,
        Dataset::Tweets => 8_000,
        Dataset::Sd => 3_000,
    }
}

/// Scale multiplier from the `SETLEARN_SCALE` environment variable
/// (default 1.0).
pub fn scale_from_env() -> f64 {
    std::env::var("SETLEARN_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(1.0)
}

/// A generated bench dataset.
pub struct BenchDataset {
    /// Which of the paper's datasets this instantiates.
    pub dataset: Dataset,
    /// The generated collection.
    pub collection: SetCollection,
}

impl BenchDataset {
    /// Generates the dataset at the current bench scale.
    pub fn load(dataset: Dataset) -> Self {
        Self::load_scaled(dataset, scale_from_env())
    }

    /// Generates the dataset at an explicit multiple of the bench size.
    pub fn load_scaled(dataset: Dataset, scale: f64) -> Self {
        let n = ((bench_num_sets(dataset) as f64 * scale).round() as usize).max(64);
        let paper_fraction = (n as f64 / dataset.paper_num_sets() as f64).min(1.0);
        let collection = dataset.generate(paper_fraction, 0xD5EA5E + dataset as u64);
        BenchDataset { dataset, collection }
    }

    /// The paper's label.
    pub fn name(&self) -> &'static str {
        self.dataset.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_ordering_is_preserved() {
        let sizes: Vec<usize> = [Dataset::Rw200k, Dataset::Rw1500k, Dataset::Rw3000k]
            .iter()
            .map(|&d| BenchDataset::load_scaled(d, 0.2).collection.len())
            .collect();
        assert!(sizes[0] < sizes[1] && sizes[1] < sizes[2], "{sizes:?}");
    }

    #[test]
    fn deterministic_generation() {
        let a = BenchDataset::load_scaled(Dataset::Sd, 0.1);
        let b = BenchDataset::load_scaled(Dataset::Sd, 0.1);
        assert_eq!(a.collection.sets(), b.collection.sets());
    }
}
