//! Microbenchmarks for the traditional structures.

use criterion::{criterion_group, criterion_main, Criterion};
use setlearn_baselines::{set_hash, BPlusTree, BloomFilter};
use setlearn_data::set::for_each_subset;
use std::hint::black_box;

fn bench_set_hash(c: &mut Criterion) {
    let set = [5u32, 99, 1_000, 54_321, 999_999];
    c.bench_function("set_hash_5_elems", |b| {
        b.iter(|| black_box(set_hash(&set)));
    });
}

fn bench_bptree(c: &mut Criterion) {
    let mut tree = BPlusTree::new(100);
    for k in 0..50_000u64 {
        tree.insert(k.wrapping_mul(0x9e3779b97f4a7c15), k as u32);
    }
    let probe = 777u64.wrapping_mul(0x9e3779b97f4a7c15);
    c.bench_function("bptree_get_50k", |b| {
        b.iter(|| black_box(tree.get(probe)));
    });
    c.bench_function("bptree_insert_50k", |b| {
        let mut k = 50_000u64;
        b.iter(|| {
            tree.insert(k.wrapping_mul(0x9e3779b97f4a7c15), k as u32);
            k += 1;
        });
    });
}

fn bench_bloom(c: &mut Criterion) {
    let mut bf = BloomFilter::new(100_000, 0.01);
    for i in 0..100_000u64 {
        bf.insert_hash(i.wrapping_mul(0x9e3779b97f4a7c15));
    }
    c.bench_function("bloom_contains_100k", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(bf.contains_hash(i.wrapping_mul(0x9e3779b97f4a7c15)))
        });
    });
}

fn bench_subset_enum(c: &mut Criterion) {
    let set: Vec<u32> = (0..8).collect();
    c.bench_function("subset_enum_8_cap3", |b| {
        b.iter(|| {
            let mut n = 0u32;
            for_each_subset(&set, 3, |s| n += s.len() as u32);
            black_box(n)
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_set_hash, bench_bptree, bench_bloom, bench_subset_enum
);
criterion_main!(benches);
