//! Table 11's latency comparison as a criterion benchmark: learned Bloom
//! filter probes vs the traditional filter.

use criterion::{criterion_group, criterion_main, Criterion};
use setlearn::tasks::LearnedBloom;
use setlearn_baselines::SetMembershipBloom;
use setlearn_bench::configs::{bloom_config, Variant};
use setlearn_data::{workload::membership_queries, GeneratorConfig};
use std::hint::black_box;

fn bench_bloom(c: &mut Criterion) {
    let collection = GeneratorConfig::rw(2_000, 3).generate();
    let workload = membership_queries(&collection, 500, 500, 4, 7);
    let mut cfg = bloom_config(collection.num_elements(), Variant::Clsm);
    cfg.epochs = 5;
    let (learned, _) = LearnedBloom::build(&workload, &cfg);
    let traditional = SetMembershipBloom::build(&collection, 4, 0.01);

    let q = &collection.get(11)[..2];
    c.bench_function("bloom_learned_contains", |b| {
        b.iter(|| black_box(learned.contains(q)));
    });
    c.bench_function("bloom_traditional_contains", |b| {
        b.iter(|| black_box(traditional.contains(q)));
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_bloom
);
criterion_main!(benches);
