//! Table 4's latency comparison as a criterion benchmark: learned estimators
//! vs the exact HashMap.

use criterion::{criterion_group, criterion_main, Criterion};
use setlearn::hybrid::GuidedConfig;
use setlearn::tasks::LearnedCardinality;
use setlearn_baselines::CardinalityMap;
use setlearn_bench::configs::{cardinality_config, Variant};
use setlearn_data::{GeneratorConfig, SubsetIndex};
use std::hint::black_box;

fn quick_guided() -> GuidedConfig {
    GuidedConfig {
        warmup_epochs: 3,
        rounds: 1,
        epochs_per_round: 2,
        percentile: 0.9,
        batch_size: 128,
        learning_rate: 3e-3,
        seed: 1,
    }
}

fn bench_estimators(c: &mut Criterion) {
    let collection = GeneratorConfig::rw(2_000, 5).generate();
    let subsets = SubsetIndex::build(&collection, 3);
    let vocab = collection.num_elements();

    let mut lsm_cfg = cardinality_config(vocab, Variant::Lsm, 0.9);
    lsm_cfg.guided = quick_guided();
    let (lsm, _) = LearnedCardinality::build_from_subsets(&subsets, &lsm_cfg);

    let mut clsm_cfg = cardinality_config(vocab, Variant::Clsm, 0.9);
    clsm_cfg.guided = quick_guided();
    let (clsm, _) = LearnedCardinality::build_from_subsets(&subsets, &clsm_cfg);

    let map = CardinalityMap::build(&collection, 3);
    let q = &collection.get(7)[..2];

    c.bench_function("cardinality_lsm_estimate", |b| {
        b.iter(|| black_box(lsm.estimate(q)));
    });
    c.bench_function("cardinality_clsm_estimate", |b| {
        b.iter(|| black_box(clsm.estimate(q)));
    });
    c.bench_function("cardinality_hashmap_lookup", |b| {
        b.iter(|| black_box(map.cardinality(q)));
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_estimators
);
criterion_main!(benches);
