//! Table 8's latency comparison as a criterion benchmark: hybrid learned
//! index lookups vs the B+ tree.

use criterion::{criterion_group, criterion_main, Criterion};
use setlearn::hybrid::GuidedConfig;
use setlearn::tasks::LearnedSetIndex;
use setlearn_baselines::{set_hash, BPlusTree};
use setlearn_bench::configs::{index_config, Variant};
use setlearn_data::{GeneratorConfig, SubsetIndex};
use std::hint::black_box;

fn bench_index(c: &mut Criterion) {
    let collection = GeneratorConfig::rw(2_000, 9).generate();
    let subsets = SubsetIndex::build(&collection, 2);
    let mut cfg = index_config(collection.num_elements(), Variant::Clsm, 0.9);
    cfg.guided = GuidedConfig {
        warmup_epochs: 3,
        rounds: 1,
        epochs_per_round: 2,
        percentile: 0.9,
        batch_size: 128,
        learning_rate: 3e-3,
        seed: 1,
    };
    let (index, _) = LearnedSetIndex::build_from_subsets(&collection, &subsets, &cfg);

    let mut tree = BPlusTree::new(100);
    for (pos, set) in collection.iter() {
        tree.insert(set_hash(set), pos as u32);
    }

    let q = &collection.get(42)[..2];
    let whole = collection.get(42);
    c.bench_function("index_hybrid_lookup", |b| {
        b.iter(|| black_box(index.lookup(&collection, q)));
    });
    c.bench_function("index_btree_equality_lookup", |b| {
        b.iter(|| black_box(tree.first_position(set_hash(whole))));
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_index
);
criterion_main!(benches);
