//! Microbenchmarks for the NN substrate: GEMM, dense layers, DeepSets
//! forward/backward.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use setlearn::model::{CompressionKind, DeepSets, DeepSetsConfig, Pooling};
use setlearn_nn::{Activation, Dense, Matrix, Mlp};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let a = Matrix::from_vec(64, 32, (0..64 * 32).map(|i| (i % 7) as f32 * 0.1).collect());
    let b = Matrix::from_vec(32, 32, (0..32 * 32).map(|i| (i % 5) as f32 * 0.1).collect());
    c.bench_function("matmul_64x32x32", |bench| {
        bench.iter(|| black_box(a.matmul(&b)));
    });
    c.bench_function("matmul_tn_64x32x32", |bench| {
        bench.iter(|| black_box(a.matmul_tn(&a)));
    });
}

fn bench_dense(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut layer = Dense::new(&mut rng, 32, 32, Activation::Relu);
    layer.zero_grad();
    let x = Matrix::from_vec(64, 32, vec![0.1; 64 * 32]);
    c.bench_function("dense_forward_64x32", |bench| {
        bench.iter(|| black_box(layer.predict(&x)));
    });
    let g = Matrix::from_vec(64, 32, vec![0.01; 64 * 32]);
    c.bench_function("dense_forward_backward_64x32", |bench| {
        bench.iter(|| {
            layer.forward(&x);
            black_box(layer.backward(&g));
        });
    });
}

fn bench_mlp(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mlp = Mlp::new(&mut rng, &[16, 64, 64, 1], Activation::Relu, Activation::Sigmoid);
    let x = Matrix::from_vec(128, 16, vec![0.05; 128 * 16]);
    c.bench_function("mlp_predict_128x16_64_64_1", |bench| {
        bench.iter(|| black_box(mlp.predict(&x)));
    });
}

fn bench_deepsets(c: &mut Criterion) {
    let cfg = DeepSetsConfig {
        vocab: 10_000,
        embedding_dim: 8,
        phi_hidden: vec![32],
        rho_hidden: vec![32],
        pooling: Pooling::Sum,
        hidden_activation: Activation::Relu,
        output_activation: Activation::Sigmoid,
        compression: CompressionKind::None,
        seed: 3,
    };
    let lsm = DeepSets::new(cfg.clone());
    let clsm = DeepSets::new(DeepSetsConfig {
        compression: CompressionKind::Optimal { ns: 2 },
        ..cfg
    });
    let q = [17u32, 420, 9_001, 123];
    c.bench_function("deepsets_predict_one_lsm", |bench| {
        bench.iter(|| black_box(lsm.predict_one(&q)));
    });
    c.bench_function("deepsets_predict_one_clsm", |bench| {
        bench.iter(|| black_box(clsm.predict_one(&q)));
    });
}

fn bench_attention(c: &mut Criterion) {
    use setlearn_nn::{PmaPool, Sab};
    let mut rng = StdRng::seed_from_u64(9);
    let sab = Sab::new(&mut rng, 16);
    let pma = PmaPool::new(&mut rng, 16);
    let x = Matrix::from_vec(8, 16, (0..128).map(|i| (i % 13) as f32 * 0.07).collect());
    c.bench_function("sab_forward_8x16", |b| {
        b.iter(|| black_box(sab.forward(&x)));
    });
    c.bench_function("pma_forward_8x16", |b| {
        b.iter(|| black_box(pma.forward(&x)));
    });
}

fn bench_rnn(c: &mut Criterion) {
    use setlearn_nn::{Gru, Lstm};
    let mut rng = StdRng::seed_from_u64(10);
    let lstm = Lstm::new(&mut rng, 16, 32);
    let gru = Gru::new(&mut rng, 16, 32);
    let seq = Matrix::from_vec(10, 16, (0..160).map(|i| (i % 11) as f32 * 0.05).collect());
    c.bench_function("lstm_predict_10x16_h32", |b| {
        b.iter(|| black_box(lstm.predict(&seq)));
    });
    c.bench_function("gru_predict_10x16_h32", |b| {
        b.iter(|| black_box(gru.predict(&seq)));
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_matmul, bench_dense, bench_mlp, bench_deepsets, bench_attention, bench_rnn
);
criterion_main!(benches);
