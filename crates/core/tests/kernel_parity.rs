//! Kernel/scalar parity: the frozen f32 kernel must be bit-identical to the
//! scalar forward pass, f16/q8 must stay within their stated tolerances, and
//! all three precisions must preserve ServeGuard/fallback semantics through
//! the [`LearnedSetStructure`] trait on every task.

use setlearn::kernel::{FrozenModel, Precision};
use setlearn::model::{CompressionKind, DeepSets, DeepSetsConfig, Pooling};
use setlearn::tasks::{
    BloomConfig, CardinalityConfig, IndexConfig, IndexStructure, LearnedBloom,
    LearnedCardinality, LearnedSetIndex, LearnedSetStructure, PositionTarget, QueryOutcome,
};
use setlearn::GuidedConfig;
use setlearn_data::{workload::membership_queries, ElementSet, GeneratorConfig, SubsetIndex};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

const VOCAB: u32 = 500;

fn model_config(compression: CompressionKind, pooling: Pooling) -> DeepSetsConfig {
    DeepSetsConfig {
        vocab: VOCAB,
        embedding_dim: 8,
        phi_hidden: vec![16],
        rho_hidden: vec![13], // deliberately not a multiple of the block width
        pooling,
        hidden_activation: setlearn_nn::Activation::Relu,
        output_activation: setlearn_nn::Activation::Sigmoid,
        compression,
        seed: 17,
    }
}

/// Queries spanning singleton through 6-element sets, including the maximum
/// valid vocab id on several of them.
fn query_sets() -> Vec<Vec<u32>> {
    let mut sets: Vec<Vec<u32>> = (0..48u32)
        .map(|i| (0..=(i % 6)).map(|j| (i * 37 + j * 11) % VOCAB).collect())
        .collect();
    sets.push(vec![VOCAB - 1]);
    sets.push(vec![0, VOCAB / 2, VOCAB - 1]);
    sets
}

#[test]
fn frozen_f32_is_bit_identical_to_scalar_predict_batch() {
    for compression in [
        CompressionKind::None,
        CompressionKind::Optimal { ns: 2 },
        CompressionKind::Hashed { buckets: 64, num_hashes: 2 },
    ] {
        for pooling in [Pooling::Sum, Pooling::Mean, Pooling::Max] {
            let model = DeepSets::new(model_config(compression.clone(), pooling));
            let frozen = FrozenModel::freeze(&model, Precision::F32);
            let sets = query_sets();
            let scalar = model.predict_batch(&sets);
            assert_eq!(frozen.predict_batch(&sets), scalar, "{compression:?}/{pooling:?}");
            for (s, &want) in sets.iter().zip(scalar.iter()) {
                assert_eq!(frozen.predict_one(s), want, "{compression:?}/{pooling:?} {s:?}");
            }
            // Empty batches are empty on both paths.
            assert!(frozen.predict_batch::<Vec<u32>>(&[]).is_empty());
            assert!(model.predict_batch::<Vec<u32>>(&[]).is_empty());
        }
    }
}

#[test]
fn f16_and_q8_stay_within_tolerance_and_nan_free() {
    for pooling in [Pooling::Sum, Pooling::Mean, Pooling::Max] {
        let model = DeepSets::new(model_config(CompressionKind::None, pooling));
        let reference = FrozenModel::freeze(&model, Precision::F32).predict_batch(&query_sets());
        for (precision, tol) in [(Precision::F16, 1e-2f32), (Precision::Q8, 5e-2f32)] {
            let frozen = FrozenModel::freeze(&model, precision);
            let got = frozen.predict_batch(&query_sets());
            for (a, b) in reference.iter().zip(got.iter()) {
                assert!(b.is_finite(), "{precision}/{pooling:?}: non-finite score");
                assert!(
                    (a - b).abs() <= tol * (1.0 + a.abs()),
                    "{precision}/{pooling:?}: {a} vs {b}"
                );
            }
        }
    }
}

#[test]
fn empty_sets_are_rejected_identically_on_both_paths() {
    let model = DeepSets::new(model_config(CompressionKind::None, Pooling::Sum));
    let frozen = FrozenModel::freeze(&model, Precision::F32);
    let scalar = catch_unwind(AssertUnwindSafe(|| model.predict_one(&[])));
    let kernel = catch_unwind(AssertUnwindSafe(|| frozen.predict_one(&[])));
    assert!(scalar.is_err(), "scalar path accepted an empty set");
    assert!(kernel.is_err(), "kernel path accepted an empty set");
}

/// query / query_batch / query_batch_parallel must agree bit-for-bit with
/// each other at every precision.
fn assert_paths_agree<S>(structure: &S, queries: &[ElementSet]) -> Vec<QueryOutcome<S::Output>>
where
    S: LearnedSetStructure,
    S::Output: PartialEq + std::fmt::Debug + Clone,
{
    let batch = structure.query_batch(queries);
    for threads in [1, 3] {
        let par = structure.query_batch_parallel(queries, threads);
        assert_eq!(par, batch, "{}: {threads}-thread batch diverged", S::NAME);
    }
    for (q, want) in queries.iter().zip(batch.iter()) {
        assert_eq!(&structure.query(q), want, "{}: single-query path diverged", S::NAME);
    }
    batch
}

fn quick_guided() -> GuidedConfig {
    GuidedConfig {
        warmup_epochs: 25,
        rounds: 1,
        epochs_per_round: 15,
        percentile: 0.9,
        batch_size: 64,
        learning_rate: 5e-3,
        seed: 5,
    }
}

#[test]
fn cardinality_trait_parity_across_precisions() {
    let collection = GeneratorConfig::sd(300, 7).generate();
    let mut model = DeepSetsConfig::lsm(collection.num_elements());
    model.embedding_dim = 8;
    model.phi_hidden = vec![32];
    model.rho_hidden = vec![32];
    let cfg = CardinalityConfig { model, guided: quick_guided(), max_subset_size: 3 };
    let (est, _) = LearnedCardinality::build(&collection, &cfg);
    let queries: Vec<ElementSet> =
        SubsetIndex::build(&collection, 3).iter().map(|(s, _)| s.clone()).collect();

    let baseline = assert_paths_agree(&est, &queries);
    let base_degraded = baseline.iter().filter(|o| o.degraded()).count();

    for (precision, max_qerr) in [(Precision::F16, 1.05), (Precision::Q8, 2.0)] {
        let mut alt = est.clone();
        alt.set_precision(precision);
        assert_eq!(alt.precision(), precision);
        let outcomes = assert_paths_agree(&alt, &queries);
        let degraded = outcomes.iter().filter(|o| o.degraded()).count();
        let slack = 2.max(queries.len() / 50);
        assert!(
            degraded <= base_degraded + slack,
            "{precision}: {degraded} degraded vs baseline {base_degraded}"
        );
        for (b, o) in baseline.iter().zip(outcomes.iter()) {
            assert!(o.value.is_finite() && o.value > 0.0, "{precision}: bad estimate {}", o.value);
            let qe = setlearn_nn::q_error(o.value, b.value, 1.0);
            assert!(qe <= max_qerr, "{precision}: q-error {qe} ({} vs {})", o.value, b.value);
        }
    }
}

#[test]
fn index_trait_parity_across_precisions() {
    let collection = GeneratorConfig::rw(300, 21).generate();
    let cfg = IndexConfig {
        model: DeepSetsConfig::lsm(collection.num_elements()),
        guided: quick_guided(),
        max_subset_size: 3,
        range_length: 16.0,
        target: PositionTarget::First,
    };
    let (index, _) = LearnedSetIndex::build(&collection, &cfg);
    let queries: Vec<ElementSet> =
        SubsetIndex::build(&collection, 3).iter().map(|(s, _)| s.clone()).collect();
    let structure = IndexStructure { index, collection: Arc::new(collection) };

    let baseline = assert_paths_agree(&structure, &queries);
    let base_hits = baseline.iter().filter(|o| o.value.is_some()).count();
    assert_eq!(base_hits, queries.len(), "f32 baseline must find every trained subset");

    for precision in [Precision::F16, Precision::Q8] {
        let mut alt = structure.clone();
        alt.index.set_precision(precision);
        let outcomes = assert_paths_agree(&alt, &queries);
        let mut hits = 0;
        for (b, o) in baseline.iter().zip(outcomes.iter()) {
            if let Some(pos) = o.value {
                // Any hit is the true position, so it must agree with f32.
                assert_eq!(Some(pos), b.value, "{precision}: position diverged");
                hits += 1;
            }
        }
        assert!(
            hits * 10 >= base_hits * 9,
            "{precision}: hit rate collapsed ({hits}/{base_hits})"
        );
    }
}

#[test]
fn bloom_trait_parity_across_precisions() {
    let collection = GeneratorConfig::rw(400, 31).generate();
    let workload = membership_queries(&collection, 300, 300, 4, 3);
    let mut cfg = BloomConfig::new(DeepSetsConfig::lsm(collection.num_elements()));
    cfg.epochs = 40;
    cfg.learning_rate = 1e-2;
    let (filter, _) = LearnedBloom::build(&workload, &cfg);
    let queries: Vec<ElementSet> = workload.iter().map(|(q, _)| q.clone()).collect();

    let baseline = assert_paths_agree(&filter, &queries);

    for (precision, max_flips) in [(Precision::F16, 2usize), (Precision::Q8, 15usize)] {
        let mut alt = filter.clone();
        alt.set_precision(precision);
        let outcomes = assert_paths_agree(&alt, &queries);
        let flips = baseline
            .iter()
            .zip(outcomes.iter())
            .filter(|(b, o)| b.value != o.value)
            .count();
        assert!(
            flips <= max_flips,
            "{precision}: {flips} membership verdicts flipped (allowed {max_flips})"
        );
    }
}
