//! Precision-aware inference kernels: the frozen serving path.
//!
//! Training wants gradients; serving wants throughput. [`DeepSets`] keeps
//! its weights inside [`setlearn_nn::ParamBuf`]s that the scalar
//! `predict_batch` path re-wraps into freshly allocated [`Matrix`] values on
//! every call — one weight-`Vec` clone per dense layer per batch, plus the
//! encoder's per-table intermediates. A [`FrozenModel`] is extracted once at
//! load time instead:
//!
//! * embedding tables re-laid-out for contiguous per-position access — the
//!   compressed encoder gathers each sub-table directly into its column
//!   block of the encoded row (no `hconcat`, no per-table matrices);
//! * dense layers applied with register-tiled inner loops: each output row
//!   is computed in tiles of [`ACC_BLOCKS`] fixed-width [`KERNEL_BLOCK`]-lane
//!   accumulator blocks that live in vector registers across the whole
//!   reduction (`chunks_exact`-shaped slices, so the autovectorizer sees
//!   exact trip counts and no bounds checks in the hot loop);
//! * runtime ISA dispatch ([`KernelIsa`]): the same tiled loops are compiled
//!   per instruction set (`#[target_feature]`) and selected once per process,
//!   so a baseline build still serves AVX2/AVX-512 code on capable hosts;
//! * per-thread reusable scratch arenas, so steady-state serving allocates
//!   nothing per batch beyond the output vector.
//!
//! On top of the layout sits the precision choice ([`Precision`]): `f32`
//! keeps the training weights bit-for-bit (the frozen path is bit-identical
//! to the scalar one on every ISA — the tiled loops preserve the scalar
//! path's per-element operation order and never introduce FMA contraction;
//! property-tested in `tests/kernel_parity.rs`), `f16` rounds every weight
//! through IEEE binary16 at freeze time and serves from the dequantized f32
//! layout (exactly [`crate::quantize::quantize_in_place`] semantics), and
//! `q8` serves embeddings as per-row affine `u8` codes and dense layers as
//! per-column symmetric `i8` codes with dynamically quantized `u8` inputs —
//! an exact integer accumulation (AVX-512 VNNI `vpdpbusd` where available,
//! bit-equal portable emulation elsewhere) finished in f32.

use crate::compress::CompressionSpec;
use crate::model::{DeepSets, Pooling};
use crate::quantize::{f16_bits_to_f32, f32_to_f16_bits};
use serde::{Deserialize, Serialize};
use setlearn_nn::hash_embedding::hash_bucket;
use setlearn_nn::{Activation, Dense};
use std::cell::RefCell;
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;

/// Fixed inner-loop block width of the dense kernels. Sixteen `f32` lanes
/// fill one 512-bit vector register (two 256-bit ones on AVX2); fixed-width
/// accumulator blocks of this size give the autovectorizer exact trip counts
/// with no bounds checks in the hot loop.
pub const KERNEL_BLOCK: usize = 16;

/// Independent accumulator blocks kept in flight per output tile. Four
/// [`KERNEL_BLOCK`]-lane blocks give four independent dependency chains (the
/// vector add/`vpdpbusd` latency is ~4 cycles, so fewer chains leave the
/// ports idle) while still fitting comfortably in the register file.
pub const ACC_BLOCKS: usize = 4;

/// Output columns computed per register tile.
const TILE: usize = KERNEL_BLOCK * ACC_BLOCKS;

/// Instruction set the dense kernels dispatch to. Detected once per process
/// from CPUID, overridable downward via the `SETLEARN_KERNEL_ISA` environment
/// variable or [`set_kernel_isa`] (useful for A/B benchmarks and for forcing
/// the portable path in tests).
///
/// Every level computes the same result: the f32/f16 tiled loops preserve the
/// scalar operation order exactly (bit-identical scores), and the q8 integer
/// path is exact in i32 regardless of how it is vectorized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum KernelIsa {
    /// Portable Rust loops, autovectorized at the build's baseline target.
    Generic,
    /// 256-bit AVX2 compilations of the same loops.
    Avx2,
    /// 512-bit AVX-512 (F/BW/VL) compilations of the same loops.
    Avx512,
    /// AVX-512 plus VNNI: q8 uses `vpdpbusd` u8·i8 integer dot products.
    Avx512Vnni,
}

impl KernelIsa {
    fn to_u8(self) -> u8 {
        match self {
            KernelIsa::Generic => 0,
            KernelIsa::Avx2 => 1,
            KernelIsa::Avx512 => 2,
            KernelIsa::Avx512Vnni => 3,
        }
    }

    fn from_u8(b: u8) -> Option<KernelIsa> {
        match b {
            0 => Some(KernelIsa::Generic),
            1 => Some(KernelIsa::Avx2),
            2 => Some(KernelIsa::Avx512),
            3 => Some(KernelIsa::Avx512Vnni),
            _ => None,
        }
    }
}

impl fmt::Display for KernelIsa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            KernelIsa::Generic => "generic",
            KernelIsa::Avx2 => "avx2",
            KernelIsa::Avx512 => "avx512",
            KernelIsa::Avx512Vnni => "avx512vnni",
        })
    }
}

impl FromStr for KernelIsa {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "generic" => Ok(KernelIsa::Generic),
            "avx2" => Ok(KernelIsa::Avx2),
            "avx512" => Ok(KernelIsa::Avx512),
            "avx512vnni" => Ok(KernelIsa::Avx512Vnni),
            other => Err(format!(
                "unknown kernel ISA '{other}' (expected generic, avx2, avx512 or avx512vnni)"
            )),
        }
    }
}

/// Widest [`KernelIsa`] this CPU supports.
pub fn detect_kernel_isa() -> KernelIsa {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512f")
            && is_x86_feature_detected!("avx512bw")
            && is_x86_feature_detected!("avx512vl")
        {
            if is_x86_feature_detected!("avx512vnni") {
                return KernelIsa::Avx512Vnni;
            }
            return KernelIsa::Avx512;
        }
        if is_x86_feature_detected!("avx2") {
            return KernelIsa::Avx2;
        }
    }
    KernelIsa::Generic
}

/// Selected ISA; `u8::MAX` means "not yet resolved".
static KERNEL_ISA: AtomicU8 = AtomicU8::new(u8::MAX);

/// The ISA the dense kernels currently dispatch to. Resolved on first use:
/// `SETLEARN_KERNEL_ISA` if set (clamped to what the CPU supports; unknown
/// values are ignored), otherwise [`detect_kernel_isa`].
pub fn kernel_isa() -> KernelIsa {
    if let Some(isa) = KernelIsa::from_u8(KERNEL_ISA.load(Ordering::Relaxed)) {
        return isa;
    }
    let detected = detect_kernel_isa();
    let isa = match std::env::var("SETLEARN_KERNEL_ISA") {
        Ok(v) => match v.parse::<KernelIsa>() {
            Ok(requested) => requested.min(detected),
            Err(_) => detected,
        },
        Err(_) => detected,
    };
    KERNEL_ISA.store(isa.to_u8(), Ordering::Relaxed);
    isa
}

/// Forces the dense kernels onto `isa`. Fails if the CPU does not support it;
/// lowering (e.g. to [`KernelIsa::Generic`] for a differential test) always
/// succeeds.
pub fn set_kernel_isa(isa: KernelIsa) -> Result<(), String> {
    let detected = detect_kernel_isa();
    if isa > detected {
        return Err(format!("kernel ISA {isa} unavailable (CPU supports up to {detected})"));
    }
    KERNEL_ISA.store(isa.to_u8(), Ordering::Relaxed);
    Ok(())
}

/// Numeric precision a structure serves at. Recorded in checkpoints; a
/// `--precision` flag that disagrees with the recorded value fails with a
/// typed [`PrecisionMismatch`] instead of silently re-quantizing.
/// Serialized by variant name (`"F32"`/`"F16"`/`"Q8"`) in JSON checkpoints;
/// the CLI-facing [`FromStr`]/[`fmt::Display`] forms are lowercase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Precision {
    /// Serve the training weights unchanged. Bit-identical to the scalar
    /// reference path.
    #[default]
    F32,
    /// Round every weight through IEEE binary16 at freeze time, serve from
    /// the dequantized f32 layout. Same speed as `F32`, half the checkpoint.
    F16,
    /// 8-bit weights: embeddings as per-row affine `u8` codes, dense layers
    /// as per-column symmetric `i8` codes driven by dynamically quantized
    /// `u8` inputs through an exact integer accumulation, finished in f32
    /// (biases stay f32). Quarter-size weights, and the dense hot loop does
    /// four multiply-adds per byte lane.
    Q8,
}

impl Precision {
    /// All precisions, in ascending compression order.
    pub const ALL: [Precision; 3] = [Precision::F32, Precision::F16, Precision::Q8];

    /// Stable single-byte encoding for binary checkpoint headers.
    pub fn to_byte(self) -> u8 {
        match self {
            Precision::F32 => 0,
            Precision::F16 => 1,
            Precision::Q8 => 2,
        }
    }

    /// Decodes [`Precision::to_byte`]; `None` for bytes written by a future
    /// revision.
    pub fn from_byte(b: u8) -> Option<Precision> {
        match b {
            0 => Some(Precision::F32),
            1 => Some(Precision::F16),
            2 => Some(Precision::Q8),
            _ => None,
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Precision::F32 => "f32",
            Precision::F16 => "f16",
            Precision::Q8 => "q8",
        })
    }
}

impl FromStr for Precision {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "f32" => Ok(Precision::F32),
            "f16" => Ok(Precision::F16),
            "q8" => Ok(Precision::Q8),
            other => Err(format!("unknown precision '{other}' (expected f32, f16 or q8)")),
        }
    }
}

/// Typed error for a `--precision` request that disagrees with the precision
/// recorded in a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrecisionMismatch {
    /// What the caller asked for.
    pub requested: Precision,
    /// What the checkpoint records.
    pub recorded: Precision,
}

impl fmt::Display for PrecisionMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "precision mismatch: checkpoint records {} but {} was requested \
             (retrain with --precision {} or drop the flag)",
            self.recorded, self.requested, self.requested
        )
    }
}

impl std::error::Error for PrecisionMismatch {}

/// Resolves an optional requested precision against the one recorded in a
/// checkpoint: no request serves at the recorded precision; an equal request
/// is a no-op; a differing request fails typed.
pub fn resolve_precision(
    requested: Option<Precision>,
    recorded: Precision,
) -> Result<Precision, PrecisionMismatch> {
    match requested {
        None => Ok(recorded),
        Some(p) if p == recorded => Ok(recorded),
        Some(p) => Err(PrecisionMismatch { requested: p, recorded }),
    }
}

/// A batch-in, scores-out inference engine. The trait is dyn-safe so serve
/// workers can hold precision-erased kernels; [`FrozenModel`] is the blocked
/// implementation and [`DeepSets`] itself is the scalar reference one.
pub trait InferenceKernel: Send + Sync {
    /// The numeric precision this kernel serves at.
    fn precision(&self) -> Precision;

    /// Scores a batch of sets (one scalar per set, input order preserved).
    fn infer_batch(&self, sets: &[&[u32]]) -> Vec<f32>;

    /// Scores a single set.
    fn infer_one(&self, set: &[u32]) -> f32 {
        self.infer_batch(&[set])[0]
    }
}

impl InferenceKernel for DeepSets {
    fn precision(&self) -> Precision {
        Precision::F32
    }

    fn infer_batch(&self, sets: &[&[u32]]) -> Vec<f32> {
        self.predict_batch(sets)
    }

    fn infer_one(&self, set: &[u32]) -> f32 {
        self.predict_one(set)
    }
}

/// An embedding table frozen at a given precision, row-major `rows x dim`.
#[derive(Debug)]
enum FrozenTable {
    /// Full-precision rows (also holds the f16 path after dequantize-on-load).
    F32(Vec<f32>),
    /// Per-row affine codes: `value = min[r] + scale[r] * q[r*dim + j]`.
    Q8 { q: Vec<u8>, scale: Vec<f32>, min: Vec<f32> },
}

impl FrozenTable {
    fn freeze(values: &[f32], rows: usize, dim: usize, precision: Precision) -> FrozenTable {
        debug_assert_eq!(values.len(), rows * dim);
        match precision {
            Precision::F32 => FrozenTable::F32(values.to_vec()),
            Precision::F16 => FrozenTable::F32(round_f16(values)),
            Precision::Q8 => {
                let mut q = Vec::with_capacity(values.len());
                let mut scale = Vec::with_capacity(rows);
                let mut min = Vec::with_capacity(rows);
                for row in values.chunks_exact(dim.max(1)) {
                    let (lo, s, inv) = affine_params(row);
                    min.push(lo);
                    scale.push(s);
                    for &v in row {
                        q.push((((v - lo) * inv).round()).clamp(0.0, 255.0) as u8);
                    }
                }
                FrozenTable::Q8 { q, scale, min }
            }
        }
    }

    /// Copies row `r` into `dst` (`dst.len() == dim`), dequantizing if needed.
    #[inline]
    fn copy_row(&self, r: usize, dim: usize, dst: &mut [f32]) {
        match self {
            FrozenTable::F32(v) => dst.copy_from_slice(&v[r * dim..(r + 1) * dim]),
            FrozenTable::Q8 { q, scale, min } => {
                let (m, s) = (min[r], scale[r]);
                for (o, &b) in dst.iter_mut().zip(&q[r * dim..(r + 1) * dim]) {
                    *o = m + s * b as f32;
                }
            }
        }
    }

    /// Adds row `r` into `dst` — the hashed encoder's probe accumulation.
    #[inline]
    fn add_row(&self, r: usize, dim: usize, dst: &mut [f32]) {
        match self {
            FrozenTable::F32(v) => {
                for (o, &x) in dst.iter_mut().zip(&v[r * dim..(r + 1) * dim]) {
                    *o += x;
                }
            }
            FrozenTable::Q8 { q, scale, min } => {
                let (m, s) = (min[r], scale[r]);
                for (o, &b) in dst.iter_mut().zip(&q[r * dim..(r + 1) * dim]) {
                    *o += m + s * b as f32;
                }
            }
        }
    }

    fn size_bytes(&self) -> usize {
        match self {
            FrozenTable::F32(v) => v.len() * 4,
            FrozenTable::Q8 { q, scale, min } => q.len() + (scale.len() + min.len()) * 4,
        }
    }
}

/// Per-row affine quantization parameters: `(min, scale, 1/scale)`.
fn affine_params(row: &[f32]) -> (f32, f32, f32) {
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &v in row {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if !lo.is_finite() || !hi.is_finite() {
        // Degenerate (empty or non-finite) row: encode as all-zero codes.
        return (if lo.is_finite() { lo } else { 0.0 }, 0.0, 0.0);
    }
    let scale = (hi - lo) / 255.0;
    if scale > 0.0 {
        (lo, scale, 1.0 / scale)
    } else {
        (lo, 0.0, 0.0) // constant row
    }
}

fn round_f16(values: &[f32]) -> Vec<f32> {
    values.iter().map(|&w| f16_bits_to_f32(f32_to_f16_bits(w))).collect()
}

/// The element encoder re-laid-out for contiguous gathering.
#[derive(Debug)]
enum FrozenEncoder {
    /// One `vocab x dim` table.
    Plain { vocab: usize, dim: usize, table: FrozenTable },
    /// One table per sub-element position; table `i` fills columns
    /// `[i*dim, (i+1)*dim)` of the encoded row directly.
    Compressed { spec: CompressionSpec, dim: usize, tables: Vec<(usize, FrozenTable)> },
    /// One bucket table addressed through seeded probes; a row is the sum of
    /// its probed bucket rows, accumulated in probe order.
    Hashed { buckets: usize, dim: usize, seeds: Vec<u64>, table: FrozenTable },
}

impl FrozenEncoder {
    fn freeze(encoder: &crate::encoder::ElementEncoder, precision: Precision) -> FrozenEncoder {
        use crate::encoder::ElementEncoder;
        match encoder {
            ElementEncoder::Plain(e) => FrozenEncoder::Plain {
                vocab: e.vocab(),
                dim: e.dim(),
                table: FrozenTable::freeze(&e.params()[0].value, e.vocab(), e.dim(), precision),
            },
            ElementEncoder::Compressed { spec, tables } => FrozenEncoder::Compressed {
                spec: spec.clone(),
                dim: tables[0].dim(),
                tables: tables
                    .iter()
                    .map(|t| {
                        (
                            t.vocab(),
                            FrozenTable::freeze(&t.params()[0].value, t.vocab(), t.dim(), precision),
                        )
                    })
                    .collect(),
            },
            ElementEncoder::Hashed(h) => FrozenEncoder::Hashed {
                buckets: h.buckets(),
                dim: h.dim(),
                seeds: h.seeds().to_vec(),
                table: FrozenTable::freeze(&h.params()[0].value, h.buckets(), h.dim(), precision),
            },
        }
    }

    fn out_dim(&self) -> usize {
        match self {
            FrozenEncoder::Plain { dim, .. } => *dim,
            FrozenEncoder::Compressed { spec, dim, .. } => spec.ns * dim,
            FrozenEncoder::Hashed { dim, .. } => *dim,
        }
    }

    /// Encodes the flat id batch into `out` (`ids.len() x out_dim`,
    /// row-major). `sub` is reusable scratch for sub-element decomposition.
    fn encode(&self, ids: &[u32], sub: &mut Vec<u32>, out: &mut Vec<f32>) {
        let width = self.out_dim();
        out.clear();
        out.resize(ids.len() * width, 0.0);
        match self {
            FrozenEncoder::Plain { vocab, dim, table } => {
                for (row, &id) in out.chunks_exact_mut(*dim).zip(ids) {
                    let id = id as usize;
                    assert!(id < *vocab, "embedding id {id} out of vocab {vocab}");
                    table.copy_row(id, *dim, row);
                }
            }
            FrozenEncoder::Compressed { spec, dim, tables } => {
                for (row, &id) in out.chunks_exact_mut(width).zip(ids) {
                    spec.compress_into(id, sub);
                    for (i, (&s, (vocab, table))) in sub.iter().zip(tables).enumerate() {
                        let s = s as usize;
                        assert!(s < *vocab, "embedding id {s} out of vocab {vocab}");
                        table.copy_row(s, *dim, &mut row[i * dim..(i + 1) * dim]);
                    }
                }
            }
            FrozenEncoder::Hashed { buckets, dim, seeds, table } => {
                for (row, &id) in out.chunks_exact_mut(*dim).zip(ids) {
                    for &seed in seeds {
                        table.add_row(hash_bucket(id, seed, *buckets), *dim, row);
                    }
                }
            }
        }
    }

    fn size_bytes(&self) -> usize {
        match self {
            FrozenEncoder::Plain { table, .. } => table.size_bytes(),
            FrozenEncoder::Compressed { tables, .. } => {
                tables.iter().map(|(_, t)| t.size_bytes()).sum()
            }
            FrozenEncoder::Hashed { table, seeds, .. } => table.size_bytes() + seeds.len() * 8,
        }
    }
}

/// Dense-layer weights frozen at a given precision, `[in x out]` row-major
/// (one row per *input* feature — the hot loop streams whole rows).
#[derive(Debug)]
enum FrozenWeights {
    /// Full-precision rows.
    F32(Vec<f32>),
    /// Per-column symmetric `i8` codes packed for integer dot products.
    Q8(PackedQ8),
}

/// Dense weights quantized per *output column* (symmetric, `i8`) and packed
/// as `[k4][out][4]`: quad `t` of input features holds, for every column
/// `j`, the four consecutive codes `q[4t..4t+4][j]`. That is exactly the
/// operand layout of AVX-512 VNNI's `vpdpbusd` (16 columns × 4 input bytes
/// per 512-bit lane group), and the portable path walks the same quads.
///
/// Inputs are quantized dynamically per row to asymmetric `u8` with scale
/// `sx` and zero-point `z` (`x ≈ sx·(qx − z)`), so
/// `y_j = scale[j]·sx·(Σ_k qx_k·qw_kj − z·colsum[j]) + bias_j`
/// with the whole reduction carried exactly in `i32` — every ISA produces
/// bitwise-identical q8 scores.
#[derive(Debug)]
struct PackedQ8 {
    /// `k4 * out * 4` codes, `[k4][out][4]`; input quads past `in_dim` are
    /// zero so zero-point-padded inputs contribute nothing.
    pack: Vec<i8>,
    /// Per-column dequantization scale `max_k |w[k][j]| / 127`.
    scale: Vec<f32>,
    /// Per-column code sums `Σ_k qw[k][j]`, the zero-point correction term.
    colsum: Vec<i32>,
    /// Input-feature quads: `ceil(in_dim / 4)`.
    k4: usize,
}

impl PackedQ8 {
    fn pack(w: &[f32], in_dim: usize, out_dim: usize) -> PackedQ8 {
        let k4 = in_dim.div_ceil(4);
        let mut scale = vec![0.0f32; out_dim];
        let mut inv = vec![0.0f32; out_dim];
        for (j, (s, i)) in scale.iter_mut().zip(inv.iter_mut()).enumerate() {
            let mut hi = 0.0f32;
            for k in 0..in_dim {
                let a = w[k * out_dim + j].abs();
                if a.is_finite() && a > hi {
                    hi = a;
                }
            }
            if hi > 0.0 {
                *s = hi / 127.0;
                *i = 127.0 / hi;
            }
        }
        let mut pack = vec![0i8; k4 * out_dim * 4];
        let mut colsum = vec![0i32; out_dim];
        for (t, quad) in pack.chunks_exact_mut(out_dim * 4).enumerate() {
            for (j, cell) in quad.chunks_exact_mut(4).enumerate() {
                for (kk, c) in cell.iter_mut().enumerate() {
                    let k = t * 4 + kk;
                    if k < in_dim {
                        let v = w[k * out_dim + j] * inv[j];
                        let q = if v.is_finite() {
                            v.round().clamp(-127.0, 127.0) as i8
                        } else {
                            0
                        };
                        *c = q;
                        colsum[j] += q as i32;
                    }
                }
            }
        }
        PackedQ8 { pack, scale, colsum, k4 }
    }

    fn size_bytes(&self) -> usize {
        self.pack.len() + (self.scale.len() + self.colsum.len()) * 4
    }
}

/// Register-lane width of the quantizer's min/max and rounding loops.
const Q_LANES: usize = 16;

/// Quantizes one input row to asymmetric `u8` (`x ≈ sx·(qx − z)`), padding
/// `qx[x.len()..]` with the zero-point so padded lanes encode 0.0. Returns
/// `(sx, z)`; a constant-zero row returns `(0.0, 0)` with all-zero codes.
///
/// The range always includes 0.0 (post-ReLU rows are mostly zero and the
/// zero-point must represent them exactly), the min/max reduction runs
/// [`Q_LANES`] independent compare-select lanes (plain comparisons — the
/// NaN-propagation contract of `f32::min`/`max` would serialize it), and
/// rounding is `+0.5`-truncate on values biased non-negative by `z`.
fn quantize_row(x: &[f32], qx: &mut [u8]) -> (f32, i32) {
    debug_assert!(qx.len() >= x.len() && qx.len().is_multiple_of(4));
    let mut lo16 = [0.0f32; Q_LANES];
    let mut hi16 = [0.0f32; Q_LANES];
    let mut chunks = x.chunks_exact(Q_LANES);
    for c in chunks.by_ref() {
        for (l, &v) in c.iter().enumerate() {
            lo16[l] = if v < lo16[l] { v } else { lo16[l] };
            hi16[l] = if v > hi16[l] { v } else { hi16[l] };
        }
    }
    for &v in chunks.remainder() {
        lo16[0] = if v < lo16[0] { v } else { lo16[0] };
        hi16[0] = if v > hi16[0] { v } else { hi16[0] };
    }
    let (mut lo, mut hi) = (0.0f32, 0.0f32);
    for l in 0..Q_LANES {
        lo = if lo16[l] < lo { lo16[l] } else { lo };
        hi = if hi16[l] > hi { hi16[l] } else { hi };
    }
    let sx = (hi - lo) / 255.0;
    if sx <= 0.0 || !sx.is_finite() {
        qx.iter_mut().for_each(|q| *q = 0);
        return (0.0, 0);
    }
    let inv = 1.0 / sx;
    let z = (-lo * inv + 0.5) as i32;
    let zf = z as f32;
    // Split the zero-point padding off first: `codes` is exactly `x.len()`
    // wide, so the chunked iterators below stay in lockstep.
    let (codes, pad) = qx.split_at_mut(x.len());
    let mut xc = x.chunks_exact(Q_LANES);
    let mut qc = codes.chunks_exact_mut(Q_LANES);
    for (c, qs) in xc.by_ref().zip(qc.by_ref()) {
        for (q, &v) in qs.iter_mut().zip(c) {
            *q = ((v * inv + zf + 0.5) as i32).clamp(0, 255) as u8;
        }
    }
    for (q, &v) in qc.into_remainder().iter_mut().zip(xc.remainder()) {
        *q = ((v * inv + zf + 0.5) as i32).clamp(0, 255) as u8;
    }
    pad.iter_mut().for_each(|q| *q = z as u8);
    (sx, z)
}

/// One frozen dense layer: weights + f32 bias + activation.
#[derive(Debug)]
struct FrozenLayer {
    in_dim: usize,
    out_dim: usize,
    activation: Activation,
    weights: FrozenWeights,
    bias: Vec<f32>,
}

impl FrozenLayer {
    fn freeze(layer: &Dense, precision: Precision) -> FrozenLayer {
        let [w, b] = layer.params();
        let (in_dim, out_dim) = (layer.in_dim(), layer.out_dim());
        let (weights, bias) = match precision {
            Precision::F32 => (FrozenWeights::F32(w.value.clone()), b.value.clone()),
            Precision::F16 => (FrozenWeights::F32(round_f16(&w.value)), round_f16(&b.value)),
            Precision::Q8 => {
                // Biases stay f32 — they are `out_dim` scalars, and rounding
                // them buys nothing.
                (FrozenWeights::Q8(PackedQ8::pack(&w.value, in_dim, out_dim)), b.value.clone())
            }
        };
        FrozenLayer { in_dim, out_dim, activation: layer.activation(), weights, bias }
    }

    /// Applies the layer to `rows` input rows: `input` is `[rows x in_dim]`,
    /// `out` becomes `[rows x out_dim]`. `qx`/`idot` are the q8 path's
    /// reusable quantization scratch; `blocks` accumulates the number of
    /// [`KERNEL_BLOCK`]-wide inner-loop blocks executed.
    fn apply(
        &self,
        input: &[f32],
        rows: usize,
        out: &mut Vec<f32>,
        qx: &mut Vec<u8>,
        idot: &mut Vec<i32>,
        blocks: &mut u64,
    ) {
        debug_assert_eq!(input.len(), rows * self.in_dim);
        out.clear();
        out.resize(rows * self.out_dim, 0.0);
        match &self.weights {
            FrozenWeights::F32(w) => self.apply_f32(w, input, out, blocks),
            FrozenWeights::Q8(p) => {
                qx.clear();
                qx.resize(p.k4 * 4, 0);
                idot.clear();
                idot.resize(self.out_dim, 0);
                // Integer blocks: every input quad touches every output block.
                *blocks +=
                    (rows * p.k4 * self.out_dim.div_ceil(KERNEL_BLOCK)) as u64;
                match kernel_isa() {
                    #[cfg(target_arch = "x86_64")]
                    // SAFETY: dispatch is gated on CPUID detection (or an
                    // explicitly lowered override), so the required features
                    // are present.
                    KernelIsa::Avx512Vnni => unsafe {
                        self.rows_q8_vnni(p, input, out, qx, idot)
                    },
                    _ => self.rows_q8_generic(p, input, out, qx, idot),
                }
            }
        }
    }

    /// f32/f16 dense rows with runtime ISA dispatch. All targets run
    /// [`FrozenLayer::rows_f32`] — `#[target_feature]` recompilations of the
    /// identical source, so scores stay bit-identical across ISAs.
    fn apply_f32(&self, w: &[f32], input: &[f32], out: &mut [f32], blocks: &mut u64) {
        match kernel_isa() {
            // SAFETY: dispatch is gated on CPUID detection (or an explicitly
            // lowered override). AVX-512 hosts also run the AVX2 compilation:
            // two 256-bit lanes per block measure consistently faster here
            // than LLVM's 512-bit lowering of the same loops, and identical
            // op order means identical bits either way.
            #[cfg(target_arch = "x86_64")]
            KernelIsa::Avx2 | KernelIsa::Avx512 | KernelIsa::Avx512Vnni => unsafe {
                self.rows_f32_avx2(w, input, out, blocks)
            },
            _ => self.rows_f32(w, input, out, blocks),
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn rows_f32_avx2(&self, w: &[f32], input: &[f32], out: &mut [f32], blocks: &mut u64) {
        self.rows_f32(w, input, out, blocks);
    }

    /// The f32 row kernel: output columns are walked in [`TILE`]-wide tiles
    /// whose [`ACC_BLOCKS`] accumulator blocks stay in vector registers for
    /// the whole input reduction (the un-tiled loop reloads the output row
    /// once per nonzero input instead). Per output element the accumulation
    /// order over `k` is exactly the scalar matmul's, the zero-skip mirrors
    /// it too, and no FMA contraction is introduced — so every ISA
    /// compilation of this body is bit-identical to the scalar path.
    #[inline(always)]
    fn rows_f32(&self, w: &[f32], input: &[f32], out: &mut [f32], blocks: &mut u64) {
        let n = self.out_dim;
        let tiles = n / TILE;
        for (in_row, out_row) in input.chunks_exact(self.in_dim).zip(out.chunks_exact_mut(n)) {
            let nz = in_row.iter().filter(|&&a| a != 0.0).count();
            *blocks += (nz * n.div_ceil(KERNEL_BLOCK)) as u64;
            for tile in 0..tiles {
                let j0 = tile * TILE;
                let mut acc = [[0.0f32; KERNEL_BLOCK]; ACC_BLOCKS];
                for (k, &a) in in_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let w_tile = &w[k * n + j0..k * n + j0 + TILE];
                    for (ab, wb) in acc.iter_mut().zip(w_tile.chunks_exact(KERNEL_BLOCK)) {
                        for (o, &wv) in ab.iter_mut().zip(wb) {
                            *o += a * wv;
                        }
                    }
                }
                for (ob, ab) in
                    out_row[j0..j0 + TILE].chunks_exact_mut(KERNEL_BLOCK).zip(&acc)
                {
                    ob.copy_from_slice(ab);
                }
            }
            // Remaining full blocks, one accumulator at a time.
            let mut j0 = tiles * TILE;
            while j0 + KERNEL_BLOCK <= n {
                let mut acc = [0.0f32; KERNEL_BLOCK];
                for (k, &a) in in_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let wb = &w[k * n + j0..k * n + j0 + KERNEL_BLOCK];
                    for (o, &wv) in acc.iter_mut().zip(wb) {
                        *o += a * wv;
                    }
                }
                out_row[j0..j0 + KERNEL_BLOCK].copy_from_slice(&acc);
                j0 += KERNEL_BLOCK;
            }
            // Sub-block tail columns: classic ikj order (still bit-identical
            // — per-element order over k is unchanged).
            if j0 < n {
                for (k, &a) in in_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    for (o, &wv) in out_row[j0..].iter_mut().zip(&w[k * n + j0..(k + 1) * n]) {
                        *o += a * wv;
                    }
                }
            }
            for (o, &bv) in out_row.iter_mut().zip(&self.bias) {
                *o += bv;
            }
            self.activation.apply_slice(out_row);
        }
    }

    /// Portable q8 rows: the same u8·i8 → i32 quad reduction the VNNI path
    /// executes, expressed as plain integer loops. Exact in `i32`, so its
    /// results are bitwise-equal to [`FrozenLayer::rows_q8_vnni`].
    fn rows_q8_generic(
        &self,
        p: &PackedQ8,
        input: &[f32],
        out: &mut [f32],
        qx: &mut [u8],
        idot: &mut [i32],
    ) {
        let n = self.out_dim;
        for (x, out_row) in input.chunks_exact(self.in_dim).zip(out.chunks_exact_mut(n)) {
            let (sx, z) = quantize_row(x, qx);
            idot.iter_mut().for_each(|v| *v = 0);
            for (quad, xq) in p.pack.chunks_exact(n * 4).zip(qx.chunks_exact(4)) {
                for (acc, wq) in idot.iter_mut().zip(quad.chunks_exact(4)) {
                    let mut s = 0i32;
                    for (&xv, &wv) in xq.iter().zip(wq) {
                        s += xv as i32 * wv as i32;
                    }
                    *acc += s;
                }
            }
            self.q8_epilogue(p, sx, z, idot, out_row);
        }
    }

    /// VNNI q8 rows: `vpdpbusd` accumulates each input quad into 16 output
    /// columns per lane group, [`ACC_BLOCKS`] independent accumulators deep
    /// (the instruction's latency would serialize a single chain).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f", enable = "avx512bw", enable = "avx512vl", enable = "avx512vnni")]
    unsafe fn rows_q8_vnni(
        &self,
        p: &PackedQ8,
        input: &[f32],
        out: &mut [f32],
        qx: &mut [u8],
        idot: &mut [i32],
    ) {
        use std::arch::x86_64::*;
        let n = self.out_dim;
        let nb = n / KERNEL_BLOCK;
        let nb4 = nb / ACC_BLOCKS * ACC_BLOCKS;
        for (x, out_row) in input.chunks_exact(self.in_dim).zip(out.chunks_exact_mut(n)) {
            let (sx, z) = quantize_row(x, qx);
            let mut b = 0;
            // SAFETY: `p.pack` is `[k4][n][4]` bytes, so for quad `t` the
            // loads at `t*n*4 + b*64 .. +64` stay inside the quad's row while
            // `(b + ACC_BLOCKS) * KERNEL_BLOCK <= n` (resp. `b + 1 <= nb`);
            // `idot` holds `n` i32, covering the stores at `b*16 .. b*16+64`.
            while b < nb4 {
                let mut a0 = _mm512_setzero_si512();
                let mut a1 = _mm512_setzero_si512();
                let mut a2 = _mm512_setzero_si512();
                let mut a3 = _mm512_setzero_si512();
                for (t, xq) in qx.chunks_exact(4).enumerate() {
                    let xb = _mm512_set1_epi32(i32::from_le_bytes([xq[0], xq[1], xq[2], xq[3]]));
                    let base = p.pack.as_ptr().add(t * n * 4 + b * 64);
                    a0 = _mm512_dpbusd_epi32(a0, xb, _mm512_loadu_si512(base as *const _));
                    a1 = _mm512_dpbusd_epi32(a1, xb, _mm512_loadu_si512(base.add(64) as *const _));
                    a2 = _mm512_dpbusd_epi32(a2, xb, _mm512_loadu_si512(base.add(128) as *const _));
                    a3 = _mm512_dpbusd_epi32(a3, xb, _mm512_loadu_si512(base.add(192) as *const _));
                }
                let dst = idot.as_mut_ptr().add(b * KERNEL_BLOCK);
                _mm512_storeu_si512(dst as *mut _, a0);
                _mm512_storeu_si512(dst.add(16) as *mut _, a1);
                _mm512_storeu_si512(dst.add(32) as *mut _, a2);
                _mm512_storeu_si512(dst.add(48) as *mut _, a3);
                b += ACC_BLOCKS;
            }
            while b < nb {
                let mut acc = _mm512_setzero_si512();
                for (t, xq) in qx.chunks_exact(4).enumerate() {
                    let xb = _mm512_set1_epi32(i32::from_le_bytes([xq[0], xq[1], xq[2], xq[3]]));
                    let wq = _mm512_loadu_si512(p.pack.as_ptr().add(t * n * 4 + b * 64) as *const _);
                    acc = _mm512_dpbusd_epi32(acc, xb, wq);
                }
                _mm512_storeu_si512(idot.as_mut_ptr().add(b * KERNEL_BLOCK) as *mut _, acc);
                b += 1;
            }
            // Sub-block tail columns, scalar integer (identical arithmetic).
            for (j, d) in idot.iter_mut().enumerate().skip(nb * KERNEL_BLOCK) {
                let mut acc = 0i32;
                for (t, xq) in qx.chunks_exact(4).enumerate() {
                    let wq = &p.pack[t * n * 4 + j * 4..t * n * 4 + j * 4 + 4];
                    for (&xv, &wv) in xq.iter().zip(wq) {
                        acc += xv as i32 * wv as i32;
                    }
                }
                *d = acc;
            }
            self.q8_epilogue(p, sx, z, idot, out_row);
        }
    }

    /// Shared q8 epilogue: dequantize the exact integer dots, add bias,
    /// activate. Element-wise IEEE ops — identical on every ISA.
    #[inline(always)]
    fn q8_epilogue(&self, p: &PackedQ8, sx: f32, z: i32, idot: &[i32], out_row: &mut [f32]) {
        for (((o, &d), (&s, &cs)), &bv) in out_row
            .iter_mut()
            .zip(idot)
            .zip(p.scale.iter().zip(&p.colsum))
            .zip(&self.bias)
        {
            *o = s * sx * (d - z * cs) as f32 + bv;
        }
        self.activation.apply_slice(out_row);
    }

    fn size_bytes(&self) -> usize {
        let w = match &self.weights {
            FrozenWeights::F32(v) => v.len() * 4,
            FrozenWeights::Q8(p) => p.size_bytes(),
        };
        w + self.bias.len() * 4
    }
}

/// Reusable per-thread buffers: the frozen path's whole working set. Living
/// in a `thread_local!`, they make steady-state serving allocation-free per
/// batch (beyond the returned score vector).
#[derive(Default)]
struct Scratch {
    ids: Vec<u32>,
    offsets: Vec<usize>,
    sub: Vec<u32>,
    a: Vec<f32>,
    b: Vec<f32>,
    pooled: Vec<f32>,
    /// q8 path: quantized input row (`k4 * 4` u8 codes).
    qx: Vec<u8>,
    /// q8 path: per-column integer dot products.
    idot: Vec<i32>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// A [`DeepSets`] model frozen for serving: re-laid-out weights at a chosen
/// [`Precision`], blocked dense loops, and zero per-batch allocation.
///
/// Freezing is read-only (`&DeepSets`) and the frozen model is immutable —
/// every inference method takes `&self` and is safe to share across serve
/// workers. It intentionally does *not* track later mutations of the source
/// model; holders (the task wrappers) re-freeze after weight changes.
#[derive(Debug)]
pub struct FrozenModel {
    precision: Precision,
    encoder: FrozenEncoder,
    phi: Vec<FrozenLayer>,
    rho: Vec<FrozenLayer>,
    pooling: Pooling,
    /// Inner-loop blocks executed since the last [`FrozenModel::take_blocks`]
    /// — fed to the `setlearn_kernel_blocks_total` counter.
    blocks: AtomicU64,
}

impl FrozenModel {
    /// Extracts a frozen serving model from `model` at `precision`.
    pub fn freeze(model: &DeepSets, precision: Precision) -> FrozenModel {
        let freeze_mlp = |mlp: &setlearn_nn::Mlp| {
            mlp.layers().iter().map(|l| FrozenLayer::freeze(l, precision)).collect::<Vec<_>>()
        };
        FrozenModel {
            precision,
            encoder: FrozenEncoder::freeze(model.encoder(), precision),
            phi: model.phi().map(freeze_mlp).unwrap_or_default(),
            rho: freeze_mlp(model.rho()),
            pooling: model.config().pooling,
            blocks: AtomicU64::new(0),
        }
    }

    /// The precision this model was frozen at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Frozen weight footprint in bytes (tables + dense layers).
    pub fn size_bytes(&self) -> usize {
        self.encoder.size_bytes()
            + self.phi.iter().map(FrozenLayer::size_bytes).sum::<usize>()
            + self.rho.iter().map(FrozenLayer::size_bytes).sum::<usize>()
    }

    /// Drains the inner-loop block counter accumulated since the last call
    /// (telemetry hook for `setlearn_kernel_blocks_total`).
    pub fn take_blocks(&self) -> u64 {
        self.blocks.swap(0, Ordering::Relaxed)
    }

    /// Scores a batch of sets; output order matches input order.
    ///
    /// # Panics
    /// On empty sets ("cannot encode an empty set") and out-of-vocabulary
    /// ids — the same contract as [`DeepSets::predict_batch`].
    pub fn predict_batch<S: AsRef<[u32]>>(&self, sets: &[S]) -> Vec<f32> {
        SCRATCH.with(|s| self.run(sets, &mut s.borrow_mut()))
    }

    /// Scores a single set.
    pub fn predict_one(&self, set: &[u32]) -> f32 {
        self.predict_batch(&[set])[0]
    }

    /// Parallel batch scoring with the exact splitting rule of
    /// [`DeepSets::predict_batch_parallel`] (so results are chunk-for-chunk
    /// identical to the scalar path).
    pub fn predict_batch_parallel<S: AsRef<[u32]> + Sync>(
        &self,
        sets: &[S],
        threads: usize,
    ) -> Vec<f32> {
        assert!(threads > 0, "need at least one thread");
        if sets.is_empty() {
            return Vec::new();
        }
        if threads == 1 || sets.len() < 2 * threads {
            return self.predict_batch(sets);
        }
        let chunk = sets.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = sets
                .chunks(chunk)
                .map(|part| scope.spawn(move || self.predict_batch(part)))
                .collect();
            let mut out = Vec::with_capacity(sets.len());
            for h in handles {
                out.extend(h.join().expect("prediction worker panicked"));
            }
            out
        })
    }

    fn run<S: AsRef<[u32]>>(&self, sets: &[S], s: &mut Scratch) -> Vec<f32> {
        // Flatten into reused buffers (same contract as the scalar path:
        // empty sets are a caller bug).
        s.ids.clear();
        s.offsets.clear();
        s.offsets.push(0);
        for set in sets {
            let set = set.as_ref();
            assert!(!set.is_empty(), "cannot encode an empty set");
            s.ids.extend_from_slice(set);
            s.offsets.push(s.ids.len());
        }
        let n = s.ids.len();
        let b = sets.len();
        let mut blocks = 0u64;

        // Encode + φ over the flat element batch, ping-ponging the two
        // scratch buffers.
        self.encoder.encode(&s.ids, &mut s.sub, &mut s.a);
        let mut h_dim = self.encoder.out_dim();
        for layer in &self.phi {
            layer.apply(&s.a, n, &mut s.b, &mut s.qx, &mut s.idot, &mut blocks);
            std::mem::swap(&mut s.a, &mut s.b);
            h_dim = layer.out_dim;
        }

        // Pool per set — identical accumulation order to the scalar path.
        s.pooled.clear();
        s.pooled.resize(b * h_dim, 0.0);
        match self.pooling {
            Pooling::Sum | Pooling::Mean => {
                for (set_i, row) in s.pooled.chunks_exact_mut(h_dim).enumerate() {
                    let range = s.offsets[set_i]..s.offsets[set_i + 1];
                    let count = range.len() as f32;
                    for r in range {
                        for (o, &v) in row.iter_mut().zip(&s.a[r * h_dim..(r + 1) * h_dim]) {
                            *o += v;
                        }
                    }
                    if self.pooling == Pooling::Mean {
                        for o in row.iter_mut() {
                            *o /= count;
                        }
                    }
                }
            }
            Pooling::Max => {
                for (set_i, row) in s.pooled.chunks_exact_mut(h_dim).enumerate() {
                    let range = s.offsets[set_i]..s.offsets[set_i + 1];
                    for (k, r) in range.enumerate() {
                        for (j, &v) in s.a[r * h_dim..(r + 1) * h_dim].iter().enumerate() {
                            if k == 0 || v > row[j] {
                                row[j] = v;
                            }
                        }
                    }
                }
            }
        }

        // ρ head over the pooled batch.
        std::mem::swap(&mut s.a, &mut s.pooled);
        for layer in &self.rho {
            layer.apply(&s.a, b, &mut s.b, &mut s.qx, &mut s.idot, &mut blocks);
            std::mem::swap(&mut s.a, &mut s.b);
        }
        debug_assert_eq!(s.a.len(), b, "ρ must end in a scalar layer");
        if blocks > 0 {
            self.blocks.fetch_add(blocks, Ordering::Relaxed);
        }
        s.a.clone()
    }
}

impl InferenceKernel for FrozenModel {
    fn precision(&self) -> Precision {
        self.precision
    }

    fn infer_batch(&self, sets: &[&[u32]]) -> Vec<f32> {
        self.predict_batch(sets)
    }

    fn infer_one(&self, set: &[u32]) -> f32 {
        self.predict_one(set)
    }
}

/// Lazily frozen kernel slot for a task wrapper: freezes on first use, is
/// skipped by serde, and clones to an empty slot (the clone re-freezes on
/// its own first query).
///
/// Holders must [`KernelCell::reset`] whenever the underlying model's
/// weights may have changed (`model_mut`, quantization, weight hot-swap) —
/// the cell cannot observe mutations itself.
#[derive(Default)]
pub struct KernelCell(OnceLock<FrozenModel>);

impl KernelCell {
    /// An empty (not yet frozen) cell.
    pub fn new() -> KernelCell {
        KernelCell(OnceLock::new())
    }

    /// The frozen kernel, freezing `model` at `precision` on first use.
    pub fn get_or_freeze(&self, model: &DeepSets, precision: Precision) -> &FrozenModel {
        self.0.get_or_init(|| FrozenModel::freeze(model, precision))
    }

    /// Drops any frozen kernel so the next query re-freezes from the current
    /// weights.
    pub fn reset(&mut self) {
        self.0 = OnceLock::new();
    }

    /// The frozen kernel, if one exists.
    pub fn get(&self) -> Option<&FrozenModel> {
        self.0.get()
    }
}

impl Clone for KernelCell {
    fn clone(&self) -> KernelCell {
        // A frozen model is a pure function of (weights, precision); the
        // clone re-freezes lazily instead of copying the layout.
        KernelCell::new()
    }
}

impl fmt::Debug for KernelCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.get() {
            Some(k) => write!(f, "KernelCell(frozen {})", k.precision()),
            None => f.write_str("KernelCell(empty)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CompressionKind, DeepSetsConfig};

    fn config(compression: CompressionKind, pooling: Pooling) -> DeepSetsConfig {
        DeepSetsConfig {
            vocab: 500,
            embedding_dim: 4,
            phi_hidden: vec![12],
            rho_hidden: vec![9], // deliberately not a multiple of KERNEL_BLOCK
            pooling,
            hidden_activation: Activation::Relu,
            output_activation: Activation::Sigmoid,
            compression,
            seed: 11,
        }
    }

    fn sets() -> Vec<Vec<u32>> {
        (0..40u32).map(|i| (0..=(i % 5)).map(|j| (i * 31 + j * 7) % 500).collect()).collect()
    }

    #[test]
    fn f32_freeze_is_bit_identical_across_encoders_and_poolings() {
        for compression in [
            CompressionKind::None,
            CompressionKind::Optimal { ns: 2 },
            CompressionKind::Hashed { buckets: 32, num_hashes: 2 },
        ] {
            for pooling in [Pooling::Sum, Pooling::Mean, Pooling::Max] {
                let model = DeepSets::new(config(compression.clone(), pooling));
                let frozen = FrozenModel::freeze(&model, Precision::F32);
                let sets = sets();
                assert_eq!(
                    frozen.predict_batch(&sets),
                    model.predict_batch(&sets),
                    "{compression:?}/{pooling:?}"
                );
            }
        }
    }

    #[test]
    fn f16_freeze_matches_quantize_in_place() {
        let model = DeepSets::new(config(CompressionKind::Optimal { ns: 2 }, Pooling::Sum));
        let frozen = FrozenModel::freeze(&model, Precision::F16);
        let mut rounded = model.clone();
        crate::quantize::quantize_in_place(&mut rounded);
        let sets = sets();
        assert_eq!(frozen.predict_batch(&sets), rounded.predict_batch(&sets));
    }

    #[test]
    fn q8_stays_close_and_shrinks() {
        let model = DeepSets::new(config(CompressionKind::None, Pooling::Sum));
        let f32k = FrozenModel::freeze(&model, Precision::F32);
        let q8 = FrozenModel::freeze(&model, Precision::Q8);
        for (a, b) in f32k.predict_batch(&sets()).iter().zip(q8.predict_batch(&sets())) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
        // Tiny dim-4 embedding rows carry 8 bytes of affine params per 4
        // codes, so the shrink is < 4x here; it approaches 4x as dims grow.
        assert!(q8.size_bytes() < f32k.size_bytes());
        let wide = DeepSets::new(DeepSetsConfig { embedding_dim: 32, ..config(CompressionKind::None, Pooling::Sum) });
        let wf = FrozenModel::freeze(&wide, Precision::F32);
        let wq = FrozenModel::freeze(&wide, Precision::Q8);
        assert!(wq.size_bytes() * 2 < wf.size_bytes(), "{} vs {}", wq.size_bytes(), wf.size_bytes());
    }

    #[test]
    fn parallel_matches_serial() {
        let model = DeepSets::new(config(CompressionKind::Optimal { ns: 2 }, Pooling::Sum));
        let frozen = FrozenModel::freeze(&model, Precision::Q8);
        let sets = sets();
        let serial = frozen.predict_batch(&sets);
        for threads in [1, 2, 4, 7] {
            assert_eq!(frozen.predict_batch_parallel(&sets, threads), serial, "{threads}");
        }
        assert!(frozen.predict_batch_parallel::<Vec<u32>>(&[], 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "empty set")]
    fn empty_set_rejected() {
        let model = DeepSets::new(config(CompressionKind::None, Pooling::Sum));
        let _ = FrozenModel::freeze(&model, Precision::F32).predict_one(&[]);
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn out_of_vocab_rejected() {
        let model = DeepSets::new(config(CompressionKind::None, Pooling::Sum));
        let _ = FrozenModel::freeze(&model, Precision::F32).predict_one(&[500]);
    }

    #[test]
    fn block_counter_drains() {
        let model = DeepSets::new(config(CompressionKind::None, Pooling::Sum));
        let frozen = FrozenModel::freeze(&model, Precision::F32);
        let _ = frozen.predict_one(&[1, 2, 3]);
        assert!(frozen.take_blocks() > 0);
        assert_eq!(frozen.take_blocks(), 0);
    }

    #[test]
    fn precision_strings_and_bytes_round_trip() {
        for p in Precision::ALL {
            assert_eq!(p.to_string().parse::<Precision>().unwrap(), p);
            assert_eq!(Precision::from_byte(p.to_byte()), Some(p));
        }
        assert!("f64".parse::<Precision>().is_err());
        assert_eq!(Precision::from_byte(9), None);
        // The vendored serde stub serializes unit variants by name.
        assert_eq!(serde_json::to_string(&Precision::Q8).unwrap(), "\"Q8\"");
    }

    #[test]
    fn resolve_precision_contract() {
        assert_eq!(resolve_precision(None, Precision::Q8), Ok(Precision::Q8));
        assert_eq!(resolve_precision(Some(Precision::Q8), Precision::Q8), Ok(Precision::Q8));
        let err = resolve_precision(Some(Precision::F16), Precision::Q8).unwrap_err();
        assert_eq!(err, PrecisionMismatch { requested: Precision::F16, recorded: Precision::Q8 });
        assert!(err.to_string().contains("precision mismatch"));
    }

    /// Every supported ISA must produce bitwise-identical scores: f32 vs the
    /// scalar reference, q8 vs the portable integer emulation. One test (not
    /// one per ISA) because the selected ISA is process-global.
    #[test]
    fn all_supported_isas_agree_bitwise() {
        let detected = detect_kernel_isa();
        let model = DeepSets::new(config(CompressionKind::None, Pooling::Sum));
        let scalar = model.predict_batch(&sets());
        let f32k = FrozenModel::freeze(&model, Precision::F32);
        let q8k = FrozenModel::freeze(&model, Precision::Q8);
        set_kernel_isa(KernelIsa::Generic).unwrap();
        let q8_reference = q8k.predict_batch(&sets());
        for isa in [KernelIsa::Generic, KernelIsa::Avx2, KernelIsa::Avx512, KernelIsa::Avx512Vnni]
        {
            if isa > detected {
                assert!(set_kernel_isa(isa).is_err(), "{isa} should be unavailable");
                continue;
            }
            set_kernel_isa(isa).unwrap();
            assert_eq!(kernel_isa(), isa);
            assert_eq!(f32k.predict_batch(&sets()), scalar, "{isa}: f32 diverged");
            assert_eq!(q8k.predict_batch(&sets()), q8_reference, "{isa}: q8 diverged");
        }
        set_kernel_isa(detected).unwrap();
    }

    /// Direct q8 layer check against an exact f32 matmul, at widths that
    /// exercise the blocked path (16), the scalar tail (13) and a padded
    /// input quad (13 → k4 = 4).
    #[test]
    fn q8_layer_approximates_exact_matmul() {
        for (in_dim, out_dim) in [(8usize, 16usize), (13, 13), (16, 13), (13, 1)] {
            let w: Vec<f32> = (0..in_dim * out_dim)
                .map(|i| ((i * 37) % 21) as f32 / 10.0 - 1.0)
                .collect();
            let layer = FrozenLayer {
                in_dim,
                out_dim,
                activation: Activation::Identity,
                weights: FrozenWeights::Q8(PackedQ8::pack(&w, in_dim, out_dim)),
                bias: vec![0.0; out_dim],
            };
            let x: Vec<f32> = (0..in_dim).map(|i| i as f32 / 3.0 - 1.0).collect();
            let (mut out, mut qx, mut idot, mut blocks) =
                (Vec::new(), Vec::new(), Vec::new(), 0);
            layer.apply(&x, 1, &mut out, &mut qx, &mut idot, &mut blocks);
            for (j, o) in out.iter().enumerate() {
                let r: f32 = (0..in_dim).map(|k| x[k] * w[k * out_dim + j]).sum();
                assert!(
                    (o - r).abs() <= 0.02 * (1.0 + r.abs()),
                    "{in_dim}x{out_dim} col {j}: {o} vs {r}"
                );
            }
        }
    }

    #[test]
    fn kernel_isa_strings_round_trip() {
        for isa in
            [KernelIsa::Generic, KernelIsa::Avx2, KernelIsa::Avx512, KernelIsa::Avx512Vnni]
        {
            assert_eq!(isa.to_string().parse::<KernelIsa>().unwrap(), isa);
        }
        assert!("sse9".parse::<KernelIsa>().is_err());
        assert!(KernelIsa::Generic < KernelIsa::Avx2);
        assert!(KernelIsa::Avx512 < KernelIsa::Avx512Vnni);
    }

    #[test]
    fn kernel_cell_clones_empty_and_refreezes() {
        let model = DeepSets::new(config(CompressionKind::None, Pooling::Sum));
        let cell = KernelCell::new();
        let p = cell.get_or_freeze(&model, Precision::F16).predict_one(&[1, 2]);
        let copy = cell.clone();
        assert!(copy.get().is_none(), "clone must not share the frozen kernel");
        assert_eq!(copy.get_or_freeze(&model, Precision::F16).predict_one(&[1, 2]), p);
    }
}
