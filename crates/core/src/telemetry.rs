//! Serve-path telemetry: cached metric handles and recording helpers.
//!
//! Each task head (cardinality, index, bloom) owns one lazily initialized
//! [`ServeTele`] bundle of handles into the global
//! [`setlearn_obs::MetricsRegistry`], resolved once and then recorded
//! through lock-free. Metric families (all labeled `task="…"`):
//!
//! - `setlearn_serve_queries_total` — queries answered (counter)
//! - `setlearn_serve_latency_seconds` — per-query serve latency (histogram;
//!   single-query paths only, batch paths count queries without latency)
//! - `setlearn_serve_fallbacks_total` — guard rejections, additionally
//!   labeled `reason="non_finite"|"out_of_bounds"` (counter)
//! - `setlearn_serve_bound_misses_total` — index scans that exhausted their
//!   local-error window without a hit (counter; `task="index"` only)
//! - `setlearn_infer_precision` — which inference kernel is live, as a
//!   one-hot gauge family labeled `precision="f32"|"f16"|"q8"` (the live
//!   kernel's gauge reads 1, the others 0)
//! - `setlearn_kernel_blocks_total` — fixed-width inner-loop blocks executed
//!   by the frozen kernels (counter; a direct measure of serve compute)
//!
//! Every fallback also emits a `serve_fallback` trace event; at
//! [`setlearn_obs::TelemetryLevel::Full`] each single query additionally
//! records a `serve_query` span.

use crate::hybrid::FallbackReason;
use crate::kernel::Precision;
use setlearn_obs::{Counter, Field, Gauge, Histogram, LATENCY_BOUNDS};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Cached serve-metric handles for one task head.
pub(crate) struct ServeTele {
    task: &'static str,
    queries: Arc<Counter>,
    latency: Arc<Histogram>,
    fallback_non_finite: Arc<Counter>,
    fallback_out_of_bounds: Arc<Counter>,
    bound_misses: Arc<Counter>,
    /// One-hot precision gauges, indexed by [`Precision::to_byte`].
    infer_precision: [Arc<Gauge>; 3],
    kernel_blocks: Arc<Counter>,
}

impl ServeTele {
    fn new(task: &'static str) -> Self {
        let m = setlearn_obs::metrics();
        ServeTele {
            task,
            queries: m.counter_with("setlearn_serve_queries_total", &[("task", task)]),
            latency: m.histogram_with(
                "setlearn_serve_latency_seconds",
                &[("task", task)],
                LATENCY_BOUNDS,
            ),
            fallback_non_finite: m.counter_with(
                "setlearn_serve_fallbacks_total",
                &[("task", task), ("reason", "non_finite")],
            ),
            fallback_out_of_bounds: m.counter_with(
                "setlearn_serve_fallbacks_total",
                &[("task", task), ("reason", "out_of_bounds")],
            ),
            bound_misses: m
                .counter_with("setlearn_serve_bound_misses_total", &[("task", task)]),
            infer_precision: [Precision::F32, Precision::F16, Precision::Q8].map(|p| {
                m.gauge_with(
                    "setlearn_infer_precision",
                    &[("task", task), ("precision", precision_str(p))],
                )
            }),
            kernel_blocks: m.counter_with("setlearn_kernel_blocks_total", &[("task", task)]),
        }
    }

    /// Records a frozen-kernel pass: marks `precision` as the live kernel
    /// (one-hot across the gauge family) and adds the drained inner-loop
    /// block count.
    pub(crate) fn record_kernel(&self, precision: Precision, blocks: u64) {
        if !setlearn_obs::metrics_on() {
            return;
        }
        for (i, g) in self.infer_precision.iter().enumerate() {
            g.set(if i == precision.to_byte() as usize { 1.0 } else { 0.0 });
        }
        if blocks > 0 {
            self.kernel_blocks.add(blocks);
        }
    }

    /// Records one single-query serve: query count, latency, any guard
    /// fallback, and (at `Full`) a `serve_query` span. `start` comes from
    /// [`query_start`]; when telemetry was off at query start this is a
    /// no-op, so a query is never half-recorded.
    pub(crate) fn record_query(&self, start: Option<Instant>, fallback: Option<FallbackReason>) {
        let Some(start) = start else { return };
        let elapsed = start.elapsed();
        self.queries.inc();
        self.latency.observe(elapsed.as_secs_f64());
        if let Some(reason) = fallback {
            self.count_fallback(reason);
        }
        if setlearn_obs::tracing_on() {
            let tracer = setlearn_obs::tracer();
            let dur_us = elapsed.as_micros() as u64;
            let start_us = tracer.now_us().saturating_sub(dur_us);
            let mut fields = vec![Field::text("task", self.task)];
            if let Some(reason) = fallback {
                fields.push(Field::text("fallback", reason_str(reason)));
            }
            tracer.push_span("serve_query", start_us, fields);
        }
    }

    /// Records a batched serve: `n` queries without per-query latency.
    pub(crate) fn record_batch(&self, n: usize, fallbacks: &[FallbackReason]) {
        if !setlearn_obs::metrics_on() {
            return;
        }
        self.queries.add(n as u64);
        for &reason in fallbacks {
            self.count_fallback(reason);
        }
    }

    /// Records an index scan that exhausted its local-error window without
    /// finding the query — either the bound failed to cover the true
    /// position or the subset genuinely does not occur; both are worth
    /// watching because true negatives should be rare for index workloads.
    pub(crate) fn record_bound_miss(&self) {
        if setlearn_obs::metrics_on() {
            self.bound_misses.inc();
        }
    }

    fn count_fallback(&self, reason: FallbackReason) {
        match reason {
            FallbackReason::NonFinite => self.fallback_non_finite.inc(),
            FallbackReason::OutOfBounds => self.fallback_out_of_bounds.inc(),
        }
        // Fallbacks are rare by construction, so the event is recorded at
        // the default Metrics level, not just Full.
        setlearn_obs::tracer().push_event(
            "serve_fallback",
            vec![
                Field::text("task", self.task),
                Field::text("reason", reason_str(reason)),
            ],
        );
    }
}

fn precision_str(p: Precision) -> &'static str {
    match p {
        Precision::F32 => "f32",
        Precision::F16 => "f16",
        Precision::Q8 => "q8",
    }
}

fn reason_str(reason: FallbackReason) -> &'static str {
    match reason {
        FallbackReason::NonFinite => "non_finite",
        FallbackReason::OutOfBounds => "out_of_bounds",
    }
}

/// Starts timing a single query; `None` when telemetry is off so the serve
/// hot path skips the clock read entirely.
pub(crate) fn query_start() -> Option<Instant> {
    if setlearn_obs::metrics_on() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Serve telemetry for the cardinality estimator.
pub(crate) fn cardinality_tele() -> &'static ServeTele {
    static TELE: OnceLock<ServeTele> = OnceLock::new();
    TELE.get_or_init(|| ServeTele::new("cardinality"))
}

/// Serve telemetry for the learned set index.
pub(crate) fn index_tele() -> &'static ServeTele {
    static TELE: OnceLock<ServeTele> = OnceLock::new();
    TELE.get_or_init(|| ServeTele::new("index"))
}

/// Serve telemetry for the learned Bloom filter.
pub(crate) fn bloom_tele() -> &'static ServeTele {
    static TELE: OnceLock<ServeTele> = OnceLock::new();
    TELE.get_or_init(|| ServeTele::new("bloom"))
}

/// Cached WAL metric handles (unlabeled; the WAL is shared across tasks).
///
/// - `setlearn_wal_appends_total` — records durably appended
/// - `setlearn_wal_replayed_records_total` — records replayed at recovery
/// - `setlearn_wal_truncated_tail_total` — damage sites truncated/discarded
/// - `setlearn_wal_segments_sealed_total` — segment rotations
/// - `setlearn_wal_compactions_total` — completed compactions
///
/// Every truncation additionally emits a `wal_truncated_tail` trace event
/// (at the default `Metrics` level — damage is rare and always worth a
/// record); each recovery records a `wal_replay` span.
pub(crate) struct WalTele {
    appends: Arc<Counter>,
    replayed: Arc<Counter>,
    truncated: Arc<Counter>,
    sealed: Arc<Counter>,
    compactions: Arc<Counter>,
}

impl WalTele {
    fn new() -> Self {
        let m = setlearn_obs::metrics();
        WalTele {
            appends: m.counter_with("setlearn_wal_appends_total", &[]),
            replayed: m.counter_with("setlearn_wal_replayed_records_total", &[]),
            truncated: m.counter_with("setlearn_wal_truncated_tail_total", &[]),
            sealed: m.counter_with("setlearn_wal_segments_sealed_total", &[]),
            compactions: m.counter_with("setlearn_wal_compactions_total", &[]),
        }
    }

    /// One record made durable.
    pub(crate) fn record_append(&self) {
        if setlearn_obs::metrics_on() {
            self.appends.inc();
        }
    }

    /// One recovery pass: `replayed` surviving records, plus a `wal_replay`
    /// span when tracing.
    pub(crate) fn record_replay(&self, replayed: usize, truncated: bool, took: std::time::Duration) {
        if !setlearn_obs::metrics_on() {
            return;
        }
        self.replayed.add(replayed as u64);
        if setlearn_obs::tracing_on() {
            let tracer = setlearn_obs::tracer();
            let dur_us = took.as_micros() as u64;
            let start_us = tracer.now_us().saturating_sub(dur_us);
            tracer.push_span(
                "wal_replay",
                start_us,
                vec![
                    Field::num("replayed", replayed as f64),
                    Field::num("truncated", u64::from(truncated) as f64),
                ],
            );
        }
    }

    /// One damage site handled by truncation (or discard). `valid_len` is
    /// the byte length the segment was cut back to (0 when removed).
    pub(crate) fn record_truncated_tail(&self, segment: u64, valid_len: u64, reason: &str) {
        if !setlearn_obs::metrics_on() {
            return;
        }
        self.truncated.inc();
        setlearn_obs::tracer().push_event(
            "wal_truncated_tail",
            vec![
                Field::num("segment", segment as f64),
                Field::num("valid_len", valid_len as f64),
                Field::text("reason", reason),
            ],
        );
    }

    /// One segment rotation.
    pub(crate) fn record_seal(&self) {
        if setlearn_obs::metrics_on() {
            self.sealed.inc();
        }
    }

    /// One completed compaction: `applied` records folded into the new
    /// checkpoint.
    pub(crate) fn record_compaction(&self, applied: u64) {
        if !setlearn_obs::metrics_on() {
            return;
        }
        self.compactions.inc();
        setlearn_obs::tracer().push_event(
            "wal_compaction",
            vec![Field::num("applied_records", applied as f64)],
        );
    }
}

/// WAL telemetry bundle (process-wide; the registry handles are interned so
/// multiple logs share the same counters).
pub(crate) fn wal_tele() -> &'static WalTele {
    static TELE: OnceLock<WalTele> = OnceLock::new();
    TELE.get_or_init(WalTele::new)
}
