//! The DeepSets model (paper §3.2, Figures 2 and 4): shared element
//! encoder → per-element φ transformation → permutation-invariant pooling →
//! ρ head. Both the plain (LSM) and compressed (CLSM) variants are the same
//! struct with different [`ElementEncoder`]s.

use crate::compress::CompressionSpec;
use crate::encoder::ElementEncoder;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use setlearn_nn::{Activation, EpochStats, Loss, Matrix, Mlp, Optimizer};

/// Permutation-invariant pooling over the φ-transformed elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pooling {
    /// Element-wise sum — the paper's choice for the compressed model.
    Sum,
    /// Element-wise mean.
    Mean,
    /// Element-wise maximum.
    Max,
}

/// Which encoder the model uses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompressionKind {
    /// Single shared embedding (LSM).
    None,
    /// Compressed with the optimal divisor for `ns` sub-elements (CLSM).
    Optimal {
        /// Number of sub-elements.
        ns: usize,
    },
    /// Compressed with an explicit divisor (Table 6's tunable spectrum).
    Divisor {
        /// Number of sub-elements.
        ns: usize,
        /// The divisor `sv_d`.
        divisor: u32,
    },
    /// Hashing-trick encoder (lossy alternative; see `abl_hash_encoder`).
    Hashed {
        /// Bucket-table rows.
        buckets: u32,
        /// Hash probes per element.
        num_hashes: usize,
    },
}

/// Hyper-parameters of a DeepSets model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeepSetsConfig {
    /// Vocabulary size: element ids are `0..vocab`.
    pub vocab: u32,
    /// Embedding dimension (per table).
    pub embedding_dim: usize,
    /// Hidden widths of the per-element φ MLP; the last entry is the pooled
    /// feature width. Empty = pool raw encodings (only sensible for LSM —
    /// the compressed encoder *requires* φ to bind sub-element pairs, §5).
    pub phi_hidden: Vec<usize>,
    /// Hidden widths of the ρ head (a final scalar layer is appended).
    pub rho_hidden: Vec<usize>,
    /// Pooling operation.
    pub pooling: Pooling,
    /// Activation for hidden layers.
    pub hidden_activation: Activation,
    /// Activation of the scalar output (sigmoid for every task, Table 1).
    pub output_activation: Activation,
    /// Encoder variant.
    pub compression: CompressionKind,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl DeepSetsConfig {
    /// A reasonable LSM default for the given vocabulary: embedding 8,
    /// φ = [32], ρ = [32], sum pooling, sigmoid output.
    pub fn lsm(vocab: u32) -> Self {
        DeepSetsConfig {
            vocab,
            embedding_dim: 8,
            phi_hidden: vec![32],
            rho_hidden: vec![32],
            pooling: Pooling::Sum,
            hidden_activation: Activation::Relu,
            output_activation: Activation::Sigmoid,
            compression: CompressionKind::None,
            seed: 42,
        }
    }

    /// The CLSM counterpart with `ns = 2` (the paper's recommended setting).
    pub fn clsm(vocab: u32) -> Self {
        DeepSetsConfig { compression: CompressionKind::Optimal { ns: 2 }, ..Self::lsm(vocab) }
    }
}

/// Cached batch layout for the backward pass.
#[derive(Debug, Clone, Default)]
struct BatchCache {
    /// Per-set element ranges into the flat element batch: set `b` owns
    /// rows `offsets[b]..offsets[b+1]`.
    offsets: Vec<usize>,
    /// For max pooling: flat `[B x h]` indices of the winning element row.
    argmax: Vec<usize>,
}

/// The DeepSets model: encoder → φ → pooling → ρ → scalar.
///
/// ```
/// use setlearn::model::{DeepSets, DeepSetsConfig};
///
/// let model = DeepSets::new(DeepSetsConfig::clsm(10_000));
/// // Permutation invariance is structural, not learned:
/// assert_eq!(model.predict_one(&[3, 17, 9_999]), model.predict_one(&[9_999, 3, 17]));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeepSets {
    config: DeepSetsConfig,
    encoder: ElementEncoder,
    phi: Option<Mlp>,
    rho: Mlp,
    #[serde(skip)]
    cache: Option<BatchCache>,
}

impl DeepSets {
    /// Builds a model from its configuration.
    ///
    /// # Panics
    /// If a compressed encoder is configured without a φ network — pooling
    /// independently encoded sub-elements breaks the model (paper §5) — or
    /// if `vocab == 0`.
    pub fn new(config: DeepSetsConfig) -> Self {
        assert!(config.vocab > 0, "empty vocabulary");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let encoder = match &config.compression {
            CompressionKind::None => {
                ElementEncoder::plain(&mut rng, config.vocab, config.embedding_dim)
            }
            CompressionKind::Optimal { ns } => {
                let spec = CompressionSpec::optimal(config.vocab.saturating_sub(1).max(1), *ns);
                ElementEncoder::compressed(&mut rng, spec, config.embedding_dim)
            }
            CompressionKind::Divisor { ns, divisor } => {
                let spec = CompressionSpec::with_divisor(
                    config.vocab.saturating_sub(1).max(1),
                    *ns,
                    *divisor,
                );
                ElementEncoder::compressed(&mut rng, spec, config.embedding_dim)
            }
            CompressionKind::Hashed { buckets, num_hashes } => {
                ElementEncoder::hashed(&mut rng, *buckets as usize, config.embedding_dim, *num_hashes)
            }
        };
        assert!(
            matches!(config.compression, CompressionKind::None) || !config.phi_hidden.is_empty(),
            "the compressed encoder requires a φ network to preserve the \
             sub-element interconnection (paper §5)"
        );
        let enc_dim = encoder.out_dim();
        let phi = if config.phi_hidden.is_empty() {
            None
        } else {
            let mut dims = vec![enc_dim];
            dims.extend_from_slice(&config.phi_hidden);
            Some(Mlp::new(&mut rng, &dims, config.hidden_activation, config.hidden_activation))
        };
        let pool_dim = config.phi_hidden.last().copied().unwrap_or(enc_dim);
        let mut rho_dims = vec![pool_dim];
        rho_dims.extend_from_slice(&config.rho_hidden);
        rho_dims.push(1);
        let rho =
            Mlp::new(&mut rng, &rho_dims, config.hidden_activation, config.output_activation);
        DeepSets { config, encoder, phi, rho, cache: None }
    }

    /// The model's configuration.
    pub fn config(&self) -> &DeepSetsConfig {
        &self.config
    }

    /// The element encoder — read access for [`crate::kernel`]'s freezing
    /// pass, which re-lays-out the embedding tables for serving.
    pub fn encoder(&self) -> &ElementEncoder {
        &self.encoder
    }

    /// The per-element φ network, if configured.
    pub fn phi(&self) -> Option<&Mlp> {
        self.phi.as_ref()
    }

    /// The ρ head.
    pub fn rho(&self) -> &Mlp {
        &self.rho
    }

    /// Total scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.encoder.num_params()
            + self.phi.as_ref().map_or(0, Mlp::num_params)
            + self.rho.num_params()
    }

    /// Serialized model size in bytes (`f32` weights) — the paper's
    /// weights-only memory measure.
    pub fn size_bytes(&self) -> usize {
        self.num_params() * std::mem::size_of::<f32>()
    }

    fn flatten<S: AsRef<[u32]>>(sets: &[S]) -> (Vec<u32>, Vec<usize>) {
        let total: usize = sets.iter().map(|s| s.as_ref().len()).sum();
        let mut ids = Vec::with_capacity(total);
        let mut offsets = Vec::with_capacity(sets.len() + 1);
        offsets.push(0);
        for s in sets {
            let s = s.as_ref();
            assert!(!s.is_empty(), "cannot encode an empty set");
            ids.extend_from_slice(s);
            offsets.push(ids.len());
        }
        (ids, offsets)
    }

    fn pool(&self, h: &Matrix, offsets: &[usize]) -> (Matrix, Vec<usize>) {
        let b = offsets.len() - 1;
        let dim = h.cols();
        let mut pooled = Matrix::zeros(b, dim);
        let mut argmax = Vec::new();
        match self.config.pooling {
            Pooling::Sum | Pooling::Mean => {
                for set_i in 0..b {
                    let range = offsets[set_i]..offsets[set_i + 1];
                    let count = range.len() as f32;
                    let row = pooled.row_mut(set_i);
                    for r in range {
                        for (o, &v) in row.iter_mut().zip(h.row(r).iter()) {
                            *o += v;
                        }
                    }
                    if self.config.pooling == Pooling::Mean {
                        for o in row.iter_mut() {
                            *o /= count;
                        }
                    }
                }
            }
            Pooling::Max => {
                argmax = vec![0usize; b * dim];
                for set_i in 0..b {
                    let range = offsets[set_i]..offsets[set_i + 1];
                    let row = pooled.row_mut(set_i);
                    let am = &mut argmax[set_i * dim..(set_i + 1) * dim];
                    for (k, r) in range.enumerate() {
                        for (j, &v) in h.row(r).iter().enumerate() {
                            if k == 0 || v > row[j] {
                                row[j] = v;
                                am[j] = r;
                            }
                        }
                    }
                }
            }
        }
        (pooled, argmax)
    }

    fn unpool(&self, grad_pooled: &Matrix, offsets: &[usize], argmax: &[usize], n: usize) -> Matrix {
        let dim = grad_pooled.cols();
        let mut grad_h = Matrix::zeros(n, dim);
        match self.config.pooling {
            Pooling::Sum => {
                for set_i in 0..grad_pooled.rows() {
                    for r in offsets[set_i]..offsets[set_i + 1] {
                        grad_h.row_mut(r).copy_from_slice(grad_pooled.row(set_i));
                    }
                }
            }
            Pooling::Mean => {
                for set_i in 0..grad_pooled.rows() {
                    let count = (offsets[set_i + 1] - offsets[set_i]) as f32;
                    for r in offsets[set_i]..offsets[set_i + 1] {
                        for (o, &g) in
                            grad_h.row_mut(r).iter_mut().zip(grad_pooled.row(set_i).iter())
                        {
                            *o = g / count;
                        }
                    }
                }
            }
            Pooling::Max => {
                for set_i in 0..grad_pooled.rows() {
                    let am = &argmax[set_i * dim..(set_i + 1) * dim];
                    for (j, &g) in grad_pooled.row(set_i).iter().enumerate() {
                        grad_h.set(am[j], j, grad_h.get(am[j], j) + g);
                    }
                }
            }
        }
        grad_h
    }

    /// Training forward pass over a batch of sets; returns the scalar
    /// prediction per set and caches state for [`DeepSets::backward_batch`].
    pub fn forward_batch<S: AsRef<[u32]>>(&mut self, sets: &[S]) -> Vec<f32> {
        let (ids, offsets) = Self::flatten(sets);
        let encoded = self.encoder.forward(&ids);
        let h = match &mut self.phi {
            Some(phi) => phi.forward(&encoded),
            None => encoded,
        };
        let (pooled, argmax) = self.pool(&h, &offsets);
        let out = self.rho.forward(&pooled);
        self.cache = Some(BatchCache { offsets, argmax });
        out.into_vec()
    }

    /// Backward pass from `dL/dout` (one gradient per set in the batch).
    pub fn backward_batch(&mut self, grad_out: &[f32]) {
        let cache = self.cache.take().expect("backward before forward");
        let b = cache.offsets.len() - 1;
        assert_eq!(grad_out.len(), b, "gradient count mismatch");
        let n = *cache.offsets.last().expect("non-empty offsets");
        let grad = Matrix::from_vec(b, 1, grad_out.to_vec());
        let grad_pooled = self.rho.backward(&grad);
        let grad_h = self.unpool(&grad_pooled, &cache.offsets, &cache.argmax, n);
        let grad_enc = match &mut self.phi {
            Some(phi) => phi.backward(&grad_h),
            None => grad_h,
        };
        self.encoder.backward(&grad_enc);
    }

    /// Inference over a batch of sets.
    pub fn predict_batch<S: AsRef<[u32]>>(&self, sets: &[S]) -> Vec<f32> {
        let (ids, offsets) = Self::flatten(sets);
        let encoded = self.encoder.predict(&ids);
        let h = match &self.phi {
            Some(phi) => phi.predict(&encoded),
            None => encoded,
        };
        let (pooled, _) = self.pool(&h, &offsets);
        self.rho.predict(&pooled).into_vec()
    }

    /// Inference for a single set.
    pub fn predict_one(&self, set: &[u32]) -> f32 {
        self.predict_batch(&[set])[0]
    }

    /// Parallel inference: splits the batch across `threads` scoped worker
    /// threads (the model is immutable during inference, so sharing `&self`
    /// is free). Output order matches the input order exactly.
    pub fn predict_batch_parallel<S: AsRef<[u32]> + Sync>(
        &self,
        sets: &[S],
        threads: usize,
    ) -> Vec<f32> {
        assert!(threads > 0, "need at least one thread");
        if sets.is_empty() {
            return Vec::new();
        }
        if threads == 1 || sets.len() < 2 * threads {
            return self.predict_batch(sets);
        }
        let chunk = sets.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = sets
                .chunks(chunk)
                .map(|part| scope.spawn(move || self.predict_batch(part)))
                .collect();
            let mut out = Vec::with_capacity(sets.len());
            for h in handles {
                out.extend(h.join().expect("prediction worker panicked"));
            }
            out
        })
    }

    /// Immutable views of every parameter buffer's values in a stable order
    /// (encoder tables, φ layers, ρ layers) — the binary persistence layout.
    pub fn weight_buffers(&self) -> Vec<&[f32]> {
        let mut out: Vec<&[f32]> =
            self.encoder.params().into_iter().map(|p| p.value.as_slice()).collect();
        if let Some(phi) = &self.phi {
            out.extend(phi.params().into_iter().map(|p| p.value.as_slice()));
        }
        out.extend(self.rho.params().into_iter().map(|p| p.value.as_slice()));
        out
    }

    /// Overwrites every parameter buffer from `bufs` (the order of
    /// [`DeepSets::weight_buffers`]). Fails on count or length mismatch.
    pub fn load_weight_buffers(&mut self, bufs: &[Vec<f32>]) -> Result<(), String> {
        let mut targets: Vec<&mut setlearn_nn::ParamBuf> = self.encoder.params_mut();
        if let Some(phi) = &mut self.phi {
            targets.extend(phi.params_mut());
        }
        targets.extend(self.rho.params_mut());
        if targets.len() != bufs.len() {
            return Err(format!(
                "buffer count mismatch: model has {}, file has {}",
                targets.len(),
                bufs.len()
            ));
        }
        for (i, (t, b)) in targets.into_iter().zip(bufs.iter()).enumerate() {
            if t.value.len() != b.len() {
                return Err(format!(
                    "buffer {i} length mismatch: model {} vs file {}",
                    t.value.len(),
                    b.len()
                ));
            }
            t.value.copy_from_slice(b);
        }
        Ok(())
    }

    /// Zeroes all gradient accumulators (call once before training, and
    /// after deserialization).
    pub fn zero_grad(&mut self) {
        self.encoder.zero_grad();
        if let Some(phi) = &mut self.phi {
            phi.zero_grad();
        }
        self.rho.zero_grad();
    }

    /// Applies one optimizer step to every parameter buffer.
    pub fn step(&mut self, opt: &mut Optimizer) {
        opt.begin_step();
        for p in self.encoder.params_mut() {
            opt.step(p);
        }
        if let Some(phi) = &mut self.phi {
            for p in phi.params_mut() {
                opt.step(p);
            }
        }
        for p in self.rho.params_mut() {
            opt.step(p);
        }
    }

    /// Runs one shuffled mini-batch epoch over `(set, scaled target)` pairs,
    /// returning the mean batch loss.
    pub fn train_epoch<S: AsRef<[u32]>>(
        &mut self,
        data: &[(S, f32)],
        loss: Loss,
        opt: &mut Optimizer,
        batch_size: usize,
        rng: &mut StdRng,
    ) -> f32 {
        assert!(!data.is_empty(), "empty training data");
        assert!(batch_size > 0, "batch size must be positive");
        let mut order: Vec<usize> = (0..data.len()).collect();
        order.shuffle(rng);
        let mut total = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(batch_size) {
            let sets: Vec<&[u32]> = chunk.iter().map(|&i| data[i].0.as_ref()).collect();
            let targets: Vec<f32> = chunk.iter().map(|&i| data[i].1).collect();
            let pred = self.forward_batch(&sets);
            let (l, grad) = loss.loss_and_grad(&pred, &targets);
            self.backward_batch(&grad);
            self.step(opt);
            total += l as f64;
            batches += 1;
        }
        (total / batches as f64) as f32
    }

    /// Guarded variant of [`DeepSets::train_epoch`] for use under a
    /// [`setlearn_nn::TrainHarness`]: batches whose loss or gradient goes
    /// non-finite are skipped instead of poisoning the weights, and the
    /// global gradient norm is clipped to `clip_norm` before each step.
    /// Returns per-epoch accounting instead of a bare mean loss.
    pub fn train_epoch_guarded<S: AsRef<[u32]>>(
        &mut self,
        data: &[(S, f32)],
        loss: Loss,
        opt: &mut Optimizer,
        batch_size: usize,
        rng: &mut StdRng,
        clip_norm: Option<f32>,
    ) -> EpochStats {
        assert!(!data.is_empty(), "empty training data");
        assert!(batch_size > 0, "batch size must be positive");
        let mut order: Vec<usize> = (0..data.len()).collect();
        order.shuffle(rng);
        let mut stats = EpochStats::default();
        let mut total = 0.0f64;
        for chunk in order.chunks(batch_size) {
            let sets: Vec<&[u32]> = chunk.iter().map(|&i| data[i].0.as_ref()).collect();
            let targets: Vec<f32> = chunk.iter().map(|&i| data[i].1).collect();
            let pred = self.forward_batch(&sets);
            let (l, grad) = loss.loss_and_grad(&pred, &targets);
            if !l.is_finite() || grad.iter().any(|g| !g.is_finite()) {
                // Don't backprop a poisoned batch; the next forward pass
                // replaces the cache.
                stats.skipped_batches += 1;
                continue;
            }
            self.backward_batch(&grad);
            let norm = self.grad_norm();
            if !norm.is_finite() {
                self.zero_grad();
                stats.skipped_batches += 1;
                continue;
            }
            stats.max_grad_norm = stats.max_grad_norm.max(norm);
            if let Some(max_norm) = clip_norm {
                if norm > max_norm {
                    self.scale_grads(max_norm / norm);
                    stats.clipped_batches += 1;
                }
            }
            self.step(opt);
            total += l as f64;
            stats.batches += 1;
        }
        stats.mean_loss =
            if stats.batches > 0 { (total / stats.batches as f64) as f32 } else { f32::NAN };
        stats
    }

    /// Global L2 norm over every accumulated gradient buffer.
    pub fn grad_norm(&self) -> f32 {
        let mut grads: Vec<&[f32]> =
            self.encoder.params().into_iter().map(|p| p.grad.as_slice()).collect();
        if let Some(phi) = &self.phi {
            grads.extend(phi.params().into_iter().map(|p| p.grad.as_slice()));
        }
        grads.extend(self.rho.params().into_iter().map(|p| p.grad.as_slice()));
        setlearn_nn::harness::global_grad_norm(grads)
    }

    fn scale_grads(&mut self, factor: f32) {
        let mut params: Vec<&mut setlearn_nn::ParamBuf> = self.encoder.params_mut();
        if let Some(phi) = &mut self.phi {
            params.extend(phi.params_mut());
        }
        params.extend(self.rho.params_mut());
        for p in params {
            for g in &mut p.grad {
                *g *= factor;
            }
        }
    }

    /// True when any weight is NaN or infinite — the model must not serve
    /// predictions in this state.
    pub fn has_non_finite_weights(&self) -> bool {
        self.weight_buffers().iter().any(|b| b.iter().any(|w| !w.is_finite()))
    }

    /// Owned copy of every weight buffer (a [`setlearn_nn::WeightSnapshot`]
    /// for the training harness).
    pub fn snapshot_weights(&self) -> Vec<Vec<f32>> {
        self.weight_buffers().into_iter().map(<[f32]>::to_vec).collect()
    }

    /// Drops accumulated optimizer moment state (Adam `m`/`v`). Call after
    /// restoring a weight snapshot so stale moments from the diverged
    /// trajectory don't steer the retry.
    pub fn reset_optimizer_state(&mut self) {
        let mut params: Vec<&mut setlearn_nn::ParamBuf> = self.encoder.params_mut();
        if let Some(phi) = &mut self.phi {
            params.extend(phi.params_mut());
        }
        params.extend(self.rho.params_mut());
        for p in params {
            p.m.clear();
            p.v.clear();
        }
    }

    /// Full fault-tolerant training loop under a
    /// [`setlearn_nn::TrainHarness`]: guarded epochs, divergence recovery
    /// (snapshot restore + learning-rate backoff), early stopping, and
    /// best-weight restoration at the end. The optimizer's learning rate is
    /// taken as the starting rate and is mutated as the harness backs off.
    #[allow(clippy::too_many_arguments)]
    pub fn train_with_harness<S: AsRef<[u32]>>(
        &mut self,
        data: &[(S, f32)],
        loss: Loss,
        opt: &mut Optimizer,
        batch_size: usize,
        rng: &mut StdRng,
        policy: &setlearn_nn::TrainPolicy,
        clip_norm: Option<f32>,
    ) -> setlearn_nn::TrainReport {
        use setlearn_nn::Decision;
        let mut harness = setlearn_nn::TrainHarness::new(policy.clone(), opt.learning_rate());
        loop {
            opt.set_learning_rate(harness.lr());
            let stats = self.train_epoch_guarded(data, loss, opt, batch_size, rng, clip_norm);
            match harness.end_epoch(&stats, || self.snapshot_weights()) {
                Decision::Continue => {}
                Decision::Restore(snapshot) => {
                    if !snapshot.is_empty() {
                        self.load_weight_buffers(&snapshot).expect("snapshot matches model");
                    }
                    self.reset_optimizer_state();
                    self.zero_grad();
                }
                Decision::Stop(_) => break,
            }
        }
        let (report, best) = harness.finish_with_best();
        if let Some(best) = best {
            self.load_weight_buffers(&best).expect("snapshot matches model");
        }
        report
    }

    /// Per-sample losses without updating the model (used by guided
    /// learning to identify outliers).
    pub fn per_sample_losses<S: AsRef<[u32]>>(&self, data: &[(S, f32)], loss: Loss) -> Vec<f32> {
        data.iter()
            .map(|(s, t)| loss.loss(&[self.predict_one(s.as_ref())], &[*t]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(compression: CompressionKind) -> DeepSetsConfig {
        DeepSetsConfig {
            vocab: 100,
            embedding_dim: 4,
            phi_hidden: vec![8],
            rho_hidden: vec![8],
            pooling: Pooling::Sum,
            hidden_activation: Activation::Tanh,
            output_activation: Activation::Sigmoid,
            compression,
            seed: 7,
        }
    }

    #[test]
    fn permutation_invariance_plain() {
        let model = DeepSets::new(tiny_config(CompressionKind::None));
        let a = model.predict_one(&[3, 17, 42]);
        let b = model.predict_one(&[42, 3, 17]);
        let c = model.predict_one(&[17, 42, 3]);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn permutation_invariance_compressed() {
        let model = DeepSets::new(tiny_config(CompressionKind::Optimal { ns: 2 }));
        let a = model.predict_one(&[3, 17, 42]);
        let b = model.predict_one(&[42, 3, 17]);
        assert_eq!(a, b);
    }

    #[test]
    fn variable_set_sizes_supported() {
        let model = DeepSets::new(tiny_config(CompressionKind::None));
        let preds = model.predict_batch(&[&[1u32][..], &[1, 2, 3, 4, 5, 6, 7][..]]);
        assert_eq!(preds.len(), 2);
        assert!(preds.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn compressed_distinguishes_swapped_pairs() {
        // §5: sets X = {(q1,r1),(q2,r2)} and Z = {(q2,r1),(q1,r2)} must not
        // collapse. With divisor 10: 91=(1,9), 12=(2,1) vs 92=(2,9), 11=(1,1)
        // swap quotient/remainder pairings.
        let model = DeepSets::new(tiny_config(CompressionKind::Optimal { ns: 2 }));
        let x = model.predict_one(&[12, 91]);
        let z = model.predict_one(&[11, 92]);
        assert_ne!(x, z, "φ must keep sub-element pairs distinguishable");
    }

    #[test]
    fn compressed_has_far_fewer_params() {
        let mut cfg = tiny_config(CompressionKind::None);
        cfg.vocab = 100_000;
        let plain = DeepSets::new(cfg.clone());
        cfg.compression = CompressionKind::Optimal { ns: 2 };
        let compressed = DeepSets::new(cfg);
        assert!(
            compressed.num_params() * 10 < plain.num_params(),
            "compressed {} vs plain {}",
            compressed.num_params(),
            plain.num_params()
        );
    }

    #[test]
    fn training_reduces_loss_on_separable_task() {
        // Sets containing element 0 -> 1.0, others -> 0.0.
        let mut model = DeepSets::new(tiny_config(CompressionKind::None));
        model.zero_grad();
        let mut data: Vec<(Vec<u32>, f32)> = Vec::new();
        for i in 1..40u32 {
            data.push((vec![0, i], 1.0));
            data.push((vec![i, i + 40], 0.0));
        }
        let mut opt = Optimizer::adam(0.01);
        let mut rng = StdRng::seed_from_u64(1);
        let first = model.train_epoch(&data, Loss::BinaryCrossEntropy, &mut opt, 16, &mut rng);
        let mut last = first;
        for _ in 0..30 {
            last = model.train_epoch(&data, Loss::BinaryCrossEntropy, &mut opt, 16, &mut rng);
        }
        assert!(last < first * 0.5, "loss did not drop: {first} -> {last}");
        assert!(model.predict_one(&[0, 5]) > 0.5);
        assert!(model.predict_one(&[5, 45]) < 0.5);
    }

    #[test]
    fn pooling_variants_run_forward_and_backward() {
        for pooling in [Pooling::Sum, Pooling::Mean, Pooling::Max] {
            let mut cfg = tiny_config(CompressionKind::None);
            cfg.pooling = pooling;
            let mut model = DeepSets::new(cfg);
            model.zero_grad();
            let sets = [&[1u32, 2][..], &[3u32, 4, 5][..]];
            let out = model.forward_batch(&sets);
            assert_eq!(out.len(), 2);
            model.backward_batch(&[1.0, -1.0]);
            // Invariance holds for all poolings.
            let a = model.predict_one(&[9, 8, 7]);
            let b = model.predict_one(&[7, 9, 8]);
            assert_eq!(a, b, "{pooling:?}");
        }
    }

    #[test]
    fn hashed_encoder_runs_and_stays_invariant() {
        let mut cfg = tiny_config(CompressionKind::Hashed { buckets: 32, num_hashes: 2 });
        cfg.vocab = 1_000_000; // huge id space, tiny table
        let mut model = DeepSets::new(cfg);
        model.zero_grad();
        assert_eq!(model.predict_one(&[7, 999_999]), model.predict_one(&[999_999, 7]));
        // Trains without panicking.
        let data = vec![(vec![1u32, 2], 0.8f32), (vec![3u32, 999_999], 0.2)];
        let mut opt = Optimizer::adam(0.01);
        let mut rng = StdRng::seed_from_u64(1);
        let loss = model.train_epoch(&data, Loss::Mse, &mut opt, 2, &mut rng);
        assert!(loss.is_finite());
        // Parameter count is bounded by the bucket table, not the vocab.
        assert!(model.num_params() < 32 * 4 + 10_000);
    }

    #[test]
    fn parallel_prediction_matches_serial() {
        let model = DeepSets::new(tiny_config(CompressionKind::Optimal { ns: 2 }));
        let sets: Vec<Vec<u32>> =
            (0..97u32).map(|i| vec![i % 100, (i * 7) % 100]).collect();
        let serial = model.predict_batch(&sets);
        for threads in [1, 2, 4, 7] {
            assert_eq!(model.predict_batch_parallel(&sets, threads), serial, "{threads}");
        }
        assert!(model.predict_batch_parallel::<Vec<u32>>(&[], 4).is_empty());
    }

    #[test]
    fn serde_roundtrip_preserves_predictions() {
        let model = DeepSets::new(tiny_config(CompressionKind::Optimal { ns: 2 }));
        let json = serde_json::to_string(&model).unwrap();
        let back: DeepSets = serde_json::from_str(&json).unwrap();
        assert_eq!(model.predict_one(&[1, 2, 3]), back.predict_one(&[1, 2, 3]));
    }

    fn separable_data() -> Vec<(Vec<u32>, f32)> {
        let mut data = Vec::new();
        for i in 1..40u32 {
            data.push((vec![0, i], 1.0));
            data.push((vec![i, i + 40], 0.0));
        }
        data
    }

    #[test]
    fn guarded_epoch_matches_plain_epoch_on_clean_data() {
        let data = separable_data();
        let mut plain = DeepSets::new(tiny_config(CompressionKind::None));
        let mut guarded = plain.clone();
        plain.zero_grad();
        guarded.zero_grad();
        let (mut opt_a, mut opt_b) = (Optimizer::adam(0.01), Optimizer::adam(0.01));
        let (mut rng_a, mut rng_b) = (StdRng::seed_from_u64(3), StdRng::seed_from_u64(3));
        let l = plain.train_epoch(&data, Loss::BinaryCrossEntropy, &mut opt_a, 16, &mut rng_a);
        let stats = guarded.train_epoch_guarded(
            &data,
            Loss::BinaryCrossEntropy,
            &mut opt_b,
            16,
            &mut rng_b,
            None, // no clipping: updates must be bit-identical
        );
        assert_eq!(stats.mean_loss, l);
        assert_eq!(stats.skipped_batches, 0);
        assert_eq!(guarded.weight_buffers(), plain.weight_buffers());
    }

    #[test]
    fn grad_norm_clipping_caps_the_global_norm() {
        let data = separable_data();
        let mut model = DeepSets::new(tiny_config(CompressionKind::None));
        model.zero_grad();
        let mut opt = Optimizer::sgd(0.5);
        let mut rng = StdRng::seed_from_u64(5);
        let stats = model.train_epoch_guarded(
            &data,
            Loss::BinaryCrossEntropy,
            &mut opt,
            data.len(), // one big batch so clipping is observable
            &mut rng,
            Some(1e-4),
        );
        assert_eq!(stats.clipped_batches, 1);
        assert!(stats.mean_loss.is_finite());
    }

    #[test]
    fn non_finite_weights_are_detected() {
        let mut model = DeepSets::new(tiny_config(CompressionKind::None));
        assert!(!model.has_non_finite_weights());
        let mut bufs = model.snapshot_weights();
        bufs[0][0] = f32::NAN;
        model.load_weight_buffers(&bufs).unwrap();
        assert!(model.has_non_finite_weights());
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let mut model = DeepSets::new(tiny_config(CompressionKind::Optimal { ns: 2 }));
        let before = model.snapshot_weights();
        let pred = model.predict_one(&[1, 2, 3]);
        model.zero_grad();
        let data = vec![(vec![1u32, 2], 0.8f32), (vec![3u32, 4], 0.2)];
        let mut opt = Optimizer::adam(0.05);
        let mut rng = StdRng::seed_from_u64(1);
        let _ = model.train_epoch(&data, Loss::Mse, &mut opt, 2, &mut rng);
        assert_ne!(model.predict_one(&[1, 2, 3]), pred);
        model.load_weight_buffers(&before).unwrap();
        assert_eq!(model.predict_one(&[1, 2, 3]), pred);
    }

    #[test]
    fn harness_survives_adversarial_learning_rate() {
        // An absurd learning rate on an unbounded output diverges almost
        // immediately; the harness must recover (restore + lr backoff) and
        // training must end with finite best weights loaded.
        let data = separable_data();
        let mut cfg = tiny_config(CompressionKind::None);
        cfg.output_activation = Activation::Identity;
        let mut model = DeepSets::new(cfg);
        model.zero_grad();
        let mut opt = Optimizer::Sgd { lr: 5e4, clip: None };
        let mut rng = StdRng::seed_from_u64(2);
        let mut policy = setlearn_nn::TrainPolicy::epochs(25);
        policy.max_recoveries = 20;
        let report = model.train_with_harness(
            &data,
            Loss::Mse,
            &mut opt,
            16,
            &mut rng,
            &policy,
            None, // no clipping: let it blow up so recovery has to fire
        );
        assert!(report.best_loss.is_finite(), "report: {report}");
        assert!(!model.has_non_finite_weights());
        assert!(opt.learning_rate() < 5e4, "lr was never backed off");
        assert!(report.recoveries > 0, "report: {report}");
    }

    #[test]
    fn harness_trains_normally_on_sane_config() {
        let data = separable_data();
        let mut model = DeepSets::new(tiny_config(CompressionKind::None));
        model.zero_grad();
        let mut opt = Optimizer::adam(0.01);
        let mut rng = StdRng::seed_from_u64(1);
        let policy = setlearn_nn::TrainPolicy::epochs(30);
        let report = model.train_with_harness(
            &data,
            Loss::BinaryCrossEntropy,
            &mut opt,
            16,
            &mut rng,
            &policy,
            Some(5.0),
        );
        assert_eq!(report.recoveries, 0);
        assert_eq!(report.epochs_run, 30);
        assert!(report.is_healthy());
        // Best weights were restored: the model scores at its best epoch.
        assert!(model.predict_one(&[0, 5]) > 0.5);
        assert!(model.predict_one(&[5, 45]) < 0.5);
    }

    #[test]
    #[should_panic(expected = "empty set")]
    fn empty_set_rejected() {
        let model = DeepSets::new(tiny_config(CompressionKind::None));
        let _ = model.predict_one(&[]);
    }

    #[test]
    #[should_panic(expected = "requires a φ network")]
    fn compressed_without_phi_rejected() {
        let mut cfg = tiny_config(CompressionKind::Optimal { ns: 2 });
        cfg.phi_hidden = vec![];
        let _ = DeepSets::new(cfg);
    }
}
