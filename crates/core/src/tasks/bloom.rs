//! Learned set Bloom filter (paper §4.3): a DeepSets classifier over subset
//! membership with a backup Bloom filter eliminating false negatives.

use crate::hybrid::ServeGuard;
use crate::kernel::{FrozenModel, KernelCell, Precision};
use crate::model::{DeepSets, DeepSetsConfig};
use crate::tasks::{LearnedSetStructure, QueryOutcome};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use setlearn_baselines::BloomFilter;
use setlearn_data::{ElementSet, SetCollection};
use setlearn_nn::{Loss, Optimizer, TrainPolicy, TrainReport};

/// Training configuration for the learned Bloom filter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BloomConfig {
    /// DeepSets hyper-parameters (paper §8.4: embedding 2, two 8-neuron
    /// layers).
    pub model: DeepSetsConfig,
    /// Training epochs (paper uses 50).
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Classification threshold τ.
    pub threshold: f32,
    /// Backup-filter false-positive rate.
    pub backup_fp_rate: f64,
    /// Shuffling seed.
    pub seed: u64,
}

impl BloomConfig {
    /// The paper's §8.4 setting on the given model.
    pub fn new(mut model: DeepSetsConfig) -> Self {
        model.embedding_dim = 2;
        model.phi_hidden = vec![8];
        model.rho_hidden = vec![8];
        BloomConfig {
            model,
            epochs: 50,
            batch_size: 64,
            learning_rate: 5e-3,
            threshold: 0.5,
            backup_fp_rate: 0.01,
            seed: 11,
        }
    }
}

/// Learned Bloom filter = classifier + backup filter over its false
/// negatives, guaranteeing no false negatives on the trained positives.
///
/// ```
/// use setlearn::model::DeepSetsConfig;
/// use setlearn::tasks::{BloomConfig, LearnedBloom};
/// use setlearn_data::normalize;
///
/// let mut cfg = BloomConfig::new(DeepSetsConfig::clsm(64));
/// cfg.epochs = 5;
/// let workload = vec![
///     (normalize(vec![1, 2]), true),
///     (normalize(vec![3, 4]), true),
///     (normalize(vec![1, 4]), false),
/// ];
/// let (filter, _report) = LearnedBloom::build(&workload, &cfg);
/// assert!(filter.contains(&[1, 2])); // never a false negative on positives
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LearnedBloom {
    model: DeepSets,
    threshold: f32,
    backup: BloomFilter,
    /// Serve-time guard over classifier scores; absent in files persisted
    /// before guards existed (falls back to non-finite-only).
    #[serde(default)]
    guard: ServeGuard,
    /// Serve precision, recorded in checkpoints; files persisted before
    /// precision-aware kernels default to full precision.
    #[serde(default)]
    precision: Precision,
    /// Lazily frozen serving kernel (reset on any weight mutation).
    #[serde(skip)]
    kernel: KernelCell,
}

/// Build artifacts for reporting.
#[derive(Debug, Clone)]
pub struct BloomBuildReport {
    /// Loss per epoch.
    pub loss_history: Vec<f32>,
    /// Positives the model missed (inserted into the backup filter).
    pub false_negatives: usize,
    /// Binary accuracy over the training workload after the final epoch.
    pub training_accuracy: f64,
    /// Structured summary of the harnessed training run (recoveries,
    /// skipped batches, stop reason).
    pub train: TrainReport,
}

impl LearnedBloom {
    /// Trains the classifier on a labeled workload of `(query, present)`
    /// pairs and builds the backup filter from the resulting false
    /// negatives.
    pub fn build(workload: &[(ElementSet, bool)], cfg: &BloomConfig) -> (Self, BloomBuildReport) {
        assert!(!workload.is_empty(), "empty training workload");
        assert!(workload.iter().any(|(_, l)| *l), "need positive samples");
        let data: Vec<(ElementSet, f32)> = workload
            .iter()
            .map(|(s, l)| (s.clone(), if *l { 1.0 } else { 0.0 }))
            .collect();

        let mut model = DeepSets::new(cfg.model.clone());
        model.zero_grad();
        let mut opt = Optimizer::adam(cfg.learning_rate);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let train = model.train_with_harness(
            &data,
            Loss::BinaryCrossEntropy,
            &mut opt,
            cfg.batch_size,
            &mut rng,
            &TrainPolicy::epochs(cfg.epochs.max(1)),
            None,
        );
        let loss_history = train.loss_history.clone();

        // Collect false negatives among the positives and back them up.
        let positives: Vec<&ElementSet> =
            workload.iter().filter(|(_, l)| *l).map(|(s, _)| s).collect();
        let missed: Vec<&ElementSet> = positives
            .iter()
            .copied()
            .filter(|s| model.predict_one(s) < cfg.threshold)
            .collect();
        let mut backup = BloomFilter::new(missed.len().max(8), cfg.backup_fp_rate);
        for s in &missed {
            backup.insert_set(s);
        }

        let correct = workload
            .iter()
            .filter(|(s, l)| {
                let pred = model.predict_one(s) >= cfg.threshold;
                pred == *l
            })
            .count();
        let report = BloomBuildReport {
            loss_history,
            false_negatives: missed.len(),
            training_accuracy: correct as f64 / workload.len() as f64,
            train,
        };
        (
            LearnedBloom {
                model,
                threshold: cfg.threshold,
                backup,
                // Classifier scores are probabilities.
                guard: ServeGuard::new(0.0, 1.0),
                precision: Precision::default(),
                kernel: KernelCell::new(),
            },
            report,
        )
    }

    /// Convenience constructor: builds a workload from the collection
    /// (positive subsets + sampled negatives) and trains on it.
    pub fn build_from_collection(
        collection: &SetCollection,
        n_pos: usize,
        n_neg: usize,
        max_query_size: usize,
        cfg: &BloomConfig,
    ) -> (Self, BloomBuildReport) {
        let workload = setlearn_data::workload::membership_queries(
            collection,
            n_pos,
            n_neg,
            max_query_size,
            cfg.seed,
        );
        Self::build(&workload, cfg)
    }

    /// Membership probe: classifier score, with the backup filter rescuing
    /// model false negatives. A non-finite score is rejected by the serve
    /// guard (and counted); the probe then degrades to the backup filter
    /// alone, which still guarantees no false negatives on trained
    /// positives that the model had missed.
    pub fn contains(&self, q: &[u32]) -> bool {
        let start = crate::telemetry::query_start();
        let (answer, fallback) = self.decide(self.score_one(q), q);
        crate::telemetry::bloom_tele().record_query(start, fallback);
        answer
    }

    /// The frozen serving kernel, freezing the current weights at
    /// [`LearnedBloom::precision`] on first use.
    pub fn kernel(&self) -> &FrozenModel {
        self.kernel.get_or_freeze(&self.model, self.precision)
    }

    /// One raw classifier score through the frozen kernel.
    fn score_one(&self, q: &[u32]) -> f32 {
        let kernel = self.kernel();
        let s = kernel.predict_one(q);
        crate::telemetry::bloom_tele().record_kernel(self.precision, kernel.take_blocks());
        s
    }

    /// The precision probes are served at (recorded in checkpoints).
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Selects the serve precision; the kernel re-freezes from the current
    /// weights on the next probe.
    pub fn set_precision(&mut self, precision: Precision) {
        self.precision = precision;
        self.kernel.reset();
    }

    fn decide(&self, score: f32, q: &[u32]) -> (bool, Option<crate::hybrid::FallbackReason>) {
        match self.guard.admit(score as f64) {
            Ok(s) => (s >= self.threshold as f64 || self.backup.contains_set(q), None),
            Err(reason) => (self.backup.contains_set(q), Some(reason)),
        }
    }

    /// The serve-time guard (fallback counters and bounds).
    pub fn serve_guard(&self) -> &ServeGuard {
        &self.guard
    }

    /// Maps pre-computed batch scores through the guarded decision, recording
    /// batch telemetry once. Shared by the sequential and parallel batch
    /// paths so they agree bit-for-bit.
    fn outcomes_for_scores<S: AsRef<[u32]>>(
        &self,
        queries: &[S],
        scores: Vec<f32>,
    ) -> Vec<QueryOutcome<bool>> {
        let mut fallbacks = Vec::new();
        let outcomes = scores
            .into_iter()
            .zip(queries.iter())
            .map(|(score, q)| {
                let (answer, reason) = self.decide(score, q.as_ref());
                fallbacks.extend(reason);
                QueryOutcome { value: answer, fallback: reason, bound_miss: false }
            })
            .collect();
        crate::telemetry::bloom_tele().record_batch(queries.len(), &fallbacks);
        outcomes
    }

    /// Raw classifier probability (for threshold tuning / diagnostics).
    pub fn score(&self, q: &[u32]) -> f32 {
        self.score_one(q)
    }

    /// The underlying model.
    pub fn model(&self) -> &DeepSets {
        &self.model
    }

    /// Mutable access to the underlying model, for weight hot-swapping
    /// (e.g. loading weights restored via [`crate::persist`]) and fault
    /// injection in tests. Serve-time guards keep answers finite even if the
    /// swapped weights are corrupt.
    pub fn model_mut(&mut self) -> &mut DeepSets {
        self.kernel.reset();
        &mut self.model
    }

    /// Model weight bytes (the paper's LSM/CLSM memory columns; the backup
    /// is reported as negligible in §8.4.2 but we count it in
    /// [`LearnedBloom::size_bytes`]).
    pub fn model_size_bytes(&self) -> usize {
        self.model.size_bytes()
    }

    /// Total bytes: model + backup filter.
    pub fn size_bytes(&self) -> usize {
        self.model.size_bytes() + self.backup.size_bytes()
    }

    /// Binary accuracy over a labeled workload (Table 9's metric).
    pub fn binary_accuracy(&self, workload: &[(ElementSet, bool)]) -> f64 {
        assert!(!workload.is_empty());
        let correct = workload
            .iter()
            .filter(|(s, l)| {
                (self.model.predict_one(s) >= self.threshold) == *l
            })
            .count();
        correct as f64 / workload.len() as f64
    }
}

impl LearnedSetStructure for LearnedBloom {
    type Output = bool;
    const NAME: &'static str = "bloom";

    fn query(&self, q: &[u32]) -> QueryOutcome<bool> {
        let start = crate::telemetry::query_start();
        let (answer, fallback) = self.decide(self.score_one(q), q);
        crate::telemetry::bloom_tele().record_query(start, fallback);
        QueryOutcome { value: answer, fallback, bound_miss: false }
    }

    fn query_batch(&self, queries: &[ElementSet]) -> Vec<QueryOutcome<bool>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let kernel = self.kernel();
        let scores = kernel.predict_batch(queries);
        crate::telemetry::bloom_tele().record_kernel(self.precision, kernel.take_blocks());
        self.outcomes_for_scores(queries, scores)
    }

    fn query_batch_parallel(
        &self,
        queries: &[ElementSet],
        threads: usize,
    ) -> Vec<QueryOutcome<bool>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let kernel = self.kernel();
        let scores = kernel.predict_batch_parallel(queries, threads);
        crate::telemetry::bloom_tele().record_kernel(self.precision, kernel.take_blocks());
        self.outcomes_for_scores(queries, scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setlearn_data::{workload::membership_queries, GeneratorConfig};

    fn quick_cfg(vocab: u32) -> BloomConfig {
        let mut cfg = BloomConfig::new(DeepSetsConfig::lsm(vocab));
        cfg.epochs = 40;
        cfg.learning_rate = 1e-2;
        cfg
    }

    #[test]
    fn no_false_negatives_on_trained_positives() {
        let c = GeneratorConfig::rw(500, 31).generate();
        let workload = membership_queries(&c, 400, 400, 4, 3);
        let (filter, _) = LearnedBloom::build(&workload, &quick_cfg(c.num_elements()));
        for (q, label) in &workload {
            if *label {
                assert!(filter.contains(q), "false negative on {q:?}");
            }
        }
    }

    #[test]
    fn accuracy_is_high_on_training_workload() {
        let c = GeneratorConfig::rw(500, 7).generate();
        let workload = membership_queries(&c, 300, 300, 4, 9);
        let (filter, report) = LearnedBloom::build(&workload, &quick_cfg(c.num_elements()));
        assert!(
            report.training_accuracy > 0.8,
            "accuracy {}",
            report.training_accuracy
        );
        assert_eq!(filter.binary_accuracy(&workload), report.training_accuracy);
    }

    #[test]
    fn loss_decreases() {
        let c = GeneratorConfig::rw(300, 2).generate();
        let workload = membership_queries(&c, 200, 200, 4, 5);
        let (_, report) = LearnedBloom::build(&workload, &quick_cfg(c.num_elements()));
        let first = report.loss_history[0];
        let last = *report.loss_history.last().unwrap();
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    fn build_from_collection_runs() {
        let c = GeneratorConfig::sd(200, 4).generate();
        let max_query_size = 4;
        let (filter, report) = LearnedBloom::build_from_collection(
            &c,
            150,
            150,
            max_query_size,
            &quick_cfg(c.num_elements()),
        );
        assert!(report.training_accuracy > 0.7, "accuracy {}", report.training_accuracy);
        // Subsets of stored sets are positives by definition; probe within
        // the query-size regime the workload trains on.
        for i in 0..5 {
            let s = c.get(i);
            let q = &s[..max_query_size.min(s.len())];
            assert!(filter.contains(q), "false negative on stored subset {q:?}");
        }
    }

    #[test]
    fn nan_model_degrades_to_backup_filter_and_counts_fallbacks() {
        let c = GeneratorConfig::rw(300, 31).generate();
        let workload = membership_queries(&c, 200, 200, 4, 3);
        let (mut filter, report) = LearnedBloom::build(&workload, &quick_cfg(c.num_elements()));
        // Remember which positives the backup filter covers (model misses).
        let backup_covered: Vec<ElementSet> = workload
            .iter()
            .filter(|(s, l)| *l && filter.model.predict_one(s) < filter.threshold)
            .map(|(s, _)| s.clone())
            .collect();
        assert_eq!(backup_covered.len(), report.false_negatives);

        let poisoned: Vec<Vec<f32>> = filter
            .model
            .snapshot_weights()
            .into_iter()
            .map(|b| vec![f32::NAN; b.len()])
            .collect();
        filter.model.load_weight_buffers(&poisoned).unwrap();

        // Probes must not panic and must still honor the backup filter.
        for s in &backup_covered {
            assert!(filter.contains(s), "backup-covered positive lost");
        }
        let batch_queries: Vec<ElementSet> = workload.iter().map(|(s, _)| s.clone()).collect();
        let _ = filter.query_batch(&batch_queries);
        assert!(
            filter.serve_guard().non_finite_fallbacks() > 0,
            "poisoned scores must be counted as fallbacks"
        );
    }

    #[test]
    fn parallel_batch_membership_equals_sequential() {
        let c = GeneratorConfig::rw(300, 7).generate();
        let workload = membership_queries(&c, 200, 200, 4, 5);
        let (filter, _) = LearnedBloom::build(&workload, &quick_cfg(c.num_elements()));
        let queries: Vec<ElementSet> = workload.iter().map(|(s, _)| s.clone()).collect();
        // Batched answers agree with single-probe answers, sequentially and
        // across worker counts.
        let outcomes = filter.query_batch(&queries);
        for (q, outcome) in queries.iter().zip(&outcomes) {
            assert_eq!(outcome.value, filter.contains(q));
        }
        for threads in [1, 2, 5] {
            assert_eq!(outcomes, filter.query_batch_parallel(&queries, threads), "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "need positive samples")]
    fn all_negative_workload_rejected() {
        let cfg = quick_cfg(16);
        let workload = vec![(setlearn_data::normalize(vec![1, 2]), false)];
        let _ = LearnedBloom::build(&workload, &cfg);
    }
}
