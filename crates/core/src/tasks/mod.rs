//! The three database tasks of Table 1, each built on the same DeepSets
//! model: regression heads for indexing (§4.1) and cardinality estimation
//! (§4.2), a classification head for membership (§4.3).

pub mod bloom;
pub mod cardinality;
pub mod index;
pub mod partitioned;
pub mod sandwich;

pub use bloom::{BloomBuildReport, BloomConfig, LearnedBloom};
pub use cardinality::{CardinalityBuildReport, CardinalityConfig, LearnedCardinality};
pub use index::{IndexBuildReport, IndexConfig, LearnedSetIndex, LookupProfile, PositionTarget};
pub use partitioned::{PartitionedBloom, PartitionedConfig};
pub use sandwich::{SandwichConfig, SandwichedBloom};
