//! The three database tasks of Table 1, each built on the same DeepSets
//! model: regression heads for indexing (§4.1) and cardinality estimation
//! (§4.2), a classification head for membership (§4.3).
//!
//! ## The unified query surface
//!
//! Every learned structure — sharded or not — implements
//! [`LearnedSetStructure`]: one `query` / `query_batch` /
//! `query_batch_parallel` triple returning [`QueryOutcome`]s, so serve
//! adapters, the CLI, and benches dispatch through a single trait instead of
//! three hand-rolled signatures (`estimate*` / `lookup*` / `contains*`).
//! The per-task entry points remain for task-specific ergonomics (and
//! back-compat), but new callers should prefer the trait; see the
//! deprecation notes in `DESIGN.md`.

pub mod bloom;
pub mod cardinality;
pub mod index;
pub mod partitioned;
pub mod sandwich;
pub mod sharded;

pub use bloom::{BloomBuildReport, BloomConfig, LearnedBloom};
pub use cardinality::{CardinalityBuildReport, CardinalityConfig, LearnedCardinality};
pub use index::{
    IndexBuildReport, IndexConfig, IndexStructure, LearnedSetIndex, LookupProfile, PositionTarget,
};
pub use partitioned::{PartitionedBloom, PartitionedConfig};
pub use sandwich::{SandwichConfig, SandwichedBloom};
pub use sharded::{
    aggregate_bloom, aggregate_cardinality, aggregate_index, ShardIndexStructure, ShardedBloom,
    ShardedCardinality, ShardedIndex, ShardedIndexStructure,
};

use crate::hybrid::FallbackReason;
use setlearn_data::ElementSet;

/// The answer to one query through the unified serve surface: the task's
/// value plus the degradation flags every structure shares.
///
/// `fallback` is set when the serve-time [`crate::ServeGuard`] rejected the
/// raw model output (non-finite or out-of-domain) and the answer came from a
/// degraded-but-safe path. `bound_miss` is set by the index task when a
/// bounded scan window was exhausted without a hit (the local error bound
/// did not cover the answer, or the subset is genuinely absent); the other
/// tasks never set it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryOutcome<T> {
    /// The task's answer (estimate, position, or membership verdict).
    pub value: T,
    /// Why the model's raw output was rejected, if it was.
    pub fallback: Option<FallbackReason>,
    /// Index task only: the scan window was exhausted without a hit.
    pub bound_miss: bool,
}

impl<T> QueryOutcome<T> {
    /// An outcome served entirely by the healthy model path.
    pub fn clean(value: T) -> Self {
        QueryOutcome { value, fallback: None, bound_miss: false }
    }

    /// Whether any degradation flag is set.
    pub fn degraded(&self) -> bool {
        self.fallback.is_some() || self.bound_miss
    }

    /// Maps the value, keeping the degradation flags.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> QueryOutcome<U> {
        QueryOutcome { value: f(self.value), fallback: self.fallback, bound_miss: self.bound_miss }
    }
}

/// The uniform query API over every learned set structure (paper Table 1),
/// sharded and unsharded alike.
///
/// Implementations answer canonical (sorted, deduplicated) queries; batch
/// methods must return exactly one outcome per query, in query order, and
/// `query_batch_parallel` must agree bit-for-bit with `query_batch` (the
/// forward pass is split across threads, the corrections are identical).
///
/// The index task needs the collection to scan, so its implementations live
/// on bound adapters ([`IndexStructure`], [`ShardedIndexStructure`]) that
/// carry the collection alongside the model.
pub trait LearnedSetStructure {
    /// The task's answer type: `f64` (cardinality), `Option<usize>`
    /// (index position), or `bool` (membership).
    type Output;

    /// Task label used on serve metrics (`"cardinality"`, `"index"`,
    /// `"bloom"`); sharded and unsharded variants share it.
    const NAME: &'static str;

    /// Answers one canonical query.
    fn query(&self, q: &[u32]) -> QueryOutcome<Self::Output>;

    /// Answers every query in one batched forward pass, in order.
    fn query_batch(&self, queries: &[ElementSet]) -> Vec<QueryOutcome<Self::Output>>;

    /// [`LearnedSetStructure::query_batch`] with the forward pass split
    /// across `threads` scoped workers; answers are bit-for-bit equal to the
    /// sequential batch path.
    fn query_batch_parallel(
        &self,
        queries: &[ElementSet],
        threads: usize,
    ) -> Vec<QueryOutcome<Self::Output>>;
}

/// Shared handles answer like what they point to, so long-lived structures
/// (e.g. a [`crate::mutable::MutableCollection`] owned jointly by the serve
/// runtime and its compactor) can sit behind an `Arc` and still flow through
/// every generic serve adapter.
impl<S: LearnedSetStructure> LearnedSetStructure for std::sync::Arc<S> {
    type Output = S::Output;
    const NAME: &'static str = S::NAME;

    fn query(&self, q: &[u32]) -> QueryOutcome<S::Output> {
        (**self).query(q)
    }

    fn query_batch(&self, queries: &[ElementSet]) -> Vec<QueryOutcome<S::Output>> {
        (**self).query_batch(queries)
    }

    fn query_batch_parallel(
        &self,
        queries: &[ElementSet],
        threads: usize,
    ) -> Vec<QueryOutcome<S::Output>> {
        (**self).query_batch_parallel(queries, threads)
    }
}

/// A selectivity oracle a query optimizer can consult: canonical query set →
/// estimated number of matching rows.
///
/// This is the narrow surface `setlearn-engine`'s cost-based planner needs —
/// one scalar per query, no degradation flags, no batching — implemented by
/// both the single-model and the sharded cardinality estimators so either
/// can be registered on a table unchanged.
pub trait CardinalityEstimator: Send + Sync {
    /// Estimated rows whose set contains every element of the canonical
    /// query `q`.
    fn estimate_rows(&self, q: &[u32]) -> f64;
}

impl CardinalityEstimator for LearnedCardinality {
    fn estimate_rows(&self, q: &[u32]) -> f64 {
        self.estimate(q)
    }
}

impl CardinalityEstimator for ShardedCardinality {
    fn estimate_rows(&self, q: &[u32]) -> f64 {
        self.estimate(q)
    }
}

impl<E: CardinalityEstimator> CardinalityEstimator for std::sync::Arc<E> {
    fn estimate_rows(&self, q: &[u32]) -> f64 {
        (**self).estimate_rows(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_helpers() {
        let o = QueryOutcome::clean(7.0);
        assert!(!o.degraded());
        let mapped = o.map(|v| v as u64);
        assert_eq!(mapped.value, 7);
        let degraded = QueryOutcome {
            value: 0.0,
            fallback: Some(FallbackReason::NonFinite),
            bound_miss: false,
        };
        assert!(degraded.degraded());
    }
}
