//! Partitioned Learned Bloom Filter (Vaidya et al., ICLR 2021 — the paper's
//! reference [20]): instead of one threshold and one backup filter, the
//! classifier's score range is split into segments, each with its own backup
//! filter.
//!
//! Positives scoring in the top segment are accepted outright; positives in
//! every lower segment are stored in that segment's Bloom filter. A query
//! only probes the filter of *its own* score segment, so confident-negative
//! queries hit near-empty filters and the false-positive rate concentrates
//! where the classifier is genuinely unsure.

use crate::tasks::bloom::{BloomBuildReport, BloomConfig, LearnedBloom};
use serde::{Deserialize, Serialize};
use setlearn_baselines::BloomFilter;
use setlearn_data::ElementSet;

/// Configuration for the partitioned filter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PartitionedConfig {
    /// Configuration of the underlying classifier.
    pub learned: BloomConfig,
    /// Number of score segments (≥ 2). The top segment accepts directly.
    pub num_segments: usize,
    /// Per-segment backup false-positive rate.
    pub segment_fp_rate: f64,
}

impl PartitionedConfig {
    /// Default: 4 segments at 1% per-segment fp.
    pub fn new(learned: BloomConfig) -> Self {
        PartitionedConfig { learned, num_segments: 4, segment_fp_rate: 0.01 }
    }
}

/// The partitioned learned Bloom filter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PartitionedBloom {
    learned: LearnedBloom,
    /// Segment boundaries over the score range `[0, 1)`: segment `i` covers
    /// `[bounds[i], bounds[i+1])`; the top segment accepts directly.
    boundaries: Vec<f32>,
    /// One backup filter per non-top segment.
    backups: Vec<BloomFilter>,
}

impl PartitionedBloom {
    /// Trains the classifier and distributes positives into per-segment
    /// backup filters by their score.
    ///
    /// # Panics
    /// If `num_segments < 2`.
    pub fn build(
        workload: &[(ElementSet, bool)],
        cfg: &PartitionedConfig,
    ) -> (Self, BloomBuildReport) {
        assert!(cfg.num_segments >= 2, "need at least 2 score segments");
        let (learned, report) = LearnedBloom::build(workload, &cfg.learned);

        // Equal-width segments over [0, 1).
        let k = cfg.num_segments;
        let boundaries: Vec<f32> = (0..=k).map(|i| i as f32 / k as f32).collect();

        // Bucket positives by score; the top segment needs no filter.
        let mut buckets: Vec<Vec<&ElementSet>> = vec![Vec::new(); k - 1];
        for (q, label) in workload {
            if !*label {
                continue;
            }
            let s = learned.score(q);
            let seg = Self::segment_of(&boundaries, s);
            if seg < k - 1 {
                buckets[seg].push(q);
            }
        }
        let backups = buckets
            .iter()
            .map(|b| {
                let mut bf = BloomFilter::new(b.len().max(8), cfg.segment_fp_rate);
                for q in b {
                    bf.insert_set(q);
                }
                bf
            })
            .collect();
        (PartitionedBloom { learned, boundaries, backups }, report)
    }

    fn segment_of(boundaries: &[f32], score: f32) -> usize {
        let k = boundaries.len() - 1;
        let seg = (score.clamp(0.0, 1.0) * k as f32) as usize;
        seg.min(k - 1)
    }

    /// Membership probe: top-segment scores accept directly, anything else
    /// probes only its own segment's backup filter.
    pub fn contains(&self, q: &[u32]) -> bool {
        let s = self.learned.score(q);
        let k = self.boundaries.len() - 1;
        let seg = Self::segment_of(&self.boundaries, s);
        if seg == k - 1 {
            return true;
        }
        self.backups[seg].contains_set(q)
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// Total bytes: model + all per-segment filters.
    pub fn size_bytes(&self) -> usize {
        self.learned.model_size_bytes()
            + self.backups.iter().map(BloomFilter::size_bytes).sum::<usize>()
    }

    /// The inner classifier.
    pub fn learned(&self) -> &LearnedBloom {
        &self.learned
    }

    /// Per-segment backup sizes (items, bytes) — diagnostics.
    pub fn segment_stats(&self) -> Vec<(usize, usize)> {
        self.backups.iter().map(|b| (b.len(), b.size_bytes())).collect()
    }

    /// False-positive rate over a labeled workload.
    pub fn fp_rate(&self, workload: &[(ElementSet, bool)]) -> f64 {
        let negatives: Vec<&ElementSet> =
            workload.iter().filter(|(_, l)| !*l).map(|(s, _)| s).collect();
        if negatives.is_empty() {
            return 0.0;
        }
        negatives.iter().filter(|q| self.contains(q)).count() as f64 / negatives.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DeepSetsConfig;
    use setlearn_data::{workload::membership_queries, GeneratorConfig};

    fn cfg(vocab: u32) -> PartitionedConfig {
        let mut learned = BloomConfig::new(DeepSetsConfig::clsm(vocab));
        learned.epochs = 25;
        learned.learning_rate = 1e-2;
        PartitionedConfig::new(learned)
    }

    #[test]
    fn no_false_negatives_on_trained_positives() {
        let c = GeneratorConfig::rw(500, 3).generate();
        let workload = membership_queries(&c, 400, 400, 4, 7);
        let (p, _) = PartitionedBloom::build(&workload, &cfg(c.num_elements()));
        for (q, label) in &workload {
            if *label {
                assert!(p.contains(q), "false negative on {q:?}");
            }
        }
    }

    #[test]
    fn segments_partition_the_positives() {
        let c = GeneratorConfig::rw(500, 9).generate();
        let workload = membership_queries(&c, 300, 300, 4, 5);
        let (p, _) = PartitionedBloom::build(&workload, &cfg(c.num_elements()));
        assert_eq!(p.num_segments(), 4);
        let in_filters: usize = p.segment_stats().iter().map(|&(n, _)| n).sum();
        let positives = workload.iter().filter(|(_, l)| *l).count();
        // Everything not in the top segment sits in exactly one filter.
        assert!(in_filters <= positives);
    }

    #[test]
    fn confident_negatives_rarely_pass() {
        let c = GeneratorConfig::rw(800, 11).generate();
        let train = membership_queries(&c, 400, 400, 4, 13);
        let (p, _) = PartitionedBloom::build(&train, &cfg(c.num_elements()));
        let fresh: Vec<(ElementSet, bool)> =
            setlearn_data::negative::sample_negatives(&c, 300, 4, 99)
                .into_iter()
                .map(|q| (q, false))
                .collect();
        if fresh.is_empty() {
            return;
        }
        // Not a hard bound (unseen negatives), but the partitioning should
        // keep the rate well below coin-flip.
        assert!(p.fp_rate(&fresh) < 0.5, "fp rate {}", p.fp_rate(&fresh));
    }

    #[test]
    #[should_panic(expected = "at least 2 score segments")]
    fn single_segment_rejected() {
        let c = GeneratorConfig::sd(100, 1).generate();
        let workload = membership_queries(&c, 50, 50, 3, 1);
        let mut bad = cfg(c.num_elements());
        bad.num_segments = 1;
        let _ = PartitionedBloom::build(&workload, &bad);
    }
}
