//! Sandwiched Learned Bloom Filter (Mitzenmacher, NeurIPS 2018 — the
//! paper's reference [17]): an *initial* Bloom filter in front of the
//! learned classifier plus the usual backup filter behind it.
//!
//! The front filter cheaply rejects most true negatives before they reach
//! the model, which both sharpens the effective false-positive rate and cuts
//! average probe latency; the backup filter keeps the no-false-negative
//! guarantee on trained positives.

use crate::tasks::bloom::{BloomBuildReport, BloomConfig, LearnedBloom};
use serde::{Deserialize, Serialize};
use setlearn_baselines::BloomFilter;
use setlearn_data::ElementSet;

/// Configuration of the sandwich: the inner learned filter plus the front
/// filter's false-positive rate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SandwichConfig {
    /// Configuration of the learned middle layer.
    pub learned: BloomConfig,
    /// False-positive rate of the *front* filter. The front filter only has
    /// to be permissive — it sees every query — so rates around 0.05–0.2
    /// keep it tiny while still rejecting most negatives.
    pub front_fp_rate: f64,
}

impl SandwichConfig {
    /// Default sandwich over a learned-filter configuration.
    pub fn new(learned: BloomConfig) -> Self {
        SandwichConfig { learned, front_fp_rate: 0.1 }
    }
}

/// Front BF → learned classifier → backup BF.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SandwichedBloom {
    front: BloomFilter,
    learned: LearnedBloom,
}

impl SandwichedBloom {
    /// Trains the middle classifier on the workload and builds the front
    /// filter over all its positives.
    pub fn build(
        workload: &[(ElementSet, bool)],
        cfg: &SandwichConfig,
    ) -> (Self, BloomBuildReport) {
        let (learned, report) = LearnedBloom::build(workload, &cfg.learned);
        let positives: Vec<&ElementSet> =
            workload.iter().filter(|(_, l)| *l).map(|(s, _)| s).collect();
        let mut front = BloomFilter::new(positives.len().max(8), cfg.front_fp_rate);
        for p in &positives {
            front.insert_set(p);
        }
        (SandwichedBloom { front, learned }, report)
    }

    /// Membership probe. The front filter short-circuits most negatives;
    /// positives always pass it (Bloom filters have no false negatives), so
    /// the inner guarantee is preserved.
    pub fn contains(&self, q: &[u32]) -> bool {
        self.front.contains_set(q) && self.learned.contains(q)
    }

    /// Whether a probe would be rejected by the front filter alone.
    pub fn rejected_by_front(&self, q: &[u32]) -> bool {
        !self.front.contains_set(q)
    }

    /// Total bytes: front + model + backup.
    pub fn size_bytes(&self) -> usize {
        self.front.size_bytes() + self.learned.size_bytes()
    }

    /// Bytes of the front filter alone.
    pub fn front_size_bytes(&self) -> usize {
        self.front.size_bytes()
    }

    /// The inner learned filter.
    pub fn learned(&self) -> &LearnedBloom {
        &self.learned
    }

    /// False-positive rate over a labeled workload (fraction of negatives
    /// accepted).
    pub fn fp_rate(&self, workload: &[(ElementSet, bool)]) -> f64 {
        let negatives: Vec<&ElementSet> =
            workload.iter().filter(|(_, l)| !*l).map(|(s, _)| s).collect();
        if negatives.is_empty() {
            return 0.0;
        }
        let fps = negatives.iter().filter(|q| self.contains(q)).count();
        fps as f64 / negatives.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DeepSetsConfig;
    use setlearn_data::{workload::membership_queries, GeneratorConfig};

    fn cfg(vocab: u32) -> SandwichConfig {
        let mut learned = BloomConfig::new(DeepSetsConfig::clsm(vocab));
        learned.epochs = 25;
        learned.learning_rate = 1e-2;
        SandwichConfig::new(learned)
    }

    #[test]
    fn no_false_negatives_on_trained_positives() {
        let c = GeneratorConfig::rw(500, 3).generate();
        let workload = membership_queries(&c, 400, 400, 4, 7);
        let (s, _) = SandwichedBloom::build(&workload, &cfg(c.num_elements()));
        for (q, label) in &workload {
            if *label {
                assert!(s.contains(q), "false negative on {q:?}");
            }
        }
    }

    #[test]
    fn front_filter_rejects_most_fresh_negatives() {
        let c = GeneratorConfig::rw(800, 5).generate();
        let train = membership_queries(&c, 400, 400, 4, 9);
        let (s, _) = SandwichedBloom::build(&train, &cfg(c.num_elements()));
        // Fresh negatives unseen during training.
        let fresh = setlearn_data::negative::sample_negatives(&c, 400, 4, 77);
        assert!(!fresh.is_empty());
        let rejected = fresh.iter().filter(|q| s.rejected_by_front(q)).count();
        assert!(
            rejected * 2 > fresh.len(),
            "front filter rejected only {rejected}/{}",
            fresh.len()
        );
    }

    #[test]
    fn sandwich_fp_rate_not_worse_than_learned_alone() {
        let c = GeneratorConfig::rw(600, 11).generate();
        let train = membership_queries(&c, 300, 300, 4, 13);
        let (s, _) = SandwichedBloom::build(&train, &cfg(c.num_elements()));
        let fresh: Vec<(setlearn_data::ElementSet, bool)> =
            setlearn_data::negative::sample_negatives(&c, 300, 4, 55)
                .into_iter()
                .map(|q| (q, false))
                .collect();
        if fresh.is_empty() {
            return;
        }
        let sandwich_fp = s.fp_rate(&fresh);
        let learned_fp = fresh
            .iter()
            .filter(|(q, _)| s.learned().contains(q))
            .count() as f64
            / fresh.len() as f64;
        assert!(
            sandwich_fp <= learned_fp + 1e-9,
            "sandwich {sandwich_fp} vs learned alone {learned_fp}"
        );
    }
}
