//! Learned set cardinality estimation (paper §4.2) and its hybrid variant.

use crate::hybrid::{guided_train_hardened, GuidedConfig, GuidedOutcome, ServeGuard};
use crate::kernel::{FrozenModel, KernelCell, Precision};
use crate::model::{DeepSets, DeepSetsConfig};
use crate::monitor::DriftMonitor;
use crate::tasks::{LearnedSetStructure, QueryOutcome};
use serde::{Deserialize, Serialize};
use setlearn_baselines::set_hash;
use setlearn_data::{ElementSet, SetCollection, SubsetIndex};
use setlearn_nn::{Loss, LogMinMaxScaler, TrainPolicy, TrainReport};
use std::collections::HashMap;

/// Training configuration for the cardinality estimator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CardinalityConfig {
    /// The DeepSets model hyper-parameters.
    pub model: DeepSetsConfig,
    /// Guided-learning schedule. Set `percentile = 1.0` for the pure
    /// (non-hybrid) estimator.
    pub guided: GuidedConfig,
    /// Subset-enumeration cap for training data (paper §7.1.1 uses 6).
    pub max_subset_size: usize,
}

impl CardinalityConfig {
    /// Defaults for a given vocabulary: LSM model, hybrid at the 90th
    /// percentile, subsets up to size 4.
    pub fn new(model: DeepSetsConfig) -> Self {
        CardinalityConfig { model, guided: GuidedConfig::default(), max_subset_size: 4 }
    }
}

/// A learned cardinality estimator with an optional exact outlier store —
/// `LSM`/`CLSM`(`-Hybrid`) depending on the model config and percentile.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LearnedCardinality {
    model: DeepSets,
    scaler: LogMinMaxScaler,
    /// Exact counts for exiled outliers, keyed by set hash.
    outliers: HashMap<u64, u64>,
    /// Delta layer absorbing updates until retraining (§7.2).
    deltas: HashMap<u64, i64>,
    max_subset_size: usize,
    /// Serve-time guard over the model's output domain; absent in files
    /// persisted before guards existed (falls back to non-finite-only).
    #[serde(default)]
    guard: ServeGuard,
    /// Serve precision, recorded in checkpoints; files persisted before
    /// precision-aware kernels default to full precision.
    #[serde(default)]
    precision: Precision,
    /// Lazily frozen serving kernel (a pure function of the weights and
    /// `precision`; reset on any weight mutation).
    #[serde(skip)]
    kernel: KernelCell,
}

/// Build artifacts useful for reporting (training curves, outlier count).
#[derive(Debug, Clone)]
pub struct CardinalityBuildReport {
    /// Loss per epoch.
    pub loss_history: Vec<f32>,
    /// Number of training subsets enumerated.
    pub training_subsets: usize,
    /// Number of subsets moved to the outlier store.
    pub outliers: usize,
    /// Structured summary of the harnessed training run (recoveries,
    /// skipped batches, stop reason).
    pub train: TrainReport,
}

impl LearnedCardinality {
    /// Enumerates training data from the collection, trains with guided
    /// learning, and stores exact counts for the exiled outliers.
    pub fn build(
        collection: &SetCollection,
        cfg: &CardinalityConfig,
    ) -> (Self, CardinalityBuildReport) {
        let subsets = SubsetIndex::build(collection, cfg.max_subset_size);
        Self::build_from_subsets(&subsets, cfg)
    }

    /// Builds from pre-enumerated subset statistics (lets callers share the
    /// enumeration across tasks).
    pub fn build_from_subsets(
        subsets: &SubsetIndex,
        cfg: &CardinalityConfig,
    ) -> (Self, CardinalityBuildReport) {
        let pairs = subsets.cardinality_pairs();
        assert!(!pairs.is_empty(), "no training subsets enumerated");
        // §4.2: the maximum observed cardinality is always attained by a
        // single element, so the scaler range is [1, max single-element
        // frequency].
        let scaler = LogMinMaxScaler::from_range(1.0, subsets.max_cardinality() as f64);
        let data: Vec<(ElementSet, f32)> =
            pairs.iter().map(|(s, c)| (s.clone(), scaler.scale(*c))).collect();

        let mut model = DeepSets::new(cfg.model.clone());
        let loss = Loss::QError { span: scaler.span() };
        let (GuidedOutcome { outlier_indices, loss_history }, train) =
            guided_train_hardened(&mut model, &data, loss, &cfg.guided, &TrainPolicy::default());

        let outliers: HashMap<u64, u64> = outlier_indices
            .iter()
            .map(|&i| (set_hash(&pairs[i].0), pairs[i].1 as u64))
            .collect();
        let report = CardinalityBuildReport {
            loss_history,
            training_subsets: pairs.len(),
            outliers: outliers.len(),
            train,
        };
        (
            LearnedCardinality {
                model,
                scaler,
                outliers,
                deltas: HashMap::new(),
                max_subset_size: cfg.max_subset_size,
                // Valid model outputs live in [0, max observed cardinality];
                // anything else degrades to the guard's fallback path.
                guard: ServeGuard::new(0.0, subsets.max_cardinality() as f64),
                precision: Precision::default(),
                kernel: KernelCell::new(),
            },
            report,
        )
    }

    /// Estimates the cardinality of a canonical query set: outlier store
    /// first, then the model (Figure 5's query path), plus any update deltas.
    ///
    /// Model predictions pass through the serve-time [`ServeGuard`]: a
    /// non-finite or out-of-domain prediction is degraded to a clamped
    /// in-domain value (and counted) instead of propagating garbage.
    pub fn estimate(&self, q: &[u32]) -> f64 {
        self.estimate_inner(q, None)
    }

    /// [`LearnedCardinality::estimate`] that also reports fallback events to
    /// a [`DriftMonitor`], so a model gone bad raises the retrain signal.
    pub fn estimate_monitored(&self, q: &[u32], monitor: &mut DriftMonitor) -> f64 {
        self.estimate_inner(q, Some(monitor))
    }

    fn estimate_inner(&self, q: &[u32], monitor: Option<&mut DriftMonitor>) -> f64 {
        self.outcome_inner(q, monitor).value
    }

    fn outcome_inner(
        &self,
        q: &[u32],
        monitor: Option<&mut DriftMonitor>,
    ) -> QueryOutcome<f64> {
        let start = crate::telemetry::query_start();
        let h = set_hash(q);
        let mut fallback = None;
        let base = match self.outliers.get(&h) {
            Some(&exact) => exact as f64,
            None => {
                let raw = self.scaler.unscale(self.score_one(q));
                let (value, reason) = self.guard.admit_or_clamp(raw);
                ServeGuard::notify(reason, monitor);
                fallback = reason;
                value
            }
        };
        let delta = self.deltas.get(&h).copied().unwrap_or(0) as f64;
        let answer = (base + delta).max(0.0);
        crate::telemetry::cardinality_tele().record_query(start, fallback);
        QueryOutcome { value: answer, fallback, bound_miss: false }
    }

    /// Applies the outlier-store / guard / delta-layer corrections to one
    /// raw model score — the shared tail of every batch path.
    fn correct_score(&self, q: &[u32], score: f32) -> QueryOutcome<f64> {
        let h = set_hash(q);
        let (base, fallback) = match self.outliers.get(&h) {
            Some(&exact) => (exact as f64, None),
            None => {
                let (value, reason) = self.guard.admit_or_clamp(self.scaler.unscale(score));
                (value, reason)
            }
        };
        let delta = self.deltas.get(&h).copied().unwrap_or(0) as f64;
        QueryOutcome { value: (base + delta).max(0.0), fallback, bound_miss: false }
    }

    /// Corrects a whole batch of raw scores and records batch telemetry.
    fn correct_batch<S: AsRef<[u32]>>(
        &self,
        queries: &[S],
        scores: Vec<f32>,
    ) -> Vec<QueryOutcome<f64>> {
        let mut fallbacks = Vec::new();
        let outcomes: Vec<QueryOutcome<f64>> = queries
            .iter()
            .zip(scores)
            .map(|(q, s)| {
                let outcome = self.correct_score(q.as_ref(), s);
                fallbacks.extend(outcome.fallback);
                outcome
            })
            .collect();
        crate::telemetry::cardinality_tele().record_batch(queries.len(), &fallbacks);
        outcomes
    }

    /// The serve-time guard (fallback counters and bounds).
    pub fn serve_guard(&self) -> &ServeGuard {
        &self.guard
    }

    /// Model-only estimate, bypassing the outlier store (for ablations).
    pub fn estimate_model_only(&self, q: &[u32]) -> f64 {
        self.scaler.unscale(self.score_one(q))
    }

    /// The frozen serving kernel, freezing the current weights at
    /// [`LearnedCardinality::precision`] on first use.
    pub fn kernel(&self) -> &FrozenModel {
        self.kernel.get_or_freeze(&self.model, self.precision)
    }

    /// One raw model score through the frozen kernel.
    fn score_one(&self, q: &[u32]) -> f32 {
        let kernel = self.kernel();
        let s = kernel.predict_one(q);
        crate::telemetry::cardinality_tele().record_kernel(self.precision, kernel.take_blocks());
        s
    }

    /// The precision queries are served at (recorded in checkpoints).
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Selects the serve precision; the kernel re-freezes from the current
    /// weights on the next query.
    pub fn set_precision(&mut self, precision: Precision) {
        self.precision = precision;
        self.kernel.reset();
    }

    /// Registers an inserted set (§7.2): all its subsets gain one occurrence
    /// in the delta layer until the model is retrained.
    pub fn note_inserted_set(&mut self, set: &[u32]) {
        setlearn_data::set::for_each_subset(set, self.max_subset_size, |sub| {
            *self.deltas.entry(set_hash(sub)).or_insert(0) += 1;
        });
    }

    /// Registers a deleted set (§7.2).
    pub fn note_deleted_set(&mut self, set: &[u32]) {
        setlearn_data::set::for_each_subset(set, self.max_subset_size, |sub| {
            *self.deltas.entry(set_hash(sub)).or_insert(0) -= 1;
        });
    }

    /// Number of pending update deltas; large values suggest retraining.
    pub fn pending_updates(&self) -> usize {
        self.deltas.len()
    }

    /// The underlying model.
    pub fn model(&self) -> &DeepSets {
        &self.model
    }

    /// Mutable access to the underlying model, for weight hot-swapping
    /// (e.g. loading weights restored via [`crate::persist`]) and fault
    /// injection in tests. Serve-time guards keep answers finite even if the
    /// swapped weights are corrupt.
    pub fn model_mut(&mut self) -> &mut DeepSets {
        self.kernel.reset();
        &mut self.model
    }

    /// Rounds every model weight to f16 precision in place (see
    /// [`crate::quantize`]): halves the storable footprint at a tiny output
    /// perturbation. The outlier store is untouched.
    pub fn quantize_weights(&mut self) {
        crate::quantize::quantize_in_place(&mut self.model);
        self.kernel.reset();
    }

    /// Number of exiled outliers.
    pub fn num_outliers(&self) -> usize {
        self.outliers.len()
    }

    /// Model weight bytes only (the paper's `LSM`/`CLSM` memory columns).
    pub fn model_size_bytes(&self) -> usize {
        self.model.size_bytes()
    }

    /// Total structure bytes: model + outlier store + delta layer (the
    /// `-Hybrid` memory columns).
    pub fn size_bytes(&self) -> usize {
        let map_entry = 8 + 8 + 1; // key + value + control byte
        self.model.size_bytes()
            + (self.outliers.len() as f64 / 0.875) as usize * map_entry
            + (self.deltas.len() as f64 / 0.875) as usize * map_entry
    }
}

impl LearnedSetStructure for LearnedCardinality {
    type Output = f64;
    const NAME: &'static str = "cardinality";

    fn query(&self, q: &[u32]) -> QueryOutcome<f64> {
        self.outcome_inner(q, None)
    }

    fn query_batch(&self, queries: &[ElementSet]) -> Vec<QueryOutcome<f64>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let kernel = self.kernel();
        let scores = kernel.predict_batch(queries);
        crate::telemetry::cardinality_tele().record_kernel(self.precision, kernel.take_blocks());
        self.correct_batch(queries, scores)
    }

    fn query_batch_parallel(
        &self,
        queries: &[ElementSet],
        threads: usize,
    ) -> Vec<QueryOutcome<f64>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let kernel = self.kernel();
        let scores = kernel.predict_batch_parallel(queries, threads);
        crate::telemetry::cardinality_tele().record_kernel(self.precision, kernel.take_blocks());
        self.correct_batch(queries, scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CompressionKind;
    use setlearn_data::GeneratorConfig;
    use setlearn_nn::q_error;

    fn quick_cfg(vocab: u32, compression: CompressionKind) -> CardinalityConfig {
        let mut model = DeepSetsConfig::lsm(vocab);
        model.compression = compression;
        model.embedding_dim = 8;
        model.phi_hidden = vec![32];
        model.rho_hidden = vec![32];
        CardinalityConfig {
            model,
            guided: GuidedConfig {
                warmup_epochs: 25,
                rounds: 1,
                epochs_per_round: 15,
                percentile: 0.9,
                batch_size: 64,
                learning_rate: 5e-3,
                seed: 5,
            },
            max_subset_size: 3,
        }
    }

    #[test]
    fn hybrid_estimator_reaches_low_qerror_on_small_collection() {
        let collection = GeneratorConfig::sd(400, 11).generate();
        let (est, report) = LearnedCardinality::build(
            &collection,
            &quick_cfg(collection.num_elements(), CompressionKind::None),
        );
        assert!(report.training_subsets > 100);
        let subsets = SubsetIndex::build(&collection, 3);
        let mut qe = 0.0;
        let mut n = 0;
        for (s, info) in subsets.iter().take(300) {
            qe += q_error(est.estimate(s), info.count as f64, 1.0);
            n += 1;
        }
        let avg = qe / n as f64;
        assert!(avg < 3.0, "avg q-error {avg}");
    }

    #[test]
    fn parallel_batch_estimates_equal_sequential() {
        let collection = GeneratorConfig::sd(300, 7).generate();
        let (est, _) = LearnedCardinality::build(
            &collection,
            &quick_cfg(collection.num_elements(), CompressionKind::None),
        );
        let queries: Vec<_> =
            SubsetIndex::build(&collection, 3).iter().map(|(s, _)| s.clone()).collect();
        let sequential: Vec<f64> =
            est.query_batch(&queries).into_iter().map(|o| o.value).collect();
        for threads in [1, 2, 4] {
            let parallel: Vec<f64> = est
                .query_batch_parallel(&queries, threads)
                .into_iter()
                .map(|o| o.value)
                .collect();
            assert_eq!(parallel, sequential, "{threads}-thread answers diverged");
        }
    }

    #[test]
    fn outliers_answer_exactly() {
        let collection = GeneratorConfig::sd(300, 3).generate();
        let (est, _) = LearnedCardinality::build(
            &collection,
            &quick_cfg(collection.num_elements(), CompressionKind::None),
        );
        assert!(est.num_outliers() > 0);
        // Every outlier must produce its exact stored count.
        let subsets = SubsetIndex::build(&collection, 3);
        let mut checked = 0;
        for (s, info) in subsets.iter() {
            let h = set_hash(s);
            if est.outliers.contains_key(&h) {
                assert_eq!(est.estimate(s), info.count as f64);
                checked += 1;
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn compressed_variant_trains_and_is_smaller() {
        let collection = GeneratorConfig::rw(400, 4).generate();
        // Use a large declared id space so the embedding-table savings
        // dominate the φ-width overhead (see the paper's SD discussion).
        let vocab = collection.num_elements().max(50_000);
        let (lsm, _) =
            LearnedCardinality::build(&collection, &quick_cfg(vocab, CompressionKind::None));
        let (clsm, _) = LearnedCardinality::build(
            &collection,
            &quick_cfg(vocab, CompressionKind::Optimal { ns: 2 }),
        );
        assert!(clsm.model_size_bytes() < lsm.model_size_bytes());
    }

    #[test]
    fn nan_model_degrades_to_guard_and_raises_retrain_signal() {
        use crate::monitor::{MonitorConfig, RetrainReason};
        let collection = GeneratorConfig::sd(200, 9).generate();
        let (mut est, _) = LearnedCardinality::build(
            &collection,
            &quick_cfg(collection.num_elements(), CompressionKind::None),
        );
        // Inject NaN into every weight buffer (simulating corruption).
        let poisoned: Vec<Vec<f32>> = est
            .model
            .snapshot_weights()
            .into_iter()
            .map(|b| vec![f32::NAN; b.len()])
            .collect();
        est.model.load_weight_buffers(&poisoned).unwrap();
        assert!(est.model.has_non_finite_weights());

        let mut monitor = DriftMonitor::new(
            1.1,
            MonitorConfig { max_fallbacks: 8, ..MonitorConfig::default() },
        );
        let subsets = SubsetIndex::build(&collection, 2);
        let mut served = 0;
        for (s, _) in subsets.iter().take(50) {
            let v = est.estimate_monitored(s, &mut monitor);
            assert!(v.is_finite(), "guard must never serve a non-finite estimate");
            assert!(v >= 0.0);
            served += 1;
        }
        assert!(served > 8);
        // Outlier-store answers bypass the model, so only model-served
        // queries count as fallbacks — but with NaN weights every one does.
        assert!(est.serve_guard().non_finite_fallbacks() > 0);
        assert_eq!(monitor.should_retrain(), Some(RetrainReason::ServeFallbacks));
    }

    #[test]
    fn updates_adjust_estimates() {
        let collection = GeneratorConfig::sd(200, 9).generate();
        let (mut est, _) = LearnedCardinality::build(
            &collection,
            &quick_cfg(collection.num_elements(), CompressionKind::None),
        );
        let q = &collection.get(0)[..2];
        let before = est.estimate(q);
        let inserted: Vec<u32> = q.to_vec();
        est.note_inserted_set(&inserted);
        assert_eq!(est.estimate(q), before + 1.0);
        est.note_deleted_set(&inserted);
        assert_eq!(est.estimate(q), before);
        assert!(est.pending_updates() > 0);
    }
}
