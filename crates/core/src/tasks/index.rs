//! Learned set index (paper §4.1) with the hybrid search of §6/Algorithm 2.
//!
//! The model regresses a query subset to its first position in the
//! (arbitrarily ordered) collection; per-range local error bounds turn the
//! estimate into a bounded scan window, and an auxiliary B+ tree answers the
//! outliers the model could not fit.

use crate::hybrid::{
    guided_train_hardened, FallbackReason, GuidedConfig, GuidedOutcome, LocalErrorBounds,
    ServeGuard,
};
use crate::kernel::{FrozenModel, KernelCell, Precision};
use crate::model::{DeepSets, DeepSetsConfig};
use crate::tasks::{LearnedSetStructure, QueryOutcome};
use serde::{Deserialize, Serialize};
use setlearn_baselines::{set_hash, BPlusTree};
use setlearn_data::{is_subset, ElementSet, SetCollection, SubsetIndex};
use setlearn_nn::{Loss, LogMinMaxScaler, TrainPolicy, TrainReport};
use std::sync::Arc;

/// Which occurrence the index targets (paper §4.1 supports either).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PositionTarget {
    /// The first position containing the query subset.
    #[default]
    First,
    /// The last position containing the query subset.
    Last,
}

/// Training configuration for the learned set index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IndexConfig {
    /// DeepSets hyper-parameters.
    pub model: DeepSetsConfig,
    /// Guided-learning schedule (`percentile = 1.0` = "No Removal").
    pub guided: GuidedConfig,
    /// Subset-enumeration cap. The paper generates *all* subsets for the
    /// index task to guarantee findability; the cap bounds that guarantee to
    /// queries of at most this many elements.
    pub max_subset_size: usize,
    /// Width of the local-error buckets (the paper uses 100).
    pub range_length: f64,
    /// Which occurrence to index.
    pub target: PositionTarget,
}

impl IndexConfig {
    /// Defaults: given model, 90th-percentile hybrid, subsets ≤ 4, range 100.
    pub fn new(model: DeepSetsConfig) -> Self {
        IndexConfig {
            model,
            guided: GuidedConfig::default(),
            max_subset_size: 4,
            range_length: 100.0,
            target: PositionTarget::First,
        }
    }
}

/// Result of a profiled lookup: the answer plus the work done.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupProfile {
    /// First matching position, if found.
    pub position: Option<usize>,
    /// Number of collection sets examined during the local scan (0 when the
    /// auxiliary structure answered).
    pub scanned: usize,
    /// Whether the auxiliary structure answered.
    pub from_aux: bool,
    /// Set when the model's estimate was rejected by the serve guard and the
    /// lookup degraded to an exact path (full scan for non-finite estimates,
    /// clamped window for out-of-bound ones).
    pub fallback: Option<FallbackReason>,
}

/// The hybrid learned set index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LearnedSetIndex {
    model: DeepSets,
    scaler: LogMinMaxScaler,
    /// Outlier subsets (and §7.2 updates), keyed by set hash.
    aux: BPlusTree,
    bounds: LocalErrorBounds,
    max_subset_size: usize,
    target: PositionTarget,
    /// Serve-time guard over position estimates; absent in files persisted
    /// before guards existed (falls back to non-finite-only).
    #[serde(default)]
    guard: ServeGuard,
    /// Serve precision, recorded in checkpoints; files persisted before
    /// precision-aware kernels default to full precision.
    #[serde(default)]
    precision: Precision,
    /// Lazily frozen serving kernel (reset on any weight mutation).
    #[serde(skip)]
    kernel: KernelCell,
}

/// Build artifacts for reporting.
#[derive(Debug, Clone)]
pub struct IndexBuildReport {
    /// Loss per epoch.
    pub loss_history: Vec<f32>,
    /// Number of training subsets.
    pub training_subsets: usize,
    /// Subsets moved to the auxiliary tree.
    pub outliers: usize,
    /// Global max absolute error of the retained model predictions.
    pub global_error: f64,
    /// Mean local bound (what the scan actually pays, §8.3.3).
    pub mean_local_error: f64,
    /// Structured summary of the harnessed training run (recoveries,
    /// skipped batches, stop reason).
    pub train: TrainReport,
}

impl LearnedSetIndex {
    /// Enumerates subsets, trains with guided learning, exiles outliers to a
    /// B+ tree and computes local error bounds over the retained subsets.
    pub fn build(collection: &SetCollection, cfg: &IndexConfig) -> (Self, IndexBuildReport) {
        let subsets = SubsetIndex::build(collection, cfg.max_subset_size);
        Self::build_from_subsets(collection, &subsets, cfg)
    }

    /// Builds from pre-enumerated subset statistics.
    pub fn build_from_subsets(
        collection: &SetCollection,
        subsets: &SubsetIndex,
        cfg: &IndexConfig,
    ) -> (Self, IndexBuildReport) {
        let pairs = match cfg.target {
            PositionTarget::First => subsets.index_pairs(),
            PositionTarget::Last => subsets.index_pairs_last(),
        };
        assert!(!pairs.is_empty(), "no training subsets enumerated");
        let scaler = LogMinMaxScaler::from_range(0.0, collection.len().saturating_sub(1) as f64);
        let data: Vec<(ElementSet, f32)> =
            pairs.iter().map(|(s, p)| (s.clone(), scaler.scale(*p))).collect();

        let mut model = DeepSets::new(cfg.model.clone());
        let loss = Loss::QError { span: scaler.span() };
        let (GuidedOutcome { outlier_indices, loss_history }, train) =
            guided_train_hardened(&mut model, &data, loss, &cfg.guided, &TrainPolicy::default());

        // Exile outliers into the auxiliary B+ tree.
        let mut aux = BPlusTree::new(100);
        let outlier_set: std::collections::HashSet<usize> =
            outlier_indices.iter().copied().collect();
        for &i in &outlier_indices {
            aux.insert(set_hash(&pairs[i].0), pairs[i].1 as u32);
        }

        // Error bounds over the *retained* subsets: outliers are answered by
        // the tree, so they must not widen the scan windows.
        let retained: Vec<(f64, f64)> = pairs
            .iter()
            .enumerate()
            .filter(|(i, _)| !outlier_set.contains(i))
            .map(|(_, (s, p))| (scaler.unscale(model.predict_one(s)), *p))
            .collect();
        let bounds = if retained.is_empty() {
            // Degenerate hybrid: everything is in the tree.
            LocalErrorBounds::compute(&[(0.0, 0.0)], cfg.range_length)
        } else {
            LocalErrorBounds::compute(&retained, cfg.range_length)
        };

        let report = IndexBuildReport {
            loss_history,
            training_subsets: pairs.len(),
            outliers: outlier_indices.len(),
            global_error: bounds.global_bound(),
            mean_local_error: bounds.mean_bound(),
            train,
        };
        (
            LearnedSetIndex {
                model,
                scaler,
                aux,
                bounds,
                max_subset_size: cfg.max_subset_size,
                target: cfg.target,
                // Positions live in [0, len-1]; estimates outside are
                // clamped, non-finite ones trigger an exact full scan.
                guard: ServeGuard::new(0.0, collection.len().saturating_sub(1) as f64),
                precision: Precision::default(),
                kernel: KernelCell::new(),
            },
            report,
        )
    }

    /// Algorithm 2: auxiliary structure first, then model estimate + bounded
    /// local scan for the first position containing `q`.
    pub fn lookup(&self, collection: &SetCollection, q: &[u32]) -> Option<usize> {
        self.lookup_profiled(collection, q).position
    }

    fn aux_position(&self, q: &[u32]) -> Option<u32> {
        match self.target {
            PositionTarget::First => self.aux.first_position(set_hash(q)),
            PositionTarget::Last => self.aux.last_position(set_hash(q)),
        }
    }

    /// Scan window for a guarded estimate: `[lo, hi]` positions plus the
    /// fallback reason (if the guard rejected the raw estimate). A
    /// non-finite estimate widens the window to the whole collection — the
    /// exact, model-free degradation; an out-of-bound estimate is clamped
    /// into the position domain first.
    fn scan_window(&self, collection: &SetCollection, raw_est: f64) -> (usize, usize, Option<FallbackReason>) {
        let last = collection.len().saturating_sub(1);
        let (est, reason) = self.guard.admit_or_clamp(raw_est);
        if reason == Some(FallbackReason::NonFinite) {
            return (0, last, reason);
        }
        let e_r = self.bounds.bound_for(est);
        let lo = ((est - e_r).floor().max(0.0)) as usize;
        let hi = ((est + e_r).ceil() as usize).min(last);
        (lo, hi, reason)
    }

    /// [`LearnedSetIndex::lookup`] with scan-effort accounting.
    pub fn lookup_profiled(&self, collection: &SetCollection, q: &[u32]) -> LookupProfile {
        let start = crate::telemetry::query_start();
        let profile = self.lookup_profiled_inner(collection, q);
        let tele = crate::telemetry::index_tele();
        tele.record_query(start, profile.fallback);
        // A scan that exhausted its window without a hit means the local
        // error bound did not cover the answer (or the subset is absent).
        if profile.position.is_none() && !profile.from_aux {
            tele.record_bound_miss();
        }
        profile
    }

    fn lookup_profiled_inner(&self, collection: &SetCollection, q: &[u32]) -> LookupProfile {
        self.profile_from_score(collection, q, self.score_one(q))
    }

    /// The frozen serving kernel, freezing the current weights at
    /// [`LearnedSetIndex::precision`] on first use.
    pub fn kernel(&self) -> &FrozenModel {
        self.kernel.get_or_freeze(&self.model, self.precision)
    }

    /// One raw model score through the frozen kernel.
    fn score_one(&self, q: &[u32]) -> f32 {
        let kernel = self.kernel();
        let s = kernel.predict_one(q);
        crate::telemetry::index_tele().record_kernel(self.precision, kernel.take_blocks());
        s
    }

    /// The precision lookups are served at (recorded in checkpoints).
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Selects the serve precision; the kernel re-freezes from the current
    /// weights on the next lookup.
    pub fn set_precision(&mut self, precision: Precision) {
        self.precision = precision;
        self.kernel.reset();
    }

    /// The shared tail of every lookup path: auxiliary structure first
    /// (Algorithm 2 line 2), then guarded estimate + bounded local scan
    /// (lines 4–7). `score` is the model's raw (scaled) output for `q`,
    /// which lets the batch paths reuse a batched forward pass.
    fn profile_from_score(
        &self,
        collection: &SetCollection,
        q: &[u32],
        score: f32,
    ) -> LookupProfile {
        if let Some(pos) = self.aux_position(q) {
            return LookupProfile {
                position: Some(pos as usize),
                scanned: 0,
                from_aux: true,
                fallback: None,
            };
        }
        let (lo, hi, fallback) = self.scan_window(collection, self.scaler.unscale(score));
        let mut scanned = 0;
        // First-occurrence queries scan the window upward; last-occurrence
        // queries downward. In both directions the first match is the true
        // endpoint whenever it lies inside the window (nothing beyond the
        // endpoint matches, by definition).
        let mut probe = |i: usize| -> Option<LookupProfile> {
            scanned += 1;
            if is_subset(q, collection.get(i)) {
                Some(LookupProfile { position: Some(i), scanned, from_aux: false, fallback })
            } else {
                None
            }
        };
        match self.target {
            PositionTarget::First => {
                for i in lo..=hi {
                    if let Some(hit) = probe(i) {
                        return hit;
                    }
                }
            }
            PositionTarget::Last => {
                for i in (lo..=hi).rev() {
                    if let Some(hit) = probe(i) {
                        return hit;
                    }
                }
            }
        }
        LookupProfile { position: None, scanned, from_aux: false, fallback }
    }

    /// Maps pre-computed batch scores through the scan tail, recording batch
    /// telemetry once. Shared by the sequential and parallel batch paths so
    /// they agree bit-for-bit.
    fn profiles_for_scores<S: AsRef<[u32]>>(
        &self,
        collection: &SetCollection,
        queries: &[S],
        scores: Vec<f32>,
    ) -> Vec<LookupProfile> {
        let mut fallbacks = Vec::new();
        let profiles: Vec<LookupProfile> = queries
            .iter()
            .zip(scores)
            .map(|(q, s)| {
                let profile = self.profile_from_score(collection, q.as_ref(), s);
                fallbacks.extend(profile.fallback);
                profile
            })
            .collect();
        crate::telemetry::index_tele().record_batch(queries.len(), &fallbacks);
        profiles
    }

    /// Batched lookup with scan-effort accounting: one model forward pass
    /// for all queries, followed by per-query bounded scans.
    pub fn lookup_batch_profiled<S: AsRef<[u32]>>(
        &self,
        collection: &SetCollection,
        queries: &[S],
    ) -> Vec<LookupProfile> {
        if queries.is_empty() {
            return Vec::new();
        }
        let kernel = self.kernel();
        let scores = kernel.predict_batch(queries);
        crate::telemetry::index_tele().record_kernel(self.precision, kernel.take_blocks());
        self.profiles_for_scores(collection, queries, scores)
    }

    /// Raw model estimate of the position (no scan) — for accuracy metrics.
    pub fn estimate_position(&self, q: &[u32]) -> f64 {
        self.model_estimate_or_aux(q)
    }

    fn model_estimate_or_aux(&self, q: &[u32]) -> f64 {
        if let Some(pos) = self.aux_position(q) {
            return pos as f64;
        }
        self.scaler.unscale(self.score_one(q))
    }

    /// Registers a §7.2 update: the set now (also) appears at `pos`. Queries
    /// consult the auxiliary tree first, so the new position wins.
    pub fn record_update(&mut self, set: &[u32], pos: usize) {
        setlearn_data::set::for_each_subset(set, self.max_subset_size, |sub| {
            self.aux.insert(set_hash(sub), pos as u32);
        });
    }

    /// Fraction of known subsets served by the auxiliary tree; near 1.0 the
    /// hybrid has degenerated to a traditional index and should be rebuilt.
    pub fn aux_fraction(&self, training_subsets: usize) -> f64 {
        if training_subsets == 0 {
            return 1.0;
        }
        self.aux.len() as f64 / training_subsets as f64
    }

    /// The underlying model.
    pub fn model(&self) -> &DeepSets {
        &self.model
    }

    /// Mutable access to the underlying model, for weight hot-swapping
    /// (e.g. loading weights restored via [`crate::persist`]) and fault
    /// injection in tests. Serve-time guards keep answers finite even if the
    /// swapped weights are corrupt.
    pub fn model_mut(&mut self) -> &mut DeepSets {
        self.kernel.reset();
        &mut self.model
    }

    /// The local error bounds.
    pub fn bounds(&self) -> &LocalErrorBounds {
        &self.bounds
    }

    /// Which occurrence (first/last) this index was trained to return.
    pub fn target(&self) -> PositionTarget {
        self.target
    }

    /// The serve-time guard (fallback counters and bounds).
    pub fn serve_guard(&self) -> &ServeGuard {
        &self.guard
    }

    /// Number of entries in the auxiliary tree.
    pub fn aux_len(&self) -> usize {
        self.aux.len()
    }

    /// Model weight bytes.
    pub fn model_size_bytes(&self) -> usize {
        self.model.size_bytes()
    }

    /// Auxiliary-tree bytes.
    pub fn aux_size_bytes(&self) -> usize {
        self.aux.size_bytes()
    }

    /// Error-bound table bytes.
    pub fn bounds_size_bytes(&self) -> usize {
        self.bounds.size_bytes()
    }

    /// Total structure bytes (Table 7's Model + Aux.Str. + Err).
    pub fn size_bytes(&self) -> usize {
        self.model_size_bytes() + self.aux_size_bytes() + self.bounds_size_bytes()
    }
}

fn outcome_from_profile(p: LookupProfile) -> QueryOutcome<Option<usize>> {
    QueryOutcome {
        value: p.position,
        fallback: p.fallback,
        // A window exhausted without a hit: the local bound did not cover
        // the answer, or the subset is genuinely absent.
        bound_miss: p.position.is_none() && !p.from_aux,
    }
}

/// A [`LearnedSetIndex`] bound to its collection. Lookups need the
/// collection to scan, so the [`LearnedSetStructure`] surface lives on this
/// adapter rather than on the bare index.
#[derive(Debug, Clone)]
pub struct IndexStructure {
    /// The hybrid learned index.
    pub index: LearnedSetIndex,
    /// The collection it indexes.
    pub collection: Arc<SetCollection>,
}

impl LearnedSetStructure for IndexStructure {
    type Output = Option<usize>;
    const NAME: &'static str = "index";

    fn query(&self, q: &[u32]) -> QueryOutcome<Option<usize>> {
        outcome_from_profile(self.index.lookup_profiled(&self.collection, q))
    }

    fn query_batch(&self, queries: &[ElementSet]) -> Vec<QueryOutcome<Option<usize>>> {
        self.index
            .lookup_batch_profiled(&self.collection, queries)
            .into_iter()
            .map(outcome_from_profile)
            .collect()
    }

    fn query_batch_parallel(
        &self,
        queries: &[ElementSet],
        threads: usize,
    ) -> Vec<QueryOutcome<Option<usize>>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let kernel = self.index.kernel();
        let scores = kernel.predict_batch_parallel(queries, threads);
        crate::telemetry::index_tele().record_kernel(self.index.precision, kernel.take_blocks());
        self.index
            .profiles_for_scores(&self.collection, queries, scores)
            .into_iter()
            .map(outcome_from_profile)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CompressionKind;
    use setlearn_data::GeneratorConfig;

    fn quick_cfg(vocab: u32, compression: CompressionKind) -> IndexConfig {
        let mut model = DeepSetsConfig::lsm(vocab);
        model.compression = compression;
        IndexConfig {
            model,
            guided: GuidedConfig {
                warmup_epochs: 25,
                rounds: 1,
                epochs_per_round: 15,
                percentile: 0.9,
                batch_size: 64,
                learning_rate: 5e-3,
                seed: 5,
            },
            max_subset_size: 3,
            range_length: 16.0,
            target: PositionTarget::First,
        }
    }

    #[test]
    fn every_trained_subset_is_found_at_its_true_first_position() {
        let collection = GeneratorConfig::rw(300, 21).generate();
        let (index, report) =
            LearnedSetIndex::build(&collection, &quick_cfg(collection.num_elements(), CompressionKind::None));
        assert!(report.training_subsets > 0);
        let subsets = SubsetIndex::build(&collection, 3);
        for (s, info) in subsets.iter() {
            let got = index.lookup(&collection, s);
            assert_eq!(
                got,
                Some(info.first_pos as usize),
                "subset {s:?}: expected {} got {got:?}",
                info.first_pos
            );
        }
    }

    #[test]
    fn local_bounds_cut_scanning_versus_global() {
        let collection = GeneratorConfig::rw(400, 2).generate();
        let (_index, report) =
            LearnedSetIndex::build(&collection, &quick_cfg(collection.num_elements(), CompressionKind::None));
        assert!(
            report.mean_local_error <= report.global_error,
            "mean {} vs global {}",
            report.mean_local_error,
            report.global_error
        );
    }

    #[test]
    fn aux_answers_have_zero_scan_cost() {
        let collection = GeneratorConfig::rw(300, 8).generate();
        let (index, _) =
            LearnedSetIndex::build(&collection, &quick_cfg(collection.num_elements(), CompressionKind::None));
        assert!(index.aux_len() > 0, "expected some outliers");
        let subsets = SubsetIndex::build(&collection, 3);
        let mut aux_hits = 0;
        for (s, _) in subsets.iter() {
            let prof = index.lookup_profiled(&collection, s);
            if prof.from_aux {
                assert_eq!(prof.scanned, 0);
                aux_hits += 1;
            }
        }
        assert!(aux_hits > 0);
    }

    #[test]
    fn updates_take_precedence() {
        let collection = GeneratorConfig::rw(200, 5).generate();
        let (mut index, _) =
            LearnedSetIndex::build(&collection, &quick_cfg(collection.num_elements(), CompressionKind::None));
        let q: Vec<u32> = collection.get(50)[..2].to_vec();
        index.record_update(&q, 3);
        let prof = index.lookup_profiled(&collection, &q);
        assert!(prof.from_aux);
        assert_eq!(prof.position, Some(3));
    }

    #[test]
    fn nan_model_lookups_stay_correct_via_full_scan_fallback() {
        let collection = GeneratorConfig::rw(150, 21).generate();
        let (mut index, _) = LearnedSetIndex::build(
            &collection,
            &quick_cfg(collection.num_elements(), CompressionKind::None),
        );
        let poisoned: Vec<Vec<f32>> = index
            .model
            .snapshot_weights()
            .into_iter()
            .map(|b| vec![f32::NAN; b.len()])
            .collect();
        index.model.load_weight_buffers(&poisoned).unwrap();

        let subsets = SubsetIndex::build(&collection, 2);
        let mut fallbacks = 0;
        for (s, info) in subsets.iter().take(100) {
            let prof = index.lookup_profiled(&collection, s);
            assert_eq!(
                prof.position,
                Some(info.first_pos as usize),
                "subset {s:?} answered wrong under a poisoned model"
            );
            if prof.fallback == Some(FallbackReason::NonFinite) {
                fallbacks += 1;
            }
        }
        assert!(fallbacks > 0, "expected non-finite fallbacks from a NaN model");
        assert_eq!(index.serve_guard().non_finite_fallbacks(), fallbacks);
        // Batched lookups degrade identically.
        let queries: Vec<&[u32]> = subsets.iter().take(20).map(|(s, _)| &**s).collect();
        let batch = index.lookup_batch_profiled(&collection, &queries);
        for (q, got) in queries.iter().zip(&batch) {
            assert_eq!(got.position, index.lookup(&collection, q));
        }
    }

    #[test]
    fn parallel_batch_lookups_equal_sequential() {
        let collection = GeneratorConfig::rw(300, 21).generate();
        let (index, _) = LearnedSetIndex::build(
            &collection,
            &quick_cfg(collection.num_elements(), CompressionKind::None),
        );
        let subsets = SubsetIndex::build(&collection, 3);
        let queries: Vec<ElementSet> = subsets.iter().map(|(s, _)| s.clone()).collect();
        let sequential: Vec<Option<usize>> = index
            .lookup_batch_profiled(&collection, &queries)
            .into_iter()
            .map(|p| p.position)
            .collect();
        // The trait surface agrees with the profiled path, sequentially and
        // across worker counts.
        let structure = IndexStructure { index, collection: Arc::new(collection) };
        let outcomes = structure.query_batch(&queries);
        for (outcome, want) in outcomes.iter().zip(&sequential) {
            assert_eq!(outcome.value, *want);
        }
        for threads in [1, 2, 5] {
            let outcomes_par = structure.query_batch_parallel(&queries, threads);
            assert_eq!(outcomes, outcomes_par, "threads={threads}");
        }
    }

    #[test]
    fn compressed_index_is_smaller_and_still_sound() {
        let collection = GeneratorConfig::rw(250, 13).generate();
        // Compression pays off for large vocabularies (the paper's SD
        // discussion: small vocabularies don't need it). Declare a large id
        // space; the collection only uses a prefix of it.
        let vocab = collection.num_elements().max(50_000);
        let (lsm, _) = LearnedSetIndex::build(&collection, &quick_cfg(vocab, CompressionKind::None));
        let (clsm, _) =
            LearnedSetIndex::build(&collection, &quick_cfg(vocab, CompressionKind::Optimal { ns: 2 }));
        assert!(clsm.model_size_bytes() < lsm.model_size_bytes());
        let subsets = SubsetIndex::build(&collection, 3);
        for (s, info) in subsets.iter() {
            assert_eq!(clsm.lookup(&collection, s), Some(info.first_pos as usize));
        }
    }
}
