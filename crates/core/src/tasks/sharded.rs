//! Per-shard task models over a [`ShardedCollection`]: one independently
//! trained structure per shard, answers aggregated across shards.
//!
//! Aggregation semantics (all shards are queried — set-content queries
//! cannot be routed to a single shard):
//!
//! * **cardinality** — sum of per-shard estimates. The shards partition the
//!   collection, so exact per-shard counts are additive; model error adds at
//!   most the sum of per-shard errors.
//! * **index** — per-shard local answers are lifted to global positions via
//!   the partition's position maps, then folded (min for
//!   [`PositionTarget::First`], max for [`PositionTarget::Last`]).
//! * **bloom** — logical OR. A stored subset lives in some shard, so the
//!   per-shard no-false-negative guarantee composes to the whole.
//!
//! Degradation flags merge conservatively: the first per-shard fallback is
//! kept, and the index's `bound_miss` survives only when no shard found an
//! answer.

use crate::kernel::Precision;
use crate::shard::{ShardError, ShardSpec, ShardedCollection};
use crate::tasks::{
    BloomBuildReport, BloomConfig, CardinalityBuildReport, CardinalityConfig, IndexBuildReport,
    IndexConfig, IndexStructure, LearnedBloom, LearnedCardinality, LearnedSetIndex,
    LearnedSetStructure, PositionTarget, QueryOutcome,
};
use serde::{Deserialize, Serialize};
use setlearn_data::ElementSet;
use std::sync::Arc;

/// Sum-aggregation for per-shard cardinality outcomes.
pub fn aggregate_cardinality(parts: Vec<QueryOutcome<f64>>) -> QueryOutcome<f64> {
    let value = parts.iter().map(|p| p.value).sum();
    let fallback = parts.iter().find_map(|p| p.fallback);
    QueryOutcome { value, fallback, bound_miss: parts.iter().any(|p| p.bound_miss) }
}

/// Any-aggregation for per-shard membership outcomes.
pub fn aggregate_bloom(parts: Vec<QueryOutcome<bool>>) -> QueryOutcome<bool> {
    let value = parts.iter().any(|p| p.value);
    let fallback = parts.iter().find_map(|p| p.fallback);
    QueryOutcome { value, fallback, bound_miss: parts.iter().any(|p| p.bound_miss) }
}

/// First/last-fold for per-shard index outcomes **already in global
/// coordinates** (see [`ShardIndexStructure`]). `bound_miss` survives only
/// when no shard produced an answer — a miss in a shard that simply does not
/// hold the subset is expected, not a degradation.
pub fn aggregate_index(
    target: PositionTarget,
    parts: Vec<QueryOutcome<Option<usize>>>,
) -> QueryOutcome<Option<usize>> {
    let positions = parts.iter().filter_map(|p| p.value);
    let value = match target {
        PositionTarget::First => positions.min(),
        PositionTarget::Last => positions.max(),
    };
    let fallback = parts.iter().find_map(|p| p.fallback);
    QueryOutcome {
        value,
        fallback,
        bound_miss: value.is_none() && parts.iter().any(|p| p.bound_miss),
    }
}

/// Runs per-shard batch outcomes column-wise through an aggregator.
fn aggregate_columns<T: Copy>(
    per_shard: Vec<Vec<QueryOutcome<T>>>,
    queries: usize,
    agg: impl Fn(Vec<QueryOutcome<T>>) -> QueryOutcome<T>,
) -> Vec<QueryOutcome<T>> {
    (0..queries).map(|i| agg(per_shard.iter().map(|shard| shard[i]).collect())).collect()
}

fn check_non_empty(collection: &ShardedCollection) -> Result<(), ShardError> {
    // Defense in depth: `partition` already rejects empty shards, but the
    // builders re-check so a hand-rolled partition cannot reach the
    // enumeration panic inside `SubsetIndex`.
    for (s, shard) in collection.shards().iter().enumerate() {
        if shard.is_empty() {
            return Err(ShardError::EmptyShard { shard: s });
        }
    }
    Ok(())
}

/// One [`LearnedCardinality`] per shard; estimates sum across shards.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardedCardinality {
    shards: Vec<LearnedCardinality>,
    /// The partition the shards were trained on; persisted so query/serve
    /// can verify they re-derive the exact same partition.
    spec: ShardSpec,
}

impl ShardedCardinality {
    /// Trains one estimator per shard with the shared config (same seed —
    /// a single range shard reproduces the unsharded build bit-for-bit).
    pub fn build(
        collection: &ShardedCollection,
        cfg: &CardinalityConfig,
    ) -> Result<(Self, Vec<CardinalityBuildReport>), ShardError> {
        check_non_empty(collection)?;
        let mut shards = Vec::with_capacity(collection.num_shards());
        let mut reports = Vec::with_capacity(collection.num_shards());
        for shard in collection.shards() {
            let (model, report) = LearnedCardinality::build(shard, cfg);
            shards.push(model);
            reports.push(report);
        }
        Ok((ShardedCardinality { shards, spec: collection.spec() }, reports))
    }

    /// Sum of per-shard estimates for a canonical query.
    pub fn estimate(&self, q: &[u32]) -> f64 {
        self.query(q).value
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The partition spec the shards were trained on.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// The per-shard estimators, in shard order.
    pub fn shards(&self) -> &[LearnedCardinality] {
        &self.shards
    }

    /// Consumes the aggregate into its per-shard estimators (for per-shard
    /// serving pools and rolling swaps).
    pub fn into_shards(self) -> Vec<LearnedCardinality> {
        self.shards
    }

    /// Reassembles an aggregate from per-shard estimators trained on the
    /// partition described by `spec`.
    pub fn from_shards(shards: Vec<LearnedCardinality>, spec: ShardSpec) -> Self {
        assert_eq!(shards.len(), spec.shards, "shard count must match the spec");
        ShardedCardinality { shards, spec }
    }

    /// Total structure bytes across shards.
    pub fn size_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.size_bytes()).sum()
    }

    /// The serve precision shared by every shard.
    pub fn precision(&self) -> Precision {
        self.shards.first().map(|s| s.precision()).unwrap_or_default()
    }

    /// Selects the serve precision on every shard.
    pub fn set_precision(&mut self, precision: Precision) {
        for shard in &mut self.shards {
            shard.set_precision(precision);
        }
    }
}

impl LearnedSetStructure for ShardedCardinality {
    type Output = f64;
    const NAME: &'static str = "cardinality";

    fn query(&self, q: &[u32]) -> QueryOutcome<f64> {
        aggregate_cardinality(self.shards.iter().map(|m| m.query(q)).collect())
    }

    fn query_batch(&self, queries: &[ElementSet]) -> Vec<QueryOutcome<f64>> {
        let per_shard = self.shards.iter().map(|m| m.query_batch(queries)).collect();
        aggregate_columns(per_shard, queries.len(), aggregate_cardinality)
    }

    fn query_batch_parallel(
        &self,
        queries: &[ElementSet],
        threads: usize,
    ) -> Vec<QueryOutcome<f64>> {
        let per_shard =
            self.shards.iter().map(|m| m.query_batch_parallel(queries, threads)).collect();
        aggregate_columns(per_shard, queries.len(), aggregate_cardinality)
    }
}

/// One [`LearnedBloom`] per shard; membership is the OR across shards.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardedBloom {
    shards: Vec<LearnedBloom>,
    /// The partition the shards were trained on; persisted so query/serve
    /// can verify they re-derive the exact same partition.
    spec: ShardSpec,
}

impl ShardedBloom {
    /// Routes a globally labeled workload to every shard, relabeling each
    /// positive by *shard-level* containment (a global positive is a
    /// negative for shards that do not hold it). Each shard then trains with
    /// its own no-false-negative guarantee, and the OR-aggregation inherits
    /// it for every global positive.
    pub fn build(
        collection: &ShardedCollection,
        workload: &[(ElementSet, bool)],
        cfg: &BloomConfig,
    ) -> Result<(Self, Vec<BloomBuildReport>), ShardError> {
        check_non_empty(collection)?;
        let mut shards = Vec::with_capacity(collection.num_shards());
        let mut reports = Vec::with_capacity(collection.num_shards());
        for (s, shard) in collection.shards().iter().enumerate() {
            let local: Vec<(ElementSet, bool)> = workload
                .iter()
                .map(|(q, label)| (q.clone(), *label && shard.contains_subset(q)))
                .collect();
            if !local.iter().any(|(_, l)| *l) {
                return Err(ShardError::NoPositives { shard: s });
            }
            let (filter, report) = LearnedBloom::build(&local, cfg);
            shards.push(filter);
            reports.push(report);
        }
        Ok((ShardedBloom { shards, spec: collection.spec() }, reports))
    }

    /// Convenience constructor mirroring
    /// [`LearnedBloom::build_from_collection`]: samples a membership
    /// workload per shard, sized proportionally to the shard's share of the
    /// collection.
    pub fn build_from_collection(
        collection: &ShardedCollection,
        n_pos: usize,
        n_neg: usize,
        max_query_size: usize,
        cfg: &BloomConfig,
    ) -> Result<(Self, Vec<BloomBuildReport>), ShardError> {
        check_non_empty(collection)?;
        let total = collection.len().max(1);
        let mut shards = Vec::with_capacity(collection.num_shards());
        let mut reports = Vec::with_capacity(collection.num_shards());
        for shard in collection.shards() {
            let scale = |n: usize| (n * shard.len() / total).max(1);
            let (filter, report) = LearnedBloom::build_from_collection(
                shard,
                scale(n_pos),
                scale(n_neg),
                max_query_size,
                cfg,
            );
            shards.push(filter);
            reports.push(report);
        }
        Ok((ShardedBloom { shards, spec: collection.spec() }, reports))
    }

    /// Membership probe: true iff any shard answers true.
    pub fn contains(&self, q: &[u32]) -> bool {
        self.query(q).value
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The partition spec the shards were trained on.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// The per-shard filters, in shard order.
    pub fn shards(&self) -> &[LearnedBloom] {
        &self.shards
    }

    /// Consumes the aggregate into its per-shard filters.
    pub fn into_shards(self) -> Vec<LearnedBloom> {
        self.shards
    }

    /// Reassembles an aggregate from per-shard filters trained on the
    /// partition described by `spec`.
    pub fn from_shards(shards: Vec<LearnedBloom>, spec: ShardSpec) -> Self {
        assert_eq!(shards.len(), spec.shards, "shard count must match the spec");
        ShardedBloom { shards, spec }
    }

    /// Total structure bytes across shards.
    pub fn size_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.size_bytes()).sum()
    }

    /// The serve precision shared by every shard.
    pub fn precision(&self) -> Precision {
        self.shards.first().map(|s| s.precision()).unwrap_or_default()
    }

    /// Selects the serve precision on every shard.
    pub fn set_precision(&mut self, precision: Precision) {
        for shard in &mut self.shards {
            shard.set_precision(precision);
        }
    }
}

impl LearnedSetStructure for ShardedBloom {
    type Output = bool;
    const NAME: &'static str = "bloom";

    fn query(&self, q: &[u32]) -> QueryOutcome<bool> {
        aggregate_bloom(self.shards.iter().map(|m| m.query(q)).collect())
    }

    fn query_batch(&self, queries: &[ElementSet]) -> Vec<QueryOutcome<bool>> {
        let per_shard = self.shards.iter().map(|m| m.query_batch(queries)).collect();
        aggregate_columns(per_shard, queries.len(), aggregate_bloom)
    }

    fn query_batch_parallel(
        &self,
        queries: &[ElementSet],
        threads: usize,
    ) -> Vec<QueryOutcome<bool>> {
        let per_shard =
            self.shards.iter().map(|m| m.query_batch_parallel(queries, threads)).collect();
        aggregate_columns(per_shard, queries.len(), aggregate_bloom)
    }
}

/// One [`LearnedSetIndex`] per shard. Lookups need the partitioned
/// collection (to scan, and to lift local positions to global ones), so the
/// trait surface lives on [`ShardedIndexStructure`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardedIndex {
    shards: Vec<LearnedSetIndex>,
    target: PositionTarget,
    /// The partition the shards were trained on; persisted so query/serve
    /// can verify they re-derive the exact same partition.
    spec: ShardSpec,
}

impl ShardedIndex {
    /// Trains one index per shard with the shared config.
    pub fn build(
        collection: &ShardedCollection,
        cfg: &IndexConfig,
    ) -> Result<(Self, Vec<IndexBuildReport>), ShardError> {
        check_non_empty(collection)?;
        let mut shards = Vec::with_capacity(collection.num_shards());
        let mut reports = Vec::with_capacity(collection.num_shards());
        for shard in collection.shards() {
            let (index, report) = LearnedSetIndex::build(shard, cfg);
            shards.push(index);
            reports.push(report);
        }
        Ok((ShardedIndex { shards, target: cfg.target, spec: collection.spec() }, reports))
    }

    /// Global first/last position of `q` across shards.
    pub fn lookup(&self, collection: &ShardedCollection, q: &[u32]) -> Option<usize> {
        let positions = self.shards.iter().enumerate().filter_map(|(s, index)| {
            index
                .lookup(collection.shard(s), q)
                .map(|local| collection.globals(s)[local])
        });
        match self.target {
            PositionTarget::First => positions.min(),
            PositionTarget::Last => positions.max(),
        }
    }

    /// Which occurrence the index targets.
    pub fn target(&self) -> PositionTarget {
        self.target
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The partition spec the shards were trained on.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// The per-shard indexes, in shard order.
    pub fn shards(&self) -> &[LearnedSetIndex] {
        &self.shards
    }

    /// Total structure bytes across shards.
    pub fn size_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.size_bytes()).sum()
    }

    /// The serve precision shared by every shard.
    pub fn precision(&self) -> Precision {
        self.shards.first().map(|s| s.precision()).unwrap_or_default()
    }

    /// Selects the serve precision on every shard.
    pub fn set_precision(&mut self, precision: Precision) {
        for shard in &mut self.shards {
            shard.set_precision(precision);
        }
    }
}

/// One shard of a sharded index, bound to its shard collection and the
/// local → global position map: answers arrive in **global** coordinates,
/// so per-shard serving pools can aggregate them directly.
#[derive(Debug, Clone)]
pub struct ShardIndexStructure {
    /// The shard-local index bound to the shard's collection.
    pub structure: IndexStructure,
    /// Shard-local → global position map.
    pub globals: Arc<Vec<usize>>,
}

impl LearnedSetStructure for ShardIndexStructure {
    type Output = Option<usize>;
    const NAME: &'static str = "index";

    fn query(&self, q: &[u32]) -> QueryOutcome<Option<usize>> {
        self.structure.query(q).map(|v| v.map(|local| self.globals[local]))
    }

    fn query_batch(&self, queries: &[ElementSet]) -> Vec<QueryOutcome<Option<usize>>> {
        self.structure
            .query_batch(queries)
            .into_iter()
            .map(|o| o.map(|v| v.map(|local| self.globals[local])))
            .collect()
    }

    fn query_batch_parallel(
        &self,
        queries: &[ElementSet],
        threads: usize,
    ) -> Vec<QueryOutcome<Option<usize>>> {
        self.structure
            .query_batch_parallel(queries, threads)
            .into_iter()
            .map(|o| o.map(|v| v.map(|local| self.globals[local])))
            .collect()
    }
}

/// A [`ShardedIndex`] bound to its partitioned collection — the sharded
/// counterpart of [`IndexStructure`].
#[derive(Debug, Clone)]
pub struct ShardedIndexStructure {
    shards: Vec<ShardIndexStructure>,
    target: PositionTarget,
}

impl ShardedIndexStructure {
    /// Binds per-shard indexes to their shard collections and position maps.
    pub fn new(index: ShardedIndex, collection: &ShardedCollection) -> Self {
        assert_eq!(
            index.shards.len(),
            collection.num_shards(),
            "index shard count does not match the partition"
        );
        let target = index.target;
        let shards = index
            .shards
            .into_iter()
            .enumerate()
            .map(|(s, shard_index)| ShardIndexStructure {
                structure: IndexStructure {
                    index: shard_index,
                    collection: Arc::clone(collection.shard(s)),
                },
                globals: Arc::clone(collection.globals(s)),
            })
            .collect();
        ShardedIndexStructure { shards, target }
    }

    /// The per-shard bound structures, in shard order (for per-shard
    /// serving pools and rolling swaps).
    pub fn shard_structures(&self) -> &[ShardIndexStructure] {
        &self.shards
    }

    /// Which occurrence the index targets.
    pub fn target(&self) -> PositionTarget {
        self.target
    }
}

impl LearnedSetStructure for ShardedIndexStructure {
    type Output = Option<usize>;
    const NAME: &'static str = "index";

    fn query(&self, q: &[u32]) -> QueryOutcome<Option<usize>> {
        aggregate_index(self.target, self.shards.iter().map(|s| s.query(q)).collect())
    }

    fn query_batch(&self, queries: &[ElementSet]) -> Vec<QueryOutcome<Option<usize>>> {
        let per_shard = self.shards.iter().map(|s| s.query_batch(queries)).collect();
        aggregate_columns(per_shard, queries.len(), |parts| {
            aggregate_index(self.target, parts)
        })
    }

    fn query_batch_parallel(
        &self,
        queries: &[ElementSet],
        threads: usize,
    ) -> Vec<QueryOutcome<Option<usize>>> {
        let per_shard =
            self.shards.iter().map(|s| s.query_batch_parallel(queries, threads)).collect();
        aggregate_columns(per_shard, queries.len(), |parts| {
            aggregate_index(self.target, parts)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hybrid::GuidedConfig;
    use crate::model::DeepSetsConfig;
    use crate::shard::{ShardBy, ShardSpec};
    use setlearn_data::GeneratorConfig;

    fn quick_guided() -> GuidedConfig {
        GuidedConfig {
            warmup_epochs: 4,
            rounds: 1,
            epochs_per_round: 2,
            percentile: 0.9,
            batch_size: 64,
            learning_rate: 5e-3,
            seed: 1,
        }
    }

    fn sharded(n: usize) -> ShardedCollection {
        let c = GeneratorConfig::sd(120, 3).generate();
        ShardedCollection::partition(&c, ShardSpec::new(n, ShardBy::Hash)).unwrap()
    }

    #[test]
    fn sharded_cardinality_sums_shards() {
        let collection = sharded(3);
        let mut cfg = CardinalityConfig::new(DeepSetsConfig::lsm(collection.num_elements()));
        cfg.guided = quick_guided();
        cfg.max_subset_size = 2;
        let (model, reports) = ShardedCardinality::build(&collection, &cfg).unwrap();
        assert_eq!(reports.len(), 3);
        let q = &collection.shard(0).get(0)[..1];
        let direct: f64 = model.shards().iter().map(|m| m.estimate(q)).sum();
        assert_eq!(model.estimate(q), direct);
    }

    #[test]
    fn sharded_bloom_or_composes_no_false_negatives() {
        let whole = GeneratorConfig::sd(120, 3).generate();
        let collection =
            ShardedCollection::partition(&whole, ShardSpec::new(3, ShardBy::Hash)).unwrap();
        let mut cfg = BloomConfig::new(DeepSetsConfig::lsm(collection.num_elements()));
        cfg.epochs = 6;
        let workload =
            setlearn_data::workload::membership_queries(&whole, 150, 150, 2, cfg.seed);
        let (filter, _) = ShardedBloom::build(&collection, &workload, &cfg).unwrap();
        for (q, label) in &workload {
            if *label {
                assert!(filter.contains(q), "false negative on {q:?}");
            }
        }
    }

    #[test]
    fn sharded_index_finds_global_first_positions() {
        let c = GeneratorConfig::rw(150, 21).generate();
        let collection =
            ShardedCollection::partition(&c, ShardSpec::new(2, ShardBy::Hash)).unwrap();
        let mut model = DeepSetsConfig::lsm(c.num_elements());
        model.compression = crate::model::CompressionKind::None;
        let cfg = IndexConfig {
            model,
            guided: GuidedConfig {
                warmup_epochs: 25,
                rounds: 1,
                epochs_per_round: 15,
                percentile: 0.9,
                batch_size: 64,
                learning_rate: 5e-3,
                seed: 5,
            },
            max_subset_size: 2,
            range_length: 16.0,
            target: PositionTarget::First,
        };
        let (index, _) = ShardedIndex::build(&collection, &cfg).unwrap();
        let subsets = setlearn_data::SubsetIndex::build(&c, 2);
        for (s, info) in subsets.iter() {
            assert_eq!(
                index.lookup(&collection, s),
                Some(info.first_pos as usize),
                "subset {s:?}"
            );
        }
        // The bound trait surface agrees with the direct lookup path.
        let structure = ShardedIndexStructure::new(index, &collection);
        let queries: Vec<ElementSet> = subsets.iter().take(40).map(|(s, _)| s.clone()).collect();
        let outcomes = structure.query_batch(&queries);
        assert_eq!(outcomes, structure.query_batch_parallel(&queries, 3));
        for (q, outcome) in queries.iter().zip(outcomes) {
            assert_eq!(outcome.value, structure.query(q).value);
            assert_eq!(outcome.value, subsets.get(q).map(|i| i.first_pos as usize));
        }
    }
}
