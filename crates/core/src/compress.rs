//! Per-element lossless compression (paper §5, Algorithm 1).
//!
//! Every element id is decomposed into `ns` sub-elements by repeated
//! division: with divisor `sv_d`, an element `x` becomes
//! `(r_1, r_2, ..., r_{ns-1}, q)` where each `r_i` is a remainder and `q`
//! the final quotient. Instead of one `vocab × dim` embedding matrix, the
//! model then keeps `ns` matrices whose vocabularies are bounded by `sv_d`
//! (and the final quotient bound) — e.g. 1,000,000 ids at `ns = 2` shrink
//! from one `1000000 × d` table to `1000 × d` + `1000 × d`.

use serde::{Deserialize, Serialize};

/// A fixed compression scheme: how ids are split and the sub-vocabularies.
///
/// ```
/// use setlearn::compress::CompressionSpec;
///
/// // Figure 4: max id 100, ns = 2 -> divisor 10.
/// let spec = CompressionSpec::optimal(100, 2);
/// assert_eq!(spec.compress(91), vec![1, 9]); // (remainder, quotient)
/// assert_eq!(spec.decompress(&[1, 9]), 91);  // lossless
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompressionSpec {
    /// Number of sub-elements each id is split into (`ns >= 2`).
    pub ns: usize,
    /// The divisor `sv_d`.
    pub divisor: u32,
    /// Largest representable id (`max_v_id`).
    pub max_id: u32,
}

impl CompressionSpec {
    /// The paper's optimal setting: `sv_d = ceil(ns-th root of max_id)`,
    /// giving maximal compression for the chosen `ns`.
    ///
    /// # Panics
    /// If `ns < 2` or `max_id == 0`.
    pub fn optimal(max_id: u32, ns: usize) -> Self {
        assert!(ns >= 2, "compression needs at least 2 sub-elements");
        assert!(max_id > 0, "need a non-trivial id space");
        let divisor = ((max_id as f64).powf(1.0 / ns as f64).ceil() as u32).max(2);
        CompressionSpec { ns, divisor, max_id }
    }

    /// A tunable divisor between maximal compression and none (Table 6).
    /// Any `divisor >= 2` stays lossless: larger divisors grow the remainder
    /// tables and shrink the quotient table; the optimal divisor balances
    /// them for minimum total size.
    ///
    /// # Panics
    /// If `ns < 2`, `max_id == 0`, or `divisor < 2`.
    pub fn with_divisor(max_id: u32, ns: usize, divisor: u32) -> Self {
        assert!(ns >= 2 && max_id > 0, "invalid compression parameters");
        assert!(divisor >= 2, "divisor must be at least 2");
        CompressionSpec { ns, divisor, max_id }
    }

    /// Compresses an element into its `ns` sub-elements
    /// (Algorithm 1, `compress_elem_ns`): `[r_1, ..., r_{ns-1}, q]`.
    ///
    /// # Panics
    /// If `elem > max_id`.
    pub fn compress(&self, elem: u32) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.ns);
        self.compress_into(elem, &mut out);
        out
    }

    /// Allocation-free variant of [`CompressionSpec::compress`].
    pub fn compress_into(&self, elem: u32, out: &mut Vec<u32>) {
        assert!(elem <= self.max_id, "element {elem} exceeds max_id {}", self.max_id);
        out.clear();
        let mut current = elem;
        for _ in 0..self.ns - 1 {
            out.push(current % self.divisor);
            current /= self.divisor;
        }
        out.push(current);
    }

    /// Inverse of [`CompressionSpec::compress`] — the compression is
    /// lossless.
    pub fn decompress(&self, subs: &[u32]) -> u32 {
        assert_eq!(subs.len(), self.ns, "wrong sub-element count");
        let mut v = subs[self.ns - 1];
        for i in (0..self.ns - 1).rev() {
            v = v * self.divisor + subs[i];
        }
        v
    }

    /// Vocabulary bound of sub-element `i` (embedding-table rows): remainders
    /// are `< divisor`, the final quotient is `<= max_id / divisor^(ns-1)`.
    pub fn sub_vocab(&self, i: usize) -> u32 {
        assert!(i < self.ns, "sub-element index out of range");
        if i + 1 < self.ns {
            self.divisor
        } else {
            let mut q = self.max_id as u64;
            for _ in 0..self.ns - 1 {
                q /= self.divisor as u64;
            }
            (q + 1) as u32
        }
    }

    /// Total one-hot input dimensionality after compression — the Figure 8
    /// quantity (`Σ_i sub_vocab(i)` vs the uncompressed `max_id + 1`).
    pub fn input_dims(&self) -> u64 {
        (0..self.ns).map(|i| self.sub_vocab(i) as u64).sum()
    }

    /// Input dimensionality without compression.
    pub fn uncompressed_input_dims(max_id: u32) -> u64 {
        max_id as u64 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_example_figure_4() {
        // max_v_id = 100, ns = 2 -> sv_d = 10; {91, 12, 23} compresses to
        // (9,1),(1,2),(2,3) as quotient/remainder pairs.
        let spec = CompressionSpec::optimal(100, 2);
        assert_eq!(spec.divisor, 10);
        // Our layout is [remainder, quotient].
        assert_eq!(spec.compress(91), vec![1, 9]);
        assert_eq!(spec.compress(12), vec![2, 1]);
        assert_eq!(spec.compress(23), vec![3, 2]);
    }

    #[test]
    fn paper_example_million_ids() {
        // 1,000,000 distinct elements, ns = 2 -> tables of ~1000 and ~1001.
        let spec = CompressionSpec::optimal(999_999, 2);
        assert_eq!(spec.divisor, 1000);
        assert_eq!(spec.sub_vocab(0), 1000);
        assert_eq!(spec.sub_vocab(1), 1000);
        assert_eq!(spec.input_dims(), 2000);
        assert_eq!(CompressionSpec::uncompressed_input_dims(999_999), 1_000_000);
    }

    #[test]
    fn ns3_roundtrip_and_vocab() {
        let spec = CompressionSpec::optimal(100_000, 3);
        for e in [0u32, 1, 47, 99_999, 100_000] {
            let subs = spec.compress(e);
            assert_eq!(subs.len(), 3);
            assert_eq!(spec.decompress(&subs), e);
            for (i, &s) in subs.iter().enumerate() {
                assert!(s < spec.sub_vocab(i), "sub {s} >= vocab {}", spec.sub_vocab(i));
            }
        }
    }

    #[test]
    fn tunable_divisor_reduces_compression() {
        let tight = CompressionSpec::optimal(1_000_000, 2);
        let loose = CompressionSpec::with_divisor(1_000_000, 2, 10_000);
        assert!(loose.input_dims() > tight.input_dims());
    }

    #[test]
    fn under_optimal_divisor_is_still_lossless() {
        // A divisor below the optimal root grows the quotient table but
        // remains invertible.
        let spec = CompressionSpec::with_divisor(1_000_000, 2, 100);
        assert_eq!(spec.sub_vocab(1), 10_001);
        for e in [0u32, 99, 123_456, 1_000_000] {
            assert_eq!(spec.decompress(&spec.compress(e)), e);
        }
    }

    #[test]
    #[should_panic(expected = "divisor must be at least 2")]
    fn divisor_one_rejected() {
        let _ = CompressionSpec::with_divisor(100, 2, 1);
    }

    #[test]
    #[should_panic(expected = "exceeds max_id")]
    fn out_of_range_element_rejected() {
        let spec = CompressionSpec::optimal(100, 2);
        let _ = spec.compress(101);
    }

    #[test]
    fn input_dims_shrink_with_ns() {
        // Figure 8: increasing ns drastically reduces input dims.
        let max_id = 1_000_000u32;
        let dims: Vec<u64> = (2..=5)
            .map(|ns| CompressionSpec::optimal(max_id, ns).input_dims())
            .collect();
        for w in dims.windows(2) {
            assert!(w[1] <= w[0], "dims should be non-increasing: {dims:?}");
        }
        assert!(dims[0] < CompressionSpec::uncompressed_input_dims(max_id));
    }

    proptest! {
        #[test]
        fn roundtrip_is_lossless(max_id in 1u32..2_000_000, ns in 2usize..5, elem_frac in 0.0f64..1.0) {
            let elem = (max_id as f64 * elem_frac) as u32;
            let spec = CompressionSpec::optimal(max_id, ns);
            let subs = spec.compress(elem);
            prop_assert_eq!(spec.decompress(&subs), elem);
            for (i, &s) in subs.iter().enumerate() {
                prop_assert!(s < spec.sub_vocab(i));
            }
        }

        #[test]
        fn distinct_elements_have_distinct_codes(max_id in 10u32..100_000, ns in 2usize..4) {
            let spec = CompressionSpec::optimal(max_id, ns);
            let a = spec.compress(max_id / 3);
            let b = spec.compress(max_id / 3 + 1);
            prop_assert_ne!(a, b);
        }
    }
}
