//! Client-facing wire types for the unified query API.
//!
//! A remote caller speaks to the serving runtime in terms of three types
//! that live here, next to [`crate::tasks::LearnedSetStructure`], so client
//! and server agree on them without either linking the serving crate:
//!
//! * [`WireTask`] — the task discriminant with stable one-byte codes.
//! * [`QueryRequest`] — one query set as it crosses the wire.
//! * [`QueryResponse`] — the transportable counterpart of
//!   [`crate::tasks::QueryOutcome`]: the task's value plus the shared
//!   degradation flags (guard fallback, index bound miss).
//!
//! Encoding is hand-rolled little-endian (like the `SLW2` weight format in
//! [`crate::persist`]) rather than JSON: the serving hot path decodes one of
//! these per query, and the fixed layout keeps that free of allocation and
//! parsing ambiguity. Floats travel as raw IEEE-754 bits so a value decoded
//! on the client is **bit-identical** to the server's [`QueryOutcome`] —
//! the loopback equivalence tests rely on that.
//!
//! Framing (magic, version, request ids, CRC) is deliberately *not* here:
//! that is transport concern and lives in `setlearn-serve::proto`. These
//! types only define how one request/response body is laid out.

use crate::hybrid::FallbackReason;
use crate::tasks::QueryOutcome;
use std::fmt;

/// Decoding failure for a wire value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireDecodeError {
    /// The buffer ended before the value was complete.
    Truncated,
    /// A tag or enum byte had no defined meaning.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A declared length exceeds the remaining buffer or a sanity bound.
    BadLength {
        /// What was being decoded.
        what: &'static str,
        /// The declared length.
        len: usize,
    },
}

impl fmt::Display for WireDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireDecodeError::Truncated => write!(f, "wire value truncated"),
            WireDecodeError::BadTag { what, tag } => {
                write!(f, "bad {what} tag 0x{tag:02x}")
            }
            WireDecodeError::BadLength { what, len } => {
                write!(f, "implausible {what} length {len}")
            }
        }
    }
}

impl std::error::Error for WireDecodeError {}

// ---------------------------------------------------------------------------
// Little-endian primitives shared by every wire type.
// ---------------------------------------------------------------------------

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn take_u8(input: &mut &[u8]) -> Result<u8, WireDecodeError> {
    let (&b, rest) = input.split_first().ok_or(WireDecodeError::Truncated)?;
    *input = rest;
    Ok(b)
}

pub(crate) fn take_u32(input: &mut &[u8]) -> Result<u32, WireDecodeError> {
    if input.len() < 4 {
        return Err(WireDecodeError::Truncated);
    }
    let (head, rest) = input.split_at(4);
    *input = rest;
    Ok(u32::from_le_bytes(head.try_into().expect("split_at(4)")))
}

pub(crate) fn take_u64(input: &mut &[u8]) -> Result<u64, WireDecodeError> {
    if input.len() < 8 {
        return Err(WireDecodeError::Truncated);
    }
    let (head, rest) = input.split_at(8);
    *input = rest;
    Ok(u64::from_le_bytes(head.try_into().expect("split_at(8)")))
}

// ---------------------------------------------------------------------------
// Collection ids (SLP1 v2 addressing)
// ---------------------------------------------------------------------------

/// Longest collection id accepted on the wire. Ids are operator-chosen
/// names, not user data; a one-byte length prefix is plenty and keeps the
/// v2 frame overhead fixed and tiny.
pub const MAX_COLLECTION_ID_LEN: usize = 64;

/// Whether `name` is a valid collection id: non-empty, at most
/// [`MAX_COLLECTION_ID_LEN`] bytes, drawn from `[A-Za-z0-9_-]`. The
/// character set is restricted so a collection id can double as a
/// directory name under the collections root and as a metric label value
/// without escaping.
pub fn valid_collection_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_COLLECTION_ID_LEN
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

/// Appends a length-prefixed collection id to `out`: `u8` byte length,
/// then the id bytes. An empty id (length 0) is legal on the wire and
/// means "the server's default collection".
///
/// # Panics
/// If `name` is non-empty and not a [`valid_collection_name`] — encoding
/// an invalid id is a caller bug, not a wire condition.
pub fn encode_collection_id(out: &mut Vec<u8>, name: &str) {
    assert!(
        name.is_empty() || valid_collection_name(name),
        "invalid collection id {name:?}"
    );
    out.push(name.len() as u8);
    out.extend_from_slice(name.as_bytes());
}

/// Decodes a length-prefixed collection id from the front of `input`,
/// advancing it. Returns `None` for a zero-length id (default collection).
/// Rejects over-long declared lengths, truncation, and ids containing
/// bytes outside the valid name alphabet.
pub fn decode_collection_id(input: &mut &[u8]) -> Result<Option<String>, WireDecodeError> {
    let len = take_u8(input)? as usize;
    if len == 0 {
        return Ok(None);
    }
    if len > MAX_COLLECTION_ID_LEN {
        return Err(WireDecodeError::BadLength { what: "collection id", len });
    }
    if input.len() < len {
        return Err(WireDecodeError::Truncated);
    }
    let (head, rest) = input.split_at(len);
    *input = rest;
    let name = std::str::from_utf8(head)
        .map_err(|_| WireDecodeError::BadTag { what: "collection id", tag: head[0] })?;
    if !valid_collection_name(name) {
        return Err(WireDecodeError::BadTag {
            what: "collection id",
            tag: name.bytes().find(|b| !b.is_ascii_alphanumeric() && *b != b'_' && *b != b'-').unwrap_or(0),
        });
    }
    Ok(Some(name.to_string()))
}

// ---------------------------------------------------------------------------
// WireTask
// ---------------------------------------------------------------------------

/// The task a query addresses, with a stable one-byte wire code.
///
/// Codes are part of the `SLP1` protocol contract: they may gain variants
/// but existing codes never change meaning (see the protocol versioning
/// story in `DESIGN.md` §11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireTask {
    /// Cardinality estimation (answer: `f64`).
    Cardinality,
    /// Set-index position lookup (answer: `Option<u64>`).
    Index,
    /// Approximate membership (answer: `bool`).
    Bloom,
}

impl WireTask {
    /// Every task, in wire-code order.
    pub const ALL: [WireTask; 3] = [WireTask::Cardinality, WireTask::Index, WireTask::Bloom];

    /// The stable wire code.
    pub fn code(self) -> u8 {
        match self {
            WireTask::Cardinality => 0,
            WireTask::Index => 1,
            WireTask::Bloom => 2,
        }
    }

    /// Decodes a wire code.
    pub fn from_code(code: u8) -> Option<WireTask> {
        match code {
            0 => Some(WireTask::Cardinality),
            1 => Some(WireTask::Index),
            2 => Some(WireTask::Bloom),
            _ => None,
        }
    }

    /// The task label used across the CLI and serve metrics.
    pub fn label(self) -> &'static str {
        match self {
            WireTask::Cardinality => "cardinality",
            WireTask::Index => "index",
            WireTask::Bloom => "bloom",
        }
    }
}

impl fmt::Display for WireTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for WireTask {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "cardinality" => Ok(WireTask::Cardinality),
            "index" => Ok(WireTask::Index),
            "bloom" => Ok(WireTask::Bloom),
            other => Err(format!("unknown task '{other}' (cardinality|index|bloom)")),
        }
    }
}

// ---------------------------------------------------------------------------
// FallbackReason codes
// ---------------------------------------------------------------------------

/// Wire code for an optional [`FallbackReason`] (0 = no fallback).
pub fn fallback_code(reason: Option<FallbackReason>) -> u8 {
    match reason {
        None => 0,
        Some(FallbackReason::NonFinite) => 1,
        Some(FallbackReason::OutOfBounds) => 2,
    }
}

/// Decodes a fallback code written by [`fallback_code`].
pub fn fallback_from_code(code: u8) -> Result<Option<FallbackReason>, WireDecodeError> {
    match code {
        0 => Ok(None),
        1 => Ok(Some(FallbackReason::NonFinite)),
        2 => Ok(Some(FallbackReason::OutOfBounds)),
        tag => Err(WireDecodeError::BadTag { what: "fallback", tag }),
    }
}

// ---------------------------------------------------------------------------
// QueryRequest
// ---------------------------------------------------------------------------

/// A query's largest sane element count; anything above this in a decoded
/// request is treated as corruption rather than allocated for.
pub const MAX_QUERY_ELEMENTS: usize = 1 << 20;

/// One query as it crosses the wire: raw element ids.
///
/// Layout: `u32` element count, then that many `u32` ids, little-endian.
/// Ids need not arrive canonical — the server normalizes (sort + dedup)
/// before querying, exactly like the CLI does for `--query` lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryRequest {
    /// The element ids of the query set (any order, duplicates allowed).
    pub elements: Vec<u32>,
}

impl QueryRequest {
    /// Wraps raw ids.
    pub fn new(elements: Vec<u32>) -> Self {
        QueryRequest { elements }
    }

    /// Canonicalizes into the [`setlearn_data::ElementSet`] every structure
    /// queries over.
    pub fn canonicalize(self) -> setlearn_data::ElementSet {
        setlearn_data::normalize(self.elements)
    }

    /// Appends the wire encoding to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.elements.len() as u32);
        for &id in &self.elements {
            put_u32(out, id);
        }
    }

    /// Decodes one request from the front of `input`, advancing it.
    pub fn decode(input: &mut &[u8]) -> Result<QueryRequest, WireDecodeError> {
        let len = take_u32(input)? as usize;
        if len > MAX_QUERY_ELEMENTS {
            return Err(WireDecodeError::BadLength { what: "query", len });
        }
        if input.len() < len * 4 {
            return Err(WireDecodeError::Truncated);
        }
        let mut elements = Vec::with_capacity(len);
        for _ in 0..len {
            elements.push(take_u32(input)?);
        }
        Ok(QueryRequest { elements })
    }
}

impl From<&[u32]> for QueryRequest {
    fn from(ids: &[u32]) -> Self {
        QueryRequest { elements: ids.to_vec() }
    }
}

// ---------------------------------------------------------------------------
// QueryValue / QueryResponse
// ---------------------------------------------------------------------------

/// The task's answer in transportable form. The variant tag doubles as the
/// task code, so a response also identifies which task produced it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryValue {
    /// A cardinality estimate (IEEE-754 bits on the wire).
    Cardinality(f64),
    /// An index position, or `None` when the subset was not found.
    Position(Option<u64>),
    /// A membership verdict.
    Membership(bool),
}

impl QueryValue {
    /// Which task this value answers.
    pub fn task(self) -> WireTask {
        match self {
            QueryValue::Cardinality(_) => WireTask::Cardinality,
            QueryValue::Position(_) => WireTask::Index,
            QueryValue::Membership(_) => WireTask::Bloom,
        }
    }
}

/// The serializable counterpart of [`QueryOutcome`]: what the serving
/// runtime sends back for one query, preserving the degradation flags.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryResponse {
    /// The task's answer.
    pub value: QueryValue,
    /// Why the model's raw output was rejected, if it was (serve guard).
    pub fallback: Option<FallbackReason>,
    /// Index task only: the scan window was exhausted without a hit.
    pub bound_miss: bool,
}

impl QueryResponse {
    /// Which task this response answers.
    pub fn task(&self) -> WireTask {
        self.value.task()
    }

    /// Whether any degradation flag is set.
    pub fn degraded(&self) -> bool {
        self.fallback.is_some() || self.bound_miss
    }

    /// Appends the wire encoding to `out`: task code, value bytes, fallback
    /// code, bound-miss flag.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.task().code());
        match self.value {
            QueryValue::Cardinality(v) => put_u64(out, v.to_bits()),
            QueryValue::Position(p) => {
                out.push(p.is_some() as u8);
                put_u64(out, p.unwrap_or(0));
            }
            QueryValue::Membership(m) => out.push(m as u8),
        }
        out.push(fallback_code(self.fallback));
        out.push(self.bound_miss as u8);
    }

    /// Decodes one response from the front of `input`, advancing it.
    pub fn decode(input: &mut &[u8]) -> Result<QueryResponse, WireDecodeError> {
        let tag = take_u8(input)?;
        let task = WireTask::from_code(tag)
            .ok_or(WireDecodeError::BadTag { what: "task", tag })?;
        let value = match task {
            WireTask::Cardinality => QueryValue::Cardinality(f64::from_bits(take_u64(input)?)),
            WireTask::Index => {
                let present = match take_u8(input)? {
                    0 => false,
                    1 => true,
                    tag => return Err(WireDecodeError::BadTag { what: "position", tag }),
                };
                let pos = take_u64(input)?;
                QueryValue::Position(present.then_some(pos))
            }
            WireTask::Bloom => match take_u8(input)? {
                0 => QueryValue::Membership(false),
                1 => QueryValue::Membership(true),
                tag => return Err(WireDecodeError::BadTag { what: "membership", tag }),
            },
        };
        let fallback = fallback_from_code(take_u8(input)?)?;
        let bound_miss = match take_u8(input)? {
            0 => false,
            1 => true,
            tag => return Err(WireDecodeError::BadTag { what: "bound_miss", tag }),
        };
        Ok(QueryResponse { value, fallback, bound_miss })
    }
}

impl From<QueryOutcome<f64>> for QueryResponse {
    fn from(o: QueryOutcome<f64>) -> Self {
        QueryResponse {
            value: QueryValue::Cardinality(o.value),
            fallback: o.fallback,
            bound_miss: o.bound_miss,
        }
    }
}

impl From<QueryOutcome<Option<usize>>> for QueryResponse {
    fn from(o: QueryOutcome<Option<usize>>) -> Self {
        QueryResponse {
            value: QueryValue::Position(o.value.map(|p| p as u64)),
            fallback: o.fallback,
            bound_miss: o.bound_miss,
        }
    }
}

impl From<QueryOutcome<bool>> for QueryResponse {
    fn from(o: QueryOutcome<bool>) -> Self {
        QueryResponse {
            value: QueryValue::Membership(o.value),
            fallback: o.fallback,
            bound_miss: o.bound_miss,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_response(r: QueryResponse) {
        let mut buf = Vec::new();
        r.encode(&mut buf);
        let mut slice = buf.as_slice();
        let back = QueryResponse::decode(&mut slice).expect("decodes");
        assert_eq!(back, r);
        assert!(slice.is_empty(), "decode consumed everything");
    }

    #[test]
    fn task_codes_are_stable_and_invertible() {
        for task in WireTask::ALL {
            assert_eq!(WireTask::from_code(task.code()), Some(task));
            assert_eq!(task.label().parse::<WireTask>().unwrap(), task);
        }
        assert_eq!(WireTask::Cardinality.code(), 0);
        assert_eq!(WireTask::Index.code(), 1);
        assert_eq!(WireTask::Bloom.code(), 2);
        assert_eq!(WireTask::from_code(3), None);
    }

    #[test]
    fn requests_roundtrip_and_canonicalize() {
        let req = QueryRequest::new(vec![5, 1, 5, 3]);
        let mut buf = Vec::new();
        req.encode(&mut buf);
        let mut slice = buf.as_slice();
        let back = QueryRequest::decode(&mut slice).unwrap();
        assert_eq!(back, req);
        assert!(slice.is_empty());
        assert_eq!(back.canonicalize().as_ref(), &[1, 3, 5]);
    }

    #[test]
    fn responses_roundtrip_bit_exactly() {
        // NaN payload bits survive the trip (value compared via to_bits).
        let weird = f64::from_bits(0x7ff8_dead_beef_0001);
        let mut buf = Vec::new();
        QueryResponse::from(QueryOutcome::clean(weird)).encode(&mut buf);
        let got = QueryResponse::decode(&mut buf.as_slice()).unwrap();
        match got.value {
            QueryValue::Cardinality(v) => assert_eq!(v.to_bits(), weird.to_bits()),
            other => panic!("wrong variant {other:?}"),
        }

        roundtrip_response(QueryResponse::from(QueryOutcome::clean(42.5f64)));
        roundtrip_response(QueryResponse::from(QueryOutcome {
            value: 0.0f64,
            fallback: Some(FallbackReason::NonFinite),
            bound_miss: false,
        }));
        roundtrip_response(QueryResponse::from(QueryOutcome::clean(Some(7usize))));
        roundtrip_response(QueryResponse::from(QueryOutcome {
            value: None::<usize>,
            fallback: Some(FallbackReason::OutOfBounds),
            bound_miss: true,
        }));
        roundtrip_response(QueryResponse::from(QueryOutcome::clean(true)));
        roundtrip_response(QueryResponse::from(QueryOutcome::clean(false)));
    }

    #[test]
    fn collection_ids_roundtrip_and_reject_garbage() {
        for name in ["t", "tenant-a", "a_b-C9", &"x".repeat(MAX_COLLECTION_ID_LEN)] {
            assert!(valid_collection_name(name), "{name}");
            let mut buf = Vec::new();
            encode_collection_id(&mut buf, name);
            let mut slice = buf.as_slice();
            assert_eq!(decode_collection_id(&mut slice).unwrap().as_deref(), Some(name));
            assert!(slice.is_empty());
        }
        // Empty id = default collection.
        let mut buf = Vec::new();
        encode_collection_id(&mut buf, "");
        assert_eq!(buf, vec![0]);
        assert_eq!(decode_collection_id(&mut buf.as_slice()).unwrap(), None);
        // Invalid names are rejected both at validation and decode time.
        for bad in ["", "has space", "dot.dot", "sla/sh", &"x".repeat(65)] {
            assert!(!valid_collection_name(bad), "{bad:?}");
        }
        let mut slice: &[u8] = &[3, b'a', b' ', b'b'];
        assert!(decode_collection_id(&mut slice).is_err());
        // Over-long declared length and truncation error out cleanly.
        let mut slice: &[u8] = &[65];
        assert!(matches!(
            decode_collection_id(&mut slice),
            Err(WireDecodeError::BadLength { .. })
        ));
        let mut slice: &[u8] = &[5, b'a', b'b'];
        assert!(matches!(
            decode_collection_id(&mut slice),
            Err(WireDecodeError::Truncated)
        ));
        // Non-UTF-8 id bytes are a tag error, not a panic.
        let mut slice: &[u8] = &[2, 0xFF, 0xFE];
        assert!(decode_collection_id(&mut slice).is_err());
    }

    #[test]
    fn truncated_and_garbage_inputs_error_without_panicking() {
        let mut buf = Vec::new();
        QueryResponse::from(QueryOutcome::clean(1.5f64)).encode(&mut buf);
        for cut in 0..buf.len() {
            let mut slice = &buf[..cut];
            assert!(QueryResponse::decode(&mut slice).is_err(), "cut at {cut}");
        }
        // An unknown task tag is a BadTag, not a panic.
        let mut slice: &[u8] = &[9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0];
        assert!(matches!(
            QueryResponse::decode(&mut slice),
            Err(WireDecodeError::BadTag { what: "task", .. })
        ));
        // An absurd query length is rejected before allocating.
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        assert!(matches!(
            QueryRequest::decode(&mut buf.as_slice()),
            Err(WireDecodeError::BadLength { .. })
        ));
    }
}
