//! Append-only, segment-based write-ahead log for mutable collections.
//!
//! The WAL makes `insert`/`delete` durable before they are acknowledged:
//! every record is appended to the active segment file and fsync'd before
//! [`Wal::append`] returns, so a `kill -9` at any point loses no
//! acknowledged write. Recovery replays surviving segments against the last
//! checkpoint; a torn tail (partial append, bit flip, zero-length segment)
//! is truncated at the first bad record — with a `wal_truncated_tail`
//! telemetry event — instead of refusing to start.
//!
//! ## Segment format (little-endian)
//!
//! ```text
//! magic   "SLG1"   4 bytes   segment identity
//! version u8       1 byte    format revision (currently 1)
//! crc32   u32      4 bytes   CRC-32 (IEEE) over the 8 header bytes below
//! base_seq u64     8 bytes   global sequence of the first record
//! records…
//! ```
//!
//! Each record is length-prefixed and individually checksummed, reusing
//! [`crate::persist::crc32`] (the `SLW2` checksum — no second CRC
//! implementation):
//!
//! ```text
//! len     u32      payload bytes
//! crc32   u32      CRC-32 over the payload
//! payload          op u8 (0 insert / 1 delete), count u32, count × u32 ids
//! ```
//!
//! ## Manifest
//!
//! `MANIFEST` in the WAL directory records `applied_seq`: records with
//! sequence below it are folded into the persisted checkpoint and are
//! skipped on replay. It is written through [`crate::persist::write_atomic`]
//! (tmp + fsync + rename) with an embedded CRC, so readers observe either
//! the old generation or the new one, never a torn file:
//!
//! ```text
//! magic "SLM1"  4 bytes · crc32 u32 over the payload · applied_seq u64
//! ```
//!
//! ## Recovery ordering
//!
//! Segments are scanned in id order. Scanning stops at the first bad byte —
//! a corrupt header, a record whose CRC or framing fails, or a gap in the
//! sequence numbering — and everything from that point on (the rest of the
//! segment *and* all later segments) is discarded: records after a
//! corruption cannot be trusted to be the records that were acknowledged.
//! The torn segment is truncated in place to its last valid record, later
//! segments are deleted, and the damage is reported through telemetry —
//! never a panic, never a startup failure.

use crate::persist::{crc32, write_atomic, PersistError};
use crate::telemetry::wal_tele;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

const SEGMENT_MAGIC: &[u8; 4] = b"SLG1";
const SEGMENT_VERSION: u8 = 1;
/// Bytes before the first record of a segment.
pub const SEGMENT_HEADER_LEN: usize = 17;
const MANIFEST_MAGIC: &[u8; 4] = b"SLM1";
const MANIFEST_FILE: &str = "MANIFEST";
/// Cap on a single record's payload, so a garbage length prefix in a
/// corrupted segment cannot drive an unbounded allocation.
pub const MAX_RECORD_BYTES: usize = 1 << 24;

/// WAL failure. `Corrupt` is reserved for the *manifest* (which is written
/// atomically and should never be damaged short of disk corruption);
/// segment damage is handled by truncation, not errors.
#[derive(Debug)]
pub enum WalError {
    /// Filesystem failure.
    Io(io::Error),
    /// The manifest exists but fails its integrity checks.
    Corrupt(String),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::Corrupt(m) => write!(f, "wal corrupt: {m}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

impl From<PersistError> for WalError {
    fn from(e: PersistError) -> Self {
        match e {
            PersistError::Io(e) => WalError::Io(e),
            other => WalError::Corrupt(other.to_string()),
        }
    }
}

/// One logged mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// Insert a set (raw ids; canonicalized when applied).
    Insert(Vec<u32>),
    /// Delete one occurrence of a set.
    Delete(Vec<u32>),
}

impl WalOp {
    /// The op's element ids as logged.
    pub fn elements(&self) -> &[u32] {
        match self {
            WalOp::Insert(ids) | WalOp::Delete(ids) => ids,
        }
    }

    /// Whether this op is a delete.
    pub fn is_delete(&self) -> bool {
        matches!(self, WalOp::Delete(_))
    }

    fn encode(&self) -> Vec<u8> {
        let (tag, ids) = match self {
            WalOp::Insert(ids) => (0u8, ids),
            WalOp::Delete(ids) => (1u8, ids),
        };
        let mut out = Vec::with_capacity(5 + ids.len() * 4);
        out.push(tag);
        out.extend_from_slice(&(ids.len() as u32).to_le_bytes());
        for &id in ids {
            out.extend_from_slice(&id.to_le_bytes());
        }
        out
    }

    fn decode(payload: &[u8]) -> Option<WalOp> {
        if payload.len() < 5 {
            return None;
        }
        let tag = payload[0];
        let count = u32::from_le_bytes(payload[1..5].try_into().ok()?) as usize;
        let body = &payload[5..];
        if body.len() != count.checked_mul(4)? {
            return None;
        }
        let ids: Vec<u32> = body
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("chunks_exact(4)")))
            .collect();
        match tag {
            0 => Some(WalOp::Insert(ids)),
            1 => Some(WalOp::Delete(ids)),
            _ => None,
        }
    }
}

/// One replayed record: the op plus its global sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Global, gapless sequence number (the commit order).
    pub seq: u64,
    /// The logged mutation.
    pub op: WalOp,
}

/// WAL tuning.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Rotate to a fresh segment once the active one exceeds this many
    /// bytes (checked before each append; a segment always holds at least
    /// one record).
    pub segment_bytes: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig { segment_bytes: 1 << 20 }
    }
}

/// What [`Wal::open`] recovered.
#[derive(Debug)]
pub struct WalRecovery {
    /// The opened log, positioned on a fresh active segment.
    pub wal: Wal,
    /// Surviving records with `seq >= applied_seq`, in commit order — the
    /// delta that must be replayed against the checkpoint.
    pub records: Vec<WalRecord>,
    /// Sequence watermark below which records are already checkpointed.
    pub applied_seq: u64,
    /// Whether any tail damage was found (and truncated away).
    pub truncated: bool,
}

#[derive(Debug)]
struct SealedSegment {
    id: u64,
    /// Sequence one past the segment's last record.
    end_seq: u64,
}

/// The append-only log: an active segment receiving fsync'd appends, plus
/// sealed (rotated or recovered) segments awaiting compaction.
pub struct Wal {
    dir: PathBuf,
    config: WalConfig,
    active: File,
    active_id: u64,
    active_len: u64,
    active_records: u64,
    next_seq: u64,
    applied_seq: u64,
    sealed: Vec<SealedSegment>,
}

impl fmt::Debug for Wal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.dir)
            .field("next_seq", &self.next_seq)
            .field("applied_seq", &self.applied_seq)
            .field("sealed", &self.sealed.len())
            .finish_non_exhaustive()
    }
}

fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id:012}.wal"))
}

fn segment_id(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    name.strip_prefix("seg-")?.strip_suffix(".wal")?.parse().ok()
}

/// Fsyncs a directory so entry creations/removals survive a crash.
fn fsync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

fn encode_manifest(applied_seq: u64) -> Vec<u8> {
    let payload = applied_seq.to_le_bytes();
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(MANIFEST_MAGIC);
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

fn decode_manifest(bytes: &[u8]) -> Result<u64, WalError> {
    if bytes.len() != 16 || &bytes[0..4] != MANIFEST_MAGIC {
        return Err(WalError::Corrupt(format!(
            "manifest is {} bytes with magic {:?} (want 16 bytes, \"SLM1\")",
            bytes.len(),
            String::from_utf8_lossy(&bytes[..bytes.len().min(4)])
        )));
    }
    let declared = u32::from_le_bytes(bytes[4..8].try_into().expect("fixed slice"));
    let payload = &bytes[8..16];
    let actual = crc32(payload);
    if declared != actual {
        return Err(WalError::Corrupt(format!(
            "manifest checksum mismatch: stored {declared:#010x}, computed {actual:#010x}"
        )));
    }
    Ok(u64::from_le_bytes(payload.try_into().expect("fixed slice")))
}

/// Result of scanning one segment file's bytes.
struct SegmentScan {
    base_seq: u64,
    ops: Vec<WalOp>,
    /// Byte length of the valid prefix (header + intact records).
    valid_len: u64,
    /// Why record scanning stopped early, if it did.
    torn: Option<String>,
}

/// Scans a segment. `Err` means the header itself is unusable (the file
/// carries nothing recoverable); a damaged record tail comes back as
/// `torn: Some(reason)` with every record before the damage intact.
fn scan_segment(bytes: &[u8]) -> Result<SegmentScan, String> {
    if bytes.len() < SEGMENT_HEADER_LEN {
        return Err(format!("header truncated at {} bytes", bytes.len()));
    }
    if &bytes[0..4] != SEGMENT_MAGIC {
        return Err("bad segment magic".to_string());
    }
    if bytes[4] != SEGMENT_VERSION {
        return Err(format!("unsupported segment version {}", bytes[4]));
    }
    let declared = u32::from_le_bytes(bytes[5..9].try_into().expect("fixed slice"));
    let meta = &bytes[9..17];
    if crc32(meta) != declared {
        return Err("segment header checksum mismatch".to_string());
    }
    let base_seq = u64::from_le_bytes(meta.try_into().expect("fixed slice"));
    let mut ops = Vec::new();
    let mut pos = SEGMENT_HEADER_LEN;
    let mut torn = None;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        if rest.len() < 8 {
            torn = Some(format!("partial record header at byte {pos}"));
            break;
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("fixed slice")) as usize;
        let declared = u32::from_le_bytes(rest[4..8].try_into().expect("fixed slice"));
        if len > MAX_RECORD_BYTES || rest.len() - 8 < len {
            torn = Some(format!("record at byte {pos} claims {len} payload bytes"));
            break;
        }
        let payload = &rest[8..8 + len];
        if crc32(payload) != declared {
            torn = Some(format!("record checksum mismatch at byte {pos}"));
            break;
        }
        let Some(op) = WalOp::decode(payload) else {
            torn = Some(format!("undecodable record payload at byte {pos}"));
            break;
        };
        ops.push(op);
        pos += 8 + len;
    }
    Ok(SegmentScan { base_seq, ops, valid_len: pos as u64, torn })
}

impl Wal {
    /// Opens (or creates) the log at `dir` with default tuning and replays
    /// surviving records. See [`Wal::open_with`].
    pub fn open(dir: &Path) -> Result<WalRecovery, WalError> {
        Self::open_with(dir, WalConfig::default())
    }

    /// Opens (or creates) the log at `dir`: reads the manifest, scans every
    /// segment in id order truncating at the first bad record, deletes
    /// fully-applied or unrecoverable segments, and starts a fresh active
    /// segment. Damage degrades to truncation plus a `wal_truncated_tail`
    /// telemetry event — the only hard errors are I/O failures and a
    /// corrupt manifest.
    pub fn open_with(dir: &Path, config: WalConfig) -> Result<WalRecovery, WalError> {
        let replay_started = std::time::Instant::now();
        std::fs::create_dir_all(dir)?;
        let applied_seq = match std::fs::read(dir.join(MANIFEST_FILE)) {
            Ok(bytes) => decode_manifest(&bytes)?,
            Err(e) if e.kind() == io::ErrorKind::NotFound => 0,
            Err(e) => return Err(WalError::Io(e)),
        };

        let mut segment_paths: Vec<(u64, PathBuf)> = std::fs::read_dir(dir)?
            .filter_map(|entry| {
                let path = entry.ok()?.path();
                segment_id(&path).map(|id| (id, path))
            })
            .collect();
        segment_paths.sort_by_key(|(id, _)| *id);

        let mut records: Vec<WalRecord> = Vec::new();
        let mut sealed: Vec<SealedSegment> = Vec::new();
        let mut next_seq = applied_seq;
        let mut max_id = 0u64;
        let mut truncated = false;
        let mut expected_seq: Option<u64> = None;
        let mut damage_at: Option<usize> = None;

        for (i, (id, path)) in segment_paths.iter().enumerate() {
            max_id = (*id).max(max_id);
            let mut bytes = Vec::new();
            File::open(path)?.read_to_end(&mut bytes)?;
            let scan = match scan_segment(&bytes) {
                Ok(scan) => scan,
                Err(reason) => {
                    // Header damage (including a zero-length file from a
                    // crash between create and header write): the segment
                    // carries nothing recoverable.
                    truncated = true;
                    wal_tele().record_truncated_tail(*id, 0, &reason);
                    std::fs::remove_file(path)?;
                    damage_at = Some(i + 1);
                    break;
                }
            };
            if let Some(expected) = expected_seq {
                if scan.base_seq != expected {
                    truncated = true;
                    wal_tele().record_truncated_tail(
                        *id,
                        0,
                        &format!(
                            "sequence gap: segment starts at {}, expected {expected}",
                            scan.base_seq
                        ),
                    );
                    std::fs::remove_file(path)?;
                    damage_at = Some(i + 1);
                    break;
                }
            }
            let end_seq = scan.base_seq + scan.ops.len() as u64;
            for (j, op) in scan.ops.into_iter().enumerate() {
                let seq = scan.base_seq + j as u64;
                if seq >= applied_seq {
                    records.push(WalRecord { seq, op });
                }
            }
            next_seq = end_seq;
            expected_seq = Some(end_seq);
            if let Some(reason) = scan.torn {
                // Truncate the damage away in place; the valid prefix
                // remains a well-formed sealed segment.
                truncated = true;
                wal_tele().record_truncated_tail(*id, scan.valid_len, &reason);
                let file = OpenOptions::new().write(true).open(path)?;
                file.set_len(scan.valid_len)?;
                file.sync_all()?;
                if end_seq > applied_seq {
                    sealed.push(SealedSegment { id: *id, end_seq });
                } else {
                    std::fs::remove_file(path)?;
                }
                damage_at = Some(i + 1);
                break;
            }
            if end_seq > applied_seq {
                sealed.push(SealedSegment { id: *id, end_seq });
            } else {
                // Every record is already checkpointed: reclaim the space.
                std::fs::remove_file(path)?;
            }
        }

        // Anything after a damage site is untrustworthy (its records were
        // ordered after bytes that are now gone): discard it.
        if let Some(from) = damage_at {
            for (id, path) in &segment_paths[from..] {
                wal_tele().record_truncated_tail(*id, 0, "discarded after damaged segment");
                std::fs::remove_file(path)?;
            }
        }
        fsync_dir(dir)?;

        // Never hand out a sequence below the checkpoint watermark: replay
        // skips those, so an append there would be silently droppable.
        next_seq = next_seq.max(applied_seq);

        // A fresh active segment: recovery never appends to a file whose
        // tail it just judged.
        let active_id = max_id + 1;
        let (active, active_len) = create_segment(dir, active_id, next_seq)?;

        let wal = Wal {
            dir: dir.to_path_buf(),
            config,
            active,
            active_id,
            active_len,
            active_records: 0,
            next_seq,
            applied_seq,
            sealed,
        };
        wal_tele().record_replay(records.len(), truncated, replay_started.elapsed());
        Ok(WalRecovery { wal, records, applied_seq, truncated })
    }

    /// Appends one op, fsyncing before returning: once this returns the
    /// record survives `kill -9`. Returns the record's sequence number.
    pub fn append(&mut self, op: &WalOp) -> Result<u64, WalError> {
        let payload = op.encode();
        let framed_len = 8 + payload.len() as u64;
        if self.active_records > 0 && self.active_len + framed_len > self.config.segment_bytes {
            self.rotate()?;
        }
        let mut buf = Vec::with_capacity(framed_len as usize);
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
        self.active.write_all(&buf)?;
        self.active.sync_data()?;
        self.active_len += framed_len;
        self.active_records += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        wal_tele().record_append();
        Ok(seq)
    }

    /// Seals the active segment and starts a fresh one. A no-op when the
    /// active segment is empty.
    pub fn rotate(&mut self) -> Result<(), WalError> {
        if self.active_records == 0 {
            return Ok(());
        }
        self.active.sync_all()?;
        self.sealed.push(SealedSegment { id: self.active_id, end_seq: self.next_seq });
        let id = self.active_id + 1;
        let (active, active_len) = create_segment(&self.dir, id, self.next_seq)?;
        self.active = active;
        self.active_id = id;
        self.active_len = active_len;
        self.active_records = 0;
        wal_tele().record_seal();
        Ok(())
    }

    /// Advances the applied watermark: persists the manifest atomically,
    /// then deletes sealed segments whose every record is now checkpointed.
    /// The manifest write is the commit point — a crash before it replays
    /// the records again, a crash after it finds them already gone.
    pub fn mark_applied(&mut self, seq: u64) -> Result<(), WalError> {
        if seq <= self.applied_seq {
            return Ok(());
        }
        assert!(seq <= self.next_seq, "cannot apply past the log end");
        write_atomic(&self.dir.join(MANIFEST_FILE), &encode_manifest(seq))?;
        self.applied_seq = seq;
        let mut kept = Vec::new();
        for segment in self.sealed.drain(..) {
            if segment.end_seq <= seq {
                std::fs::remove_file(segment_path(&self.dir, segment.id))?;
            } else {
                kept.push(segment);
            }
        }
        self.sealed = kept;
        fsync_dir(&self.dir)?;
        Ok(())
    }

    /// Sequence the next append will receive (one past the last record).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Watermark below which records are checkpointed.
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq
    }

    /// Number of sealed (rotated, not yet compacted) segments.
    pub fn sealed_segments(&self) -> usize {
        self.sealed.len()
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// Creates a segment file, writes its checksummed header, fsyncs the file
/// and the directory entry.
fn create_segment(dir: &Path, id: u64, base_seq: u64) -> Result<(File, u64), WalError> {
    let path = segment_path(dir, id);
    let mut file = File::create(&path)?;
    let meta = base_seq.to_le_bytes();
    let mut header = Vec::with_capacity(SEGMENT_HEADER_LEN);
    header.extend_from_slice(SEGMENT_MAGIC);
    header.push(SEGMENT_VERSION);
    header.extend_from_slice(&crc32(&meta).to_le_bytes());
    header.extend_from_slice(&meta);
    file.write_all(&header)?;
    file.sync_all()?;
    fsync_dir(dir)?;
    Ok((file, SEGMENT_HEADER_LEN as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("setlearn-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn ops(n: u64) -> Vec<WalOp> {
        (0..n)
            .map(|i| {
                if i % 3 == 2 {
                    WalOp::Delete(vec![i as u32])
                } else {
                    WalOp::Insert(vec![i as u32, i as u32 + 1])
                }
            })
            .collect()
    }

    fn segment_files(dir: &Path) -> Vec<PathBuf> {
        let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| {
                let p = e.unwrap().path();
                segment_id(&p).map(|_| p)
            })
            .collect();
        files.sort();
        files
    }

    #[test]
    fn append_then_reopen_replays_in_commit_order() {
        let dir = tmp_dir("roundtrip");
        let mut rec = Wal::open(&dir).unwrap();
        assert!(rec.records.is_empty());
        let written = ops(7);
        for (i, op) in written.iter().enumerate() {
            assert_eq!(rec.wal.append(op).unwrap(), i as u64);
        }
        drop(rec);

        let rec = Wal::open(&dir).unwrap();
        assert!(!rec.truncated);
        assert_eq!(rec.applied_seq, 0);
        let replayed: Vec<WalOp> = rec.records.iter().map(|r| r.op.clone()).collect();
        assert_eq!(replayed, written);
        assert_eq!(rec.records.iter().map(|r| r.seq).collect::<Vec<_>>(), (0..7).collect::<Vec<u64>>());
        assert_eq!(rec.wal.next_seq(), 7);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mark_applied_skips_replay_and_deletes_consumed_segments() {
        let dir = tmp_dir("applied");
        let mut rec = Wal::open_with(&dir, WalConfig { segment_bytes: 64 }).unwrap();
        for op in ops(20) {
            rec.wal.append(&op).unwrap();
        }
        assert!(rec.wal.sealed_segments() > 1, "tiny segments must have rotated");
        rec.wal.rotate().unwrap();
        let before = segment_files(&dir).len();
        rec.wal.mark_applied(12).unwrap();
        assert!(segment_files(&dir).len() < before, "consumed segments deleted");
        drop(rec);

        let rec = Wal::open(&dir).unwrap();
        assert_eq!(rec.applied_seq, 12);
        assert_eq!(rec.records.first().map(|r| r.seq), Some(12));
        assert_eq!(rec.records.len(), 8);
        assert_eq!(rec.wal.next_seq(), 20);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fully_applied_log_reopens_empty() {
        let dir = tmp_dir("fully-applied");
        let mut rec = Wal::open(&dir).unwrap();
        for op in ops(5) {
            rec.wal.append(&op).unwrap();
        }
        let end = rec.wal.next_seq();
        rec.wal.rotate().unwrap();
        rec.wal.mark_applied(end).unwrap();
        drop(rec);

        let rec = Wal::open(&dir).unwrap();
        assert!(rec.records.is_empty());
        assert!(!rec.truncated);
        assert_eq!(rec.wal.next_seq(), end);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_prefix_survives() {
        let dir = tmp_dir("torn");
        let mut rec = Wal::open(&dir).unwrap();
        for op in ops(4) {
            rec.wal.append(&op).unwrap();
        }
        drop(rec);
        // Simulate a crash mid-append: half a record at the tail of the
        // newest segment.
        let last = segment_files(&dir).pop().unwrap();
        let mut f = OpenOptions::new().append(true).open(&last).unwrap();
        f.write_all(&[0x21, 0x00, 0x00]).unwrap();
        drop(f);

        // Damage is telemetered: the truncation counter moves (the registry
        // is process-global and other tests may truncate too, hence `>=`).
        setlearn_obs::set_level(setlearn_obs::TelemetryLevel::Metrics);
        let truncations =
            setlearn_obs::metrics().counter_with("setlearn_wal_truncated_tail_total", &[]);
        let before = truncations.get();
        let rec = Wal::open(&dir).unwrap();
        assert!(rec.truncated, "damage reported");
        assert_eq!(rec.records.len(), 4, "all complete records survive");
        assert!(
            truncations.get() > before,
            "wal_truncated_tail telemetry recorded the damage site"
        );
        drop(rec);
        // The damage was truncated away: a third open is clean.
        let rec = Wal::open(&dir).unwrap();
        assert!(!rec.truncated);
        assert_eq!(rec.records.len(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_mid_segment_truncates_from_the_flip() {
        let dir = tmp_dir("bitflip");
        let mut rec = Wal::open(&dir).unwrap();
        for op in ops(6) {
            rec.wal.append(&op).unwrap();
        }
        drop(rec);
        let last = segment_files(&dir).pop().unwrap();
        let mut bytes = std::fs::read(&last).unwrap();
        // Flip one bit roughly in the middle of the record area.
        let mid = SEGMENT_HEADER_LEN + (bytes.len() - SEGMENT_HEADER_LEN) / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&last, &bytes).unwrap();

        let rec = Wal::open(&dir).unwrap();
        assert!(rec.truncated);
        assert!(rec.records.len() < 6, "records from the flip on are gone");
        // Survivors are an exact prefix.
        for (i, r) in rec.records.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
        drop(rec);
        let rec = Wal::open(&dir).unwrap();
        assert!(!rec.truncated, "truncation is persistent, not re-reported");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_length_trailing_segment_is_dropped() {
        let dir = tmp_dir("zerolen");
        let mut rec = Wal::open(&dir).unwrap();
        for op in ops(3) {
            rec.wal.append(&op).unwrap();
        }
        drop(rec);
        // A crash between segment creation and header write leaves an empty
        // file with the next id.
        File::create(segment_path(&dir, 999_999)).unwrap();

        let rec = Wal::open(&dir).unwrap();
        assert!(rec.truncated);
        assert_eq!(rec.records.len(), 3);
        assert!(!segment_path(&dir, 999_999).exists(), "empty segment removed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_manifest_is_a_typed_error() {
        let dir = tmp_dir("badmanifest");
        drop(Wal::open(&dir).unwrap());
        std::fs::write(dir.join(MANIFEST_FILE), b"SLM1garbagegarb!").unwrap();
        assert!(matches!(Wal::open(&dir), Err(WalError::Corrupt(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn op_encoding_roundtrips_and_rejects_garbage() {
        for op in [WalOp::Insert(vec![]), WalOp::Insert(vec![7, 1, 7]), WalOp::Delete(vec![u32::MAX])] {
            assert_eq!(WalOp::decode(&op.encode()), Some(op));
        }
        assert_eq!(WalOp::decode(&[]), None);
        assert_eq!(WalOp::decode(&[2, 0, 0, 0, 0]), None, "unknown tag");
        assert_eq!(WalOp::decode(&[0, 2, 0, 0, 0, 1, 0, 0, 0]), None, "count/body mismatch");
    }
}
