//! Element encoders: the plain shared embedding of DeepSets (Figure 2) and
//! the compressed multi-table encoder of the modified architecture
//! (Figure 4).

use crate::compress::CompressionSpec;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use setlearn_nn::{Embedding, HashEmbedding, Matrix, ParamBuf};

/// Maps a flat batch of element ids to per-element feature rows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ElementEncoder {
    /// One shared `vocab × dim` table (the LSM variant).
    Plain(Embedding),
    /// `ns` shared sub-element tables whose outputs are concatenated per
    /// element (the CLSM variant). The concatenation preserves the
    /// quotient/remainder pairing; the φ network that follows is what keeps
    /// the pairing from being destroyed by pooling (paper §5).
    Compressed {
        /// The compression scheme.
        spec: CompressionSpec,
        /// One embedding per sub-element position.
        tables: Vec<Embedding>,
    },
    /// Hashing-trick encoder: `k` probes into one small bucket table
    /// (lossy; the `abl_hash_encoder` bench compares it against the
    /// lossless Algorithm 1 decomposition).
    Hashed(HashEmbedding),
}

impl ElementEncoder {
    /// Plain shared embedding for ids `0..vocab`.
    pub fn plain(rng: &mut StdRng, vocab: u32, dim: usize) -> Self {
        ElementEncoder::Plain(Embedding::new(rng, vocab as usize, dim))
    }

    /// Compressed encoder with one table per sub-element.
    pub fn compressed(rng: &mut StdRng, spec: CompressionSpec, dim: usize) -> Self {
        let tables = (0..spec.ns)
            .map(|i| Embedding::new(rng, spec.sub_vocab(i) as usize, dim))
            .collect();
        ElementEncoder::Compressed { spec, tables }
    }

    /// Hashing-trick encoder over `buckets` rows with `num_hashes` probes.
    pub fn hashed(rng: &mut StdRng, buckets: usize, dim: usize, num_hashes: usize) -> Self {
        ElementEncoder::Hashed(HashEmbedding::new(rng, buckets, dim, num_hashes))
    }

    /// Output feature width per element: `dim` (plain) or `ns * dim`
    /// (compressed, after concatenation).
    pub fn out_dim(&self) -> usize {
        match self {
            ElementEncoder::Plain(e) => e.dim(),
            ElementEncoder::Compressed { spec, tables } => spec.ns * tables[0].dim(),
            ElementEncoder::Hashed(h) => h.dim(),
        }
    }

    /// Encodes a flat batch of element ids into `[N x out_dim]`, caching
    /// lookup state for [`ElementEncoder::backward`].
    pub fn forward(&mut self, ids: &[u32]) -> Matrix {
        match self {
            ElementEncoder::Plain(e) => e.forward(ids),
            ElementEncoder::Hashed(h) => h.forward(ids),
            ElementEncoder::Compressed { spec, tables } => {
                let parts = split_ids(spec, ids);
                let encoded: Vec<Matrix> = tables
                    .iter_mut()
                    .zip(parts.iter())
                    .map(|(t, p)| t.forward(p))
                    .collect();
                let refs: Vec<&Matrix> = encoded.iter().collect();
                Matrix::hconcat(&refs)
            }
        }
    }

    /// Inference-only encoding.
    pub fn predict(&self, ids: &[u32]) -> Matrix {
        match self {
            ElementEncoder::Plain(e) => e.predict(ids),
            ElementEncoder::Hashed(h) => h.predict(ids),
            ElementEncoder::Compressed { spec, tables } => {
                let parts = split_ids(spec, ids);
                let encoded: Vec<Matrix> =
                    tables.iter().zip(parts.iter()).map(|(t, p)| t.predict(p)).collect();
                let refs: Vec<&Matrix> = encoded.iter().collect();
                Matrix::hconcat(&refs)
            }
        }
    }

    /// Scatter-adds the per-element gradient back into the tables.
    pub fn backward(&mut self, grad: &Matrix) {
        match self {
            ElementEncoder::Plain(e) => e.backward(grad),
            ElementEncoder::Hashed(h) => h.backward(grad),
            ElementEncoder::Compressed { tables, .. } => {
                let dim = tables[0].dim();
                let widths = vec![dim; tables.len()];
                for (t, g) in tables.iter_mut().zip(grad.hsplit(&widths)) {
                    t.backward(&g);
                }
            }
        }
    }

    /// All parameter buffers.
    pub fn params_mut(&mut self) -> Vec<&mut ParamBuf> {
        match self {
            ElementEncoder::Plain(e) => e.params_mut().into_iter().collect(),
            ElementEncoder::Hashed(h) => h.params_mut().into_iter().collect(),
            ElementEncoder::Compressed { tables, .. } => {
                tables.iter_mut().flat_map(|t| t.params_mut()).collect()
            }
        }
    }

    /// Immutable parameter buffers.
    pub fn params(&self) -> Vec<&ParamBuf> {
        match self {
            ElementEncoder::Plain(e) => e.params().into_iter().collect(),
            ElementEncoder::Hashed(h) => h.params().into_iter().collect(),
            ElementEncoder::Compressed { tables, .. } => {
                tables.iter().flat_map(|t| t.params()).collect()
            }
        }
    }

    /// Scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Zeroes gradient accumulators.
    pub fn zero_grad(&mut self) {
        match self {
            ElementEncoder::Plain(e) => e.zero_grad(),
            ElementEncoder::Hashed(h) => h.zero_grad(),
            ElementEncoder::Compressed { tables, .. } => {
                tables.iter_mut().for_each(Embedding::zero_grad)
            }
        }
    }
}

/// Splits a flat id batch into `ns` parallel sub-element id batches.
fn split_ids(spec: &CompressionSpec, ids: &[u32]) -> Vec<Vec<u32>> {
    let mut parts: Vec<Vec<u32>> = (0..spec.ns).map(|_| Vec::with_capacity(ids.len())).collect();
    let mut scratch = Vec::with_capacity(spec.ns);
    for &id in ids {
        spec.compress_into(id, &mut scratch);
        for (p, &s) in parts.iter_mut().zip(scratch.iter()) {
            p.push(s);
        }
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn plain_width() {
        let mut rng = StdRng::seed_from_u64(2);
        let enc = ElementEncoder::plain(&mut rng, 100, 8);
        assert_eq!(enc.out_dim(), 8);
        assert_eq!(enc.num_params(), 800);
        let out = enc.predict(&[0, 99]);
        assert_eq!((out.rows(), out.cols()), (2, 8));
    }

    #[test]
    fn compressed_width_and_param_reduction() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec = CompressionSpec::optimal(9_999, 2);
        let enc = ElementEncoder::compressed(&mut rng, spec, 4);
        assert_eq!(enc.out_dim(), 8); // 2 tables * dim 4, concatenated
        // Tables: 100 x 4 + 100 x 4 = 800 params, vs plain 10_000 x 4 = 40_000.
        assert!(enc.num_params() <= 810, "params {}", enc.num_params());
    }

    #[test]
    fn compressed_rows_concatenate_sub_embeddings() {
        let mut rng = StdRng::seed_from_u64(7);
        let spec = CompressionSpec::optimal(99, 2);
        let mut enc = ElementEncoder::compressed(&mut rng, spec.clone(), 3);
        let out = enc.forward(&[91]);
        assert_eq!((out.rows(), out.cols()), (1, 6));
        // Same sub-elements ⇒ identical slices: 91 = (1, 9); 21 = (1, 2)
        // shares the remainder 1, so the first 3 columns must match.
        let out2 = enc.predict(&[21]);
        assert_eq!(&out.row(0)[..3], &out2.row(0)[..3]);
        assert_ne!(&out.row(0)[3..], &out2.row(0)[3..]);
    }

    #[test]
    fn backward_routes_gradients_to_each_table() {
        let mut rng = StdRng::seed_from_u64(3);
        let spec = CompressionSpec::optimal(99, 2);
        let mut enc = ElementEncoder::compressed(&mut rng, spec, 2);
        enc.zero_grad();
        enc.forward(&[91]); // (1, 9)
        let grad = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        enc.backward(&grad);
        let params = enc.params();
        // Remainder table row 1 gets [1,2]; quotient table row 9 gets [3,4].
        assert_eq!(&params[0].grad[2..4], &[1.0, 2.0]);
        assert_eq!(&params[1].grad[18..20], &[3.0, 4.0]);
    }
}
