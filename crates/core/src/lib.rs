//! # setlearn
//!
//! A Rust implementation of *Learning over Sets for Databases*
//! (Davitkova, Gjurovski, Michel — EDBT 2024): learned replacements for a
//! set index, a cardinality estimator and a Bloom filter over collections of
//! sets.
//!
//! ## Architecture
//!
//! * [`model::DeepSets`] — the permutation-invariant model (§3.2):
//!   shared element encoder → per-element φ MLP → sum/mean/max pooling →
//!   ρ head with a sigmoid scalar output.
//! * [`compress::CompressionSpec`] — Algorithm 1's per-element lossless
//!   quotient/remainder decomposition; plugging it into the encoder yields
//!   the compressed CLSM variant (§5, Figure 4) whose embedding tables are
//!   orders of magnitude smaller.
//! * [`hybrid`] — guided learning with outlier removal and per-range local
//!   error bounds (§6), which restore exactness guarantees.
//! * [`tasks`] — the three database tasks (Table 1):
//!   [`tasks::LearnedSetIndex`] (§4.1), [`tasks::LearnedCardinality`]
//!   (§4.2), [`tasks::LearnedBloom`] (§4.3).
//! * [`memory`] — the analytic size models behind Figures 3 and 8.
//!
//! ## Quick example
//!
//! ```
//! use setlearn::model::DeepSetsConfig;
//! use setlearn::hybrid::GuidedConfig;
//! use setlearn::tasks::{CardinalityConfig, LearnedCardinality};
//! use setlearn_data::GeneratorConfig;
//!
//! let collection = GeneratorConfig::sd(200, 1).generate();
//! let mut cfg = CardinalityConfig::new(DeepSetsConfig::clsm(collection.num_elements()));
//! cfg.guided = GuidedConfig { warmup_epochs: 5, rounds: 1, epochs_per_round: 2,
//!     percentile: 0.9, batch_size: 64, learning_rate: 5e-3, seed: 1 };
//! cfg.max_subset_size = 2;
//! let (estimator, _report) = LearnedCardinality::build(&collection, &cfg);
//! let q = &collection.get(0)[..1];
//! assert!(estimator.estimate(q) >= 0.0);
//! ```

#![warn(missing_docs)]

pub mod compress;
pub mod encoder;
pub mod hybrid;
pub mod kernel;
pub mod memory;
pub mod model;
pub mod monitor;
pub mod mutable;
pub mod persist;
pub mod quantize;
pub mod settransformer;
pub mod shard;
pub mod tasks;
pub(crate) mod telemetry;
pub mod wal;
pub mod wire;

/// Everything a downstream caller of the unified query API needs, in one
/// import.
///
/// Historically downstream crates (the CLI, benches, the serving adapters)
/// deep-imported `tasks::*` paths; the prelude replaces that with a single
/// surface that is guaranteed to stay importable as modules shuffle:
///
/// ```
/// use setlearn::prelude::*;
/// ```
pub mod prelude {
    pub use crate::hybrid::{FallbackReason, GuidedConfig, LocalErrorBounds, ServeGuard};
    pub use crate::kernel::{
        FrozenModel, InferenceKernel, KernelIsa, Precision, PrecisionMismatch,
    };
    pub use crate::model::{CompressionKind, DeepSets, DeepSetsConfig, Pooling};
    pub use crate::monitor::{DriftMonitor, MonitorConfig, MonitorSnapshot, RetrainReason};
    pub use crate::shard::{ShardBy, ShardError, ShardRouter, ShardSpec, ShardedCollection};
    pub use crate::tasks::{
        aggregate_bloom, aggregate_cardinality, aggregate_index, BloomConfig,
        CardinalityConfig, CardinalityEstimator, IndexConfig, IndexStructure, LearnedBloom,
        LearnedCardinality,
        LearnedSetIndex, LearnedSetStructure, PositionTarget, QueryOutcome,
        ShardIndexStructure, ShardedBloom, ShardedCardinality, ShardedIndex,
        ShardedIndexStructure,
    };
    pub use crate::mutable::{
        DeltaMergeable, DeltaStats, MutableCollection, MutableSink, MutateError, MutationAck,
        RecoveryReport,
    };
    pub use crate::wal::{Wal, WalConfig, WalError, WalOp, WalRecord, WalRecovery};
    pub use crate::wire::{QueryRequest, QueryResponse, QueryValue, WireTask};
}

pub use compress::CompressionSpec;
pub use hybrid::{FallbackReason, GuidedConfig, LocalErrorBounds, ServeGuard};
pub use kernel::{FrozenModel, InferenceKernel, KernelIsa, Precision, PrecisionMismatch};
pub use monitor::{DriftMonitor, MonitorConfig, MonitorSnapshot, RetrainReason};
pub use model::{CompressionKind, DeepSets, DeepSetsConfig, Pooling};
pub use settransformer::{SetTransformer, SetTransformerConfig};
pub use shard::{ShardBy, ShardError, ShardRouter, ShardSpec, ShardedCollection};
pub use tasks::{
    BloomConfig, CardinalityConfig, CardinalityEstimator, IndexConfig, LearnedBloom,
    LearnedCardinality, LearnedSetIndex, LearnedSetStructure, QueryOutcome,
};
pub use mutable::{
    DeltaMergeable, DeltaStats, MutableCollection, MutableSink, MutateError, MutationAck,
    RecoveryReport,
};
pub use wal::{Wal, WalConfig, WalError, WalOp, WalRecord, WalRecovery};
pub use wire::{QueryRequest, QueryResponse, QueryValue, WireTask};
// Task build reports embed the training harness report; re-export its types so
// downstream crates can consume them without depending on `setlearn-nn`.
pub use setlearn_nn::{StopReason, TrainPolicy, TrainReport};
