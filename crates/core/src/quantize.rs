//! Half-precision weight quantization.
//!
//! The paper's theme is shrinking models until they compete with compact
//! traditional structures; on top of the architectural compression (§5),
//! storing weights as IEEE 754 half floats halves the serialized footprint
//! again at negligible accuracy cost for these small, sigmoid-headed
//! networks. The conversion is hand-rolled (round-to-nearest-even) since the
//! workspace carries no half-float dependency.

use crate::model::DeepSets;

/// Converts an `f32` to IEEE 754 binary16 bits (round to nearest even,
/// overflow to ±inf, subnormals flushed correctly).
pub fn f32_to_f16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let frac = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf / NaN.
        let nan = if frac != 0 { 0x0200 } else { 0 };
        return sign | 0x7c00 | nan;
    }
    // Re-bias: f32 bias 127, f16 bias 15.
    let new_exp = exp - 127 + 15;
    if new_exp >= 0x1f {
        return sign | 0x7c00; // overflow -> inf
    }
    if new_exp <= 0 {
        // Subnormal or underflow to zero.
        if new_exp < -10 {
            return sign;
        }
        let mantissa = frac | 0x0080_0000; // implicit leading 1
        let shift = (14 - new_exp) as u32;
        let half = 1u32 << (shift - 1);
        let mut m = mantissa >> shift;
        // Round to nearest even.
        let rem = mantissa & ((1 << shift) - 1);
        if rem > half || (rem == half && (m & 1) == 1) {
            m += 1;
        }
        return sign | m as u16;
    }
    let mut out = sign | ((new_exp as u16) << 10) | ((frac >> 13) as u16);
    // Round to nearest even on the 13 dropped bits.
    let rem = frac & 0x1fff;
    if rem > 0x1000 || (rem == 0x1000 && (out & 1) == 1) {
        out = out.wrapping_add(1); // may carry into the exponent — correct
    }
    out
}

/// Converts IEEE 754 binary16 bits back to `f32`.
pub fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = ((bits >> 10) & 0x1f) as u32;
    let frac = (bits & 0x03ff) as u32;
    let out = if exp == 0 {
        if frac == 0 {
            sign
        } else {
            // Subnormal: normalize.
            let mut e = 127 - 15 + 1;
            let mut f = frac;
            while f & 0x0400 == 0 {
                f <<= 1;
                e -= 1;
            }
            sign | ((e as u32) << 23) | ((f & 0x03ff) << 13)
        }
    } else if exp == 0x1f {
        sign | 0x7f80_0000 | (frac << 13)
    } else {
        sign | ((exp + 127 - 15) << 23) | (frac << 13)
    };
    f32::from_bits(out)
}

/// Quantizes every weight of a model to f16 and back, in place — a fidelity
/// probe for the storage format (what the model would predict after an
/// f16 save/load cycle).
pub fn quantize_in_place(model: &mut DeepSets) {
    let rounded: Vec<Vec<f32>> = model
        .weight_buffers()
        .iter()
        .map(|buf| buf.iter().map(|&w| f16_bits_to_f32(f32_to_f16_bits(w))).collect())
        .collect();
    model.load_weight_buffers(&rounded).expect("same shapes");
}

/// Serialized f16 weight bytes of a model (half the f32 footprint).
pub fn quantized_size_bytes(model: &DeepSets) -> usize {
    model.num_params() * 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DeepSets, DeepSetsConfig};

    #[test]
    fn known_values_roundtrip_exactly() {
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0, 0.25] {
            let back = f16_bits_to_f32(f32_to_f16_bits(v));
            assert_eq!(back, v, "{v}");
        }
    }

    #[test]
    fn specials() {
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7c00);
        assert_eq!(f32_to_f16_bits(f32::NEG_INFINITY), 0xfc00);
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
        // Overflow saturates to inf.
        assert_eq!(f32_to_f16_bits(1e9), 0x7c00);
        // Tiny values flush toward signed zero.
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1e-30)), 0.0);
    }

    #[test]
    fn relative_error_is_small_in_the_weight_range() {
        // Model weights live in roughly [-2, 2].
        let mut worst = 0.0f32;
        for i in 1..4000 {
            let v = (i as f32 / 1000.0) - 2.0;
            if v == 0.0 {
                continue;
            }
            let back = f16_bits_to_f32(f32_to_f16_bits(v));
            worst = worst.max(((back - v) / v).abs());
        }
        assert!(worst < 1e-3, "worst relative error {worst}");
    }

    #[test]
    fn subnormal_roundtrip() {
        // Smallest positive f16 subnormal ≈ 5.96e-8.
        let v = f16_bits_to_f32(0x0001);
        assert!(v > 0.0);
        assert_eq!(f32_to_f16_bits(v), 0x0001);
    }

    #[test]
    fn quantized_model_predictions_stay_close() {
        let model = DeepSets::new(DeepSetsConfig::clsm(2_000));
        let mut q16 = model.clone();
        quantize_in_place(&mut q16);
        for q in [&[1u32, 2][..], &[1_999u32][..], &[3u32, 30, 300][..]] {
            let a = model.predict_one(q);
            let b = q16.predict_one(q);
            assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
        assert_eq!(quantized_size_bytes(&model) * 2, model.size_bytes());
    }
}
