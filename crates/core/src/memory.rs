//! Analytic size models for the embedding-vs-Bloom comparison (Figure 3)
//! and the compression-dimension analysis (Figure 8).

use crate::compress::CompressionSpec;
use setlearn_baselines::bloom::optimal_bits;

/// Bytes of a `num_items x dim` `f32` embedding matrix.
pub fn embedding_bytes(num_items: usize, dim: usize) -> usize {
    num_items * dim * std::mem::size_of::<f32>()
}

/// Bytes of a Bloom filter sized for `num_items` at `fp_rate`.
pub fn bloom_bytes(num_items: usize, fp_rate: f64) -> usize {
    optimal_bits(num_items, fp_rate).div_ceil(8)
}

/// Bytes of the compressed embedding tables for `max_id` under `spec`.
pub fn compressed_embedding_bytes(spec: &CompressionSpec, dim: usize) -> usize {
    (0..spec.ns)
        .map(|i| embedding_bytes(spec.sub_vocab(i) as usize, dim))
        .sum()
}

/// One row of the Figure 3 comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Row {
    /// Number of distinct items.
    pub items: usize,
    /// Embedding matrix bytes at this dimension.
    pub embedding: usize,
    /// Bloom filter bytes at this fp rate.
    pub bloom: usize,
}

/// Computes the Figure 3 series for one `(embedding dim, fp rate)` pair over
/// a range of item counts.
pub fn fig3_series(dim: usize, fp_rate: f64, item_counts: &[usize]) -> Vec<Fig3Row> {
    item_counts
        .iter()
        .map(|&items| Fig3Row {
            items,
            embedding: embedding_bytes(items, dim),
            bloom: bloom_bytes(items, fp_rate),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_shape_bloom_always_wins_at_scale() {
        // The paper's takeaway: the uncompressed embedding matrix always
        // overtakes the Bloom filter as items grow.
        for dim in [25, 50, 100] {
            for fp in [0.1, 0.01, 0.001] {
                let rows = fig3_series(dim, fp, &[1_000, 10_000, 100_000, 1_000_000]);
                let last = rows.last().unwrap();
                assert!(
                    last.embedding > last.bloom,
                    "dim {dim} fp {fp}: emb {} vs bloom {}",
                    last.embedding,
                    last.bloom
                );
            }
        }
    }

    #[test]
    fn compressed_tables_undercut_the_bloom_filter() {
        // §5's motivation: after compression the tables are tiny.
        let spec = CompressionSpec::optimal(999_999, 2);
        let compressed = compressed_embedding_bytes(&spec, 2);
        let bloom = bloom_bytes(1_000_000, 0.01);
        assert!(compressed < bloom, "compressed {compressed} vs bloom {bloom}");
    }

    #[test]
    fn embedding_bytes_formula() {
        assert_eq!(embedding_bytes(1_000, 100), 400_000);
    }

    #[test]
    fn bloom_bytes_monotone_in_fp() {
        assert!(bloom_bytes(10_000, 0.001) > bloom_bytes(10_000, 0.1));
    }
}
