//! Set Transformer (Lee et al., ICML 2019) — the attention-based
//! alternative the paper weighs against DeepSets in §3.2 before choosing
//! DeepSets for its speed and smaller footprint. This implementation backs
//! the `abl_settransformer` bench that reproduces that trade-off.
//!
//! Architecture: shared embedding → `num_sabs` Set Attention Blocks →
//! PMA pooling (one learned seed) → ρ MLP → scalar head.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use setlearn_nn::attention::{PmaCache, SabCache};
use setlearn_nn::{Activation, Embedding, Loss, Matrix, Mlp, Optimizer, PmaPool, Sab};

/// Hyper-parameters of a Set Transformer regressor/classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SetTransformerConfig {
    /// Vocabulary size (ids `0..vocab`).
    pub vocab: u32,
    /// Embedding and attention width.
    pub dim: usize,
    /// Number of stacked Set Attention Blocks.
    pub num_sabs: usize,
    /// Hidden widths of the ρ head.
    pub rho_hidden: Vec<usize>,
    /// Output activation (sigmoid for the paper's tasks).
    pub output_activation: Activation,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl SetTransformerConfig {
    /// A small default comparable to [`crate::model::DeepSetsConfig::lsm`].
    pub fn new(vocab: u32) -> Self {
        SetTransformerConfig {
            vocab,
            dim: 16,
            num_sabs: 1,
            rho_hidden: vec![32],
            output_activation: Activation::Sigmoid,
            seed: 42,
        }
    }
}

/// Per-set cache for the backward pass.
struct SetCache {
    ids: Vec<u32>,
    sabs: Vec<SabCache>,
    pma: PmaCache,
}

/// The Set Transformer model. Mirrors the training/inference API of
/// [`crate::model::DeepSets`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SetTransformer {
    config: SetTransformerConfig,
    embedding: Embedding,
    sabs: Vec<Sab>,
    pma: PmaPool,
    rho: Mlp,
    #[serde(skip)]
    caches: Vec<SetCache>,
}

impl std::fmt::Debug for SetCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SetCache").field("ids", &self.ids).finish_non_exhaustive()
    }
}

impl Clone for SetCache {
    fn clone(&self) -> Self {
        SetCache { ids: self.ids.clone(), sabs: self.sabs.clone(), pma: self.pma.clone() }
    }
}

impl SetTransformer {
    /// Builds the model.
    ///
    /// # Panics
    /// If `vocab == 0` or `num_sabs == 0`.
    pub fn new(config: SetTransformerConfig) -> Self {
        assert!(config.vocab > 0, "empty vocabulary");
        assert!(config.num_sabs > 0, "need at least one SAB");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let embedding = Embedding::new(&mut rng, config.vocab as usize, config.dim);
        let sabs = (0..config.num_sabs).map(|_| Sab::new(&mut rng, config.dim)).collect();
        let pma = PmaPool::new(&mut rng, config.dim);
        let mut rho_dims = vec![config.dim];
        rho_dims.extend_from_slice(&config.rho_hidden);
        rho_dims.push(1);
        let rho = Mlp::new(&mut rng, &rho_dims, Activation::Relu, config.output_activation);
        SetTransformer { config, embedding, sabs, pma, rho, caches: Vec::new() }
    }

    /// The model's configuration.
    pub fn config(&self) -> &SetTransformerConfig {
        &self.config
    }

    /// Total scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.embedding.num_params()
            + self.sabs.iter().map(Sab::num_params).sum::<usize>()
            + self.pma.num_params()
            + self.rho.num_params()
    }

    /// Serialized weight bytes.
    pub fn size_bytes(&self) -> usize {
        self.num_params() * std::mem::size_of::<f32>()
    }

    fn encode_set(&self, ids: &[u32]) -> (Matrix, Vec<SabCache>, Matrix, PmaCache) {
        let mut x = self.embedding.predict(ids);
        let mut sab_caches = Vec::with_capacity(self.sabs.len());
        for sab in &self.sabs {
            let (next, cache) = sab.forward(&x);
            sab_caches.push(cache);
            x = next;
        }
        let (pooled, pma_cache) = self.pma.forward(&x);
        (x, sab_caches, pooled, pma_cache)
    }

    /// Training forward pass; caches per-set state.
    pub fn forward_batch<S: AsRef<[u32]>>(&mut self, sets: &[S]) -> Vec<f32> {
        self.caches.clear();
        let mut pooled_rows = Matrix::zeros(sets.len(), self.config.dim);
        for (i, s) in sets.iter().enumerate() {
            let ids = s.as_ref();
            assert!(!ids.is_empty(), "cannot encode an empty set");
            let (_, sabs, pooled, pma) = self.encode_set(ids);
            pooled_rows.row_mut(i).copy_from_slice(pooled.row(0));
            self.caches.push(SetCache { ids: ids.to_vec(), sabs, pma });
        }
        self.rho.forward(&pooled_rows).into_vec()
    }

    /// Backward pass from per-set output gradients.
    pub fn backward_batch(&mut self, grad_out: &[f32]) {
        assert_eq!(grad_out.len(), self.caches.len(), "gradient count mismatch");
        let grad = Matrix::from_vec(grad_out.len(), 1, grad_out.to_vec());
        let grad_pooled = self.rho.backward(&grad);
        let caches = std::mem::take(&mut self.caches);
        for (i, cache) in caches.iter().enumerate() {
            let g = Matrix::from_vec(1, self.config.dim, grad_pooled.row(i).to_vec());
            let mut gx = self.pma.backward(&cache.pma, &g);
            for (sab, sab_cache) in self.sabs.iter_mut().zip(cache.sabs.iter()).rev() {
                gx = sab.backward(sab_cache, &gx);
            }
            self.embedding.accumulate_grad(&cache.ids, &gx);
        }
    }

    /// Inference for a batch of sets.
    pub fn predict_batch<S: AsRef<[u32]>>(&self, sets: &[S]) -> Vec<f32> {
        let mut pooled_rows = Matrix::zeros(sets.len(), self.config.dim);
        for (i, s) in sets.iter().enumerate() {
            let ids = s.as_ref();
            assert!(!ids.is_empty(), "cannot encode an empty set");
            let (_, _, pooled, _) = self.encode_set(ids);
            pooled_rows.row_mut(i).copy_from_slice(pooled.row(0));
        }
        self.rho.predict(&pooled_rows).into_vec()
    }

    /// Inference for one set.
    pub fn predict_one(&self, set: &[u32]) -> f32 {
        self.predict_batch(&[set])[0]
    }

    /// Zeroes all gradient accumulators.
    pub fn zero_grad(&mut self) {
        self.embedding.zero_grad();
        for sab in &mut self.sabs {
            sab.zero_grad();
        }
        self.pma.zero_grad();
        self.rho.zero_grad();
    }

    /// One optimizer step over all parameters.
    pub fn step(&mut self, opt: &mut Optimizer) {
        opt.begin_step();
        for p in self.embedding.params_mut() {
            opt.step(p);
        }
        for sab in &mut self.sabs {
            for p in sab.params_mut() {
                opt.step(p);
            }
        }
        for p in self.pma.params_mut() {
            opt.step(p);
        }
        for p in self.rho.params_mut() {
            opt.step(p);
        }
    }

    /// One shuffled mini-batch epoch; returns the mean batch loss.
    pub fn train_epoch<S: AsRef<[u32]>>(
        &mut self,
        data: &[(S, f32)],
        loss: Loss,
        opt: &mut Optimizer,
        batch_size: usize,
        rng: &mut StdRng,
    ) -> f32 {
        assert!(!data.is_empty() && batch_size > 0);
        let mut order: Vec<usize> = (0..data.len()).collect();
        order.shuffle(rng);
        let mut total = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(batch_size) {
            let sets: Vec<&[u32]> = chunk.iter().map(|&i| data[i].0.as_ref()).collect();
            let targets: Vec<f32> = chunk.iter().map(|&i| data[i].1).collect();
            let pred = self.forward_batch(&sets);
            let (l, grad) = loss.loss_and_grad(&pred, &targets);
            self.backward_batch(&grad);
            self.step(opt);
            total += l as f64;
            batches += 1;
        }
        (total / batches as f64) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetTransformer {
        SetTransformer::new(SetTransformerConfig {
            vocab: 64,
            dim: 8,
            num_sabs: 1,
            rho_hidden: vec![8],
            output_activation: Activation::Sigmoid,
            seed: 1,
        })
    }

    #[test]
    fn permutation_invariance() {
        let m = tiny();
        assert_eq!(m.predict_one(&[1, 5, 9]), m.predict_one(&[9, 1, 5]));
        assert_eq!(m.predict_one(&[3, 60]), m.predict_one(&[60, 3]));
    }

    #[test]
    fn variable_sizes_and_batching() {
        let m = tiny();
        let batch = m.predict_batch(&[&[1u32][..], &[2u32, 3, 4, 5, 6][..]]);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0], m.predict_one(&[1]));
        assert_eq!(batch[1], m.predict_one(&[2, 3, 4, 5, 6]));
    }

    #[test]
    fn training_reduces_loss() {
        let mut m = tiny();
        m.zero_grad();
        let mut data: Vec<(Vec<u32>, f32)> = Vec::new();
        for i in 1..30u32 {
            data.push((vec![0, i], 0.9));
            data.push((vec![i, i + 30], 0.1));
        }
        let mut opt = Optimizer::adam(5e-3);
        let mut rng = StdRng::seed_from_u64(2);
        let first = m.train_epoch(&data, Loss::Mse, &mut opt, 8, &mut rng);
        let mut last = first;
        for _ in 0..40 {
            last = m.train_epoch(&data, Loss::Mse, &mut opt, 8, &mut rng);
        }
        assert!(last < first * 0.6, "loss {first} -> {last}");
        assert!(m.predict_one(&[0, 7]) > m.predict_one(&[7, 37]));
    }

    #[test]
    fn stacked_sabs_work() {
        let m = SetTransformer::new(SetTransformerConfig {
            vocab: 32,
            dim: 4,
            num_sabs: 3,
            rho_hidden: vec![],
            output_activation: Activation::Identity,
            seed: 5,
        });
        let v = m.predict_one(&[1, 2, 3]);
        assert!(v.is_finite());
        assert_eq!(v, m.predict_one(&[3, 2, 1]));
    }

    #[test]
    fn serde_roundtrip() {
        let m = tiny();
        let json = serde_json::to_string(&m).unwrap();
        let back: SetTransformer = serde_json::from_str(&json).unwrap();
        assert_eq!(m.predict_one(&[4, 5]), back.predict_one(&[4, 5]));
    }

    #[test]
    #[should_panic(expected = "empty set")]
    fn empty_set_rejected() {
        let m = tiny();
        let _ = m.predict_one(&[]);
    }
}
