//! Sharded set collections (ROADMAP "Sharded collections").
//!
//! A [`ShardedCollection`] partitions a [`SetCollection`] across N shards by
//! set position — hash (uniform, order-free) or range (contiguous chunks) —
//! so training and serving scale past one resident copy. Routing is
//! pluggable via [`ShardRouter`]; the built-in routers cover the two CLI
//! policies (`--shard-by hash|range`).
//!
//! Queries over set *content* (subset membership, cardinality) cannot be
//! routed to a single shard — any shard may hold a matching set — so the
//! per-shard task models in [`crate::tasks::sharded`] fan a query out to
//! every shard and aggregate (min over global positions for the index, sum
//! for cardinality, any for membership). What sharding buys is per-shard
//! builds, per-shard worker pools, and shard-by-shard rolling hot-swap.

use serde::{Deserialize, Serialize};
use setlearn_data::SetCollection;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// Partitioning policy for a [`ShardedCollection`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ShardBy {
    /// Mix each set's position through splitmix64 and take it modulo the
    /// shard count: uniform occupancy, no ordering assumptions.
    #[default]
    Hash,
    /// Contiguous position ranges: shard `s` holds positions
    /// `[s·len/N, (s+1)·len/N)`. Preserves collection order inside a shard,
    /// so global positions are shard-local positions plus an offset.
    Range,
}

impl fmt::Display for ShardBy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ShardBy::Hash => "hash",
            ShardBy::Range => "range",
        })
    }
}

impl FromStr for ShardBy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "hash" => Ok(ShardBy::Hash),
            "range" => Ok(ShardBy::Range),
            other => Err(format!("unknown shard policy '{other}' (expected hash|range)")),
        }
    }
}

/// How a collection is split: shard count plus routing policy. Embedded in
/// persisted sharded models so serving can re-derive the exact partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// Number of shards (≥ 1).
    pub shards: usize,
    /// Routing policy.
    pub by: ShardBy,
}

impl ShardSpec {
    /// A spec with the given shard count and policy.
    pub fn new(shards: usize, by: ShardBy) -> Self {
        ShardSpec { shards, by }
    }

    /// The built-in router implementing this spec's policy.
    pub fn router(&self) -> Box<dyn ShardRouter> {
        match self.by {
            ShardBy::Hash => Box::new(HashRouter),
            ShardBy::Range => Box::new(RangeRouter),
        }
    }
}

/// Pluggable routing: maps a set's global position to its shard.
///
/// Routing is by *position* (the stable set id in the collection's order),
/// not by content — content-addressed queries fan out to every shard
/// regardless, and position routing keeps the partition deterministic and
/// recomputable from `(collection, spec)` alone, so nothing but the spec
/// needs persisting.
pub trait ShardRouter: Send + Sync {
    /// Shard index in `0..num_shards` for the set at `position` out of
    /// `num_sets`.
    fn route(&self, position: usize, num_sets: usize, num_shards: usize) -> usize;
}

/// splitmix64 of the position, modulo the shard count.
#[derive(Debug, Clone, Copy, Default)]
pub struct HashRouter;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl ShardRouter for HashRouter {
    fn route(&self, position: usize, _num_sets: usize, num_shards: usize) -> usize {
        (splitmix64(position as u64) % num_shards as u64) as usize
    }
}

/// Contiguous position chunks of (near-)equal size.
#[derive(Debug, Clone, Copy, Default)]
pub struct RangeRouter;

impl ShardRouter for RangeRouter {
    fn route(&self, position: usize, num_sets: usize, num_shards: usize) -> usize {
        debug_assert!(position < num_sets);
        // position·N/len is monotone in position and spans 0..N exactly.
        position * num_shards / num_sets.max(1)
    }
}

/// Typed partition/build failures. Sharded builds return these instead of
/// panicking — an empty shard is an operator-fixable configuration problem
/// (too many shards, or a skewed router), not a programming error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// The spec asked for zero shards.
    ZeroShards,
    /// The router left `shard` with no sets (skewed hash or more shards than
    /// sets); per-shard models cannot train on an empty partition.
    EmptyShard {
        /// The shard the router left empty.
        shard: usize,
    },
    /// The router returned a shard index outside `0..num_shards`.
    RouteOutOfRange {
        /// The set position being routed.
        position: usize,
        /// The out-of-range shard the router returned.
        shard: usize,
        /// The configured shard count.
        shards: usize,
    },
    /// A membership workload routed to `shard` contained no positive
    /// queries, so its learned Bloom filter cannot train.
    NoPositives {
        /// The shard whose routed workload had no positives.
        shard: usize,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::ZeroShards => write!(f, "shard count must be >= 1"),
            ShardError::EmptyShard { shard } => write!(
                f,
                "shard {shard} is empty after partitioning; use fewer shards or a range router"
            ),
            ShardError::RouteOutOfRange { position, shard, shards } => write!(
                f,
                "router sent position {position} to shard {shard}, outside 0..{shards}"
            ),
            ShardError::NoPositives { shard } => write!(
                f,
                "no positive membership queries routed to shard {shard}; enlarge the workload or use fewer shards"
            ),
        }
    }
}

impl std::error::Error for ShardError {}

/// A [`SetCollection`] partitioned across shards, with shard-local → global
/// position maps so per-shard index answers can be lifted back to the
/// collection's coordinate space.
///
/// The partition is fully determined by `(collection, spec)` — it is
/// recomputed at load time rather than persisted alongside models.
#[derive(Debug, Clone)]
pub struct ShardedCollection {
    spec: ShardSpec,
    shards: Vec<Arc<SetCollection>>,
    /// `globals[s][local]` = the global position of shard `s`'s `local`-th
    /// set, in shard-local order.
    globals: Vec<Arc<Vec<usize>>>,
    total: usize,
}

impl ShardedCollection {
    /// Partitions with the spec's built-in router.
    pub fn partition(collection: &SetCollection, spec: ShardSpec) -> Result<Self, ShardError> {
        Self::partition_with(collection, spec, &*spec.router())
    }

    /// Partitions with a caller-supplied [`ShardRouter`]. Every shard must
    /// end up non-empty; a skewed router over a small collection yields
    /// [`ShardError::EmptyShard`] instead of a downstream training panic.
    pub fn partition_with(
        collection: &SetCollection,
        spec: ShardSpec,
        router: &dyn ShardRouter,
    ) -> Result<Self, ShardError> {
        if spec.shards == 0 {
            return Err(ShardError::ZeroShards);
        }
        let n = spec.shards;
        let mut raw: Vec<Vec<Vec<u32>>> = vec![Vec::new(); n];
        let mut globals: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (position, set) in collection.iter() {
            let shard = router.route(position, collection.len(), n);
            if shard >= n {
                return Err(ShardError::RouteOutOfRange { position, shard, shards: n });
            }
            raw[shard].push(set.to_vec());
            globals[shard].push(position);
        }
        if let Some(shard) = raw.iter().position(|sets| sets.is_empty()) {
            return Err(ShardError::EmptyShard { shard });
        }
        let shards = raw
            .into_iter()
            // Every shard keeps the full vocabulary so per-shard models
            // share input dimensions with an unsharded build.
            .map(|sets| Arc::new(SetCollection::new(sets, collection.num_elements())))
            .collect();
        Ok(ShardedCollection {
            spec,
            shards,
            globals: globals.into_iter().map(Arc::new).collect(),
            total: collection.len(),
        })
    }

    /// The spec this partition was built from.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard `s`'s collection.
    pub fn shard(&self, s: usize) -> &Arc<SetCollection> {
        &self.shards[s]
    }

    /// All shards, in shard order.
    pub fn shards(&self) -> &[Arc<SetCollection>] {
        &self.shards
    }

    /// Shard `s`'s local → global position map.
    pub fn globals(&self, s: usize) -> &Arc<Vec<usize>> {
        &self.globals[s]
    }

    /// Total sets across all shards (= the source collection's length).
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether the partition holds no sets.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The source vocabulary size (shared by every shard).
    pub fn num_elements(&self) -> u32 {
        self.shards[0].num_elements()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setlearn_data::GeneratorConfig;

    fn collection(n: usize) -> SetCollection {
        GeneratorConfig::sd(n, 5).generate()
    }

    #[test]
    fn partitions_are_disjoint_and_complete() {
        let c = collection(97);
        for by in [ShardBy::Hash, ShardBy::Range] {
            for n in [1, 2, 7] {
                let sharded =
                    ShardedCollection::partition(&c, ShardSpec::new(n, by)).unwrap();
                assert_eq!(sharded.num_shards(), n);
                assert_eq!(sharded.len(), c.len());
                let mut seen = vec![false; c.len()];
                for s in 0..n {
                    let shard = sharded.shard(s);
                    let globals = sharded.globals(s);
                    assert_eq!(shard.len(), globals.len());
                    for (local, &global) in globals.iter().enumerate() {
                        assert!(!seen[global], "position {global} routed twice");
                        seen[global] = true;
                        assert_eq!(shard.get(local), c.get(global));
                    }
                }
                assert!(seen.iter().all(|&s| s), "some position unrouted ({by}, {n})");
            }
        }
    }

    #[test]
    fn range_shards_are_contiguous() {
        let c = collection(50);
        let sharded =
            ShardedCollection::partition(&c, ShardSpec::new(4, ShardBy::Range)).unwrap();
        let mut next = 0;
        for s in 0..4 {
            for &global in sharded.globals(s).iter() {
                assert_eq!(global, next, "range shard {s} not contiguous");
                next += 1;
            }
        }
        assert_eq!(next, c.len());
    }

    #[test]
    fn single_range_shard_is_the_whole_collection() {
        let c = collection(30);
        let sharded =
            ShardedCollection::partition(&c, ShardSpec::new(1, ShardBy::Range)).unwrap();
        assert_eq!(sharded.shard(0).len(), c.len());
        for (i, s) in c.iter() {
            assert_eq!(sharded.shard(0).get(i), s);
        }
    }

    #[test]
    fn empty_shard_is_a_typed_error_not_a_panic() {
        // More shards than sets: some shard must be empty under any router.
        let c = collection(3);
        let err = ShardedCollection::partition(&c, ShardSpec::new(7, ShardBy::Hash))
            .expect_err("3 sets over 7 shards must leave a shard empty");
        assert!(matches!(err, ShardError::EmptyShard { .. }), "got {err:?}");
        // A deliberately skewed router empties shard 1 even when counts fit.
        struct Skewed;
        impl ShardRouter for Skewed {
            fn route(&self, _p: usize, _n: usize, _k: usize) -> usize {
                0
            }
        }
        let c = collection(20);
        let err =
            ShardedCollection::partition_with(&c, ShardSpec::new(2, ShardBy::Hash), &Skewed)
                .expect_err("skewed router must be rejected");
        assert_eq!(err, ShardError::EmptyShard { shard: 1 });
    }

    #[test]
    fn zero_shards_rejected() {
        let c = collection(5);
        let err = ShardedCollection::partition(&c, ShardSpec::new(0, ShardBy::Hash))
            .expect_err("zero shards must be rejected");
        assert_eq!(err, ShardError::ZeroShards);
    }

    #[test]
    fn shard_by_round_trips_through_str() {
        for by in [ShardBy::Hash, ShardBy::Range] {
            assert_eq!(by.to_string().parse::<ShardBy>().unwrap(), by);
        }
        assert!("zone".parse::<ShardBy>().is_err());
    }
}
