//! Hybrid-structure machinery (paper §6): guided learning with iterative
//! outlier removal, and per-range local error bounds.
//!
//! The hybrid structure combines a learned model trained on the "learnable"
//! part of the data with an auxiliary exact structure holding the outliers
//! the model cannot fit. Task-specific hybrids live in [`crate::tasks`];
//! this module provides the shared training loop and the error-bound table.

use crate::model::DeepSets;
use crate::monitor::DriftMonitor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use setlearn_data::ElementSet;
use setlearn_nn::{Decision, Loss, Optimizer, TrainHarness, TrainPolicy, TrainReport};
use std::sync::atomic::{AtomicU64, Ordering};

/// Configuration of the guided-learning process.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GuidedConfig {
    /// Warm-up epochs before the first outlier sweep.
    pub warmup_epochs: usize,
    /// Outlier-removal iterations after warm-up.
    pub rounds: usize,
    /// Epochs between successive sweeps (and after the last).
    pub epochs_per_round: usize,
    /// Keep-fraction per sweep: samples whose error exceeds this percentile
    /// of the current error distribution move to the auxiliary structure.
    /// `1.0` disables removal (the paper's "No Removal" column).
    pub percentile: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for GuidedConfig {
    fn default() -> Self {
        GuidedConfig {
            warmup_epochs: 20,
            rounds: 1,
            epochs_per_round: 20,
            percentile: 0.90,
            batch_size: 64,
            learning_rate: 1e-3,
            seed: 7,
        }
    }
}

/// Outcome of guided training.
#[derive(Debug, Clone)]
pub struct GuidedOutcome {
    /// Indices (into the original training data) moved to the auxiliary
    /// structure.
    pub outlier_indices: Vec<usize>,
    /// Mean training loss after every epoch.
    pub loss_history: Vec<f32>,
}

/// Trains `model` on `data` with iterative outlier removal; returns which
/// samples were exiled. `data` targets must already be scaled.
pub fn guided_train(
    model: &mut DeepSets,
    data: &[(ElementSet, f32)],
    loss: Loss,
    cfg: &GuidedConfig,
) -> GuidedOutcome {
    assert!(!data.is_empty(), "guided training needs data");
    assert!(
        (0.0..=1.0).contains(&cfg.percentile),
        "percentile must be within [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut opt = Optimizer::adam(cfg.learning_rate);
    model.zero_grad();

    // Active sample indices; shrinks as outliers are exiled.
    let mut active: Vec<usize> = (0..data.len()).collect();
    let mut outliers: Vec<usize> = Vec::new();
    let mut history = Vec::new();

    let run_epochs = |model: &mut DeepSets,
                          active: &[usize],
                          epochs: usize,
                          history: &mut Vec<f32>,
                          rng: &mut StdRng,
                          opt: &mut Optimizer| {
        let view: Vec<(&[u32], f32)> =
            active.iter().map(|&i| (&*data[i].0, data[i].1)).collect();
        for _ in 0..epochs {
            history.push(model.train_epoch(&view, loss, opt, cfg.batch_size, rng));
        }
    };

    run_epochs(model, &active, cfg.warmup_epochs, &mut history, &mut rng, &mut opt);

    for _ in 0..cfg.rounds {
        if cfg.percentile < 1.0 && active.len() > 1 {
            // Error sweep over the active samples.
            let view: Vec<(&[u32], f32)> =
                active.iter().map(|&i| (&*data[i].0, data[i].1)).collect();
            let errors = model.per_sample_losses(&view, loss);
            let mut sorted = errors.clone();
            sorted.sort_by(|a, b| a.total_cmp(b));
            let cut_idx =
                ((sorted.len() as f64 - 1.0) * cfg.percentile).floor() as usize;
            let threshold = sorted[cut_idx];
            let (keep, exile): (Vec<usize>, Vec<usize>) = active
                .iter()
                .zip(errors.iter())
                .partition_map(|(&i, &e)| if e <= threshold { Ok(i) } else { Err(i) });
            outliers.extend(exile);
            // Never empty the training set: the hybrid degenerates to a pure
            // auxiliary structure at the caller level instead.
            if !keep.is_empty() {
                active = keep;
            }
        }
        run_epochs(model, &active, cfg.epochs_per_round, &mut history, &mut rng, &mut opt);
    }

    GuidedOutcome { outlier_indices: outliers, loss_history: history }
}

/// Fault-tolerant variant of [`guided_train`]: the same guided-learning
/// schedule (warm-up, outlier sweeps, fine-tuning) driven through a
/// [`TrainHarness`], so non-finite losses/gradients are skipped, divergence
/// restores the last-good snapshot and backs the learning rate off, and the
/// caller gets a structured [`TrainReport`] next to the usual outcome.
///
/// `policy.max_epochs` is overridden with the schedule's total epoch count;
/// every other knob (recovery budget, backoff, patience) is honored. On a
/// clean run the training trajectory is identical to [`guided_train`]'s.
pub fn guided_train_hardened(
    model: &mut DeepSets,
    data: &[(ElementSet, f32)],
    loss: Loss,
    cfg: &GuidedConfig,
    policy: &TrainPolicy,
) -> (GuidedOutcome, TrainReport) {
    assert!(!data.is_empty(), "guided training needs data");
    assert!(
        (0.0..=1.0).contains(&cfg.percentile),
        "percentile must be within [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut opt = Optimizer::adam(cfg.learning_rate);
    model.zero_grad();

    let total_epochs = cfg.warmup_epochs + cfg.rounds * cfg.epochs_per_round;
    let mut policy = policy.clone();
    policy.max_epochs = total_epochs.max(1);
    let mut harness = TrainHarness::new(policy, opt.learning_rate());

    let mut active: Vec<usize> = (0..data.len()).collect();
    let mut outliers: Vec<usize> = Vec::new();
    let mut stopped = false;

    let run_epochs = |model: &mut DeepSets,
                          active: &[usize],
                          epochs: usize,
                          harness: &mut TrainHarness,
                          rng: &mut StdRng,
                          opt: &mut Optimizer,
                          stopped: &mut bool| {
        if *stopped {
            return;
        }
        let view: Vec<(&[u32], f32)> =
            active.iter().map(|&i| (&*data[i].0, data[i].1)).collect();
        for _ in 0..epochs {
            opt.set_learning_rate(harness.lr());
            let stats = model.train_epoch_guarded(&view, loss, opt, cfg.batch_size, rng, None);
            match harness.end_epoch(&stats, || model.snapshot_weights()) {
                Decision::Continue => {}
                Decision::Restore(snapshot) => {
                    if !snapshot.is_empty() {
                        model
                            .load_weight_buffers(&snapshot)
                            .expect("snapshot matches model");
                    }
                    model.reset_optimizer_state();
                    model.zero_grad();
                }
                Decision::Stop(_) => {
                    *stopped = true;
                    return;
                }
            }
        }
    };

    run_epochs(model, &active, cfg.warmup_epochs, &mut harness, &mut rng, &mut opt, &mut stopped);

    for _ in 0..cfg.rounds {
        if cfg.percentile < 1.0 && active.len() > 1 {
            let view: Vec<(&[u32], f32)> =
                active.iter().map(|&i| (&*data[i].0, data[i].1)).collect();
            let errors = model.per_sample_losses(&view, loss);
            let mut sorted = errors.clone();
            sorted.sort_by(|a, b| a.total_cmp(b));
            let cut_idx = ((sorted.len() as f64 - 1.0) * cfg.percentile).floor() as usize;
            let threshold = sorted[cut_idx];
            let (keep, exile): (Vec<usize>, Vec<usize>) = active
                .iter()
                .zip(errors.iter())
                .partition_map(|(&i, &e)| if e <= threshold { Ok(i) } else { Err(i) });
            outliers.extend(exile);
            if !keep.is_empty() {
                active = keep;
            }
        }
        run_epochs(
            model,
            &active,
            cfg.epochs_per_round,
            &mut harness,
            &mut rng,
            &mut opt,
            &mut stopped,
        );
    }

    let (report, best) = harness.finish_with_best();
    // Guided learning wants the *final* weights (they reflect the last
    // retained set), but a run whose tail diverged must not ship poisoned
    // weights — fall back to the best snapshot.
    if model.has_non_finite_weights() {
        if let Some(best) = best {
            model.load_weight_buffers(&best).expect("snapshot matches model");
        }
    }
    let history = report.loss_history.clone();
    (GuidedOutcome { outlier_indices: outliers, loss_history: history }, report)
}

/// Automatic outlier-threshold selection (paper §6: "the threshold is guided
/// by a defined error that we want to reach and can be set manually or
/// automatically", targeting a q-error in `[1, 1.4]` for the index task).
///
/// Trains with the warm-up schedule, then — instead of a fixed percentile —
/// finds the *largest* retained fraction whose mean per-sample loss meets
/// `target_mean_loss`, exiles the rest, and fine-tunes on the retained set.
/// Returns the outcome plus the fraction that was kept.
pub fn guided_train_auto(
    model: &mut DeepSets,
    data: &[(ElementSet, f32)],
    loss: Loss,
    cfg: &GuidedConfig,
    target_mean_loss: f32,
) -> (GuidedOutcome, f64) {
    assert!(!data.is_empty(), "guided training needs data");
    assert!(target_mean_loss > 0.0, "target loss must be positive");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut opt = Optimizer::adam(cfg.learning_rate);
    model.zero_grad();

    let view: Vec<(&[u32], f32)> = data.iter().map(|(s, t)| (&**s, *t)).collect();
    let mut history = Vec::new();
    for _ in 0..cfg.warmup_epochs {
        history.push(model.train_epoch(&view, loss, &mut opt, cfg.batch_size, &mut rng));
    }

    // One error sweep; sort ascending so prefix means are monotone, then
    // take the longest prefix whose mean meets the target.
    let errors = model.per_sample_losses(&view, loss);
    let mut order: Vec<usize> = (0..errors.len()).collect();
    order.sort_by(|&a, &b| errors[a].total_cmp(&errors[b]));
    let mut keep = 0usize;
    let mut running = 0.0f64;
    for (count, &i) in order.iter().enumerate() {
        running += errors[i] as f64;
        if running / (count + 1) as f64 <= target_mean_loss as f64 {
            keep = count + 1;
        }
    }
    // Never train on nothing; at worst keep the single best sample (the
    // structure then effectively degenerates to its auxiliary part).
    keep = keep.max(1);
    let (kept, exiled) = order.split_at(keep);
    let outliers: Vec<usize> = exiled.to_vec();

    let retained: Vec<(&[u32], f32)> =
        kept.iter().map(|&i| (&*data[i].0, data[i].1)).collect();
    for _ in 0..cfg.epochs_per_round.max(1) * cfg.rounds.max(1) {
        history.push(model.train_epoch(&retained, loss, &mut opt, cfg.batch_size, &mut rng));
    }

    let fraction = keep as f64 / data.len() as f64;
    (GuidedOutcome { outlier_indices: outliers, loss_history: history }, fraction)
}

/// Tiny local partition helper (avoids pulling in itertools).
trait PartitionMapExt<T>: Iterator<Item = T> + Sized {
    fn partition_map<A, F: FnMut(T) -> Result<A, A>>(self, mut f: F) -> (Vec<A>, Vec<A>) {
        let mut ok = Vec::new();
        let mut err = Vec::new();
        for item in self {
            match f(item) {
                Ok(a) => ok.push(a),
                Err(a) => err.push(a),
            }
        }
        (ok, err)
    }
}
impl<I: Iterator + Sized> PartitionMapExt<I::Item> for I {}

/// Per-range local error bounds over the prediction domain (paper §6 and
/// §8.3.3 "Local error vs Global error").
///
/// A single global `max_error` forces every lookup to scan the widest
/// mispredicted window; bucketing the prediction domain into equal ranges
/// keeps one large outlier from widening every other search.
///
/// ```
/// use setlearn::hybrid::LocalErrorBounds;
///
/// // Accurate everywhere except one catastrophic estimate near 95.
/// let mut pairs: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, i as f64 + 1.0)).collect();
/// pairs.push((95.0, 500.0));
/// let bounds = LocalErrorBounds::compute(&pairs, 10.0);
/// assert_eq!(bounds.bound_for(5.0), 1.0);       // unaffected bucket
/// assert_eq!(bounds.global_bound(), 405.0);     // what one bound would pay
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocalErrorBounds {
    min_val: f64,
    range_length: f64,
    /// Maximum absolute error per bucket.
    errors: Vec<f64>,
}

impl LocalErrorBounds {
    /// Computes bounds from `(estimate, truth)` pairs bucketed by estimate.
    ///
    /// # Panics
    /// If `range_length <= 0` or no pairs are given.
    pub fn compute(pairs: &[(f64, f64)], range_length: f64) -> Self {
        assert!(range_length > 0.0, "range length must be positive");
        assert!(!pairs.is_empty(), "no estimate/truth pairs");
        let min_val = pairs.iter().map(|&(e, _)| e).fold(f64::INFINITY, f64::min);
        let max_val = pairs.iter().map(|&(e, _)| e).fold(f64::NEG_INFINITY, f64::max);
        let buckets = (((max_val - min_val) / range_length).floor() as usize) + 1;
        let mut errors = vec![0.0f64; buckets];
        for &(est, truth) in pairs {
            let b = (((est - min_val) / range_length).floor() as usize).min(buckets - 1);
            errors[b] = errors[b].max((est - truth).abs());
        }
        LocalErrorBounds { min_val, range_length, errors }
    }

    /// The error bound applying to an estimate (Algorithm 2, line 5–6).
    /// Estimates outside the observed domain fall into the edge buckets.
    pub fn bound_for(&self, estimate: f64) -> f64 {
        let b = ((estimate - self.min_val) / self.range_length).floor();
        let idx = if b < 0.0 { 0 } else { (b as usize).min(self.errors.len() - 1) };
        self.errors[idx]
    }

    /// Global maximum error — what a single-bound structure would use.
    pub fn global_bound(&self) -> f64 {
        self.errors.iter().copied().fold(0.0, f64::max)
    }

    /// Mean per-bucket bound — the quantity the paper reports when
    /// contrasting local vs global errors (§8.3.3).
    pub fn mean_bound(&self) -> f64 {
        self.errors.iter().sum::<f64>() / self.errors.len() as f64
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.errors.len()
    }

    /// Serialized size in bytes (one `f64` per bucket plus the header).
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.errors.len() * std::mem::size_of::<f64>()
    }
}

/// Why a served prediction was rejected and answered by the auxiliary
/// (exact) path instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FallbackReason {
    /// The model produced NaN or ±∞.
    NonFinite,
    /// The prediction fell outside the structure's valid output domain.
    OutOfBounds,
}

/// Serve-time prediction guard for hybrid structures.
///
/// A deployed model can go bad — weights corrupted on disk, NaN introduced
/// by a poisoned update, drift pushing predictions far outside the trained
/// domain. The guard checks every model output against the valid domain
/// `[lo, hi]` established at build time and reroutes offenders to the
/// auxiliary exact structure, counting the events so a [`DriftMonitor`] can
/// raise the retrain signal when fallbacks pile up.
///
/// Counters are atomic: serving stays `&self` and thread-safe.
#[derive(Debug, Serialize, Deserialize)]
pub struct ServeGuard {
    lo: f64,
    hi: f64,
    #[serde(skip)]
    served: AtomicU64,
    #[serde(skip)]
    non_finite: AtomicU64,
    #[serde(skip)]
    out_of_bounds: AtomicU64,
}

impl Clone for ServeGuard {
    fn clone(&self) -> Self {
        ServeGuard {
            lo: self.lo,
            hi: self.hi,
            served: AtomicU64::new(self.served.load(Ordering::Relaxed)),
            non_finite: AtomicU64::new(self.non_finite.load(Ordering::Relaxed)),
            out_of_bounds: AtomicU64::new(self.out_of_bounds.load(Ordering::Relaxed)),
        }
    }
}

impl Default for ServeGuard {
    /// A permissive guard that only rejects non-finite predictions (used
    /// when deserializing structures persisted before guards existed).
    fn default() -> Self {
        ServeGuard {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
            served: AtomicU64::new(0),
            non_finite: AtomicU64::new(0),
            out_of_bounds: AtomicU64::new(0),
        }
    }
}

impl ServeGuard {
    /// Builds a guard for the valid output domain `[lo, hi]`.
    ///
    /// # Panics
    /// If the bounds are NaN or inverted.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(!lo.is_nan() && !hi.is_nan(), "guard bounds must not be NaN");
        assert!(lo <= hi, "inverted guard bounds: [{lo}, {hi}]");
        ServeGuard { lo, hi, ..Self::default() }
    }

    /// Checks a prediction: `Ok` passes it through, `Err` means the caller
    /// must answer from the auxiliary structure. Counts both outcomes.
    pub fn admit(&self, prediction: f64) -> Result<f64, FallbackReason> {
        self.served.fetch_add(1, Ordering::Relaxed);
        if !prediction.is_finite() {
            self.non_finite.fetch_add(1, Ordering::Relaxed);
            return Err(FallbackReason::NonFinite);
        }
        if prediction < self.lo || prediction > self.hi {
            self.out_of_bounds.fetch_add(1, Ordering::Relaxed);
            return Err(FallbackReason::OutOfBounds);
        }
        Ok(prediction)
    }

    /// Like [`ServeGuard::admit`], but degrades instead of failing: an
    /// out-of-bound prediction is clamped into the domain and a non-finite
    /// one becomes the domain's lower bound. The reason (if any) still
    /// reports the event so the caller can feed a monitor.
    pub fn admit_or_clamp(&self, prediction: f64) -> (f64, Option<FallbackReason>) {
        match self.admit(prediction) {
            Ok(p) => (p, None),
            Err(FallbackReason::NonFinite) => {
                (if self.lo.is_finite() { self.lo } else { 0.0 }, Some(FallbackReason::NonFinite))
            }
            Err(FallbackReason::OutOfBounds) => {
                (prediction.clamp(self.lo, self.hi), Some(FallbackReason::OutOfBounds))
            }
        }
    }

    /// Records a fallback into a drift monitor (convenience for serve paths
    /// holding an optional monitor).
    pub fn notify(reason: Option<FallbackReason>, monitor: Option<&mut DriftMonitor>) {
        if let (Some(_), Some(m)) = (reason, monitor) {
            m.record_fallback();
        }
    }

    /// Total predictions checked.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Non-finite rejections.
    pub fn non_finite_fallbacks(&self) -> u64 {
        self.non_finite.load(Ordering::Relaxed)
    }

    /// Out-of-bounds rejections.
    pub fn out_of_bounds_fallbacks(&self) -> u64 {
        self.out_of_bounds.load(Ordering::Relaxed)
    }

    /// Total rejections of either kind.
    pub fn fallbacks(&self) -> u64 {
        self.non_finite_fallbacks() + self.out_of_bounds_fallbacks()
    }

    /// Fraction of served predictions that fell back (`0.0` before any
    /// serve).
    pub fn fallback_fraction(&self) -> f64 {
        let served = self.served();
        if served == 0 {
            return 0.0;
        }
        self.fallbacks() as f64 / served as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CompressionKind, DeepSetsConfig};
    use setlearn_data::normalize;

    #[test]
    fn local_bounds_isolate_outliers() {
        // Accurate everywhere except around estimate ~95.
        let mut pairs: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, i as f64 + 1.0)).collect();
        pairs.push((95.0, 500.0));
        let bounds = LocalErrorBounds::compute(&pairs, 10.0);
        assert_eq!(bounds.global_bound(), 405.0);
        // Buckets far from the outlier keep their small bound.
        assert_eq!(bounds.bound_for(5.0), 1.0);
        assert_eq!(bounds.bound_for(95.0), 405.0);
        assert!(bounds.mean_bound() < bounds.global_bound());
    }

    #[test]
    fn bound_for_clamps_out_of_domain_estimates() {
        let bounds = LocalErrorBounds::compute(&[(0.0, 1.0), (100.0, 100.0)], 10.0);
        assert_eq!(bounds.bound_for(-50.0), bounds.bound_for(0.0));
        assert_eq!(bounds.bound_for(1e9), bounds.bound_for(100.0));
    }

    #[test]
    fn guided_training_exiles_the_hard_samples() {
        // Learnable pattern: target = presence of element 0. Poisoned
        // samples get inverted targets, so they stay high-error.
        let mut data: Vec<(ElementSet, f32)> = Vec::new();
        for i in 1..60u32 {
            data.push((normalize(vec![0, i]), 0.9));
            data.push((normalize(vec![i, i + 64]), 0.1));
        }
        // Four poisoned samples.
        for i in 200..204u32 {
            data.push((normalize(vec![0, i % 60 + 1]), 0.1));
        }
        let cfg = DeepSetsConfig {
            vocab: 256,
            embedding_dim: 4,
            phi_hidden: vec![16],
            rho_hidden: vec![16],
            pooling: crate::model::Pooling::Sum,
            hidden_activation: setlearn_nn::Activation::Tanh,
            output_activation: setlearn_nn::Activation::Sigmoid,
            compression: CompressionKind::None,
            seed: 3,
        };
        let mut model = DeepSets::new(cfg);
        let gcfg = GuidedConfig {
            warmup_epochs: 30,
            rounds: 1,
            epochs_per_round: 10,
            percentile: 0.95,
            batch_size: 16,
            learning_rate: 0.01,
            seed: 1,
        };
        let outcome = guided_train(&mut model, &data, Loss::Mse, &gcfg);
        assert!(!outcome.outlier_indices.is_empty());
        // The poisoned samples (last four) should be among the exiles.
        let poisoned: Vec<usize> = (data.len() - 4..data.len()).collect();
        let caught = poisoned
            .iter()
            .filter(|i| outcome.outlier_indices.contains(i))
            .count();
        assert!(caught >= 3, "caught only {caught} of 4 poisoned samples");
        // Loss history recorded for every epoch.
        assert_eq!(outcome.loss_history.len(), 40);
    }

    #[test]
    fn auto_threshold_meets_the_target_on_retained_samples() {
        // Mixed data: a learnable rule plus poisoned samples.
        let mut data: Vec<(ElementSet, f32)> = Vec::new();
        for i in 1..50u32 {
            data.push((normalize(vec![0, i]), 0.9));
            data.push((normalize(vec![i, i + 64]), 0.1));
        }
        for i in 0..6u32 {
            data.push((normalize(vec![0, (i * 7) % 49 + 1, 120 + i]), 0.1));
        }
        let mut model = DeepSets::new(DeepSetsConfig {
            vocab: 256,
            embedding_dim: 4,
            phi_hidden: vec![16],
            rho_hidden: vec![16],
            pooling: crate::model::Pooling::Sum,
            hidden_activation: setlearn_nn::Activation::Tanh,
            output_activation: setlearn_nn::Activation::Sigmoid,
            compression: CompressionKind::None,
            seed: 3,
        });
        let cfg = GuidedConfig {
            warmup_epochs: 40,
            rounds: 1,
            epochs_per_round: 15,
            percentile: 0.9, // ignored by the auto variant
            batch_size: 16,
            learning_rate: 0.01,
            seed: 1,
        };
        let target = 0.02; // mean MSE target
        let (outcome, fraction) = guided_train_auto(&mut model, &data, Loss::Mse, &cfg, target);
        assert!(fraction > 0.5, "kept only {fraction}");
        // The retained samples actually meet the target at sweep time.
        let retained: Vec<(ElementSet, f32)> = data
            .iter()
            .enumerate()
            .filter(|(i, _)| !outcome.outlier_indices.contains(i))
            .map(|(_, d)| d.clone())
            .collect();
        let mean: f32 = model
            .per_sample_losses(&retained, Loss::Mse)
            .iter()
            .sum::<f32>()
            / retained.len() as f32;
        // Fine-tuning only improves the retained set; allow slack for drift.
        assert!(mean < target * 2.0, "retained mean loss {mean}");
    }

    #[test]
    fn auto_threshold_with_impossible_target_exiles_almost_everything() {
        let data: Vec<(ElementSet, f32)> =
            (1..40u32).map(|i| (normalize(vec![i]), (i % 2) as f32)).collect();
        let mut model = DeepSets::new(DeepSetsConfig::lsm(64));
        let cfg = GuidedConfig {
            warmup_epochs: 2,
            rounds: 1,
            epochs_per_round: 1,
            percentile: 1.0,
            batch_size: 8,
            learning_rate: 0.01,
            seed: 2,
        };
        let (outcome, fraction) = guided_train_auto(&mut model, &data, Loss::Mse, &cfg, 1e-9);
        assert!(fraction <= 0.1, "fraction {fraction}");
        assert!(outcome.outlier_indices.len() >= data.len() - 2);
    }

    #[test]
    fn hardened_guided_training_matches_plain_on_clean_data() {
        let mut data: Vec<(ElementSet, f32)> = Vec::new();
        for i in 1..40u32 {
            data.push((normalize(vec![0, i]), 0.9));
            data.push((normalize(vec![i, i + 64]), 0.1));
        }
        let cfg = DeepSetsConfig {
            vocab: 256,
            embedding_dim: 4,
            phi_hidden: vec![16],
            rho_hidden: vec![16],
            pooling: crate::model::Pooling::Sum,
            hidden_activation: setlearn_nn::Activation::Tanh,
            output_activation: setlearn_nn::Activation::Sigmoid,
            compression: CompressionKind::None,
            seed: 3,
        };
        let gcfg = GuidedConfig {
            warmup_epochs: 10,
            rounds: 1,
            epochs_per_round: 5,
            percentile: 0.9,
            batch_size: 16,
            learning_rate: 0.01,
            seed: 1,
        };
        let mut plain = DeepSets::new(cfg.clone());
        let plain_outcome = guided_train(&mut plain, &data, Loss::Mse, &gcfg);
        let mut hardened = DeepSets::new(cfg);
        let (outcome, report) = guided_train_hardened(
            &mut hardened,
            &data,
            Loss::Mse,
            &gcfg,
            &setlearn_nn::TrainPolicy::default(),
        );
        // A clean run is bit-identical to the unhardened path.
        assert_eq!(outcome.loss_history, plain_outcome.loss_history);
        assert_eq!(outcome.outlier_indices, plain_outcome.outlier_indices);
        assert_eq!(hardened.weight_buffers(), plain.weight_buffers());
        assert_eq!(report.recoveries, 0);
        assert_eq!(report.epochs_run, 15);
        assert!(report.is_healthy());
    }

    #[test]
    fn serve_guard_admits_in_domain_predictions() {
        let g = ServeGuard::new(0.0, 100.0);
        assert_eq!(g.admit(42.0), Ok(42.0));
        assert_eq!(g.admit(0.0), Ok(0.0));
        assert_eq!(g.admit(100.0), Ok(100.0));
        assert_eq!(g.served(), 3);
        assert_eq!(g.fallbacks(), 0);
        assert_eq!(g.fallback_fraction(), 0.0);
    }

    #[test]
    fn serve_guard_rejects_and_counts_bad_predictions() {
        let g = ServeGuard::new(0.0, 100.0);
        assert_eq!(g.admit(f64::NAN), Err(FallbackReason::NonFinite));
        assert_eq!(g.admit(f64::INFINITY), Err(FallbackReason::NonFinite));
        assert_eq!(g.admit(-5.0), Err(FallbackReason::OutOfBounds));
        assert_eq!(g.admit(1e9), Err(FallbackReason::OutOfBounds));
        assert_eq!(g.admit(50.0), Ok(50.0));
        assert_eq!(g.non_finite_fallbacks(), 2);
        assert_eq!(g.out_of_bounds_fallbacks(), 2);
        assert_eq!(g.fallback_fraction(), 0.8);
    }

    #[test]
    fn serve_guard_clamps_when_degrading() {
        let g = ServeGuard::new(1.0, 10.0);
        assert_eq!(g.admit_or_clamp(5.0), (5.0, None));
        assert_eq!(g.admit_or_clamp(-3.0), (1.0, Some(FallbackReason::OutOfBounds)));
        assert_eq!(g.admit_or_clamp(99.0), (10.0, Some(FallbackReason::OutOfBounds)));
        assert_eq!(g.admit_or_clamp(f64::NAN), (1.0, Some(FallbackReason::NonFinite)));
    }

    #[test]
    fn serve_guard_feeds_the_drift_monitor() {
        use crate::monitor::{MonitorConfig, RetrainReason};
        let g = ServeGuard::new(0.0, 1.0);
        let mut monitor = crate::monitor::DriftMonitor::new(
            1.1,
            MonitorConfig { max_fallbacks: 3, ..MonitorConfig::default() },
        );
        for _ in 0..3 {
            let (_, reason) = g.admit_or_clamp(f64::NAN);
            ServeGuard::notify(reason, Some(&mut monitor));
        }
        assert_eq!(monitor.should_retrain(), Some(RetrainReason::ServeFallbacks));
    }

    #[test]
    fn serve_guard_counters_survive_cloning_but_not_serialization() {
        let g = ServeGuard::new(0.0, 1.0);
        let _ = g.admit(f64::NAN);
        let clone = g.clone();
        assert_eq!(clone.fallbacks(), 1);
        let json = serde_json::to_string(&g).unwrap();
        let back: ServeGuard = serde_json::from_str(&json).unwrap();
        // Bounds persist; counters are runtime-only.
        assert_eq!(back.admit(2.0), Err(FallbackReason::OutOfBounds));
        assert_eq!(back.fallbacks(), 1);
    }

    #[test]
    #[should_panic(expected = "inverted guard bounds")]
    fn serve_guard_rejects_inverted_bounds() {
        let _ = ServeGuard::new(10.0, 0.0);
    }

    #[test]
    fn percentile_one_disables_removal() {
        let data: Vec<(ElementSet, f32)> =
            (1..20u32).map(|i| (normalize(vec![i]), 0.5)).collect();
        let mut model = DeepSets::new(DeepSetsConfig::lsm(64));
        let cfg = GuidedConfig {
            warmup_epochs: 2,
            rounds: 2,
            epochs_per_round: 1,
            percentile: 1.0,
            batch_size: 8,
            learning_rate: 0.01,
            seed: 2,
        };
        let outcome = guided_train(&mut model, &data, Loss::Mse, &cfg);
        assert!(outcome.outlier_indices.is_empty());
    }
}
