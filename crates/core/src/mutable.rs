//! WAL-backed mutable collections: a durable write path over any learned
//! structure.
//!
//! [`MutableCollection<S>`] wraps a trained [`LearnedSetStructure`] built on
//! a base [`SetCollection`] and accepts `insert`/`delete` at serve time.
//! Every mutation is appended to a [`Wal`] and fsync'd **before** it is
//! acknowledged, then applied to an in-memory exact *delta overlay*. Queries
//! merge the learned model's [`QueryOutcome`] with the overlay's exact
//! answer, mirroring the PR 4 shard-aggregation semantics:
//!
//! - **cardinality** — sum-correction (`model + delta`), clamped at 0: the
//!   `LogMinMaxScaler`-backed estimate is non-negative but a delta with
//!   deletes can push the sum below zero, which no count ever is;
//! - **index** — first/last fold of the model position and the overlay's
//!   exact position for appended rows (appends live at positions
//!   `base_len + slot`, so coordinates stay stable until compaction);
//! - **bloom** — OR: an inserted member must be found immediately. Deletes
//!   cannot *unlearn* base membership until compaction (a Bloom filter has
//!   no deletion), which only costs false positives — never a false
//!   negative.
//!
//! Crash recovery ([`MutableCollection::open`]) replays surviving WAL
//! records against the checkpointed base, rebuilding the exact overlay —
//! no acknowledged write is lost. Compaction
//! ([`MutableCollection::begin_compaction`] /
//! [`MutableCollection::complete_compaction`]) folds the delta into a new
//! base, retrains, and advances the WAL's applied watermark so replayed
//! segments are deleted.
//!
//! Lock order is WAL mutex → state lock, everywhere: mutations hold the WAL
//! lock across the overlay apply so overlay slot order always equals
//! sequence order; queries take only the state read lock.

use crate::tasks::{
    aggregate_bloom, aggregate_cardinality, aggregate_index, IndexStructure, LearnedBloom,
    LearnedCardinality, LearnedSetStructure, PositionTarget, QueryOutcome, ShardIndexStructure,
    ShardedBloom, ShardedCardinality, ShardedIndexStructure,
};
use crate::telemetry::wal_tele;
use crate::wal::{Wal, WalConfig, WalError, WalOp, WalRecord};
use setlearn_data::{is_subset, normalize, ElementSet, SetCollection};
use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Why a mutation was rejected. WAL failures surface as-is; validation
/// failures are rejected *before* anything is logged, so a rejected
/// mutation leaves no trace on disk.
#[derive(Debug)]
pub enum MutateError {
    /// The durability layer failed; the mutation was not acknowledged.
    Wal(WalError),
    /// The set is empty after canonicalization.
    EmptySet,
    /// An element id falls outside the collection's vocabulary.
    OutOfVocab {
        /// The offending element id.
        id: u32,
        /// The exclusive vocabulary bound (`num_elements`).
        bound: u32,
    },
}

impl fmt::Display for MutateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MutateError::Wal(e) => write!(f, "mutation not durable: {e}"),
            MutateError::EmptySet => write!(f, "empty set after canonicalization"),
            MutateError::OutOfVocab { id, bound } => {
                write!(f, "element {id} outside vocabulary 0..{bound}")
            }
        }
    }
}

impl std::error::Error for MutateError {}

impl From<WalError> for MutateError {
    fn from(e: WalError) -> Self {
        MutateError::Wal(e)
    }
}

/// Acknowledgement of a durable mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutationAck {
    /// The WAL sequence the mutation committed at.
    pub seq: u64,
    /// Whether the mutation changed the logical collection (`false` for a
    /// delete of a set that has no remaining occurrence — logged and
    /// durable, but a no-op on replay too).
    pub applied: bool,
}

/// What recovery found when opening a mutable collection.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryReport {
    /// WAL records replayed into the overlay.
    pub replayed: usize,
    /// Replayed records skipped as invalid against the current base
    /// (wrong vocabulary, empty set) — counted, never a panic.
    pub skipped: usize,
    /// Whether WAL damage was truncated away during recovery.
    pub truncated: bool,
    /// The checkpoint watermark recovery replayed on top of.
    pub applied_seq: u64,
    /// The sequence the next mutation will receive.
    pub next_seq: u64,
}

/// Size/age of the pending delta, for compaction triggers.
#[derive(Debug, Clone, Copy)]
pub struct DeltaStats {
    /// WAL records not yet folded into a checkpoint.
    pub pending_ops: usize,
    /// Appended rows currently live (inserted, not re-deleted).
    pub live_inserts: usize,
    /// Base rows logically deleted.
    pub deleted_base_rows: usize,
    /// Age of the oldest pending mutation.
    pub oldest_pending: Option<Duration>,
    /// Rows in the checkpointed base.
    pub base_len: usize,
}

/// The overlay's exact answer for one query, produced by a linear scan of
/// the (small, pre-compaction) delta.
#[derive(Debug, Clone, Copy, Default)]
pub struct OverlayAnswer {
    /// Net change to the query's subset count: `+1` per live inserted
    /// superset, `-1` per deleted base-row occurrence that contains it.
    pub cardinality_delta: i64,
    /// First (lowest) appended position containing the query, in stable
    /// `base_len + slot` coordinates.
    pub first: Option<usize>,
    /// Last (highest) appended position containing the query.
    pub last: Option<usize>,
    /// Whether any live appended row contains the query.
    pub contains: bool,
}

/// Exact in-memory delta between the checkpointed base and the logical
/// collection: appended rows (with tombstones) plus per-set base delete
/// counts. Positions are stable — an appended row keeps position
/// `base_len + slot` even after later deletes — so index answers never
/// shift under a reader until compaction rebases everything at once.
#[derive(Debug)]
struct DeltaOverlay {
    base_len: usize,
    /// Appended rows in commit order; `false` marks a tombstone.
    inserts: Vec<(ElementSet, bool)>,
    live_inserts: usize,
    /// Canonical set → occurrences logically deleted from the base.
    base_deletes: HashMap<ElementSet, usize>,
    deleted_base_rows: usize,
}

impl DeltaOverlay {
    fn new(base_len: usize) -> Self {
        DeltaOverlay {
            base_len,
            inserts: Vec::new(),
            live_inserts: 0,
            base_deletes: HashMap::new(),
            deleted_base_rows: 0,
        }
    }

    fn insert(&mut self, set: ElementSet) {
        self.inserts.push((set, true));
        self.live_inserts += 1;
    }

    /// Deletes one occurrence: the most recent live appended copy first
    /// (exact undo), otherwise one more base occurrence — capped at how
    /// many the base actually holds. Returns whether anything was deleted.
    fn delete(&mut self, set: &[u32], base_occurrences: usize) -> bool {
        if let Some(slot) =
            self.inserts.iter().rposition(|(s, live)| *live && s.as_ref() == set)
        {
            self.inserts[slot].1 = false;
            self.live_inserts -= 1;
            return true;
        }
        let count = self.base_deletes.entry(set.to_vec().into_boxed_slice()).or_insert(0);
        if *count < base_occurrences {
            *count += 1;
            self.deleted_base_rows += 1;
            return true;
        }
        false
    }

    fn answer(&self, q: &[u32]) -> OverlayAnswer {
        let mut ans = OverlayAnswer::default();
        for (slot, (set, live)) in self.inserts.iter().enumerate() {
            if *live && is_subset(q, set) {
                let pos = self.base_len + slot;
                ans.cardinality_delta += 1;
                ans.first.get_or_insert(pos);
                ans.last = Some(pos);
                ans.contains = true;
            }
        }
        for (set, count) in &self.base_deletes {
            if is_subset(q, set) {
                ans.cardinality_delta -= *count as i64;
            }
        }
        ans
    }
}

/// Sum-correction with the satellite clamp: the model's
/// `LogMinMaxScaler`-backed estimate is ≥ 0, but adding a delete-heavy
/// delta can push the sum negative — and no count is. Flags aggregate
/// exactly as across shards.
fn merge_cardinality(model: QueryOutcome<f64>, delta: &OverlayAnswer) -> QueryOutcome<f64> {
    let merged =
        aggregate_cardinality(vec![model, QueryOutcome::clean(delta.cardinality_delta as f64)]);
    merged.map(|v| v.max(0.0))
}

/// OR-merge: the overlay is exact for appended rows, so a hit there is
/// authoritative. Base deletes are *not* subtracted — a Bloom filter cannot
/// unlearn, so membership of deleted rows persists (as false positives,
/// never false negatives) until compaction retrains.
fn merge_bloom(model: QueryOutcome<bool>, delta: &OverlayAnswer) -> QueryOutcome<bool> {
    aggregate_bloom(vec![model, QueryOutcome::clean(delta.contains)])
}

/// First/last fold of the model's base-coordinate answer with the overlay's
/// exact appended position, exactly as across shards: an overlay hit also
/// clears `bound_miss`, because a scan-window miss in the base is expected
/// when the answer lives in the delta.
fn merge_index(
    target: PositionTarget,
    model: QueryOutcome<Option<usize>>,
    delta: &OverlayAnswer,
) -> QueryOutcome<Option<usize>> {
    let overlay = match target {
        PositionTarget::First => delta.first,
        PositionTarget::Last => delta.last,
    };
    aggregate_index(target, vec![model, QueryOutcome::clean(overlay)])
}

/// A learned structure that knows how to merge its model answer with the
/// exact delta overlay. Implemented by every task head, sharded and
/// unsharded alike, with the same per-task semantics the shard aggregators
/// use (sum / first-last / OR).
pub trait DeltaMergeable: LearnedSetStructure {
    /// Merges the model's outcome for one query with the overlay's exact
    /// answer for the same query.
    fn merge_delta(
        &self,
        model: QueryOutcome<Self::Output>,
        delta: &OverlayAnswer,
    ) -> QueryOutcome<Self::Output>;
}

impl DeltaMergeable for LearnedCardinality {
    fn merge_delta(&self, model: QueryOutcome<f64>, delta: &OverlayAnswer) -> QueryOutcome<f64> {
        merge_cardinality(model, delta)
    }
}

impl DeltaMergeable for ShardedCardinality {
    fn merge_delta(&self, model: QueryOutcome<f64>, delta: &OverlayAnswer) -> QueryOutcome<f64> {
        merge_cardinality(model, delta)
    }
}

impl DeltaMergeable for LearnedBloom {
    fn merge_delta(&self, model: QueryOutcome<bool>, delta: &OverlayAnswer) -> QueryOutcome<bool> {
        merge_bloom(model, delta)
    }
}

impl DeltaMergeable for ShardedBloom {
    fn merge_delta(&self, model: QueryOutcome<bool>, delta: &OverlayAnswer) -> QueryOutcome<bool> {
        merge_bloom(model, delta)
    }
}

impl DeltaMergeable for IndexStructure {
    fn merge_delta(
        &self,
        model: QueryOutcome<Option<usize>>,
        delta: &OverlayAnswer,
    ) -> QueryOutcome<Option<usize>> {
        merge_index(self.index.target(), model, delta)
    }
}

impl DeltaMergeable for ShardIndexStructure {
    fn merge_delta(
        &self,
        model: QueryOutcome<Option<usize>>,
        delta: &OverlayAnswer,
    ) -> QueryOutcome<Option<usize>> {
        merge_index(self.structure.index.target(), model, delta)
    }
}

impl DeltaMergeable for ShardedIndexStructure {
    fn merge_delta(
        &self,
        model: QueryOutcome<Option<usize>>,
        delta: &OverlayAnswer,
    ) -> QueryOutcome<Option<usize>> {
        merge_index(self.target(), model, delta)
    }
}

/// Snapshot handed from [`MutableCollection::begin_compaction`] to the
/// retrainer and back into [`MutableCollection::complete_compaction`].
pub struct CompactionSnapshot {
    /// The merged logical collection (base minus deletes plus live
    /// appends, in commit order) to retrain on and checkpoint.
    pub merged: SetCollection,
    /// The sequence watermark this snapshot covers: every record below it
    /// is folded into `merged`.
    watermark: u64,
}

impl CompactionSnapshot {
    /// The sequence watermark this snapshot covers.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }
}

/// Object-safe ingest surface, so the wire layer can accept mutations
/// without knowing the structure type.
pub trait MutableSink: Send + Sync {
    /// Applies one durable mutation (`delete == false` inserts).
    fn ingest(&self, delete: bool, ids: &[u32]) -> Result<MutationAck, MutateError>;

    /// Mutations applied but not yet folded into the base collection by a
    /// compaction — the compactor's lag, surfaced by health probes. `0` for
    /// sinks without a pending delta.
    fn pending_ops(&self) -> u64 {
        0
    }
}

struct MutableState<S> {
    structure: Arc<S>,
    base: Arc<SetCollection>,
    overlay: DeltaOverlay,
    /// Pending records (`seq >= applied watermark`), the replay source for
    /// the next compaction's overlay rebuild.
    tail: Vec<WalRecord>,
    first_op_at: Option<Instant>,
}

/// A learned structure plus a durable, queryable delta: the full mutable
/// collection. See the module docs for semantics and locking.
pub struct MutableCollection<S> {
    vocab: u32,
    wal: Mutex<Wal>,
    state: RwLock<MutableState<S>>,
}

impl<S> fmt::Debug for MutableCollection<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.delta_stats();
        f.debug_struct("MutableCollection")
            .field("vocab", &self.vocab)
            .field("base_len", &stats.base_len)
            .field("pending_ops", &stats.pending_ops)
            .finish_non_exhaustive()
    }
}

impl<S> MutableCollection<S> {
    /// Opens the WAL at `wal_dir` with default tuning and replays pending
    /// records against `base`. See [`MutableCollection::open_with`].
    pub fn open(
        structure: S,
        base: Arc<SetCollection>,
        wal_dir: &Path,
    ) -> Result<(Self, RecoveryReport), WalError> {
        Self::open_with(structure, base, wal_dir, WalConfig::default())
    }

    /// Opens the WAL and rebuilds the exact overlay by replaying every
    /// surviving record above the checkpoint watermark. `structure` must be
    /// the model trained on `base` (the checkpoint the WAL's manifest
    /// refers to). Records invalid against `base`'s vocabulary are skipped
    /// and counted — a vocabulary mismatch is a configuration error that
    /// must not brick startup.
    pub fn open_with(
        structure: S,
        base: Arc<SetCollection>,
        wal_dir: &Path,
        config: WalConfig,
    ) -> Result<(Self, RecoveryReport), WalError> {
        let recovery = Wal::open_with(wal_dir, config)?;
        let vocab = base.num_elements();
        let mut overlay = DeltaOverlay::new(base.len());
        let mut tail = Vec::with_capacity(recovery.records.len());
        let mut skipped = 0usize;
        for record in recovery.records {
            match apply_op(&mut overlay, &base, &record.op, vocab) {
                Some(_) => tail.push(record),
                None => skipped += 1,
            }
        }
        let report = RecoveryReport {
            replayed: tail.len(),
            skipped,
            truncated: recovery.truncated,
            applied_seq: recovery.applied_seq,
            next_seq: recovery.wal.next_seq(),
        };
        let first_op_at = if tail.is_empty() { None } else { Some(Instant::now()) };
        let collection = MutableCollection {
            vocab,
            wal: Mutex::new(recovery.wal),
            state: RwLock::new(MutableState {
                structure: Arc::new(structure),
                base,
                overlay,
                tail,
                first_op_at,
            }),
        };
        Ok((collection, report))
    }

    /// Durably inserts a set. The record is fsync'd in the WAL before this
    /// returns: an acknowledged insert survives `kill -9`.
    pub fn insert(&self, ids: &[u32]) -> Result<MutationAck, MutateError> {
        self.mutate(WalOp::Insert(self.canonical(ids)?))
    }

    /// Durably deletes one occurrence of a set — the most recently
    /// appended live copy if any, otherwise one base occurrence. Deleting a
    /// set with no remaining occurrence is acknowledged with
    /// `applied: false`.
    pub fn delete(&self, ids: &[u32]) -> Result<MutationAck, MutateError> {
        self.mutate(WalOp::Delete(self.canonical(ids)?))
    }

    fn canonical(&self, ids: &[u32]) -> Result<Vec<u32>, MutateError> {
        let canonical = normalize(ids.to_vec());
        if canonical.is_empty() {
            return Err(MutateError::EmptySet);
        }
        if let Some(&id) = canonical.iter().find(|&&id| id >= self.vocab) {
            return Err(MutateError::OutOfVocab { id, bound: self.vocab });
        }
        Ok(canonical.into_vec())
    }

    fn mutate(&self, op: WalOp) -> Result<MutationAck, MutateError> {
        // WAL lock first, held across the overlay apply: overlay slot order
        // is exactly sequence order, which replay reproduces.
        let mut wal = self.wal.lock().unwrap_or_else(|e| e.into_inner());
        let seq = wal.append(&op)?;
        let mut state = self.state.write().unwrap_or_else(|e| e.into_inner());
        let state = &mut *state;
        let applied = apply_op(&mut state.overlay, &state.base, &op, self.vocab)
            .expect("validated before append");
        state.tail.push(WalRecord { seq, op });
        state.first_op_at.get_or_insert_with(Instant::now);
        Ok(MutationAck { seq, applied })
    }

    /// Size and age of the pending delta.
    pub fn delta_stats(&self) -> DeltaStats {
        let state = self.state.read().unwrap_or_else(|e| e.into_inner());
        DeltaStats {
            pending_ops: state.tail.len(),
            live_inserts: state.overlay.live_inserts,
            deleted_base_rows: state.overlay.deleted_base_rows,
            oldest_pending: state.first_op_at.map(|t| t.elapsed()),
            base_len: state.base.len(),
        }
    }

    /// Starts a compaction: rotates the WAL and snapshots the merged
    /// logical collection. Returns `None` when there is nothing pending.
    /// Mutations keep flowing while the caller retrains on the snapshot;
    /// they land above the snapshot's watermark and survive
    /// [`MutableCollection::complete_compaction`] in the overlay.
    pub fn begin_compaction(&self) -> Result<Option<CompactionSnapshot>, WalError> {
        let mut wal = self.wal.lock().unwrap_or_else(|e| e.into_inner());
        let state = self.state.read().unwrap_or_else(|e| e.into_inner());
        if state.tail.is_empty() {
            return Ok(None);
        }
        wal.rotate()?;
        let watermark = wal.next_seq();
        let merged = merged_collection(&state.base, &state.overlay, self.vocab);
        Ok(Some(CompactionSnapshot { merged, watermark }))
    }

    /// Finishes a compaction: `structure` is the model retrained on
    /// `snapshot.merged`, which the caller has already checkpointed
    /// durably. Advances the WAL watermark (deleting replayed segments),
    /// installs the new base, and rebuilds the overlay from the records
    /// that arrived during the retrain.
    ///
    /// The WAL manifest write inside is the commit point: a crash *before*
    /// it recovers on the old checkpoint and replays the full tail; a
    /// crash *after* it recovers on the new one and replays only the
    /// post-watermark records. Either way no acknowledged write is lost.
    pub fn complete_compaction(
        &self,
        structure: S,
        snapshot: CompactionSnapshot,
    ) -> Result<(), WalError> {
        let mut wal = self.wal.lock().unwrap_or_else(|e| e.into_inner());
        wal.mark_applied(snapshot.watermark)?;
        let mut state = self.state.write().unwrap_or_else(|e| e.into_inner());
        let base = Arc::new(snapshot.merged);
        let mut overlay = DeltaOverlay::new(base.len());
        let mut tail = Vec::new();
        let mut applied = 0u64;
        for record in state.tail.drain(..) {
            if record.seq < snapshot.watermark {
                applied += 1;
                continue;
            }
            // Ops that raced the retrain replay cleanly against the new
            // base: an insert-then-compact row is now a base row, so a
            // subsequent delete lands in `base_deletes` as it should.
            if apply_op(&mut overlay, &base, &record.op, self.vocab).is_some() {
                tail.push(record);
            }
        }
        state.first_op_at = if tail.is_empty() { None } else { state.first_op_at };
        state.structure = Arc::new(structure);
        state.base = base;
        state.overlay = overlay;
        state.tail = tail;
        wal_tele().record_compaction(applied);
        Ok(())
    }

    /// The currently installed learned structure.
    pub fn structure(&self) -> Arc<S> {
        Arc::clone(&self.state.read().unwrap_or_else(|e| e.into_inner()).structure)
    }

    /// The checkpointed base collection the structure was trained on.
    pub fn base(&self) -> Arc<SetCollection> {
        Arc::clone(&self.state.read().unwrap_or_else(|e| e.into_inner()).base)
    }

    /// The vocabulary bound (`num_elements`) mutations are validated
    /// against.
    pub fn vocab(&self) -> u32 {
        self.vocab
    }
}

impl<S: Send + Sync> MutableSink for MutableCollection<S> {
    fn ingest(&self, delete: bool, ids: &[u32]) -> Result<MutationAck, MutateError> {
        if delete {
            self.delete(ids)
        } else {
            self.insert(ids)
        }
    }

    fn pending_ops(&self) -> u64 {
        self.delta_stats().pending_ops as u64
    }
}

impl<S: DeltaMergeable> LearnedSetStructure for MutableCollection<S> {
    type Output = S::Output;
    const NAME: &'static str = S::NAME;

    fn query(&self, q: &[u32]) -> QueryOutcome<S::Output> {
        // Structure and overlay answer are captured under one read lock (a
        // consistent snapshot); the model forward pass runs outside it.
        let (structure, ans) = {
            let state = self.state.read().unwrap_or_else(|e| e.into_inner());
            (Arc::clone(&state.structure), state.overlay.answer(q))
        };
        structure.merge_delta(structure.query(q), &ans)
    }

    fn query_batch(&self, queries: &[ElementSet]) -> Vec<QueryOutcome<S::Output>> {
        let (structure, answers) = self.overlay_answers(queries);
        structure
            .query_batch(queries)
            .into_iter()
            .zip(&answers)
            .map(|(model, ans)| structure.merge_delta(model, ans))
            .collect()
    }

    fn query_batch_parallel(
        &self,
        queries: &[ElementSet],
        threads: usize,
    ) -> Vec<QueryOutcome<S::Output>> {
        let (structure, answers) = self.overlay_answers(queries);
        structure
            .query_batch_parallel(queries, threads)
            .into_iter()
            .zip(&answers)
            .map(|(model, ans)| structure.merge_delta(model, ans))
            .collect()
    }
}

impl<S: DeltaMergeable> MutableCollection<S> {
    fn overlay_answers(&self, queries: &[ElementSet]) -> (Arc<S>, Vec<OverlayAnswer>) {
        let state = self.state.read().unwrap_or_else(|e| e.into_inner());
        let answers = queries.iter().map(|q| state.overlay.answer(q)).collect();
        (Arc::clone(&state.structure), answers)
    }
}

/// Applies one validated op to the overlay. `None` means the op is invalid
/// against this base (empty or out-of-vocab) — replay skips it.
fn apply_op(
    overlay: &mut DeltaOverlay,
    base: &SetCollection,
    op: &WalOp,
    vocab: u32,
) -> Option<bool> {
    let canonical = normalize(op.elements().to_vec());
    if canonical.is_empty() || canonical.iter().any(|&id| id >= vocab) {
        return None;
    }
    Some(match op {
        WalOp::Insert(_) => {
            overlay.insert(canonical);
            true
        }
        WalOp::Delete(_) => {
            let base_occurrences =
                base.sets().iter().filter(|s| s.as_ref() == canonical.as_ref()).count();
            overlay.delete(&canonical, base_occurrences)
        }
    })
}

/// Materializes the logical collection: base rows minus deleted
/// occurrences (earliest occurrences removed first), then live appended
/// rows in commit order. Row order — and therefore every index position —
/// is deterministic.
fn merged_collection(base: &SetCollection, overlay: &DeltaOverlay, vocab: u32) -> SetCollection {
    let mut remaining: HashMap<&[u32], usize> =
        overlay.base_deletes.iter().map(|(s, &c)| (s.as_ref(), c)).collect();
    let mut rows: Vec<Vec<u32>> =
        Vec::with_capacity(base.len() + overlay.live_inserts - overlay.deleted_base_rows);
    for set in base.sets() {
        if let Some(count) = remaining.get_mut(set.as_ref()) {
            if *count > 0 {
                *count -= 1;
                continue;
            }
        }
        rows.push(set.to_vec());
    }
    for (set, live) in &overlay.inserts {
        if *live {
            rows.push(set.to_vec());
        }
    }
    SetCollection::new(rows, vocab)
}

/// Replays WAL records over `base` into a fresh merged collection — the
/// offline (train-time) counterpart of the serve-side overlay. Returns the
/// merged collection and how many records were skipped as invalid.
pub fn replay_into(base: &SetCollection, records: &[WalRecord]) -> (SetCollection, usize) {
    let vocab = base.num_elements();
    let mut overlay = DeltaOverlay::new(base.len());
    let mut skipped = 0usize;
    for record in records {
        if apply_op(&mut overlay, base, &record.op, vocab).is_none() {
            skipped += 1;
        }
    }
    (merged_collection(base, &overlay, vocab), skipped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hybrid::FallbackReason;

    fn base() -> Arc<SetCollection> {
        Arc::new(SetCollection::new(
            vec![vec![0, 1], vec![1, 2], vec![0, 1, 2], vec![1, 2]],
            5,
        ))
    }

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("setlearn-mutable-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    /// Exact-oracle cardinality "model" over a frozen collection: makes the
    /// merge path testable without training.
    struct ExactCard(Arc<SetCollection>);
    impl LearnedSetStructure for ExactCard {
        type Output = f64;
        const NAME: &'static str = "cardinality";
        fn query(&self, q: &[u32]) -> QueryOutcome<f64> {
            QueryOutcome::clean(self.0.cardinality(q) as f64)
        }
        fn query_batch(&self, queries: &[ElementSet]) -> Vec<QueryOutcome<f64>> {
            queries.iter().map(|q| self.query(q)).collect()
        }
        fn query_batch_parallel(
            &self,
            queries: &[ElementSet],
            _threads: usize,
        ) -> Vec<QueryOutcome<f64>> {
            self.query_batch(queries)
        }
    }
    impl DeltaMergeable for ExactCard {
        fn merge_delta(&self, model: QueryOutcome<f64>, d: &OverlayAnswer) -> QueryOutcome<f64> {
            merge_cardinality(model, d)
        }
    }

    /// Constant model, for the clamp regression.
    struct ConstCard(f64);
    impl LearnedSetStructure for ConstCard {
        type Output = f64;
        const NAME: &'static str = "cardinality";
        fn query(&self, _q: &[u32]) -> QueryOutcome<f64> {
            QueryOutcome::clean(self.0)
        }
        fn query_batch(&self, queries: &[ElementSet]) -> Vec<QueryOutcome<f64>> {
            queries.iter().map(|q| self.query(q)).collect()
        }
        fn query_batch_parallel(
            &self,
            queries: &[ElementSet],
            _threads: usize,
        ) -> Vec<QueryOutcome<f64>> {
            self.query_batch(queries)
        }
    }
    impl DeltaMergeable for ConstCard {
        fn merge_delta(&self, model: QueryOutcome<f64>, d: &OverlayAnswer) -> QueryOutcome<f64> {
            merge_cardinality(model, d)
        }
    }

    struct ExactFirst(Arc<SetCollection>);
    impl LearnedSetStructure for ExactFirst {
        type Output = Option<usize>;
        const NAME: &'static str = "index";
        fn query(&self, q: &[u32]) -> QueryOutcome<Option<usize>> {
            let pos = self.0.first_position(q);
            QueryOutcome { value: pos, fallback: None, bound_miss: pos.is_none() }
        }
        fn query_batch(&self, queries: &[ElementSet]) -> Vec<QueryOutcome<Option<usize>>> {
            queries.iter().map(|q| self.query(q)).collect()
        }
        fn query_batch_parallel(
            &self,
            queries: &[ElementSet],
            _threads: usize,
        ) -> Vec<QueryOutcome<Option<usize>>> {
            self.query_batch(queries)
        }
    }
    impl DeltaMergeable for ExactFirst {
        fn merge_delta(
            &self,
            model: QueryOutcome<Option<usize>>,
            d: &OverlayAnswer,
        ) -> QueryOutcome<Option<usize>> {
            merge_index(PositionTarget::First, model, d)
        }
    }

    struct ExactBloom(Arc<SetCollection>);
    impl LearnedSetStructure for ExactBloom {
        type Output = bool;
        const NAME: &'static str = "bloom";
        fn query(&self, q: &[u32]) -> QueryOutcome<bool> {
            QueryOutcome::clean(self.0.contains_subset(q))
        }
        fn query_batch(&self, queries: &[ElementSet]) -> Vec<QueryOutcome<bool>> {
            queries.iter().map(|q| self.query(q)).collect()
        }
        fn query_batch_parallel(
            &self,
            queries: &[ElementSet],
            _threads: usize,
        ) -> Vec<QueryOutcome<bool>> {
            self.query_batch(queries)
        }
    }
    impl DeltaMergeable for ExactBloom {
        fn merge_delta(&self, model: QueryOutcome<bool>, d: &OverlayAnswer) -> QueryOutcome<bool> {
            merge_bloom(model, d)
        }
    }

    #[test]
    fn cardinality_merge_tracks_the_exact_oracle() {
        let dir = tmp_dir("card-oracle");
        let base = base();
        let (mc, _) = MutableCollection::open(ExactCard(Arc::clone(&base)), base, &dir).unwrap();
        assert!(mc.insert(&[1, 2, 3]).unwrap().applied);
        assert!(mc.insert(&[0, 3]).unwrap().applied);
        assert!(mc.delete(&[1, 2]).unwrap().applied);

        // Oracle: retrain-equivalent — the exact merged collection.
        let merged = merged_collection(&mc.base(), &mc.state.read().unwrap().overlay, mc.vocab());
        for q in [vec![1u32], vec![1, 2], vec![3], vec![0], vec![4]] {
            let got = mc.query(&q).value;
            let want = merged.cardinality(&q) as f64;
            assert_eq!(got, want, "query {q:?}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cardinality_clamps_at_zero_after_delete_heavy_delta() {
        let dir = tmp_dir("card-clamp");
        let base = base();
        // Model over-estimates slightly (1.3); both [1,2] base rows get
        // deleted, so the raw sum would be 1.3 - 2 = -0.7.
        let (mc, _) = MutableCollection::open(ConstCard(1.3), base, &dir).unwrap();
        assert!(mc.delete(&[1, 2]).unwrap().applied);
        assert!(mc.delete(&[1, 2]).unwrap().applied);
        assert!(!mc.delete(&[1, 2]).unwrap().applied, "no third occurrence");
        let got = mc.query(&[1, 2]);
        assert_eq!(got.value, 0.0, "sum-correction clamps at 0, not -0.7");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn index_and_bloom_merges_are_exact_for_appends() {
        let dir = tmp_dir("idx-bloom");
        let base = base();
        let (mc, _) =
            MutableCollection::open(ExactFirst(Arc::clone(&base)), Arc::clone(&base), &dir)
                .unwrap();
        // [3] exists nowhere in the base; append two supersets.
        assert!(mc.query(&[3]).value.is_none());
        assert!(mc.query(&[3]).bound_miss);
        mc.insert(&[3, 4]).unwrap();
        mc.insert(&[0, 3]).unwrap();
        let got = mc.query(&[3]);
        assert_eq!(got.value, Some(4), "first appended position, base_len + slot");
        assert!(!got.bound_miss, "an overlay hit clears the expected base miss");
        // Base hits still win the first-fold.
        assert_eq!(mc.query(&[0, 1]).value, Some(0));

        let dir2 = tmp_dir("bloom-or");
        let (mb, _) =
            MutableCollection::open(ExactBloom(Arc::clone(&base)), base, &dir2).unwrap();
        assert!(!mb.query(&[3]).value);
        mb.insert(&[3, 4]).unwrap();
        assert!(mb.query(&[3]).value, "inserted member found immediately");
        // Deleting a base row does not unlearn membership until compaction.
        mb.delete(&[0, 1]).unwrap();
        assert!(mb.query(&[0, 1]).value);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn merge_keeps_model_degradation_flags() {
        let d = OverlayAnswer { cardinality_delta: 2, ..Default::default() };
        let model = QueryOutcome {
            value: 5.0,
            fallback: Some(FallbackReason::NonFinite),
            bound_miss: false,
        };
        let merged = merge_cardinality(model, &d);
        assert_eq!(merged.value, 7.0);
        assert_eq!(merged.fallback, Some(FallbackReason::NonFinite));
    }

    #[test]
    fn recovery_rebuilds_the_exact_overlay() {
        let dir = tmp_dir("recover");
        let base_c = base();
        {
            let (mc, report) =
                MutableCollection::open(ExactCard(Arc::clone(&base_c)), Arc::clone(&base_c), &dir)
                    .unwrap();
            assert_eq!(report.replayed, 0);
            mc.insert(&[1, 2, 3]).unwrap();
            mc.insert(&[3, 4]).unwrap();
            mc.delete(&[0, 1]).unwrap();
            // Dropped without compaction: everything lives in the WAL.
        }
        let (mc, report) =
            MutableCollection::open(ExactCard(Arc::clone(&base_c)), base_c, &dir).unwrap();
        assert_eq!(report.replayed, 3);
        assert_eq!(report.skipped, 0);
        assert_eq!(mc.query(&[3]).value, 2.0, "both appended supersets of [3] survive");
        assert_eq!(mc.query(&[0, 1]).value, 1.0, "delete of one of two [0,*] rows survives");
        let stats = mc.delta_stats();
        assert_eq!(stats.pending_ops, 3);
        assert_eq!(stats.live_inserts, 2);
        assert_eq!(stats.deleted_base_rows, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn delete_prefers_the_latest_live_insert_then_caps_at_base_occurrences() {
        let dir = tmp_dir("delete-order");
        let base = base();
        let (mc, _) = MutableCollection::open(ExactCard(Arc::clone(&base)), base, &dir).unwrap();
        mc.insert(&[1, 2]).unwrap();
        // Supersets of {1,2}: two exact base copies, [0,1,2], and the
        // appended copy = 4. Only exact-set occurrences are deletable
        // (1 appended + 2 base), so three deletes apply and [0,1,2] stays.
        assert_eq!(mc.query(&[1, 2]).value, 4.0);
        for expect in [3.0, 2.0, 1.0] {
            assert!(mc.delete(&[1, 2]).unwrap().applied);
            assert_eq!(mc.query(&[1, 2]).value, expect);
        }
        let ack = mc.delete(&[1, 2]).unwrap();
        assert!(!ack.applied, "fourth delete is a durable no-op");
        assert_eq!(mc.query(&[1, 2]).value, 1.0, "[0,1,2] still contains the subset");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_folds_the_delta_and_prunes_the_wal() {
        let dir = tmp_dir("compact");
        let base_c = base();
        let (mc, _) =
            MutableCollection::open(ExactCard(Arc::clone(&base_c)), base_c, &dir).unwrap();
        mc.insert(&[3, 4]).unwrap();
        mc.delete(&[1, 2]).unwrap();
        let before = mc.query(&[1]).value;

        let snapshot = mc.begin_compaction().unwrap().expect("delta pending");
        assert_eq!(snapshot.merged.len(), 4, "4 base - 1 delete + 1 insert");
        // A mutation racing the retrain: must survive the swap.
        mc.insert(&[2, 3]).unwrap();
        let retrained = ExactCard(Arc::new(SetCollection::new(
            snapshot.merged.sets().iter().map(|s| s.to_vec()).collect(),
            5,
        )));
        mc.complete_compaction(retrained, snapshot).unwrap();

        assert_eq!(mc.query(&[1]).value, before, "answers unchanged across the fold");
        assert_eq!(mc.query(&[2, 3]).value, 1.0, "the racing [2,3] insert survived the swap");
        let stats = mc.delta_stats();
        assert_eq!(stats.pending_ops, 1, "only the racing insert is still pending");
        assert_eq!(stats.base_len, 4);

        // The WAL dropped the replayed segments: a fresh open replays only
        // the racing insert.
        drop(mc);
        let reopened_base = Arc::new(SetCollection::new(
            vec![vec![0, 1], vec![0, 1, 2], vec![1, 2], vec![3, 4]],
            5,
        ));
        let (_mc, report) =
            MutableCollection::open(ExactCard(Arc::clone(&reopened_base)), reopened_base, &dir)
                .unwrap();
        assert_eq!(report.replayed, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_compaction_is_a_noop_and_validation_rejects_before_logging() {
        let dir = tmp_dir("noop");
        let base = base();
        let (mc, _) = MutableCollection::open(ExactCard(Arc::clone(&base)), base, &dir).unwrap();
        assert!(mc.begin_compaction().unwrap().is_none());
        assert!(matches!(mc.insert(&[]), Err(MutateError::EmptySet)));
        assert!(matches!(
            mc.insert(&[1, 99]),
            Err(MutateError::OutOfVocab { id: 99, bound: 5 })
        ));
        assert_eq!(mc.delta_stats().pending_ops, 0, "rejected mutations never hit the WAL");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_into_matches_the_serve_side_merge() {
        let base = base();
        let records = vec![
            WalRecord { seq: 0, op: WalOp::Insert(vec![3, 4]) },
            WalRecord { seq: 1, op: WalOp::Delete(vec![1, 2]) },
            WalRecord { seq: 2, op: WalOp::Insert(vec![0, 4]) },
            WalRecord { seq: 3, op: WalOp::Insert(vec![9, 9]) }, // out of vocab
        ];
        let (merged, skipped) = replay_into(&base, &records);
        assert_eq!(skipped, 1);
        assert_eq!(merged.len(), 5);
        assert_eq!(merged.cardinality(&[4]), 2);
        assert_eq!(merged.cardinality(&[1, 2]), 2, "one of three [1,2]-supersets deleted");
    }

    #[test]
    fn sink_is_object_safe() {
        let dir = tmp_dir("sink");
        let base = base();
        let (mc, _) = MutableCollection::open(ExactCard(Arc::clone(&base)), base, &dir).unwrap();
        let sink: Arc<dyn MutableSink> = Arc::new(mc);
        assert!(sink.ingest(false, &[2, 3]).unwrap().applied);
        assert!(sink.ingest(true, &[2, 3]).unwrap().applied);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
