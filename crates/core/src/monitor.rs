//! Distribution-drift monitoring (paper §7.2): "after a prespecified number
//! of updates, the accuracy is measured; if a significant drop in the
//! accuracy is detected, the models are retrained."
//!
//! The monitor tracks a rolling window of observed estimation errors against
//! the accuracy measured at build time, counts structural updates, and
//! raises the retrain signal when either (a) accuracy degrades beyond a
//! factor of the baseline or (b) the auxiliary structure has absorbed more
//! updates than the configured budget.

use serde::{Deserialize, Serialize};
use setlearn_nn::q_error;
use std::collections::VecDeque;

/// Monitor configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Rolling window of recent per-query q-errors.
    pub window: usize,
    /// Retrain when the rolling mean q-error exceeds
    /// `baseline * degradation_factor`.
    pub degradation_factor: f64,
    /// Retrain after this many structural updates regardless of accuracy.
    pub max_updates: usize,
    /// Require at least this many observations before the accuracy trigger
    /// can fire (avoids deciding on noise).
    pub min_observations: usize,
    /// Retrain after this many serve-time fallbacks (non-finite or
    /// out-of-bound predictions degraded to the auxiliary structure).
    /// `0` disables the trigger.
    #[serde(default)]
    pub max_fallbacks: usize,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            window: 512,
            degradation_factor: 2.0,
            max_updates: 1_000,
            min_observations: 64,
            max_fallbacks: 256,
        }
    }
}

impl MonitorConfig {
    /// Checks the configuration for degenerate settings that would make the
    /// monitor fire never (or always).
    pub fn validate(&self) -> Result<(), String> {
        if self.window == 0 {
            return Err("window must be positive".to_string());
        }
        if self.min_observations > self.window {
            return Err(format!(
                "min_observations ({}) exceeds the window ({}): the accuracy \
                 trigger could never fire",
                self.min_observations, self.window
            ));
        }
        if !self.degradation_factor.is_finite() || self.degradation_factor < 1.0 {
            return Err(format!(
                "degradation_factor must be finite and >= 1, got {}",
                self.degradation_factor
            ));
        }
        Ok(())
    }
}

/// Why a retrain was requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RetrainReason {
    /// Rolling accuracy degraded past the configured factor.
    AccuracyDrop,
    /// The update budget was exhausted.
    UpdateBudget,
    /// Too many serve-time fallbacks: the model keeps producing non-finite
    /// or out-of-bound predictions and the auxiliary structure is carrying
    /// the load.
    ServeFallbacks,
}

impl RetrainReason {
    /// Stable snake_case name used as the `reason` metric label.
    pub fn label(self) -> &'static str {
        match self {
            RetrainReason::AccuracyDrop => "accuracy_drop",
            RetrainReason::UpdateBudget => "update_budget",
            RetrainReason::ServeFallbacks => "serve_fallbacks",
        }
    }
}

/// Point-in-time copy of a [`DriftMonitor`]'s state — what telemetry and
/// tests inspect without having to trigger a retrain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonitorSnapshot {
    /// Build-time accuracy baseline.
    pub baseline_q_error: f64,
    /// Rolling mean q-error over the window (baseline when empty).
    pub rolling_q_error: f64,
    /// Accuracy observations currently in the window.
    pub observations: usize,
    /// Structural updates since the last reset.
    pub pending_updates: usize,
    /// Serve-time fallbacks since the last reset.
    pub pending_fallbacks: usize,
    /// The active configuration (thresholds the counts are judged against).
    pub config: MonitorConfig,
    /// The retrain signal at snapshot time, if raised.
    pub retrain: Option<RetrainReason>,
}

/// Rolling accuracy/update tracker for a deployed learned structure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriftMonitor {
    config: MonitorConfig,
    baseline_q_error: f64,
    recent: VecDeque<f64>,
    recent_sum: f64,
    updates: usize,
    #[serde(default)]
    fallbacks: usize,
}

impl DriftMonitor {
    /// Creates a monitor around the build-time accuracy baseline.
    ///
    /// # Panics
    /// If `baseline_q_error < 1` (q-errors are ≥ 1 by definition) or the
    /// configuration is degenerate; [`DriftMonitor::try_new`] reports the
    /// same conditions as errors.
    pub fn new(baseline_q_error: f64, config: MonitorConfig) -> Self {
        match Self::try_new(baseline_q_error, config) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible constructor: rejects a non-finite or sub-1 baseline
    /// (q-error baselines are >= 1 by definition) and any configuration
    /// [`MonitorConfig::validate`] refuses.
    pub fn try_new(baseline_q_error: f64, config: MonitorConfig) -> Result<Self, String> {
        if !baseline_q_error.is_finite() || baseline_q_error < 1.0 {
            return Err(format!(
                "q-error baselines are >= 1 and finite, got {baseline_q_error}"
            ));
        }
        config.validate()?;
        Ok(DriftMonitor {
            config,
            baseline_q_error,
            recent: VecDeque::new(),
            recent_sum: 0.0,
            updates: 0,
            fallbacks: 0,
        })
    }

    /// Feeds one observed `(estimate, truth)` pair — e.g. whenever the
    /// application learns the true count behind an estimate it served.
    /// Non-finite pairs are ignored (they are fallback events, not accuracy
    /// observations — see [`DriftMonitor::record_fallback`]).
    pub fn observe(&mut self, estimate: f64, truth: f64) {
        if !estimate.is_finite() || !truth.is_finite() {
            return;
        }
        let qe = q_error(estimate, truth, 1.0);
        if !qe.is_finite() {
            return;
        }
        self.recent.push_back(qe);
        self.recent_sum += qe;
        if self.recent.len() > self.config.window {
            if let Some(old) = self.recent.pop_front() {
                self.recent_sum -= old;
            }
        }
    }

    /// Registers one structural update (insert/delete routed to the
    /// auxiliary structure).
    pub fn record_update(&mut self) {
        self.updates += 1;
    }

    /// Registers one serve-time fallback: a prediction that was non-finite
    /// or out of bounds and was answered by the auxiliary structure instead.
    pub fn record_fallback(&mut self) {
        self.fallbacks += 1;
    }

    /// Number of fallbacks since the last reset.
    pub fn pending_fallbacks(&self) -> usize {
        self.fallbacks
    }

    /// Rolling mean q-error over the window (baseline when no observations).
    pub fn rolling_q_error(&self) -> f64 {
        if self.recent.is_empty() {
            self.baseline_q_error
        } else {
            self.recent_sum / self.recent.len() as f64
        }
    }

    /// Number of updates since the last reset.
    pub fn pending_updates(&self) -> usize {
        self.updates
    }

    /// Whether retraining should be triggered, and why.
    pub fn should_retrain(&self) -> Option<RetrainReason> {
        if self.config.max_fallbacks > 0 && self.fallbacks >= self.config.max_fallbacks {
            return Some(RetrainReason::ServeFallbacks);
        }
        if self.updates >= self.config.max_updates {
            return Some(RetrainReason::UpdateBudget);
        }
        if self.recent.len() >= self.config.min_observations
            && self.rolling_q_error() > self.baseline_q_error * self.config.degradation_factor
        {
            return Some(RetrainReason::AccuracyDrop);
        }
        None
    }

    /// Copies out the monitor's current state (counts, thresholds, and the
    /// live retrain signal) without mutating anything.
    pub fn snapshot(&self) -> MonitorSnapshot {
        MonitorSnapshot {
            baseline_q_error: self.baseline_q_error,
            rolling_q_error: self.rolling_q_error(),
            observations: self.recent.len(),
            pending_updates: self.updates,
            pending_fallbacks: self.fallbacks,
            config: self.config.clone(),
            retrain: self.should_retrain(),
        }
    }

    /// Publishes the monitor's state as gauges on the global metrics
    /// registry: `setlearn_monitor_{baseline_q_error, rolling_q_error,
    /// pending_updates, pending_fallbacks}` plus one 0/1
    /// `setlearn_monitor_retrain_signal{reason=...}` gauge per retrain
    /// reason.
    pub fn publish_metrics(&self) {
        if !setlearn_obs::metrics_on() {
            return;
        }
        let m = setlearn_obs::metrics();
        m.gauge("setlearn_monitor_baseline_q_error").set(self.baseline_q_error);
        m.gauge("setlearn_monitor_rolling_q_error").set(self.rolling_q_error());
        m.gauge("setlearn_monitor_pending_updates").set(self.updates as f64);
        m.gauge("setlearn_monitor_pending_fallbacks").set(self.fallbacks as f64);
        let signal = self.should_retrain();
        for reason in
            [RetrainReason::AccuracyDrop, RetrainReason::UpdateBudget, RetrainReason::ServeFallbacks]
        {
            let active = signal == Some(reason);
            m.gauge_with("setlearn_monitor_retrain_signal", &[("reason", reason.label())])
                .set(if active { 1.0 } else { 0.0 });
        }
    }

    /// Resets the monitor after a rebuild, adopting a new baseline.
    pub fn reset(&mut self, new_baseline: f64) {
        assert!(new_baseline.is_finite() && new_baseline >= 1.0);
        self.baseline_q_error = new_baseline;
        self.recent.clear();
        self.recent_sum = 0.0;
        self.updates = 0;
        self.fallbacks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MonitorConfig {
        MonitorConfig {
            window: 16,
            degradation_factor: 2.0,
            max_updates: 10,
            min_observations: 8,
            max_fallbacks: 5,
        }
    }

    #[test]
    fn healthy_stream_never_triggers() {
        let mut m = DriftMonitor::new(1.2, cfg());
        for _ in 0..100 {
            m.observe(10.0, 9.5); // q-error ~1.05
        }
        assert_eq!(m.should_retrain(), None);
        assert!(m.rolling_q_error() < 1.2);
    }

    #[test]
    fn degraded_stream_triggers_accuracy_drop() {
        let mut m = DriftMonitor::new(1.2, cfg());
        for _ in 0..20 {
            m.observe(30.0, 10.0); // q-error 3.0 > 1.2 * 2
        }
        assert_eq!(m.should_retrain(), Some(RetrainReason::AccuracyDrop));
    }

    #[test]
    fn needs_minimum_observations() {
        let mut m = DriftMonitor::new(1.2, cfg());
        for _ in 0..4 {
            m.observe(100.0, 1.0);
        }
        assert_eq!(m.should_retrain(), None, "too few observations");
    }

    #[test]
    fn update_budget_triggers() {
        let mut m = DriftMonitor::new(1.1, cfg());
        for _ in 0..10 {
            m.record_update();
        }
        assert_eq!(m.should_retrain(), Some(RetrainReason::UpdateBudget));
    }

    #[test]
    fn window_forgets_old_errors() {
        let mut m = DriftMonitor::new(1.2, cfg());
        for _ in 0..16 {
            m.observe(50.0, 1.0); // terrible
        }
        assert!(m.should_retrain().is_some());
        for _ in 0..16 {
            m.observe(10.0, 10.0); // perfect, flushes the window
        }
        assert_eq!(m.should_retrain(), None);
        assert!((m.rolling_q_error() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reset_adopts_new_baseline() {
        let mut m = DriftMonitor::new(1.2, cfg());
        for _ in 0..10 {
            m.record_update();
            m.observe(9.0, 3.0);
        }
        m.reset(1.5);
        assert_eq!(m.pending_updates(), 0);
        assert_eq!(m.rolling_q_error(), 1.5);
        assert_eq!(m.should_retrain(), None);
    }

    #[test]
    #[should_panic(expected = "q-error baselines are >= 1")]
    fn invalid_baseline_rejected() {
        let _ = DriftMonitor::new(0.5, cfg());
    }

    #[test]
    fn try_new_rejects_degenerate_configs() {
        let mut c = cfg();
        c.window = 0;
        assert!(DriftMonitor::try_new(1.2, c).is_err(), "zero window");

        let mut c = cfg();
        c.min_observations = c.window + 1;
        let err = DriftMonitor::try_new(1.2, c).unwrap_err();
        assert!(err.contains("min_observations"), "got: {err}");

        let mut c = cfg();
        c.degradation_factor = 0.5;
        assert!(DriftMonitor::try_new(1.2, c).is_err(), "sub-1 factor");
        let mut c = cfg();
        c.degradation_factor = f64::NAN;
        assert!(DriftMonitor::try_new(1.2, c).is_err(), "NaN factor");

        assert!(DriftMonitor::try_new(f64::INFINITY, cfg()).is_err(), "inf baseline");
        assert!(DriftMonitor::try_new(0.0, cfg()).is_err(), "zero baseline");
        assert!(DriftMonitor::try_new(1.0, cfg()).is_ok(), "exact-1 baseline is legal");
    }

    #[test]
    fn repeated_fallbacks_trigger_retrain() {
        let mut m = DriftMonitor::new(1.2, cfg());
        for _ in 0..4 {
            m.record_fallback();
        }
        assert_eq!(m.should_retrain(), None);
        m.record_fallback();
        assert_eq!(m.should_retrain(), Some(RetrainReason::ServeFallbacks));
        assert_eq!(m.pending_fallbacks(), 5);
        m.reset(1.2);
        assert_eq!(m.pending_fallbacks(), 0);
        assert_eq!(m.should_retrain(), None);
    }

    #[test]
    fn zero_max_fallbacks_disables_the_trigger() {
        let mut c = cfg();
        c.max_fallbacks = 0;
        let mut m = DriftMonitor::new(1.2, c);
        for _ in 0..1_000 {
            m.record_fallback();
        }
        assert_eq!(m.should_retrain(), None);
    }

    #[test]
    fn snapshot_reflects_state_without_mutation() {
        let mut m = DriftMonitor::new(1.2, cfg());
        for _ in 0..3 {
            m.observe(10.0, 9.5);
            m.record_update();
        }
        m.record_fallback();
        let snap = m.snapshot();
        assert_eq!(snap.baseline_q_error, 1.2);
        assert_eq!(snap.observations, 3);
        assert_eq!(snap.pending_updates, 3);
        assert_eq!(snap.pending_fallbacks, 1);
        assert_eq!(snap.retrain, None);
        assert_eq!(snap.config.window, 16);
        // Snapshots serialize (they ride along in telemetry artifacts).
        let json = serde_json::to_string(&snap).unwrap();
        let back: MonitorSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.pending_updates, 3);
        // Snapshotting did not consume state.
        assert_eq!(m.pending_updates(), 3);

        for _ in 0..10 {
            m.record_update();
        }
        assert_eq!(m.snapshot().retrain, Some(RetrainReason::UpdateBudget));
    }

    #[test]
    fn publish_metrics_exports_gauges() {
        let mut m = DriftMonitor::new(1.2, cfg());
        for _ in 0..10 {
            m.record_update();
        }
        m.publish_metrics();
        let snap = setlearn_obs::metrics().snapshot();
        let updates = snap
            .gauges
            .iter()
            .find(|g| g.key.name == "setlearn_monitor_pending_updates")
            .expect("pending_updates gauge");
        assert!(updates.value >= 10.0);
        let signal = snap
            .gauges
            .iter()
            .find(|g| {
                g.key.name == "setlearn_monitor_retrain_signal"
                    && g.key.labels.iter().any(|l| l.value == "update_budget")
            })
            .expect("retrain_signal gauge");
        assert_eq!(signal.value, 1.0);
    }

    #[test]
    fn non_finite_observations_are_ignored() {
        let mut m = DriftMonitor::new(1.2, cfg());
        for _ in 0..20 {
            m.observe(f64::NAN, 10.0);
            m.observe(f64::INFINITY, 10.0);
        }
        assert_eq!(m.should_retrain(), None);
        assert_eq!(m.rolling_q_error(), 1.2, "window stayed empty");
    }
}
