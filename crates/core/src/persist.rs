//! Model persistence: human-readable JSON dumps of whole structures, plus a
//! compact binary weight format (the analogue of the paper's weights-only
//! pickle files used for its memory measurements).
//!
//! Current binary layout, `SLW2` (little-endian):
//!
//! ```text
//! magic  "SLW2"            4 bytes
//! version: u8              format revision within SLW2 (currently 2)
//! crc32: u32               CRC-32 (IEEE) over the payload below
//! payload:
//!   precision: u8          serve precision (revision 2+; see
//!                          [`Precision::to_byte`])
//!   json_len: u32          length of the config JSON
//!   config JSON            model architecture (to rebuild the skeleton)
//!   num_bufs: u32
//!   per buffer: len: u32, then len * f32 weights
//! ```
//!
//! The checksum covers both the config and every weight byte, so truncation
//! and bit flips surface as [`PersistError::Corrupt`] instead of silently
//! loading garbage weights. Revision-1 files (no precision byte) and legacy
//! `SLW1` files (the revision-1 payload with no version or checksum) still
//! load and report [`Precision::F32`].
//!
//! Saves are atomic: bytes are written to a sibling `*.tmp` file, synced, and
//! renamed over the destination, so a crash mid-save can never leave a
//! half-written model at the target path.

use crate::kernel::Precision;
use crate::model::{DeepSets, DeepSetsConfig};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fmt;
use std::io::{Read, Write};
use std::path::Path;

/// Persistence errors.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
    /// Structural mismatch in a binary weight file.
    Format(String),
    /// The file is recognizably a weight file but its contents fail
    /// integrity checks (truncation, bit flip, checksum mismatch).
    Corrupt(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Json(e) => write!(f, "json error: {e}"),
            PersistError::Format(m) => write!(f, "format error: {m}"),
            PersistError::Corrupt(m) => write!(f, "corrupt weight file: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Json(e)
    }
}

const MAGIC_V2: &[u8; 4] = b"SLW2";
const MAGIC_V1: &[u8; 4] = b"SLW1";
/// Revision written by this build (adds the leading precision byte).
const FORMAT_VERSION: u8 = 2;
/// Oldest SLW2 revision still readable (no precision byte → f32).
const FORMAT_VERSION_V1: u8 = 1;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320)
// ---------------------------------------------------------------------------

// const-evaluated once; the table lives in rodata.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 checksum as used by the `SLW2` weight format.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

// ---------------------------------------------------------------------------
// Atomic file writes
// ---------------------------------------------------------------------------

/// Writes `bytes` to `path` atomically: the data lands in a sibling temp
/// file, is flushed and fsynced, then renamed over the destination. Readers
/// observe either the old file or the complete new one, never a partial
/// write. Public so other sinks (e.g. telemetry artifacts) share the same
/// crash-safe write path as model files.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)?;
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

// ---------------------------------------------------------------------------
// JSON persistence
// ---------------------------------------------------------------------------

/// Saves any serializable structure as JSON (atomic write).
pub fn save_json<T: Serialize>(value: &T, path: &Path) -> Result<(), PersistError> {
    let bytes = serde_json::to_vec(value)?;
    write_atomic(path, &bytes)
}

/// Loads a JSON-persisted structure.
pub fn load_json<T: DeserializeOwned>(path: &Path) -> Result<T, PersistError> {
    let file = std::io::BufReader::new(std::fs::File::open(path)?);
    Ok(serde_json::from_reader(file)?)
}

// ---------------------------------------------------------------------------
// Binary weight format
// ---------------------------------------------------------------------------

/// Little-endian reader over a byte slice, with descriptive underrun errors.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Corrupt(format!(
                "truncated {what}: need {n} bytes, {} left",
                self.remaining()
            )));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, PersistError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, PersistError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn f32(&mut self) -> Result<f32, PersistError> {
        let b = self.take(4, "weight value")?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

fn encode_payload(model: &DeepSets) -> Result<Vec<u8>, PersistError> {
    let config_json = serde_json::to_vec(model.config())?;
    let bufs = model.weight_buffers();
    let mut out = Vec::with_capacity(
        8 + config_json.len() + bufs.iter().map(|b| 4 + b.len() * 4).sum::<usize>(),
    );
    out.extend_from_slice(&(config_json.len() as u32).to_le_bytes());
    out.extend_from_slice(&config_json);
    out.extend_from_slice(&(bufs.len() as u32).to_le_bytes());
    for b in bufs {
        out.extend_from_slice(&(b.len() as u32).to_le_bytes());
        for &w in b {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }
    Ok(out)
}

fn decode_payload(payload: &[u8]) -> Result<DeepSets, PersistError> {
    let mut cur = Cursor::new(payload);
    let json_len = cur.u32("config length")? as usize;
    let config_bytes = cur.take(json_len, "config JSON")?;
    let config: DeepSetsConfig = serde_json::from_slice(config_bytes)?;
    let mut model = DeepSets::new(config);
    let num_bufs = cur.u32("buffer count")? as usize;
    let mut weights: Vec<Vec<f32>> = Vec::with_capacity(num_bufs.min(1024));
    for _ in 0..num_bufs {
        let len = cur.u32("buffer length")? as usize;
        if cur.remaining() < len.saturating_mul(4) {
            return Err(PersistError::Corrupt(format!(
                "truncated weights: buffer claims {len} floats, {} bytes left",
                cur.remaining()
            )));
        }
        let mut buf = Vec::with_capacity(len);
        for _ in 0..len {
            buf.push(cur.f32()?);
        }
        weights.push(buf);
    }
    if cur.remaining() > 0 {
        return Err(PersistError::Corrupt(format!(
            "{} trailing bytes after final weight buffer",
            cur.remaining()
        )));
    }
    model.load_weight_buffers(&weights).map_err(PersistError::Corrupt)?;
    Ok(model)
}

/// Encodes a DeepSets model into the checksummed `SLW2` binary format at
/// [`Precision::F32`].
pub fn encode_weights(model: &DeepSets) -> Result<Vec<u8>, PersistError> {
    encode_weights_with_precision(model, Precision::F32)
}

/// Encodes a DeepSets model into the checksummed `SLW2` binary format,
/// recording the serve precision in the revision-2 payload so loaders can
/// rebuild the same inference kernel.
pub fn encode_weights_with_precision(
    model: &DeepSets,
    precision: Precision,
) -> Result<Vec<u8>, PersistError> {
    let body = encode_payload(model)?;
    let mut payload = Vec::with_capacity(1 + body.len());
    payload.push(precision.to_byte());
    payload.extend_from_slice(&body);
    let mut out = Vec::with_capacity(9 + payload.len());
    out.extend_from_slice(MAGIC_V2);
    out.push(FORMAT_VERSION);
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Decodes a model from the binary weight format, discarding the recorded
/// precision. See [`decode_weights_with_precision`].
pub fn decode_weights(data: &[u8]) -> Result<DeepSets, PersistError> {
    decode_weights_with_precision(data).map(|(model, _)| model)
}

/// Decodes a model and its recorded serve precision from the binary weight
/// format: verifies the checksum, rebuilds the skeleton from the embedded
/// config, then overwrites every weight buffer. Revision-1 `SLW2` files and
/// legacy `SLW1` files (no checksum) are also accepted and report
/// [`Precision::F32`].
pub fn decode_weights_with_precision(
    data: &[u8],
) -> Result<(DeepSets, Precision), PersistError> {
    let mut cur = Cursor::new(data);
    let magic = cur.take(4, "header").map_err(|_| {
        PersistError::Format(format!("not a weight file: {} bytes, need at least 4", data.len()))
    })?;
    match magic {
        m if m == MAGIC_V2 => {
            let version = cur.u8("format version")?;
            if version != FORMAT_VERSION && version != FORMAT_VERSION_V1 {
                return Err(PersistError::Format(format!(
                    "unsupported SLW2 revision {version} (this build reads revisions \
                     {FORMAT_VERSION_V1} and {FORMAT_VERSION})"
                )));
            }
            let stored_crc = cur.u32("checksum")?;
            let payload = &data[cur.pos..];
            let actual_crc = crc32(payload);
            if stored_crc != actual_crc {
                return Err(PersistError::Corrupt(format!(
                    "checksum mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x} \
                     (file truncated or bits flipped)"
                )));
            }
            if version == FORMAT_VERSION_V1 {
                return Ok((decode_payload(payload)?, Precision::F32));
            }
            let mut body = Cursor::new(payload);
            let precision_byte = body.u8("precision")?;
            let precision = Precision::from_byte(precision_byte).ok_or_else(|| {
                PersistError::Format(format!(
                    "unknown precision code {precision_byte} (this build knows f32/f16/q8)"
                ))
            })?;
            Ok((decode_payload(&payload[body.pos..])?, precision))
        }
        m if m == MAGIC_V1 => Ok((decode_payload(&data[cur.pos..])?, Precision::F32)),
        m => Err(PersistError::Format(format!(
            "bad magic {:?}: not a setlearn weight file",
            String::from_utf8_lossy(m)
        ))),
    }
}

/// Saves a model's weights in the `SLW2` binary format (atomic write).
pub fn save_weights(model: &DeepSets, path: &Path) -> Result<(), PersistError> {
    let bytes = encode_weights(model)?;
    write_atomic(path, &bytes)
}

/// Loads a model from the binary weight format (`SLW2` or legacy `SLW1`).
pub fn load_weights(path: &Path) -> Result<DeepSets, PersistError> {
    let mut file = std::io::BufReader::new(std::fs::File::open(path)?);
    let mut data = Vec::new();
    file.read_to_end(&mut data)?;
    decode_weights(&data)
}

/// Encodes a model in the legacy `SLW1` layout (payload without version or
/// checksum). Exists for read-compatibility tests; new files are `SLW2`.
pub fn encode_weights_legacy_v1(model: &DeepSets) -> Result<Vec<u8>, PersistError> {
    let payload = encode_payload(model)?;
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(MAGIC_V1);
    out.extend_from_slice(&payload);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Collections root layout
// ---------------------------------------------------------------------------

/// Conventional file names inside one collection directory under a
/// collections root: `<root>/<name>/` holds a [`COLLECTION_MANIFEST`]
/// describing the task, a `model.json` structure checkpoint (the JSON form
/// of the task structure, embedding its SLW2-equivalent weights), an
/// optional `collection.json` with the training sets (needed for mutable
/// serving and compaction rebuilds), and an optional `wal/` directory that
/// makes the collection mutable.
pub const COLLECTION_MANIFEST: &str = "manifest.json";
/// Structure checkpoint file name inside a collection directory.
pub const COLLECTION_MODEL: &str = "model.json";
/// Training-set snapshot file name inside a collection directory.
pub const COLLECTION_SETS: &str = "collection.json";
/// WAL subdirectory name inside a collection directory.
pub const COLLECTION_WAL: &str = "wal";

/// Per-collection manifest stored at `<root>/<name>/manifest.json`. Kept
/// deliberately small: the registry needs only enough to pick the right
/// loader before touching the (much larger) checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, serde::Deserialize)]
pub struct CollectionManifest {
    /// Task label: `cardinality` | `index` | `bloom`.
    pub task: String,
    /// Shard count when the checkpoint is a sharded structure (absent or
    /// `None` for single-model collections).
    #[serde(default)]
    pub shards: Option<usize>,
    /// Routing policy of the sharded structure (`hash` | `range`); absent
    /// defaults to `hash`, matching [`crate::shard::ShardBy`]'s default.
    #[serde(default)]
    pub shard_by: Option<String>,
}

/// One collection found under a collections root.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectionEntry {
    /// Directory name == collection id.
    pub name: String,
    /// The collection's directory.
    pub dir: std::path::PathBuf,
    /// Its manifest.
    pub manifest: CollectionManifest,
    /// Whether a `wal/` subdirectory exists (collection is mutable).
    pub has_wal: bool,
    /// Total bytes of the regular files in the directory (one level deep,
    /// plus the WAL directory) — the registry's resident-size proxy.
    pub disk_bytes: u64,
}

/// The directory a named collection lives in under `root`.
pub fn collection_dir(root: &Path, name: &str) -> std::path::PathBuf {
    root.join(name)
}

/// Loads `<dir>/manifest.json`.
pub fn load_manifest(dir: &Path) -> Result<CollectionManifest, PersistError> {
    load_json(&dir.join(COLLECTION_MANIFEST))
}

/// Saves `<dir>/manifest.json` (atomic write), creating `dir` if needed.
pub fn save_manifest(dir: &Path, manifest: &CollectionManifest) -> Result<(), PersistError> {
    std::fs::create_dir_all(dir)?;
    save_json(manifest, &dir.join(COLLECTION_MANIFEST))
}

fn dir_file_bytes(dir: &Path) -> u64 {
    let mut total = 0;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            if let Ok(meta) = entry.metadata() {
                if meta.is_file() {
                    total += meta.len();
                }
            }
        }
    }
    total
}

/// Inspects one collection directory: reads its manifest and sizes its
/// files. Errors if the manifest is missing or malformed.
pub fn inspect_collection(root: &Path, name: &str) -> Result<CollectionEntry, PersistError> {
    if !crate::wire::valid_collection_name(name) {
        return Err(PersistError::Format(format!(
            "invalid collection name {name:?} (want [A-Za-z0-9_-], at most {} bytes)",
            crate::wire::MAX_COLLECTION_ID_LEN
        )));
    }
    let dir = collection_dir(root, name);
    let manifest = load_manifest(&dir)?;
    let wal_dir = dir.join(COLLECTION_WAL);
    let has_wal = wal_dir.is_dir();
    let mut disk_bytes = dir_file_bytes(&dir);
    if has_wal {
        disk_bytes += dir_file_bytes(&wal_dir);
    }
    Ok(CollectionEntry { name: name.to_string(), dir, manifest, has_wal, disk_bytes })
}

/// Scans a collections root: every direct subdirectory whose name is a
/// valid collection id *and* which contains a readable manifest becomes an
/// entry, sorted by name. Subdirectories without a manifest are skipped
/// silently (the root may hold unrelated files); an unreadable root errors.
pub fn discover_collections(root: &Path) -> Result<Vec<CollectionEntry>, PersistError> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(root)? {
        let entry = entry?;
        if !entry.file_type()?.is_dir() {
            continue;
        }
        let Some(name) = entry.file_name().to_str().map(str::to_string) else { continue };
        if !crate::wire::valid_collection_name(&name) {
            continue;
        }
        if let Ok(e) = inspect_collection(root, &name) {
            out.push(e);
        }
    }
    out.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DeepSetsConfig;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("setlearn-persist-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
        assert_eq!(CRC32_TABLE[255], 0x2D02_EF8D);
    }

    #[test]
    fn binary_roundtrip_preserves_predictions() {
        let model = DeepSets::new(DeepSetsConfig::clsm(5_000));
        let bytes = encode_weights(&model).unwrap();
        let back = decode_weights(&bytes).unwrap();
        for q in [&[1u32, 2][..], &[4_999u32][..], &[7u32, 70, 700][..]] {
            assert_eq!(model.predict_one(q), back.predict_one(q));
        }
    }

    #[test]
    fn file_roundtrip_json_and_binary() {
        let model = DeepSets::new(DeepSetsConfig::lsm(200));
        let jpath = tmp("model.json");
        let bpath = tmp("model.slw");
        save_json(&model, &jpath).unwrap();
        save_weights(&model, &bpath).unwrap();
        let via_json: DeepSets = load_json(&jpath).unwrap();
        let via_bin = load_weights(&bpath).unwrap();
        assert_eq!(model.predict_one(&[3, 7]), via_json.predict_one(&[3, 7]));
        assert_eq!(model.predict_one(&[3, 7]), via_bin.predict_one(&[3, 7]));
        // The binary format is the compact one.
        let jlen = std::fs::metadata(&jpath).unwrap().len();
        let blen = std::fs::metadata(&bpath).unwrap().len();
        assert!(blen < jlen, "binary {blen} vs json {jlen}");
        let _ = std::fs::remove_file(jpath);
        let _ = std::fs::remove_file(bpath);
    }

    #[test]
    fn corrupted_inputs_are_rejected() {
        assert!(matches!(decode_weights(b"nope"), Err(PersistError::Format(_))));
        // A valid-looking SLW2 header whose checksum doesn't match.
        assert!(matches!(
            decode_weights(b"SLW2\x01\xff\xff\xff\xff\x00\x00\x00\x00"),
            Err(PersistError::Corrupt(_))
        ));
        let model = DeepSets::new(DeepSetsConfig::lsm(50));
        let mut bytes = encode_weights(&model).unwrap();
        bytes.truncate(bytes.len() - 3);
        assert!(matches!(decode_weights(&bytes), Err(PersistError::Corrupt(_))));
    }

    #[test]
    fn bit_flip_anywhere_is_detected() {
        let model = DeepSets::new(DeepSetsConfig::lsm(50));
        let clean = encode_weights(&model).unwrap();
        // Flip one bit in several positions across the payload.
        for &pos in &[9, clean.len() / 2, clean.len() - 1] {
            let mut bytes = clean.clone();
            bytes[pos] ^= 0x40;
            assert!(
                matches!(decode_weights(&bytes), Err(PersistError::Corrupt(_))),
                "flip at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn legacy_slw1_files_still_load() {
        let model = DeepSets::new(DeepSetsConfig::lsm(80));
        let v1 = encode_weights_legacy_v1(&model).unwrap();
        assert_eq!(&v1[..4], b"SLW1");
        let back = decode_weights(&v1).unwrap();
        assert_eq!(model.predict_one(&[5, 9]), back.predict_one(&[5, 9]));
    }

    #[test]
    fn precision_roundtrips_and_old_revisions_report_f32() {
        let model = DeepSets::new(DeepSetsConfig::lsm(60));
        for p in Precision::ALL {
            let bytes = encode_weights_with_precision(&model, p).unwrap();
            let (back, got) = decode_weights_with_precision(&bytes).unwrap();
            assert_eq!(got, p);
            assert_eq!(model.predict_one(&[3, 9]), back.predict_one(&[3, 9]));
        }
        // A revision-1 file is the same payload without the precision byte
        // (header is magic 4 + version 1 + crc 4 = 9 bytes).
        let v2 = encode_weights_with_precision(&model, Precision::Q8).unwrap();
        let payload = &v2[10..];
        let mut v1 = Vec::new();
        v1.extend_from_slice(MAGIC_V2);
        v1.push(FORMAT_VERSION_V1);
        v1.extend_from_slice(&crc32(payload).to_le_bytes());
        v1.extend_from_slice(payload);
        let (back, got) = decode_weights_with_precision(&v1).unwrap();
        assert_eq!(got, Precision::F32);
        assert_eq!(model.predict_one(&[3, 9]), back.predict_one(&[3, 9]));
        // Legacy SLW1 also reports f32.
        let slw1 = encode_weights_legacy_v1(&model).unwrap();
        assert_eq!(decode_weights_with_precision(&slw1).unwrap().1, Precision::F32);
        // An unknown precision code is refused even when the checksum holds.
        let mut bad = encode_weights_with_precision(&model, Precision::F32).unwrap();
        bad[9] = 7;
        let crc = crc32(&bad[9..]);
        bad[5..9].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            decode_weights_with_precision(&bad),
            Err(PersistError::Format(_))
        ));
    }

    #[test]
    fn unsupported_future_revision_is_refused() {
        let model = DeepSets::new(DeepSetsConfig::lsm(50));
        let mut bytes = encode_weights(&model).unwrap();
        bytes[4] = 99;
        assert!(matches!(decode_weights(&bytes), Err(PersistError::Format(_))));
    }

    #[test]
    fn collections_root_discovery_finds_manifests_and_sizes() {
        let root = tmp("collections-root");
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        // Two real collections, one mutable, plus clutter to be skipped.
        let a = CollectionManifest { task: "cardinality".into(), shards: None, shard_by: None };
        save_manifest(&collection_dir(&root, "tenant-a"), &a).unwrap();
        std::fs::write(collection_dir(&root, "tenant-a").join(COLLECTION_MODEL), b"{}")
            .unwrap();
        let b = CollectionManifest {
            task: "bloom".into(),
            shards: Some(4),
            shard_by: Some("hash".into()),
        };
        save_manifest(&collection_dir(&root, "tenant-b"), &b).unwrap();
        let wal = collection_dir(&root, "tenant-b").join(COLLECTION_WAL);
        std::fs::create_dir_all(&wal).unwrap();
        std::fs::write(wal.join("wal.log"), vec![0u8; 128]).unwrap();
        std::fs::create_dir_all(root.join("no-manifest-here")).unwrap();
        std::fs::write(root.join("stray-file"), b"x").unwrap();

        let found = discover_collections(&root).unwrap();
        assert_eq!(
            found.iter().map(|e| e.name.as_str()).collect::<Vec<_>>(),
            ["tenant-a", "tenant-b"]
        );
        assert_eq!(found[0].manifest, a);
        assert!(!found[0].has_wal);
        assert!(found[0].disk_bytes > 0);
        assert_eq!(found[1].manifest.shards, Some(4));
        assert!(found[1].has_wal);
        assert!(found[1].disk_bytes >= 128, "wal bytes counted");
        // Direct inspection agrees with the scan; invalid names are refused.
        assert_eq!(inspect_collection(&root, "tenant-b").unwrap(), found[1]);
        assert!(inspect_collection(&root, "../escape").is_err());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn atomic_save_leaves_no_temp_file() {
        let model = DeepSets::new(DeepSetsConfig::lsm(50));
        let path = tmp("atomic.slw");
        save_weights(&model, &path).unwrap();
        let mut tmp_name = path.as_os_str().to_owned();
        tmp_name.push(".tmp");
        assert!(!std::path::Path::new(&tmp_name).exists());
        assert!(path.exists());
        let _ = std::fs::remove_file(path);
    }
}
