//! Model persistence: human-readable JSON dumps of whole structures, plus a
//! compact binary weight format (the analogue of the paper's weights-only
//! pickle files used for its memory measurements).
//!
//! Binary layout (little-endian):
//!
//! ```text
//! magic  "SLW1"            4 bytes
//! json_len: u32            length of the config JSON
//! config JSON              model architecture (to rebuild the skeleton)
//! num_bufs: u32
//! per buffer: len: u32, then len * f32 weights
//! ```

use crate::model::{DeepSets, DeepSetsConfig};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fmt;
use std::io::{Read, Write};
use std::path::Path;

/// Persistence errors.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
    /// Structural mismatch in a binary weight file.
    Format(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Json(e) => write!(f, "json error: {e}"),
            PersistError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Json(e)
    }
}

const MAGIC: &[u8; 4] = b"SLW1";

/// Saves any serializable structure as pretty JSON.
pub fn save_json<T: Serialize>(value: &T, path: &Path) -> Result<(), PersistError> {
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    serde_json::to_writer(&mut file, value)?;
    file.flush()?;
    Ok(())
}

/// Loads a JSON-persisted structure.
pub fn load_json<T: DeserializeOwned>(path: &Path) -> Result<T, PersistError> {
    let file = std::io::BufReader::new(std::fs::File::open(path)?);
    Ok(serde_json::from_reader(file)?)
}

/// Encodes a DeepSets model into the compact binary weight format.
pub fn encode_weights(model: &DeepSets) -> Result<Bytes, PersistError> {
    let config_json = serde_json::to_vec(model.config())?;
    let bufs = model.weight_buffers();
    let mut out = BytesMut::with_capacity(
        8 + config_json.len() + bufs.iter().map(|b| 4 + b.len() * 4).sum::<usize>(),
    );
    out.put_slice(MAGIC);
    out.put_u32_le(config_json.len() as u32);
    out.put_slice(&config_json);
    out.put_u32_le(bufs.len() as u32);
    for b in bufs {
        out.put_u32_le(b.len() as u32);
        for &w in b {
            out.put_f32_le(w);
        }
    }
    Ok(out.freeze())
}

/// Decodes a model from the binary weight format: rebuilds the skeleton from
/// the embedded config, then overwrites every weight buffer.
pub fn decode_weights(mut data: Bytes) -> Result<DeepSets, PersistError> {
    let err = |m: &str| PersistError::Format(m.to_string());
    if data.remaining() < 8 {
        return Err(err("truncated header"));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(err("bad magic"));
    }
    let json_len = data.get_u32_le() as usize;
    if data.remaining() < json_len {
        return Err(err("truncated config"));
    }
    let config: DeepSetsConfig = serde_json::from_slice(&data.copy_to_bytes(json_len))?;
    let mut model = DeepSets::new(config);
    if data.remaining() < 4 {
        return Err(err("truncated buffer count"));
    }
    let num_bufs = data.get_u32_le() as usize;
    let mut weights: Vec<Vec<f32>> = Vec::with_capacity(num_bufs);
    for _ in 0..num_bufs {
        if data.remaining() < 4 {
            return Err(err("truncated buffer length"));
        }
        let len = data.get_u32_le() as usize;
        if data.remaining() < len * 4 {
            return Err(err("truncated weights"));
        }
        let mut buf = Vec::with_capacity(len);
        for _ in 0..len {
            buf.push(data.get_f32_le());
        }
        weights.push(buf);
    }
    model
        .load_weight_buffers(&weights)
        .map_err(PersistError::Format)?;
    Ok(model)
}

/// Saves a model's weights in the binary format.
pub fn save_weights(model: &DeepSets, path: &Path) -> Result<(), PersistError> {
    let bytes = encode_weights(model)?;
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    file.write_all(&bytes)?;
    file.flush()?;
    Ok(())
}

/// Loads a model from the binary weight format.
pub fn load_weights(path: &Path) -> Result<DeepSets, PersistError> {
    let mut file = std::io::BufReader::new(std::fs::File::open(path)?);
    let mut data = Vec::new();
    file.read_to_end(&mut data)?;
    decode_weights(Bytes::from(data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DeepSetsConfig;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("setlearn-persist-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn binary_roundtrip_preserves_predictions() {
        let model = DeepSets::new(DeepSetsConfig::clsm(5_000));
        let bytes = encode_weights(&model).unwrap();
        let back = decode_weights(bytes).unwrap();
        for q in [&[1u32, 2][..], &[4_999u32][..], &[7u32, 70, 700][..]] {
            assert_eq!(model.predict_one(q), back.predict_one(q));
        }
    }

    #[test]
    fn file_roundtrip_json_and_binary() {
        let model = DeepSets::new(DeepSetsConfig::lsm(200));
        let jpath = tmp("model.json");
        let bpath = tmp("model.slw");
        save_json(&model, &jpath).unwrap();
        save_weights(&model, &bpath).unwrap();
        let via_json: DeepSets = load_json(&jpath).unwrap();
        let via_bin = load_weights(&bpath).unwrap();
        assert_eq!(model.predict_one(&[3, 7]), via_json.predict_one(&[3, 7]));
        assert_eq!(model.predict_one(&[3, 7]), via_bin.predict_one(&[3, 7]));
        // The binary format is the compact one.
        let jlen = std::fs::metadata(&jpath).unwrap().len();
        let blen = std::fs::metadata(&bpath).unwrap().len();
        assert!(blen < jlen, "binary {blen} vs json {jlen}");
        let _ = std::fs::remove_file(jpath);
        let _ = std::fs::remove_file(bpath);
    }

    #[test]
    fn corrupted_inputs_are_rejected() {
        assert!(matches!(
            decode_weights(Bytes::from_static(b"nope")),
            Err(PersistError::Format(_))
        ));
        assert!(matches!(
            decode_weights(Bytes::from_static(b"SLW1\xff\xff\xff\xff")),
            Err(PersistError::Format(_))
        ));
        let model = DeepSets::new(DeepSetsConfig::lsm(50));
        let mut bytes = encode_weights(&model).unwrap().to_vec();
        bytes.truncate(bytes.len() - 3);
        assert!(decode_weights(Bytes::from(bytes)).is_err());
    }
}
