//! Inverted index over the set column — the engine's analogue of
//! PostgreSQL's hstore/GIN index in Table 12.

use setlearn_data::SetCollection;

/// Element → sorted posting list of row positions.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    postings: Vec<Vec<u32>>,
}

impl InvertedIndex {
    /// Builds the index over the collection.
    pub fn build(collection: &SetCollection) -> Self {
        let mut postings: Vec<Vec<u32>> = vec![Vec::new(); collection.num_elements() as usize];
        for (pos, set) in collection.iter() {
            for &e in set {
                postings[e as usize].push(pos as u32);
            }
        }
        InvertedIndex { postings }
    }

    /// Exact COUNT of rows containing all of `query` via posting-list
    /// intersection (smallest list drives the probe order).
    pub fn count_subset(&self, query: &[u32]) -> u64 {
        if query.is_empty() {
            return 0;
        }
        let mut lists: Vec<&[u32]> = Vec::with_capacity(query.len());
        for &e in query {
            match self.postings.get(e as usize) {
                Some(l) if !l.is_empty() => lists.push(l),
                _ => return 0,
            }
        }
        lists.sort_by_key(|l| l.len());
        let (first, rest) = lists.split_first().expect("non-empty");
        let mut count = 0u64;
        'outer: for &row in *first {
            for l in rest {
                if l.binary_search(&row).is_err() {
                    continue 'outer;
                }
            }
            count += 1;
        }
        count
    }

    /// Rows containing all of `query` (for SELECT-style access).
    pub fn rows_with_subset(&self, query: &[u32]) -> Vec<u32> {
        if query.is_empty() {
            return Vec::new();
        }
        let mut lists: Vec<&[u32]> = Vec::with_capacity(query.len());
        for &e in query {
            match self.postings.get(e as usize) {
                Some(l) if !l.is_empty() => lists.push(l),
                _ => return Vec::new(),
            }
        }
        lists.sort_by_key(|l| l.len());
        let (first, rest) = lists.split_first().expect("non-empty");
        first
            .iter()
            .copied()
            .filter(|row| rest.iter().all(|l| l.binary_search(row).is_ok()))
            .collect()
    }

    /// Posting-list length for one element (0 when the element is out of
    /// vocabulary) — the cost model's per-predicate statistic.
    pub fn posting_len(&self, element: u32) -> usize {
        self.postings.get(element as usize).map_or(0, Vec::len)
    }

    /// Approximate resident bytes of the posting lists.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .postings
                .iter()
                .map(|p| p.len() * 4 + std::mem::size_of::<Vec<u32>>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setlearn_data::GeneratorConfig;

    #[test]
    fn intersection_counts_match_seq_scan() {
        let c = GeneratorConfig::rw(1_000, 77).generate();
        let idx = InvertedIndex::build(&c);
        for (_, set) in c.iter().take(50) {
            let q = &set[..set.len().min(3)];
            assert_eq!(idx.count_subset(q), c.cardinality(q), "query {q:?}");
        }
    }

    #[test]
    fn rows_are_exactly_the_matching_ones() {
        let c = SetCollection::new(vec![vec![0, 1], vec![1, 2], vec![0, 1, 2]], 3);
        let idx = InvertedIndex::build(&c);
        assert_eq!(idx.rows_with_subset(&[0, 1]), vec![0, 2]);
        assert_eq!(idx.rows_with_subset(&[2]), vec![1, 2]);
        assert!(idx.rows_with_subset(&[0, 2, 1, 0]).contains(&2));
    }

    #[test]
    fn missing_or_empty_queries() {
        let c = SetCollection::new(vec![vec![0, 1]], 5);
        let idx = InvertedIndex::build(&c);
        assert_eq!(idx.count_subset(&[]), 0);
        assert_eq!(idx.count_subset(&[4]), 0);
        assert_eq!(idx.count_subset(&[9]), 0); // out of vocabulary entirely
    }
}
