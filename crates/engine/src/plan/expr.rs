//! The predicate expression AST: `AND` / `OR` / `NOT` over `@>` containment
//! predicates, possibly spanning several set-valued columns.
//!
//! The parser ([`crate::sql`]) produces this tree verbatim; the optimizer
//! ([`super::optimize`]) rewrites it into a canonical form before the cost
//! model prices it.

use setlearn_data::normalize;
use std::fmt;

/// A boolean filter over the set-valued columns of one table.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `column @> {elements}` — the row's set contains every element.
    /// `elements` is canonical (sorted, deduplicated).
    Contains {
        /// Set-valued column the predicate probes.
        column: String,
        /// Canonical queried element ids.
        elements: Vec<u32>,
    },
    /// Conjunction of all children.
    And(Vec<Expr>),
    /// Disjunction of all children.
    Or(Vec<Expr>),
    /// Negation of the child.
    Not(Box<Expr>),
    /// A filter folded to a constant by the optimizer.
    Const(bool),
}

impl Expr {
    /// Builds a canonicalized containment predicate.
    pub fn contains(column: impl Into<String>, elements: Vec<u32>) -> Expr {
        Expr::Contains { column: column.into(), elements: normalize(elements).into_vec() }
    }

    /// Every distinct column referenced by the expression, in first-use
    /// order.
    pub fn columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.walk_columns(&mut out);
        out
    }

    fn walk_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Contains { column, .. } => {
                if !out.contains(&column.as_str()) {
                    out.push(column);
                }
            }
            Expr::And(cs) | Expr::Or(cs) => cs.iter().for_each(|c| c.walk_columns(out)),
            Expr::Not(c) => c.walk_columns(out),
            Expr::Const(_) => {}
        }
    }

    /// Number of containment leaves in the expression.
    pub fn leaf_count(&self) -> usize {
        match self {
            Expr::Contains { .. } => 1,
            Expr::And(cs) | Expr::Or(cs) => cs.iter().map(Expr::leaf_count).sum(),
            Expr::Not(c) => c.leaf_count(),
            Expr::Const(_) => 0,
        }
    }

    /// Whether the expression is exactly one containment predicate (after
    /// optimization this is the single-predicate fast path the legacy
    /// `CountQuery` API maps onto).
    pub fn as_single_contains(&self) -> Option<(&str, &[u32])> {
        match self {
            Expr::Contains { column, elements } => Some((column, elements)),
            _ => None,
        }
    }
}

impl fmt::Display for Expr {
    /// Renders the expression in the SQL dialect's own syntax, fully
    /// parenthesized so precedence is unambiguous in `EXPLAIN` output.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Contains { column, elements } => {
                let ids: Vec<String> = elements.iter().map(u32::to_string).collect();
                write!(f, "{column} @> {{{}}}", ids.join(","))
            }
            Expr::And(cs) => {
                let parts: Vec<String> = cs.iter().map(|c| c.to_string()).collect();
                write!(f, "({})", parts.join(" AND "))
            }
            Expr::Or(cs) => {
                let parts: Vec<String> = cs.iter().map(|c| c.to_string()).collect();
                write!(f, "({})", parts.join(" OR "))
            }
            Expr::Not(c) => write!(f, "NOT {c}"),
            Expr::Const(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_canonicalizes_elements() {
        let e = Expr::contains("tags", vec![3, 1, 3, 2]);
        assert_eq!(e, Expr::Contains { column: "tags".into(), elements: vec![1, 2, 3] });
    }

    #[test]
    fn columns_are_distinct_in_first_use_order() {
        let e = Expr::And(vec![
            Expr::contains("b", vec![1]),
            Expr::Or(vec![
                Expr::contains("a", vec![2]),
                Expr::Not(Box::new(Expr::contains("b", vec![3]))),
            ]),
        ]);
        assert_eq!(e.columns(), vec!["b", "a"]);
        assert_eq!(e.leaf_count(), 3);
    }

    #[test]
    fn renders_sql_syntax() {
        let e = Expr::Or(vec![
            Expr::And(vec![Expr::contains("tags", vec![3, 17]), Expr::contains("tags", vec![42])]),
            Expr::Not(Box::new(Expr::contains("mentions", vec![7]))),
        ]);
        assert_eq!(
            e.to_string(),
            "((tags @> {3,17} AND tags @> {42}) OR NOT mentions @> {7})"
        );
    }
}
