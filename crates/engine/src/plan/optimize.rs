//! The rewrite pass: normalizes a parsed [`Expr`] before costing.
//!
//! Rules, applied bottom-up in one structured pass:
//!
//! 1. **NOT pushdown** — De Morgan until `NOT` only wraps containment
//!    leaves (`NOT (a AND b)` → `NOT a OR NOT b`, `NOT NOT x` → `x`).
//! 2. **Flattening** — nested `AND(AND(..))` / `OR(OR(..))` splice into
//!    their parent.
//! 3. **Containment merging** — inside an `AND`, predicates on the same
//!    column union their element sets (`A ⊇ s₁ ∧ A ⊇ s₂ ⇔ A ⊇ s₁∪s₂`);
//!    inside an `OR`, a predicate absorbs any superset predicate on the
//!    same column (`A ⊇ s₁ ∨ A ⊇ s₂` with `s₁ ⊆ s₂` keeps only `s₁`).
//! 4. **Constant folding** — `TRUE`/`FALSE` children collapse, empty
//!    conjunctions fold to `TRUE`, empty disjunctions to `FALSE`, and
//!    contradictions (`p AND NOT p`) / tautologies (`p OR NOT p`) fold to
//!    constants, including the implied forms (`A ⊇ {1,2} AND NOT A ⊇ {1}`
//!    is `FALSE` because the positive predicate implies the negated one).
//!
//! The pass is deterministic and order-preserving: children keep their
//! first-occurrence order so `EXPLAIN` output is stable. Predicate
//! *reordering* by selectivity happens later, in the planner, because it
//! needs the cost model.

use super::expr::Expr;
use setlearn_data::set::is_subset;

/// Rewrites `e` into canonical form (see the module docs for the rules).
pub fn optimize(e: Expr) -> Expr {
    fold(push_not(e, false))
}

/// De Morgan pushdown: `neg` tracks an odd number of enclosing `NOT`s.
fn push_not(e: Expr, neg: bool) -> Expr {
    match e {
        Expr::Not(inner) => push_not(*inner, !neg),
        Expr::And(cs) => {
            let cs: Vec<Expr> = cs.into_iter().map(|c| push_not(c, neg)).collect();
            if neg {
                Expr::Or(cs)
            } else {
                Expr::And(cs)
            }
        }
        Expr::Or(cs) => {
            let cs: Vec<Expr> = cs.into_iter().map(|c| push_not(c, neg)).collect();
            if neg {
                Expr::And(cs)
            } else {
                Expr::Or(cs)
            }
        }
        Expr::Const(b) => Expr::Const(b ^ neg),
        leaf @ Expr::Contains { .. } => {
            if neg {
                Expr::Not(Box::new(leaf))
            } else {
                leaf
            }
        }
    }
}

/// Bottom-up flatten + merge + constant-fold. Assumes NOT is already pushed
/// to the leaves.
fn fold(e: Expr) -> Expr {
    match e {
        Expr::And(cs) => fold_junction(cs, true),
        Expr::Or(cs) => fold_junction(cs, false),
        Expr::Not(inner) => match fold(*inner) {
            Expr::Const(b) => Expr::Const(!b),
            other => Expr::Not(Box::new(other)),
        },
        leaf => leaf,
    }
}

/// Shared AND/OR machinery; `conj` selects conjunction semantics.
fn fold_junction(children: Vec<Expr>, conj: bool) -> Expr {
    // The annihilator short-circuits the whole junction; the identity is
    // dropped from it.
    let annihilator = !conj; // FALSE kills an AND, TRUE kills an OR
    let mut out: Vec<Expr> = Vec::with_capacity(children.len());
    for child in children {
        let child = fold(child);
        match child {
            Expr::Const(b) if b == annihilator => return Expr::Const(annihilator),
            Expr::Const(_) => {} // identity: drop
            // Splice same-kind juncts (flattening).
            Expr::And(gs) if conj => out.extend(gs),
            Expr::Or(gs) if !conj => out.extend(gs),
            other => out.push(other),
        }
    }

    let mut out = if conj { merge_and(out) } else { absorb_or(out) };

    // Contradiction / tautology detection: a negated leaf against a positive
    // predicate that implies it. In an AND, `A ⊇ sₚ ∧ NOT (A ⊇ sₙ)` is FALSE
    // when `sₙ ⊆ sₚ`; in an OR, `A ⊇ sₚ ∨ NOT (A ⊇ sₙ)` is TRUE when
    // `sₚ ⊆ sₙ`.
    for i in 0..out.len() {
        if let Expr::Not(negated) = &out[i] {
            if let Expr::Contains { column: nc, elements: ne } = &**negated {
                for other in &out {
                    if let Expr::Contains { column: pc, elements: pe } = other {
                        if pc == nc {
                            let folds = if conj {
                                is_subset(ne, pe)
                            } else {
                                is_subset(pe, ne)
                            };
                            if folds {
                                return Expr::Const(!conj);
                            }
                        }
                    }
                }
            }
        }
    }

    // Dedup exact repeats (`p AND p`, `NOT p OR NOT p`), keeping first
    // occurrences.
    let mut seen: Vec<Expr> = Vec::with_capacity(out.len());
    out.retain(|c| {
        if seen.contains(c) {
            false
        } else {
            seen.push(c.clone());
            true
        }
    });

    match out.len() {
        0 => Expr::Const(conj), // empty AND is TRUE, empty OR is FALSE
        1 => out.pop().expect("len checked"),
        _ => {
            if conj {
                Expr::And(out)
            } else {
                Expr::Or(out)
            }
        }
    }
}

/// Unions same-column containment predicates inside an AND.
fn merge_and(children: Vec<Expr>) -> Vec<Expr> {
    let mut out: Vec<Expr> = Vec::with_capacity(children.len());
    'next: for child in children {
        if let Expr::Contains { column, elements } = &child {
            for slot in out.iter_mut() {
                if let Expr::Contains { column: c0, elements: e0 } = slot {
                    if c0 == column {
                        let mut union = e0.clone();
                        union.extend_from_slice(elements);
                        *slot = Expr::contains(c0.clone(), union);
                        continue 'next;
                    }
                }
            }
        }
        out.push(child);
    }
    out
}

/// Subset absorption inside an OR: on one column, a containment predicate
/// implies every subset predicate, so only minimal element sets survive.
fn absorb_or(children: Vec<Expr>) -> Vec<Expr> {
    let mut out: Vec<Expr> = Vec::with_capacity(children.len());
    'next: for child in children {
        if let Expr::Contains { column, elements } = &child {
            let mut absorbed_self = false;
            out.retain(|kept| {
                if let Expr::Contains { column: c0, elements: e0 } = kept {
                    if c0 == column {
                        if is_subset(e0, elements) {
                            // An already-kept subset predicate implies us.
                            absorbed_self = true;
                        } else if is_subset(elements, e0) {
                            // We imply (absorb) the kept superset predicate.
                            return false;
                        }
                    }
                }
                true
            });
            if absorbed_self {
                continue 'next;
            }
        }
        out.push(child);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(col: &str, ids: &[u32]) -> Expr {
        Expr::contains(col, ids.to_vec())
    }

    #[test]
    fn flattens_and_merges_same_column_conjunctions() {
        let e = Expr::And(vec![
            c("tags", &[3, 17]),
            Expr::And(vec![c("tags", &[42]), c("mentions", &[7])]),
        ]);
        assert_eq!(
            optimize(e),
            Expr::And(vec![c("tags", &[3, 17, 42]), c("mentions", &[7])])
        );
    }

    #[test]
    fn pushes_not_down_and_cancels_double_negation() {
        let e = Expr::Not(Box::new(Expr::And(vec![
            c("a", &[1]),
            Expr::Not(Box::new(c("b", &[2]))),
        ])));
        assert_eq!(
            optimize(e),
            Expr::Or(vec![Expr::Not(Box::new(c("a", &[1]))), c("b", &[2])])
        );
    }

    #[test]
    fn folds_constants_and_empty_junctions() {
        assert_eq!(optimize(Expr::And(vec![Expr::Const(true), c("a", &[1])])), c("a", &[1]));
        assert_eq!(
            optimize(Expr::And(vec![Expr::Const(false), c("a", &[1])])),
            Expr::Const(false)
        );
        assert_eq!(optimize(Expr::Or(vec![Expr::Const(true), c("a", &[1])])), Expr::Const(true));
        assert_eq!(optimize(Expr::And(vec![])), Expr::Const(true));
        assert_eq!(optimize(Expr::Or(vec![])), Expr::Const(false));
        assert_eq!(optimize(Expr::Not(Box::new(Expr::Const(false)))), Expr::Const(true));
    }

    #[test]
    fn detects_contradictions_and_tautologies() {
        // p AND NOT p.
        let e = Expr::And(vec![c("a", &[1, 2]), Expr::Not(Box::new(c("a", &[1, 2])))]);
        assert_eq!(optimize(e), Expr::Const(false));
        // The positive implies the negated predicate: A ⊇ {1,2} ∧ ¬(A ⊇ {1}).
        let e = Expr::And(vec![c("a", &[1, 2]), Expr::Not(Box::new(c("a", &[1])))]);
        assert_eq!(optimize(e), Expr::Const(false));
        // p OR NOT p, via the implied form: A ⊇ {1} ∨ ¬(A ⊇ {1,2}).
        let e = Expr::Or(vec![c("a", &[1]), Expr::Not(Box::new(c("a", &[1, 2])))]);
        assert_eq!(optimize(e), Expr::Const(true));
        // Different columns do not fold.
        let e = Expr::And(vec![c("a", &[1]), Expr::Not(Box::new(c("b", &[1])))]);
        assert!(matches!(optimize(e), Expr::And(_)));
    }

    #[test]
    fn or_absorbs_superset_predicates_and_dedups() {
        // A ⊇ {1,2} implies A ⊇ {1}: only the minimal predicate survives.
        let e = Expr::Or(vec![c("a", &[1]), c("a", &[1, 2]), c("b", &[9]), c("b", &[9])]);
        assert_eq!(optimize(e), Expr::Or(vec![c("a", &[1]), c("b", &[9])]));
        // Absorption also applies when the superset comes first.
        let e = Expr::Or(vec![c("a", &[1, 2]), c("a", &[2])]);
        assert_eq!(optimize(e), c("a", &[2]));
    }

    #[test]
    fn dedups_conjunction_repeats() {
        let e = Expr::And(vec![
            Expr::Not(Box::new(c("a", &[5]))),
            Expr::Not(Box::new(c("a", &[5]))),
            c("b", &[1]),
        ]);
        assert_eq!(
            optimize(e),
            Expr::And(vec![Expr::Not(Box::new(c("a", &[5]))), c("b", &[1])])
        );
    }

    #[test]
    fn single_child_junctions_unwrap() {
        let e = Expr::Or(vec![Expr::And(vec![c("a", &[1]), c("a", &[2])])]);
        assert_eq!(optimize(e), c("a", &[1, 2]));
    }
}
