//! The cost model: per-predicate selectivity estimation plus access-path
//! pricing in abstract work units (≈ one row touch or one model MAC-block).
//!
//! Selectivity for a containment leaf comes from, in priority order:
//!
//! 1. the **learned** cardinality estimator registered on the column — one
//!    model forward, clamped to `[0, N]`;
//! 2. **postings** — the inverted index's per-element posting-list lengths
//!    under the independence assumption `N·Π(lenᵢ/N)`, capped by the
//!    shortest list (an exact upper bound for an intersection);
//! 3. a table-size **heuristic** `N·0.2ᵏ` when neither structure exists.
//!
//! Composite expressions combine leaf selectivities assuming independence:
//! `AND → N·Π(rᵢ/N)`, `OR → N·(1−Π(1−rᵢ/N))`, `NOT → N−r`.
//!
//! Access paths are priced as: sequential scan `N·(avg_len + leaves)`;
//! inverted index `Σ driving-list lengths · (1 + (k−1)·log₂N)` plus merge
//! work per boolean node; learned estimate `leaves · 64` (one O(1) forward
//! per leaf, no data touched).

use super::expr::Expr;
use super::PlanCtx;
use std::fmt;

/// Abstract cost of one estimator forward pass (vs `1.0` per row touched).
pub(crate) const MODEL_FORWARD_COST: f64 = 64.0;

/// Where a leaf's selectivity estimate came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelSource {
    /// Registered learned cardinality estimator (one model forward).
    Learned,
    /// Inverted-index posting-list lengths (independence assumption).
    Postings,
    /// Table-size fallback `N·0.2ᵏ` — no structure available.
    Heuristic,
}

impl fmt::Display for SelSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SelSource::Learned => "learned",
            SelSource::Postings => "postings",
            SelSource::Heuristic => "heuristic",
        })
    }
}

/// Prices expressions and access paths against one table's [`PlanCtx`].
pub(crate) struct CostModel<'a, 'b> {
    ctx: &'b PlanCtx<'a>,
}

impl<'a, 'b> CostModel<'a, 'b> {
    pub fn new(ctx: &'b PlanCtx<'a>) -> Self {
        CostModel { ctx }
    }

    fn n(&self) -> f64 {
        self.ctx.rows as f64
    }

    /// Estimated matching rows for one containment leaf, with provenance.
    pub fn leaf_rows(&self, column: &str, elements: &[u32]) -> (f64, SelSource) {
        let n = self.n();
        let col = self.ctx.column(column);
        if let Some(est) = col.and_then(|c| c.estimator) {
            return (est(elements).clamp(0.0, n), SelSource::Learned);
        }
        if let Some(idx) = col.and_then(|c| c.index) {
            // Independence across elements, capped by the shortest posting
            // list (a hard upper bound for the intersection).
            let mut prod = n;
            let mut shortest = f64::INFINITY;
            for &e in elements {
                let len = idx.posting_len(e) as f64;
                shortest = shortest.min(len);
                prod *= if n > 0.0 { len / n } else { 0.0 };
            }
            return (prod.min(shortest).max(0.0), SelSource::Postings);
        }
        // Blind guess: each required element keeps ~20% of rows.
        let rows = (n * 0.2f64.powi(elements.len() as i32)).max(if n > 0.0 { 1.0 } else { 0.0 });
        (rows, SelSource::Heuristic)
    }

    /// Estimated matching rows for a whole expression (independence
    /// combination of leaf estimates).
    pub fn expr_rows(&self, e: &Expr) -> f64 {
        let n = self.n();
        match e {
            Expr::Contains { column, elements } => self.leaf_rows(column, elements).0,
            Expr::And(cs) => {
                let mut rows = n;
                for c in cs {
                    rows *= if n > 0.0 { self.expr_rows(c) / n } else { 0.0 };
                }
                rows
            }
            Expr::Or(cs) => {
                let mut none = 1.0;
                for c in cs {
                    none *= if n > 0.0 { 1.0 - self.expr_rows(c) / n } else { 1.0 };
                }
                n * (1.0 - none)
            }
            Expr::Not(c) => (n - self.expr_rows(c)).max(0.0),
            Expr::Const(true) => n,
            Expr::Const(false) => 0.0,
        }
    }

    /// Cost of evaluating `e` by scanning every row: each row touches its
    /// set payload (`avg_len` per referenced column) and up to one subset
    /// check per leaf.
    pub fn seq_cost(&self, e: &Expr) -> f64 {
        let cols = e.columns();
        let avg: f64 = cols.iter().map(|c| self.ctx.column(c).map_or(0.0, |i| i.avg_len)).sum();
        self.n() * (avg.max(1.0) + e.leaf_count() as f64)
    }

    /// Cost of evaluating `e` via inverted-index row-set algebra. Only
    /// meaningful when every referenced column has an index.
    pub fn index_cost(&self, e: &Expr) -> f64 {
        let log_n = (self.n().max(2.0)).log2();
        match e {
            Expr::Contains { column, elements } => {
                let driving = match self.ctx.column(column).and_then(|c| c.index) {
                    Some(idx) => {
                        elements.iter().map(|&el| idx.posting_len(el)).min().unwrap_or(0) as f64
                    }
                    // No index on this column: priced as a scan so a pinned
                    // `USING index` plan still gets *a* number before the
                    // executor rejects it.
                    None => self.n(),
                };
                // Walk the shortest list, binary-searching the other k−1.
                driving * (1.0 + (elements.len().saturating_sub(1)) as f64 * log_n)
            }
            Expr::And(cs) | Expr::Or(cs) => {
                // Children each materialize a sorted row set, then merge.
                cs.iter().map(|c| self.index_cost(c) + self.expr_rows(c)).sum()
            }
            Expr::Not(c) => self.index_cost(c) + self.n(),
            Expr::Const(_) => 0.0,
        }
    }

    /// Cost of answering from the learned estimator alone: one O(1) model
    /// forward per leaf, independent of table size.
    pub fn estimate_cost(&self, e: &Expr) -> f64 {
        e.leaf_count() as f64 * MODEL_FORWARD_COST
    }

    /// Reorders boolean children for short-circuit execution: `AND` children
    /// ascending by estimated rows (most selective first — fails fast, and
    /// intersections stay small), `OR` children descending (succeeds fast).
    pub fn order_by_selectivity(&self, e: Expr) -> Expr {
        match e {
            Expr::And(cs) => {
                let mut cs: Vec<Expr> =
                    cs.into_iter().map(|c| self.order_by_selectivity(c)).collect();
                let mut keyed: Vec<(f64, Expr)> =
                    cs.drain(..).map(|c| (self.expr_rows(&c), c)).collect();
                keyed.sort_by(|a, b| a.0.total_cmp(&b.0));
                Expr::And(keyed.into_iter().map(|(_, c)| c).collect())
            }
            Expr::Or(cs) => {
                let mut cs: Vec<Expr> =
                    cs.into_iter().map(|c| self.order_by_selectivity(c)).collect();
                let mut keyed: Vec<(f64, Expr)> =
                    cs.drain(..).map(|c| (self.expr_rows(&c), c)).collect();
                keyed.sort_by(|a, b| b.0.total_cmp(&a.0));
                Expr::Or(keyed.into_iter().map(|(_, c)| c).collect())
            }
            Expr::Not(c) => Expr::Not(Box::new(self.order_by_selectivity(*c))),
            leaf => leaf,
        }
    }
}
