//! Renders a [`Plan`] plus its executed actuals as the `EXPLAIN` text.
//!
//! Format (stable, grep-friendly — CI greps the first line):
//!
//! ```text
//! plan path=index pinned=false verb=COUNT table=t rows=1000 est_rows=3.2 cost=41.0
//! considered: seqscan=5200.0 index=41.0 estimate=n/a
//! And (est_rows=3.2, actual_rows=3)
//!   IndexProbe tags @> {42} [postings] (est_rows=5.0, actual_rows=5, cost=12.0)
//!   IndexProbe mentions @> {7} [learned] (est_rows=80.1, actual_rows=77, cost=29.0)
//! result: 3 (exact)
//! ```

use super::{Plan, PlanKind, PlanNode};
use crate::plan::exec::ExecOutcome;
use crate::sql::{ExecMode, Verb};
use std::fmt::Write;

pub(crate) fn mode_str(m: ExecMode) -> &'static str {
    match m {
        ExecMode::SeqScan => "seqscan",
        ExecMode::Index => "index",
        ExecMode::Estimate => "estimate",
    }
}

fn verb_str(v: Verb) -> &'static str {
    match v {
        Verb::Count => "COUNT",
        Verb::Exists => "EXISTS",
        Verb::First => "FIRST",
    }
}

fn set_literal(elements: &[u32]) -> String {
    let ids: Vec<String> = elements.iter().map(u32::to_string).collect();
    format!("{{{}}}", ids.join(","))
}

fn node_line(out: &mut String, node: &PlanNode, actuals: &[Option<u64>], depth: usize) {
    let indent = "  ".repeat(depth);
    let head = match &node.kind {
        PlanKind::SeqScan => "SeqScan".to_string(),
        PlanKind::Filter { column, elements, source } => {
            format!("Filter {column} @> {} [{source}]", set_literal(elements))
        }
        PlanKind::IndexProbe { column, elements, source } => {
            format!("IndexProbe {column} @> {} [{source}]", set_literal(elements))
        }
        PlanKind::Estimate { column, elements, source } => {
            format!("Estimate {column} @> {} [{source}]", set_literal(elements))
        }
        PlanKind::MembershipProbe { elements } => {
            format!("MembershipProbe @> {}", set_literal(elements))
        }
        PlanKind::PositionLookup { elements } => {
            format!("PositionLookup @> {}", set_literal(elements))
        }
        PlanKind::And => "And".to_string(),
        PlanKind::Or => "Or".to_string(),
        PlanKind::Not => "Not".to_string(),
        PlanKind::Trivial { value } => format!("Trivial {value}"),
    };
    let mut attrs = format!("est_rows={:.1}", node.est.rows);
    match actuals.get(node.id).copied().flatten() {
        Some(a) => {
            let _ = write!(attrs, ", actual_rows={a}");
        }
        None => attrs.push_str(", actual_rows=?"),
    }
    if node.est.cost > 0.0 {
        let _ = write!(attrs, ", cost={:.1}", node.est.cost);
    }
    let _ = writeln!(out, "{indent}{head} ({attrs})");
    for child in &node.children {
        node_line(out, child, actuals, depth + 1);
    }
}

/// Renders the full EXPLAIN text for an executed plan.
pub(crate) fn render(plan: &Plan, outcome: &ExecOutcome) -> String {
    let root_cost = plan
        .considered
        .iter()
        .find(|(m, _)| *m == plan.path)
        .and_then(|(_, c)| *c)
        .unwrap_or(plan.root.est.cost);
    let mut out = format!(
        "plan path={} pinned={} verb={} table={} rows={} est_rows={:.1} cost={:.1}\n",
        mode_str(plan.path),
        plan.pinned,
        verb_str(plan.verb),
        plan.table,
        plan.rows,
        plan.root.est.rows,
        root_cost,
    );
    out.push_str("considered:");
    for (mode, cost) in &plan.considered {
        match cost {
            Some(c) => {
                let _ = write!(out, " {}={c:.1}", mode_str(*mode));
            }
            None => {
                let _ = write!(out, " {}=n/a", mode_str(*mode));
            }
        }
    }
    out.push('\n');
    node_line(&mut out, &plan.root, &outcome.actuals, 0);
    let _ = writeln!(
        out,
        "result: {} ({})",
        outcome.value,
        if outcome.exact { "exact" } else { "estimated" }
    );
    out
}
