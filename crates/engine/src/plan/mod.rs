//! The learned-cost query planner.
//!
//! The pipeline is `parse → optimize → cost → choose → execute → explain`:
//!
//! * [`expr`] — the boolean predicate AST over `@>` containment leaves;
//! * [`optimize`] — rewrite to canonical form (flatten, merge, constant-fold,
//!   NOT pushdown);
//! * [`cost`] — selectivity from the learned estimator (falling back to
//!   posting lists, then a heuristic) and per-path pricing;
//! * this module — the typed [`Plan`] tree and the path chooser;
//! * `exec` — the interpreter that runs a plan and records per-node actuals;
//! * `explain` — the `EXPLAIN` renderer.
//!
//! This is the reproduction's answer to the motivation of the learned-index
//! line of work: the cardinality model is not just *benchmarked against*
//! scan/index execution (Table 12), it *drives* the choice between them.

pub mod cost;
pub mod expr;
pub mod optimize;

pub(crate) mod exec;
pub(crate) mod explain;

use crate::engine::{EngineError, EstimatorUdf};
use crate::inverted::InvertedIndex;
use crate::sql::{ExecMode, Verb};
use cost::{CostModel, SelSource};
use expr::Expr;
use setlearn::tasks::{LearnedBloom, LearnedSetIndex};
use setlearn_data::SetCollection;

/// Planner-visible statistics and structures for one set-valued column.
pub(crate) struct ColumnInfo<'a> {
    pub name: &'a str,
    pub collection: &'a SetCollection,
    pub avg_len: f64,
    pub index: Option<&'a InvertedIndex>,
    pub estimator: Option<&'a EstimatorUdf>,
}

/// Everything the planner and executor may consult about one table.
pub(crate) struct PlanCtx<'a> {
    pub table: &'a str,
    pub rows: usize,
    /// Columns in registration order; `[0]` is the primary column, which
    /// owns the table-level membership filter and learned index.
    pub columns: Vec<ColumnInfo<'a>>,
    pub membership: Option<&'a LearnedBloom>,
    pub learned_index: Option<&'a LearnedSetIndex>,
}

impl<'a> PlanCtx<'a> {
    pub fn column(&self, name: &str) -> Option<&ColumnInfo<'a>> {
        self.columns.iter().find(|c| c.name == name)
    }
}

/// Estimated rows and cost attached to every plan node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Est {
    /// Estimated number of rows the node yields (for boolean nodes, rows for
    /// which the subtree holds).
    pub rows: f64,
    /// Estimated work in abstract row-touch units; `0.0` on nodes whose work
    /// is accounted for by an ancestor (sequential-scan filter children).
    pub cost: f64,
}

/// What a plan node does when executed.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanKind {
    /// Scan every row, applying the boolean filter child to each.
    SeqScan,
    /// Per-row subset check of one containment predicate (under a scan).
    Filter {
        /// Column probed.
        column: String,
        /// Canonical queried elements.
        elements: Vec<u32>,
        /// Provenance of the node's selectivity estimate.
        source: SelSource,
    },
    /// Posting-list intersection yielding the rows matching one predicate.
    IndexProbe {
        /// Column probed (must have an inverted index).
        column: String,
        /// Canonical queried elements.
        elements: Vec<u32>,
        /// Provenance of the node's selectivity estimate.
        source: SelSource,
    },
    /// One O(1) learned-estimator forward for one predicate.
    Estimate {
        /// Column whose estimator is consulted.
        column: String,
        /// Canonical queried elements.
        elements: Vec<u32>,
        /// Provenance of the node's selectivity estimate (always learned).
        source: SelSource,
    },
    /// Learned Bloom probe answering EXISTS (approximate).
    MembershipProbe {
        /// Canonical queried elements.
        elements: Vec<u32>,
    },
    /// Learned set-index lookup answering FIRST.
    PositionLookup {
        /// Canonical queried elements.
        elements: Vec<u32>,
    },
    /// Conjunction of child results (row-set intersection / short-circuit
    /// AND / probability product, depending on the path).
    And,
    /// Disjunction of child results.
    Or,
    /// Negation of the single child.
    Not,
    /// The filter folded to a constant; no data is touched.
    Trivial {
        /// The folded value: `true` matches every row, `false` none.
        value: bool,
    },
}

/// One node of a [`Plan`] tree.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanNode {
    /// Preorder id, used to pair estimates with executed actuals.
    pub id: usize,
    /// What the node does.
    pub kind: PlanKind,
    /// The cost model's estimate for the node.
    pub est: Est,
    /// Child nodes (boolean operands; empty on leaves).
    pub children: Vec<PlanNode>,
}

/// A typed, costed execution plan for one query.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The chosen access path.
    pub path: ExecMode,
    /// Whether the path was pinned by a `USING` hint rather than chosen on
    /// cost.
    pub pinned: bool,
    /// The query verb the plan answers.
    pub verb: Verb,
    /// Target table.
    pub table: String,
    /// Table size N at planning time.
    pub rows: usize,
    /// Root node.
    pub root: PlanNode,
    /// Total nodes in the tree (ids are `0..node_count`).
    pub node_count: usize,
    /// Cost of every candidate path considered, `None` when the path was
    /// unavailable (missing index / estimator / learned structure).
    pub considered: Vec<(ExecMode, Option<f64>)>,
}

/// Builds ids in preorder while constructing node trees.
struct NodeBuilder {
    next_id: usize,
}

impl NodeBuilder {
    fn node(&mut self, kind: PlanKind, est: Est, children: Vec<PlanNode>) -> PlanNode {
        let id = self.next_id;
        self.next_id += 1;
        // Children were built after the parent reserved its id, so ids stay
        // preorder as long as callers build parents before children — the
        // recursive builders below do.
        PlanNode { id, kind, est, children }
    }
}

fn expr_tree(
    b: &mut NodeBuilder,
    cm: &CostModel<'_, '_>,
    e: &Expr,
    leaf_kind: &dyn Fn(&str, &[u32], SelSource) -> PlanKind,
    leaf_cost: &dyn Fn(&Expr) -> f64,
    inner_cost: &dyn Fn(&Expr) -> f64,
) -> PlanNode {
    let rows = cm.expr_rows(e);
    match e {
        Expr::Contains { column, elements } => {
            let (_, source) = cm.leaf_rows(column, elements);
            let kind = leaf_kind(column, elements, source);
            b.node(kind, Est { rows, cost: leaf_cost(e) }, Vec::new())
        }
        Expr::And(cs) | Expr::Or(cs) => {
            let kind = if matches!(e, Expr::And(_)) { PlanKind::And } else { PlanKind::Or };
            let parent = b.node(kind, Est { rows, cost: inner_cost(e) }, Vec::new());
            let children = cs
                .iter()
                .map(|c| expr_tree(b, cm, c, leaf_kind, leaf_cost, inner_cost))
                .collect();
            PlanNode { children, ..parent }
        }
        Expr::Not(c) => {
            let parent = b.node(PlanKind::Not, Est { rows, cost: inner_cost(e) }, Vec::new());
            let children = vec![expr_tree(b, cm, c, leaf_kind, leaf_cost, inner_cost)];
            PlanNode { children, ..parent }
        }
        Expr::Const(v) => {
            b.node(PlanKind::Trivial { value: *v }, Est { rows, cost: 0.0 }, Vec::new())
        }
    }
}

/// Optimizes `filter`, prices every applicable access path, and returns the
/// cheapest (or the hinted) plan.
pub(crate) fn build_plan(
    ctx: &PlanCtx<'_>,
    verb: Verb,
    filter: &Expr,
    hint: Option<ExecMode>,
) -> Result<Plan, EngineError> {
    // Unknown columns are a catalog error regardless of path.
    for col in filter.columns() {
        if ctx.column(col).is_none() {
            return Err(EngineError::NoSuchColumn {
                table: ctx.table.to_string(),
                column: col.to_string(),
            });
        }
    }

    let cm = CostModel::new(ctx);
    let optimized = cm.order_by_selectivity(optimize::optimize(filter.clone()));

    // A filter folded to a constant needs no access path at all.
    if let Expr::Const(v) = optimized {
        let mut b = NodeBuilder { next_id: 0 };
        let rows = if v { ctx.rows as f64 } else { 0.0 };
        let root = b.node(PlanKind::Trivial { value: v }, Est { rows, cost: 0.0 }, Vec::new());
        return Ok(Plan {
            path: ExecMode::SeqScan,
            pinned: hint.is_some(),
            verb,
            table: ctx.table.to_string(),
            rows: ctx.rows,
            root,
            node_count: b.next_id,
            considered: vec![(ExecMode::SeqScan, Some(0.0))],
        });
    }

    let columns = optimized.columns();
    let index_available = columns.iter().all(|c| ctx.column(c).is_some_and(|i| i.index.is_some()));
    let single = optimized.as_single_contains().map(|(c, e)| (c.to_string(), e.to_vec()));
    let primary = ctx.columns.first().map(|c| c.name.to_string()).unwrap_or_default();
    // The learned paths per verb: COUNT needs an estimator on every
    // referenced column; EXISTS/FIRST need the table-level learned structure
    // and a single predicate on the primary column (what it was trained on).
    let estimate_available = match verb {
        Verb::Count => {
            columns.iter().all(|c| ctx.column(c).is_some_and(|i| i.estimator.is_some()))
        }
        Verb::Exists => {
            ctx.membership.is_some()
                && single.as_ref().is_some_and(|(c, _)| *c == primary)
        }
        Verb::First => {
            ctx.learned_index.is_some()
                && single.as_ref().is_some_and(|(c, _)| *c == primary)
        }
    };

    let seq_cost = cm.seq_cost(&optimized);
    let index_cost = index_available.then(|| cm.index_cost(&optimized));
    let estimate_cost = estimate_available.then(|| match verb {
        Verb::Count => cm.estimate_cost(&optimized),
        // One filter probe / one guided lookup: a single model forward.
        Verb::Exists | Verb::First => cost::MODEL_FORWARD_COST,
    });
    let considered = vec![
        (ExecMode::SeqScan, Some(seq_cost)),
        (ExecMode::Index, index_cost),
        (ExecMode::Estimate, estimate_cost),
    ];

    let path = match hint {
        Some(ExecMode::SeqScan) => ExecMode::SeqScan,
        Some(ExecMode::Index) => {
            if !index_available {
                return Err(EngineError::NoIndex(ctx.table.to_string()));
            }
            ExecMode::Index
        }
        Some(ExecMode::Estimate) => {
            match verb {
                Verb::Count => {
                    if !estimate_available {
                        return Err(EngineError::NoEstimator(ctx.table.to_string()));
                    }
                }
                Verb::Exists => {
                    if ctx.membership.is_none() {
                        return Err(EngineError::NoMembershipFilter(ctx.table.to_string()));
                    }
                    if !estimate_available {
                        return Err(EngineError::Unsupported(format!(
                            "EXISTS USING estimate requires a single predicate on the \
                             primary column '{primary}'"
                        )));
                    }
                }
                Verb::First => {
                    if ctx.learned_index.is_none() {
                        return Err(EngineError::NoLearnedIndex(ctx.table.to_string()));
                    }
                    if !estimate_available {
                        return Err(EngineError::Unsupported(format!(
                            "FIRST USING estimate requires a single predicate on the \
                             primary column '{primary}'"
                        )));
                    }
                }
            }
            ExecMode::Estimate
        }
        None => {
            // Cost-based choice. EXISTS/FIRST never pick an approximate
            // learned structure on their own — only COUNT trades exactness
            // for speed without being pinned (its result carries
            // `exact = false` so callers can tell).
            let mut best = (ExecMode::SeqScan, seq_cost);
            if let Some(c) = index_cost {
                if c < best.1 {
                    best = (ExecMode::Index, c);
                }
            }
            if verb == Verb::Count {
                if let Some(c) = estimate_cost {
                    if c < best.1 {
                        best = (ExecMode::Estimate, c);
                    }
                }
            }
            best.0
        }
    };

    let mut b = NodeBuilder { next_id: 0 };
    let root = match path {
        ExecMode::SeqScan => {
            let filter_tree = {
                // The scan accounts for all the work; children carry only
                // row estimates.
                let mut inner = NodeBuilder { next_id: 1 };
                let t = expr_tree(
                    &mut inner,
                    &cm,
                    &optimized,
                    &|c, e, s| PlanKind::Filter {
                        column: c.to_string(),
                        elements: e.to_vec(),
                        source: s,
                    },
                    &|_| 0.0,
                    &|_| 0.0,
                );
                b.next_id = inner.next_id;
                t
            };
            PlanNode {
                id: 0,
                kind: PlanKind::SeqScan,
                est: Est { rows: cm.expr_rows(&optimized), cost: seq_cost },
                children: vec![filter_tree],
            }
        }
        ExecMode::Index => expr_tree(
            &mut b,
            &cm,
            &optimized,
            &|c, e, s| PlanKind::IndexProbe {
                column: c.to_string(),
                elements: e.to_vec(),
                source: s,
            },
            &|e| cm.index_cost(e),
            &|e| cm.index_cost(e),
        ),
        ExecMode::Estimate => match verb {
            Verb::Count => expr_tree(
                &mut b,
                &cm,
                &optimized,
                &|c, e, s| PlanKind::Estimate {
                    column: c.to_string(),
                    elements: e.to_vec(),
                    source: s,
                },
                &|_| cost::MODEL_FORWARD_COST,
                &|_| 0.0,
            ),
            Verb::Exists => {
                let (_, elements) = single.clone().expect("estimate_available checked");
                b.node(
                    PlanKind::MembershipProbe { elements },
                    Est { rows: cm.expr_rows(&optimized), cost: cost::MODEL_FORWARD_COST },
                    Vec::new(),
                )
            }
            Verb::First => {
                let (_, elements) = single.clone().expect("estimate_available checked");
                b.node(
                    PlanKind::PositionLookup { elements },
                    Est { rows: cm.expr_rows(&optimized), cost: cost::MODEL_FORWARD_COST },
                    Vec::new(),
                )
            }
        },
    };

    Ok(Plan {
        path,
        pinned: hint.is_some(),
        verb,
        table: ctx.table.to_string(),
        rows: ctx.rows,
        root,
        node_count: b.next_id,
        considered,
    })
}
