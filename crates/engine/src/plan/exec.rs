//! The plan interpreter. Walks a [`PlanNode`] tree against the table's data
//! and optionally records per-node **actual** row counts for `EXPLAIN`.
//!
//! Each access path executes differently:
//!
//! * **seq scan** — row-at-a-time boolean evaluation with short-circuit
//!   AND/OR (disabled when tracking actuals, so every node gets a count;
//!   results are identical either way);
//! * **index** — bottom-up sorted row-set algebra (probe → intersect /
//!   union / complement);
//! * **estimate** — leaf model forwards combined under independence; no
//!   data is touched, so actuals stay unknown.

use super::{Plan, PlanKind, PlanNode};
use crate::sql::Verb;
use setlearn_data::set::is_subset;
use setlearn_data::SetCollection;

use super::PlanCtx;

/// What executing a plan produced.
pub(crate) struct ExecOutcome {
    /// Verb-dependent value (COUNT → count, EXISTS → 1/0, FIRST → position
    /// or −1), matching [`crate::engine::CountResult::count`].
    pub value: f64,
    /// Whether the value is exact.
    pub exact: bool,
    /// Per-node actual yielded rows, indexed by [`PlanNode::id`]; `None`
    /// when unknown (not tracked, short-circuited, or an estimate-only
    /// path).
    pub actuals: Vec<Option<u64>>,
}

/// Runs `plan` against `ctx`. `track` fills per-node actuals (EXPLAIN mode)
/// at the price of disabling short-circuit evaluation.
pub(crate) fn run(ctx: &PlanCtx<'_>, plan: &Plan, track: bool) -> ExecOutcome {
    let mut actuals: Vec<Option<u64>> = vec![None; plan.node_count];
    let n = ctx.rows;
    let (value, exact) = match &plan.root.kind {
        PlanKind::Trivial { value } => (trivial_value(plan.verb, *value, n), true),
        PlanKind::SeqScan => {
            let filter = plan.root.children.first().expect("seqscan has a filter child");
            let compiled = compile(ctx, filter);
            let value = seq_scan(plan.verb, n, &compiled, track, &mut actuals);
            if let Some(root_rows) = actuals.get(filter.id).copied().flatten() {
                actuals[plan.root.id] = Some(root_rows);
            }
            (value, true)
        }
        PlanKind::Estimate { .. } => (estimate_rows(ctx, &plan.root), false),
        PlanKind::And | PlanKind::Or | PlanKind::Not if is_estimate_tree(&plan.root) => {
            (estimate_rows(ctx, &plan.root), false)
        }
        PlanKind::IndexProbe { .. } | PlanKind::And | PlanKind::Or | PlanKind::Not => {
            let rows = index_rows(ctx, &plan.root, track, &mut actuals);
            let value = match plan.verb {
                Verb::Count => rows.len() as f64,
                Verb::Exists => (!rows.is_empty()) as u8 as f64,
                Verb::First => rows.first().map_or(-1.0, |&p| p as f64),
            };
            if !track {
                actuals[plan.root.id] = Some(rows.len() as u64);
            }
            (value, true)
        }
        PlanKind::MembershipProbe { elements } => {
            let filter = ctx.membership.expect("plan built with membership");
            ((filter.contains(elements)) as u8 as f64, false)
        }
        PlanKind::PositionLookup { elements } => {
            let li = ctx.learned_index.expect("plan built with learned index");
            let collection = ctx.columns.first().expect("table has a primary column").collection;
            (
                li.lookup(collection, elements).map_or(-1.0, |p| p as f64),
                // The hybrid index verifies by scanning: answers are exact
                // for queries within its trained contract.
                true,
            )
        }
        PlanKind::Filter { .. } => unreachable!("filter leaves only appear under SeqScan"),
    };
    ExecOutcome { value, exact, actuals }
}

fn trivial_value(verb: Verb, matched: bool, n: usize) -> f64 {
    match verb {
        Verb::Count => {
            if matched {
                n as f64
            } else {
                0.0
            }
        }
        Verb::Exists => (matched && n > 0) as u8 as f64,
        Verb::First => {
            if matched && n > 0 {
                0.0
            } else {
                -1.0
            }
        }
    }
}

/// An estimate-path tree contains only Estimate leaves under boolean nodes.
fn is_estimate_tree(node: &PlanNode) -> bool {
    match &node.kind {
        PlanKind::Estimate { .. } => true,
        PlanKind::And | PlanKind::Or | PlanKind::Not => {
            node.children.iter().all(is_estimate_tree)
        }
        PlanKind::Trivial { .. } => true,
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Sequential scan
// ---------------------------------------------------------------------------

/// A filter tree with column names resolved to collections, evaluated once
/// per row.
enum CNode<'a> {
    Contains { id: usize, collection: &'a SetCollection, elements: &'a [u32] },
    And { id: usize, children: Vec<CNode<'a>> },
    Or { id: usize, children: Vec<CNode<'a>> },
    Not { id: usize, child: Box<CNode<'a>> },
    Const { id: usize, value: bool },
}

fn compile<'a>(ctx: &PlanCtx<'a>, node: &'a PlanNode) -> CNode<'a> {
    match &node.kind {
        PlanKind::Filter { column, elements, .. } => CNode::Contains {
            id: node.id,
            collection: ctx.column(column).expect("planner validated columns").collection,
            elements,
        },
        PlanKind::And => CNode::And {
            id: node.id,
            children: node.children.iter().map(|c| compile(ctx, c)).collect(),
        },
        PlanKind::Or => CNode::Or {
            id: node.id,
            children: node.children.iter().map(|c| compile(ctx, c)).collect(),
        },
        PlanKind::Not => CNode::Not {
            id: node.id,
            child: Box::new(compile(ctx, node.children.first().expect("NOT has a child"))),
        },
        PlanKind::Trivial { value } => CNode::Const { id: node.id, value: *value },
        other => unreachable!("not a filter node: {other:?}"),
    }
}

impl CNode<'_> {
    /// Evaluates the node for `row`. With `counts`, evaluation is exhaustive
    /// (no short-circuit) and every true node increments its slot.
    fn eval(&self, row: usize, counts: &mut Option<&mut Vec<Option<u64>>>) -> bool {
        let (id, hit) = match self {
            CNode::Contains { id, collection, elements } => {
                (*id, is_subset(elements, collection.get(row)))
            }
            CNode::And { id, children } => {
                let mut all = true;
                for c in children {
                    let v = c.eval(row, counts);
                    all &= v;
                    if !all && counts.is_none() {
                        return false;
                    }
                }
                (*id, all)
            }
            CNode::Or { id, children } => {
                let mut any = false;
                for c in children {
                    let v = c.eval(row, counts);
                    any |= v;
                    if any && counts.is_none() {
                        return true;
                    }
                }
                (*id, any)
            }
            CNode::Not { id, child } => (*id, !child.eval(row, counts)),
            CNode::Const { id, value } => (*id, *value),
        };
        if hit {
            if let Some(counts) = counts {
                let slot = counts[id].get_or_insert(0);
                *slot += 1;
            }
        }
        hit
    }
}

fn seq_scan(
    verb: Verb,
    n: usize,
    filter: &CNode<'_>,
    track: bool,
    actuals: &mut Vec<Option<u64>>,
) -> f64 {
    if track {
        // Exhaustive evaluation: every node's actual row count is recorded,
        // and even EXISTS/FIRST scan to the end so the counts are complete.
        zero_tree(filter, actuals);
        let mut first: Option<usize> = None;
        let mut count = 0u64;
        for row in 0..n {
            if filter.eval(row, &mut Some(actuals)) {
                count += 1;
                first.get_or_insert(row);
            }
        }
        return match verb {
            Verb::Count => count as f64,
            Verb::Exists => (count > 0) as u8 as f64,
            Verb::First => first.map_or(-1.0, |p| p as f64),
        };
    }
    match verb {
        Verb::Count => {
            (0..n).filter(|&row| filter.eval(row, &mut None)).count() as f64
        }
        Verb::Exists => (0..n).any(|row| filter.eval(row, &mut None)) as u8 as f64,
        Verb::First => (0..n)
            .find(|&row| filter.eval(row, &mut None))
            .map_or(-1.0, |p| p as f64),
    }
}

/// Pre-seeds each filter node's slot with 0 so untouched nodes render as
/// `actual=0` rather than unknown.
fn zero_tree(node: &CNode<'_>, actuals: &mut [Option<u64>]) {
    match node {
        CNode::Contains { id, .. } | CNode::Const { id, .. } => actuals[*id] = Some(0),
        CNode::And { id, children } | CNode::Or { id, children } => {
            actuals[*id] = Some(0);
            children.iter().for_each(|c| zero_tree(c, actuals));
        }
        CNode::Not { id, child } => {
            actuals[*id] = Some(0);
            zero_tree(child, actuals);
        }
    }
}

// ---------------------------------------------------------------------------
// Inverted-index row-set algebra
// ---------------------------------------------------------------------------

/// Evaluates an index-path subtree to the sorted set of matching row ids.
fn index_rows(
    ctx: &PlanCtx<'_>,
    node: &PlanNode,
    track: bool,
    actuals: &mut Vec<Option<u64>>,
) -> Vec<u32> {
    let rows = match &node.kind {
        PlanKind::IndexProbe { column, elements, .. } => ctx
            .column(column)
            .and_then(|c| c.index)
            .expect("planner validated index availability")
            .rows_with_subset(elements),
        PlanKind::And => {
            let mut iter = node.children.iter();
            let first = iter.next().expect("AND has children");
            let mut acc = index_rows(ctx, first, track, actuals);
            for child in iter {
                // Children are ordered most-selective-first, so the
                // accumulator shrinks as fast as the estimates allow; an
                // empty accumulator still evaluates remaining children when
                // tracking so their actuals are filled.
                if acc.is_empty() && !track {
                    break;
                }
                let rhs = index_rows(ctx, child, track, actuals);
                acc = intersect_sorted(&acc, &rhs);
            }
            acc
        }
        PlanKind::Or => {
            let mut acc: Vec<u32> = Vec::new();
            for child in &node.children {
                let rhs = index_rows(ctx, child, track, actuals);
                acc = union_sorted(&acc, &rhs);
            }
            acc
        }
        PlanKind::Not => {
            let inner =
                index_rows(ctx, node.children.first().expect("NOT has a child"), track, actuals);
            complement_sorted(&inner, ctx.rows as u32)
        }
        PlanKind::Trivial { value } => {
            if *value {
                (0..ctx.rows as u32).collect()
            } else {
                Vec::new()
            }
        }
        other => unreachable!("not an index node: {other:?}"),
    };
    if track {
        actuals[node.id] = Some(rows.len() as u64);
    }
    rows
}

fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

fn union_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

fn complement_sorted(a: &[u32], n: u32) -> Vec<u32> {
    let mut out = Vec::with_capacity(n as usize - a.len());
    let mut next = 0u32;
    for &x in a {
        out.extend(next..x);
        next = x + 1;
    }
    out.extend(next..n);
    out
}

// ---------------------------------------------------------------------------
// Learned estimate
// ---------------------------------------------------------------------------

/// Combines leaf estimator forwards under the independence assumption (same
/// algebra as the cost model, but over live model outputs).
fn estimate_rows(ctx: &PlanCtx<'_>, node: &PlanNode) -> f64 {
    let n = ctx.rows as f64;
    match &node.kind {
        PlanKind::Estimate { column, elements, .. } => {
            let est = ctx
                .column(column)
                .and_then(|c| c.estimator)
                .expect("planner validated estimator availability");
            est(elements).clamp(0.0, n)
        }
        PlanKind::And => {
            let mut rows = n;
            for c in &node.children {
                rows *= if n > 0.0 { estimate_rows(ctx, c) / n } else { 0.0 };
            }
            rows
        }
        PlanKind::Or => {
            let mut none = 1.0;
            for c in &node.children {
                none *= if n > 0.0 { 1.0 - estimate_rows(ctx, c) / n } else { 1.0 };
            }
            n * (1.0 - none)
        }
        PlanKind::Not => {
            (n - estimate_rows(ctx, node.children.first().expect("NOT has a child"))).max(0.0)
        }
        PlanKind::Trivial { value } => {
            if *value {
                n
            } else {
                0.0
            }
        }
        other => unreachable!("not an estimate node: {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_set_algebra() {
        assert_eq!(intersect_sorted(&[1, 3, 5, 7], &[3, 4, 5]), vec![3, 5]);
        assert_eq!(union_sorted(&[1, 3], &[2, 3, 9]), vec![1, 2, 3, 9]);
        assert_eq!(complement_sorted(&[0, 2, 3], 5), vec![1, 4]);
        assert_eq!(complement_sorted(&[], 3), vec![0, 1, 2]);
        assert_eq!(complement_sorted(&[0, 1, 2], 3), Vec::<u32>::new());
    }
}
