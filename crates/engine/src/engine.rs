//! The query engine: tables, optional inverted indexes, estimator UDFs, and
//! the three COUNT execution strategies of Table 12.

use crate::inverted::InvertedIndex;
use crate::sql::{parse_count, CountQuery, ExecMode, ParseError, Verb};
use crate::table::SetTable;
use parking_lot::RwLock;
use setlearn::tasks::{LearnedBloom, LearnedCardinality, LearnedSetIndex};
use setlearn_data::normalize;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// An estimator UDF: canonical query set → estimated count.
pub type EstimatorUdf = Arc<dyn Fn(&[u32]) -> f64 + Send + Sync>;

/// Engine errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Unknown table.
    NoSuchTable(String),
    /// The queried column does not exist on the table.
    NoSuchColumn {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
    },
    /// `USING index` without a built index.
    NoIndex(String),
    /// `USING estimate` without a registered estimator.
    NoEstimator(String),
    /// `SELECT EXISTS ... USING estimate` without a registered membership
    /// filter.
    NoMembershipFilter(String),
    /// `SELECT FIRST ... USING estimate` without a registered learned index.
    NoLearnedIndex(String),
    /// Query text failed to parse.
    Parse(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            EngineError::NoSuchColumn { table, column } => {
                write!(f, "no column '{column}' on table '{table}'")
            }
            EngineError::NoIndex(t) => write!(f, "no inverted index on table '{t}'"),
            EngineError::NoEstimator(t) => write!(f, "no estimator registered on table '{t}'"),
            EngineError::NoMembershipFilter(t) => {
                write!(f, "no membership filter registered on table '{t}'")
            }
            EngineError::NoLearnedIndex(t) => {
                write!(f, "no learned index registered on table '{t}'")
            }
            EngineError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Parse(e.to_string())
    }
}

/// Result of a query execution. The meaning of `count` depends on the verb:
/// COUNT → the (possibly estimated) count; EXISTS → 1.0 / 0.0;
/// FIRST → the position, or -1.0 when no set contains the query.
#[derive(Debug, Clone, PartialEq)]
pub struct CountResult {
    /// Verb-dependent result value (see the struct docs).
    pub count: f64,
    /// Whether the answer is exact.
    pub exact: bool,
    /// The strategy that produced it.
    pub mode: ExecMode,
    /// The executed verb.
    pub verb: Verb,
}

struct TableEntry {
    table: SetTable,
    column: String,
    index: Option<InvertedIndex>,
    estimator: Option<EstimatorUdf>,
    membership: Option<LearnedBloom>,
    learned_index: Option<LearnedSetIndex>,
}

/// An in-memory engine hosting set-valued tables.
///
/// Concurrency: reads take a shared lock; registration takes an exclusive
/// lock, mirroring a catalog.
pub struct Engine {
    tables: RwLock<HashMap<String, TableEntry>>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Engine { tables: RwLock::new(HashMap::new()) }
    }

    /// Registers a table; `column` names its set-valued column.
    pub fn create_table(&self, table: SetTable, column: impl Into<String>) {
        let name = table.name().to_owned();
        self.tables.write().insert(
            name,
            TableEntry {
                table,
                column: column.into(),
                index: None,
                estimator: None,
                membership: None,
                learned_index: None,
            },
        );
    }

    /// Builds the inverted index on a table (Table 12's "with index").
    pub fn create_index(&self, table: &str) -> Result<(), EngineError> {
        let mut tables = self.tables.write();
        let entry =
            tables.get_mut(table).ok_or_else(|| EngineError::NoSuchTable(table.into()))?;
        entry.index = Some(InvertedIndex::build(entry.table.collection()));
        Ok(())
    }

    /// Registers a learned cardinality estimator as the table's UDF.
    pub fn register_estimator(
        &self,
        table: &str,
        estimator: LearnedCardinality,
    ) -> Result<(), EngineError> {
        self.register_estimator_udf(table, Arc::new(move |q| estimator.estimate(q)))
    }

    /// Registers a learned Bloom filter as the table's membership structure
    /// (`SELECT EXISTS ... USING estimate`).
    pub fn register_membership(
        &self,
        table: &str,
        filter: LearnedBloom,
    ) -> Result<(), EngineError> {
        let mut tables = self.tables.write();
        let entry =
            tables.get_mut(table).ok_or_else(|| EngineError::NoSuchTable(table.into()))?;
        entry.membership = Some(filter);
        Ok(())
    }

    /// Registers a learned set index as the table's position structure
    /// (`SELECT FIRST ... USING estimate`).
    pub fn register_learned_index(
        &self,
        table: &str,
        index: LearnedSetIndex,
    ) -> Result<(), EngineError> {
        let mut tables = self.tables.write();
        let entry =
            tables.get_mut(table).ok_or_else(|| EngineError::NoSuchTable(table.into()))?;
        entry.learned_index = Some(index);
        Ok(())
    }

    /// Registers an arbitrary estimator UDF.
    pub fn register_estimator_udf(
        &self,
        table: &str,
        udf: EstimatorUdf,
    ) -> Result<(), EngineError> {
        let mut tables = self.tables.write();
        let entry =
            tables.get_mut(table).ok_or_else(|| EngineError::NoSuchTable(table.into()))?;
        entry.estimator = Some(udf);
        Ok(())
    }

    /// Executes a SQL COUNT query (see [`crate::sql`] for the grammar).
    /// Without a `USING` clause the engine picks the cheapest available
    /// exact plan: index if built, else sequential scan.
    pub fn execute_sql(&self, sql: &str) -> Result<CountResult, EngineError> {
        self.execute(&parse_count(sql)?)
    }

    /// Executes a parsed COUNT query.
    pub fn execute(&self, q: &CountQuery) -> Result<CountResult, EngineError> {
        let tables = self.tables.read();
        let entry =
            tables.get(&q.table).ok_or_else(|| EngineError::NoSuchTable(q.table.clone()))?;
        if entry.column != q.column {
            return Err(EngineError::NoSuchColumn {
                table: q.table.clone(),
                column: q.column.clone(),
            });
        }
        let canonical = normalize(q.elements.clone());
        let mode = q.mode.unwrap_or(if entry.index.is_some() {
            ExecMode::Index
        } else {
            ExecMode::SeqScan
        });
        let verb = q.verb;
        let done = |count: f64, exact: bool| CountResult { count, exact, mode, verb };
        match (verb, mode) {
            (Verb::Count, ExecMode::SeqScan) => {
                Ok(done(entry.table.seq_scan_count(&canonical) as f64, true))
            }
            (Verb::Count, ExecMode::Index) => {
                let idx =
                    entry.index.as_ref().ok_or_else(|| EngineError::NoIndex(q.table.clone()))?;
                Ok(done(idx.count_subset(&canonical) as f64, true))
            }
            (Verb::Count, ExecMode::Estimate) => {
                let est = entry
                    .estimator
                    .as_ref()
                    .ok_or_else(|| EngineError::NoEstimator(q.table.clone()))?;
                Ok(done(est(&canonical), false))
            }
            (Verb::Exists, ExecMode::SeqScan) => Ok(done(
                entry.table.collection().contains_subset(&canonical) as u8 as f64,
                true,
            )),
            (Verb::Exists, ExecMode::Index) => {
                let idx =
                    entry.index.as_ref().ok_or_else(|| EngineError::NoIndex(q.table.clone()))?;
                Ok(done((idx.count_subset(&canonical) > 0) as u8 as f64, true))
            }
            (Verb::Exists, ExecMode::Estimate) => {
                let filter = entry
                    .membership
                    .as_ref()
                    .ok_or_else(|| EngineError::NoMembershipFilter(q.table.clone()))?;
                Ok(done(filter.contains(&canonical) as u8 as f64, false))
            }
            (Verb::First, ExecMode::SeqScan) => Ok(done(
                entry
                    .table
                    .collection()
                    .first_position(&canonical)
                    .map_or(-1.0, |p| p as f64),
                true,
            )),
            (Verb::First, ExecMode::Index) => {
                let idx =
                    entry.index.as_ref().ok_or_else(|| EngineError::NoIndex(q.table.clone()))?;
                Ok(done(
                    idx.rows_with_subset(&canonical)
                        .first()
                        .map_or(-1.0, |&p| p as f64),
                    true,
                ))
            }
            (Verb::First, ExecMode::Estimate) => {
                let li = entry
                    .learned_index
                    .as_ref()
                    .ok_or_else(|| EngineError::NoLearnedIndex(q.table.clone()))?;
                Ok(done(
                    li.lookup(entry.table.collection(), &canonical)
                        .map_or(-1.0, |p| p as f64),
                    // The hybrid index verifies by scanning: answers are
                    // exact for queries within its trained contract.
                    true,
                ))
            }
        }
    }

    /// Inverted-index bytes for a table (0 when not built).
    pub fn index_size_bytes(&self, table: &str) -> Result<usize, EngineError> {
        let tables = self.tables.read();
        let entry =
            tables.get(table).ok_or_else(|| EngineError::NoSuchTable(table.into()))?;
        Ok(entry.index.as_ref().map_or(0, InvertedIndex::size_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setlearn_data::{GeneratorConfig, SetCollection};

    fn engine_with(c: SetCollection) -> Engine {
        let e = Engine::new();
        e.create_table(SetTable::from_collection("t", c), "tags");
        e
    }

    #[test]
    fn seqscan_and_index_agree() {
        let c = GeneratorConfig::rw(800, 5).generate();
        let e = engine_with(c.clone());
        e.create_index("t").unwrap();
        for (_, set) in c.iter().take(30) {
            let q = format!(
                "SELECT COUNT(*) FROM t WHERE tags @> {{{}}}",
                set.iter()
                    .take(3)
                    .map(u32::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            );
            let seq = e.execute_sql(&format!("{q} USING seqscan")).unwrap();
            let idx = e.execute_sql(&format!("{q} USING index")).unwrap();
            assert_eq!(seq.count, idx.count);
            assert!(seq.exact && idx.exact);
        }
    }

    #[test]
    fn default_plan_prefers_index_when_built() {
        let c = GeneratorConfig::sd(200, 2).generate();
        let e = engine_with(c);
        let r = e.execute_sql("SELECT COUNT(*) FROM t WHERE tags @> {1}").unwrap();
        assert_eq!(r.mode, ExecMode::SeqScan);
        e.create_index("t").unwrap();
        let r = e.execute_sql("SELECT COUNT(*) FROM t WHERE tags @> {1}").unwrap();
        assert_eq!(r.mode, ExecMode::Index);
    }

    #[test]
    fn estimator_udf_plugs_in() {
        let c = GeneratorConfig::sd(200, 2).generate();
        let e = engine_with(c);
        e.register_estimator_udf("t", Arc::new(|q| q.len() as f64 * 10.0)).unwrap();
        let r = e
            .execute_sql("SELECT COUNT(*) FROM t WHERE tags @> {1, 2} USING estimate")
            .unwrap();
        assert_eq!(r.count, 20.0);
        assert!(!r.exact);
    }

    #[test]
    fn errors_are_specific() {
        let c = GeneratorConfig::sd(100, 2).generate();
        let e = engine_with(c);
        assert!(matches!(
            e.execute_sql("SELECT COUNT(*) FROM nope WHERE tags @> {1}"),
            Err(EngineError::NoSuchTable(_))
        ));
        assert!(matches!(
            e.execute_sql("SELECT COUNT(*) FROM t WHERE wrong @> {1}"),
            Err(EngineError::NoSuchColumn { .. })
        ));
        assert!(matches!(
            e.execute_sql("SELECT COUNT(*) FROM t WHERE tags @> {1} USING index"),
            Err(EngineError::NoIndex(_))
        ));
        assert!(matches!(
            e.execute_sql("SELECT COUNT(*) FROM t WHERE tags @> {1} USING estimate"),
            Err(EngineError::NoEstimator(_))
        ));
        assert!(matches!(
            e.execute_sql("SELECT BANANA"),
            Err(EngineError::Parse(_))
        ));
    }
}

#[cfg(test)]
mod verb_tests {
    use super::*;
    use crate::table::SetTable;
    use setlearn::hybrid::GuidedConfig;
    use setlearn::model::DeepSetsConfig;
    use setlearn::tasks::{BloomConfig, IndexConfig, LearnedBloom, LearnedSetIndex};
    use setlearn_data::{workload::membership_queries, GeneratorConfig};

    fn quick_guided() -> GuidedConfig {
        GuidedConfig {
            warmup_epochs: 8,
            rounds: 1,
            epochs_per_round: 4,
            percentile: 0.9,
            batch_size: 64,
            learning_rate: 5e-3,
            seed: 4,
        }
    }

    #[test]
    fn exists_verb_matches_oracle_on_exact_plans() {
        let c = GeneratorConfig::rw(400, 6).generate();
        let e = Engine::new();
        e.create_table(SetTable::from_collection("t", c.clone()), "tags");
        e.create_index("t").unwrap();
        for (_, set) in c.iter().take(20) {
            let lit = set[..2.min(set.len())]
                .iter()
                .map(u32::to_string)
                .collect::<Vec<_>>()
                .join(",");
            let seq = e
                .execute_sql(&format!("SELECT EXISTS FROM t WHERE tags @> {{{lit}}} USING seqscan"))
                .unwrap();
            let idx = e
                .execute_sql(&format!("SELECT EXISTS FROM t WHERE tags @> {{{lit}}} USING index"))
                .unwrap();
            assert_eq!(seq.count, 1.0);
            assert_eq!(idx.count, 1.0);
            assert_eq!(seq.verb, Verb::Exists);
        }
        // A guaranteed-absent combination.
        let absent = e
            .execute_sql("SELECT EXISTS FROM t WHERE tags @> {0, 1, 2, 3, 4, 5, 6, 7, 8}")
            .unwrap();
        assert_eq!(absent.count, 0.0);
    }

    #[test]
    fn first_verb_matches_oracle_on_exact_plans() {
        let c = GeneratorConfig::rw(300, 9).generate();
        let e = Engine::new();
        e.create_table(SetTable::from_collection("t", c.clone()), "tags");
        e.create_index("t").unwrap();
        for (_, set) in c.iter().take(20) {
            let lit = set[..2.min(set.len())]
                .iter()
                .map(u32::to_string)
                .collect::<Vec<_>>()
                .join(",");
            let q: Vec<u32> = set[..2.min(set.len())].to_vec();
            let want = c.first_position(&q).map_or(-1.0, |p| p as f64);
            let seq = e
                .execute_sql(&format!("SELECT FIRST FROM t WHERE tags @> {{{lit}}} USING seqscan"))
                .unwrap();
            let idx = e
                .execute_sql(&format!("SELECT FIRST FROM t WHERE tags @> {{{lit}}} USING index"))
                .unwrap();
            assert_eq!(seq.count, want);
            assert_eq!(idx.count, want);
        }
    }

    #[test]
    fn learned_structures_serve_exists_and_first_estimates() {
        let c = GeneratorConfig::rw(400, 11).generate();
        let e = Engine::new();
        e.create_table(SetTable::from_collection("t", c.clone()), "tags");

        let workload = membership_queries(&c, 300, 300, 4, 3);
        let mut bcfg = BloomConfig::new(DeepSetsConfig::clsm(c.num_elements()));
        bcfg.epochs = 15;
        let (filter, _) = LearnedBloom::build(&workload, &bcfg);
        e.register_membership("t", filter).unwrap();

        let mut icfg = IndexConfig::new(DeepSetsConfig::clsm(c.num_elements()));
        icfg.guided = quick_guided();
        icfg.max_subset_size = 2;
        let (index, _) = LearnedSetIndex::build(&c, &icfg);
        e.register_learned_index("t", index).unwrap();

        let set = c.get(42);
        let lit = set[..2].iter().map(u32::to_string).collect::<Vec<_>>().join(",");
        let exists = e
            .execute_sql(&format!("SELECT EXISTS FROM t WHERE tags @> {{{lit}}} USING estimate"))
            .unwrap();
        assert_eq!(exists.count, 1.0, "trained positive must pass");
        assert!(!exists.exact);

        let first = e
            .execute_sql(&format!("SELECT FIRST FROM t WHERE tags @> {{{lit}}} USING estimate"))
            .unwrap();
        let q: Vec<u32> = set[..2].to_vec();
        assert_eq!(first.count, c.first_position(&q).unwrap() as f64);
    }

    #[test]
    fn missing_learned_structures_error_specifically() {
        let c = GeneratorConfig::sd(100, 2).generate();
        let e = Engine::new();
        e.create_table(SetTable::from_collection("t", c), "tags");
        assert!(matches!(
            e.execute_sql("SELECT EXISTS FROM t WHERE tags @> {1} USING estimate"),
            Err(EngineError::NoMembershipFilter(_))
        ));
        assert!(matches!(
            e.execute_sql("SELECT FIRST FROM t WHERE tags @> {1} USING estimate"),
            Err(EngineError::NoLearnedIndex(_))
        ));
    }
}
