//! The query engine: multi-column set-valued tables, optional inverted
//! indexes, learned estimator UDFs, and the cost-based planner that picks
//! between them.
//!
//! Un-pinned queries are routed through [`crate::plan`]: the registered
//! learned cardinality estimator (falling back to posting-list statistics,
//! then a heuristic) prices sequential scan vs inverted index vs learned
//! estimate and the cheapest applicable path runs. A `USING` clause is a
//! *hint* the planner obeys — it still builds and costs the full plan, so
//! `EXPLAIN` and the plan metrics work for pinned queries too.

use crate::inverted::InvertedIndex;
use crate::plan::expr::Expr;
use crate::plan::{build_plan, exec, explain, ColumnInfo, PlanCtx};
use crate::sql::{parse_query, CountQuery, ExecMode, ParseError, Query, Verb};
use crate::table::SetTable;
use parking_lot::RwLock;
use setlearn::tasks::{CardinalityEstimator, LearnedBloom, LearnedSetIndex};
use setlearn_data::SetCollection;
use setlearn_obs::QERROR_BOUNDS;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// An estimator UDF: canonical query set → estimated count.
pub type EstimatorUdf = Arc<dyn Fn(&[u32]) -> f64 + Send + Sync>;

/// Engine errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Unknown table.
    NoSuchTable(String),
    /// The queried column does not exist on the table.
    NoSuchColumn {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
    },
    /// `USING index` without a built index on every referenced column.
    NoIndex(String),
    /// `USING estimate` without a registered estimator on every referenced
    /// column.
    NoEstimator(String),
    /// `SELECT EXISTS ... USING estimate` without a registered membership
    /// filter.
    NoMembershipFilter(String),
    /// `SELECT FIRST ... USING estimate` without a registered learned index.
    NoLearnedIndex(String),
    /// The query shape is valid but the engine cannot run it as asked
    /// (e.g. a learned-structure probe over a multi-predicate filter).
    Unsupported(String),
    /// Query text failed to parse.
    Parse(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            EngineError::NoSuchColumn { table, column } => {
                write!(f, "no column '{column}' on table '{table}'")
            }
            EngineError::NoIndex(t) => write!(f, "no inverted index on table '{t}'"),
            EngineError::NoEstimator(t) => write!(f, "no estimator registered on table '{t}'"),
            EngineError::NoMembershipFilter(t) => {
                write!(f, "no membership filter registered on table '{t}'")
            }
            EngineError::NoLearnedIndex(t) => {
                write!(f, "no learned index registered on table '{t}'")
            }
            EngineError::Unsupported(msg) => write!(f, "unsupported query: {msg}"),
            EngineError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Parse(e.to_string())
    }
}

/// Result of a query execution. The meaning of `count` depends on the verb:
/// COUNT → the (possibly estimated) count; EXISTS → 1.0 / 0.0;
/// FIRST → the position, or -1.0 when no set contains the query.
#[derive(Debug, Clone, PartialEq)]
pub struct CountResult {
    /// Verb-dependent result value (see the struct docs).
    pub count: f64,
    /// Whether the answer is exact.
    pub exact: bool,
    /// The access path that *actually executed* — reported by the engine,
    /// not echoed from the caller's hint.
    pub mode: ExecMode,
    /// The executed verb.
    pub verb: Verb,
    /// The planner's estimated matching rows for the filter.
    pub est_rows: f64,
    /// The planner's estimated cost of the executed path (abstract
    /// row-touch units).
    pub est_cost: f64,
    /// Whether the path was pinned by `USING` rather than chosen on cost.
    pub pinned: bool,
}

/// A query result plus the `EXPLAIN` rendering when one was requested.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutput {
    /// The executed result.
    pub result: CountResult,
    /// The rendered plan, present iff the query asked for `EXPLAIN`.
    pub explain: Option<String>,
}

struct ColumnEntry {
    collection: SetCollection,
    avg_len: f64,
    index: Option<InvertedIndex>,
    estimator: Option<EstimatorUdf>,
}

impl ColumnEntry {
    fn new(collection: SetCollection) -> Self {
        let rows = collection.len();
        let total: usize = collection.sets().iter().map(|s| s.len()).sum();
        let avg_len = if rows > 0 { total as f64 / rows as f64 } else { 0.0 };
        ColumnEntry { collection, avg_len, index: None, estimator: None }
    }
}

struct TableEntry {
    /// Columns in registration order; `[0]` is the primary column (the one
    /// named at `create_table`), which owns the table-level membership
    /// filter and learned index.
    columns: Vec<(String, ColumnEntry)>,
    membership: Option<LearnedBloom>,
    learned_index: Option<LearnedSetIndex>,
}

impl TableEntry {
    fn rows(&self) -> usize {
        self.columns.first().map_or(0, |(_, c)| c.collection.len())
    }

    fn column_mut(&mut self, column: &str) -> Option<&mut ColumnEntry> {
        self.columns.iter_mut().find(|(n, _)| n == column).map(|(_, c)| c)
    }

    fn ctx<'a>(&'a self, table: &'a str) -> PlanCtx<'a> {
        PlanCtx {
            table,
            rows: self.rows(),
            columns: self
                .columns
                .iter()
                .map(|(name, c)| ColumnInfo {
                    name,
                    collection: &c.collection,
                    avg_len: c.avg_len,
                    index: c.index.as_ref(),
                    estimator: c.estimator.as_ref(),
                })
                .collect(),
            membership: self.membership.as_ref(),
            learned_index: self.learned_index.as_ref(),
        }
    }
}

/// An in-memory engine hosting set-valued tables.
///
/// Concurrency: reads take a shared lock; registration takes an exclusive
/// lock, mirroring a catalog.
pub struct Engine {
    tables: RwLock<HashMap<String, TableEntry>>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Engine { tables: RwLock::new(HashMap::new()) }
    }

    /// Registers a table; `column` names its (primary) set-valued column.
    pub fn create_table(&self, table: SetTable, column: impl Into<String>) {
        let name = table.name().to_owned();
        self.tables.write().insert(
            name,
            TableEntry {
                columns: vec![(column.into(), ColumnEntry::new(table.into_collection()))],
                membership: None,
                learned_index: None,
            },
        );
    }

    /// Adds a second (or later) set-valued column to an existing table. The
    /// new column must have exactly one set per existing row.
    pub fn add_column(
        &self,
        table: &str,
        column: impl Into<String>,
        collection: SetCollection,
    ) -> Result<(), EngineError> {
        let column = column.into();
        let mut tables = self.tables.write();
        let entry =
            tables.get_mut(table).ok_or_else(|| EngineError::NoSuchTable(table.into()))?;
        if entry.columns.iter().any(|(n, _)| *n == column) {
            return Err(EngineError::Unsupported(format!(
                "column '{column}' already exists on table '{table}'"
            )));
        }
        if collection.len() != entry.rows() {
            return Err(EngineError::Unsupported(format!(
                "column '{column}' has {} rows but table '{table}' has {}",
                collection.len(),
                entry.rows()
            )));
        }
        entry.columns.push((column, ColumnEntry::new(collection)));
        Ok(())
    }

    /// Builds the inverted index on **every** column of a table (Table 12's
    /// "with index").
    pub fn create_index(&self, table: &str) -> Result<(), EngineError> {
        let mut tables = self.tables.write();
        let entry =
            tables.get_mut(table).ok_or_else(|| EngineError::NoSuchTable(table.into()))?;
        for (_, c) in entry.columns.iter_mut() {
            c.index = Some(InvertedIndex::build(&c.collection));
        }
        Ok(())
    }

    /// Builds the inverted index on one column only.
    pub fn create_index_on(&self, table: &str, column: &str) -> Result<(), EngineError> {
        let mut tables = self.tables.write();
        let entry =
            tables.get_mut(table).ok_or_else(|| EngineError::NoSuchTable(table.into()))?;
        let col = entry.column_mut(column).ok_or_else(|| EngineError::NoSuchColumn {
            table: table.into(),
            column: column.into(),
        })?;
        col.index = Some(InvertedIndex::build(&col.collection));
        Ok(())
    }

    /// Registers a learned cardinality estimator on the table's primary
    /// column. Accepts anything implementing
    /// [`setlearn::tasks::CardinalityEstimator`].
    pub fn register_estimator<E>(&self, table: &str, estimator: E) -> Result<(), EngineError>
    where
        E: CardinalityEstimator + 'static,
    {
        self.register_estimator_udf(table, Arc::new(move |q| estimator.estimate_rows(q)))
    }

    /// Registers a learned Bloom filter as the table's membership structure
    /// (`SELECT EXISTS ... USING estimate`).
    pub fn register_membership(
        &self,
        table: &str,
        filter: LearnedBloom,
    ) -> Result<(), EngineError> {
        let mut tables = self.tables.write();
        let entry =
            tables.get_mut(table).ok_or_else(|| EngineError::NoSuchTable(table.into()))?;
        entry.membership = Some(filter);
        Ok(())
    }

    /// Registers a learned set index as the table's position structure
    /// (`SELECT FIRST ... USING estimate`).
    pub fn register_learned_index(
        &self,
        table: &str,
        index: LearnedSetIndex,
    ) -> Result<(), EngineError> {
        let mut tables = self.tables.write();
        let entry =
            tables.get_mut(table).ok_or_else(|| EngineError::NoSuchTable(table.into()))?;
        entry.learned_index = Some(index);
        Ok(())
    }

    /// Registers an arbitrary estimator UDF on the table's primary column.
    pub fn register_estimator_udf(
        &self,
        table: &str,
        udf: EstimatorUdf,
    ) -> Result<(), EngineError> {
        let mut tables = self.tables.write();
        let entry =
            tables.get_mut(table).ok_or_else(|| EngineError::NoSuchTable(table.into()))?;
        let col = entry.columns.first_mut().expect("tables always have a primary column");
        col.1.estimator = Some(udf);
        Ok(())
    }

    /// Registers an estimator UDF on a specific column.
    pub fn register_estimator_udf_on(
        &self,
        table: &str,
        column: &str,
        udf: EstimatorUdf,
    ) -> Result<(), EngineError> {
        let mut tables = self.tables.write();
        let entry =
            tables.get_mut(table).ok_or_else(|| EngineError::NoSuchTable(table.into()))?;
        let col = entry.column_mut(column).ok_or_else(|| EngineError::NoSuchColumn {
            table: table.into(),
            column: column.into(),
        })?;
        col.estimator = Some(udf);
        Ok(())
    }

    /// Executes a SQL query (see [`crate::sql`] for the grammar), discarding
    /// any `EXPLAIN` rendering. Without a `USING` clause the planner picks
    /// the cheapest applicable path.
    pub fn execute_sql(&self, sql: &str) -> Result<CountResult, EngineError> {
        Ok(self.run_sql(sql)?.result)
    }

    /// Executes a SQL query, returning the result and — when the query was
    /// prefixed with `EXPLAIN` — the rendered plan.
    pub fn run_sql(&self, sql: &str) -> Result<QueryOutput, EngineError> {
        self.run_query(&parse_query(sql)?)
    }

    /// Plans and executes a SQL query as if prefixed with `EXPLAIN`,
    /// returning the rendered plan (the query *does* execute, so the
    /// rendering includes per-node actual row counts).
    pub fn explain_sql(&self, sql: &str) -> Result<String, EngineError> {
        let mut q = parse_query(sql)?;
        q.explain = true;
        Ok(self.run_query(&q)?.explain.expect("explain was requested"))
    }

    /// Executes a parsed legacy single-predicate query through the planner.
    pub fn execute(&self, q: &CountQuery) -> Result<CountResult, EngineError> {
        let query = Query {
            verb: q.verb,
            table: q.table.clone(),
            filter: Expr::contains(q.column.clone(), q.elements.clone()),
            hint: q.mode,
            explain: false,
        };
        Ok(self.run_query(&query)?.result)
    }

    /// Plans and executes a parsed query.
    pub fn run_query(&self, q: &Query) -> Result<QueryOutput, EngineError> {
        let tables = self.tables.read();
        let entry =
            tables.get(&q.table).ok_or_else(|| EngineError::NoSuchTable(q.table.clone()))?;
        let ctx = entry.ctx(&q.table);
        let plan = build_plan(&ctx, q.verb, &q.filter, q.hint)?;
        let outcome = exec::run(&ctx, &plan, q.explain);

        let est_cost = plan
            .considered
            .iter()
            .find(|(m, _)| *m == plan.path)
            .and_then(|(_, c)| *c)
            .unwrap_or(plan.root.est.cost);
        let result = CountResult {
            count: outcome.value,
            exact: outcome.exact,
            mode: plan.path,
            verb: q.verb,
            est_rows: plan.root.est.rows,
            est_cost,
            pinned: plan.pinned,
        };

        if setlearn_obs::metrics_on() {
            let m = setlearn_obs::metrics();
            m.counter_with("setlearn_plan_chosen_total", &[("path", explain::mode_str(plan.path))])
                .inc();
            // Cost-error feedback only makes sense where both sides are row
            // counts: exact COUNT executions.
            if q.verb == Verb::Count && result.exact {
                let est = plan.root.est.rows.max(1.0);
                let actual = result.count.max(1.0);
                m.histogram("setlearn_plan_cost_error", QERROR_BOUNDS)
                    .observe((est / actual).max(actual / est));
            }
        }

        let explain_text = q.explain.then(|| explain::render(&plan, &outcome));
        Ok(QueryOutput { result, explain: explain_text })
    }

    /// Total inverted-index bytes across a table's columns (0 when none
    /// built).
    pub fn index_size_bytes(&self, table: &str) -> Result<usize, EngineError> {
        let tables = self.tables.read();
        let entry =
            tables.get(table).ok_or_else(|| EngineError::NoSuchTable(table.into()))?;
        Ok(entry
            .columns
            .iter()
            .filter_map(|(_, c)| c.index.as_ref())
            .map(InvertedIndex::size_bytes)
            .sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setlearn_data::{GeneratorConfig, SetCollection};

    fn engine_with(c: SetCollection) -> Engine {
        let e = Engine::new();
        e.create_table(SetTable::from_collection("t", c), "tags");
        e
    }

    #[test]
    fn seqscan_and_index_agree() {
        let c = GeneratorConfig::rw(800, 5).generate();
        let e = engine_with(c.clone());
        e.create_index("t").unwrap();
        for (_, set) in c.iter().take(30) {
            let q = format!(
                "SELECT COUNT(*) FROM t WHERE tags @> {{{}}}",
                set.iter()
                    .take(3)
                    .map(u32::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            );
            let seq = e.execute_sql(&format!("{q} USING seqscan")).unwrap();
            let idx = e.execute_sql(&format!("{q} USING index")).unwrap();
            assert_eq!(seq.count, idx.count);
            assert!(seq.exact && idx.exact);
            assert!(seq.pinned && idx.pinned);
            assert_eq!(seq.mode, ExecMode::SeqScan);
            assert_eq!(idx.mode, ExecMode::Index);
        }
    }

    #[test]
    fn default_plan_prefers_index_when_built() {
        let c = GeneratorConfig::sd(200, 2).generate();
        let e = engine_with(c);
        let r = e.execute_sql("SELECT COUNT(*) FROM t WHERE tags @> {1}").unwrap();
        assert_eq!(r.mode, ExecMode::SeqScan);
        assert!(!r.pinned);
        e.create_index("t").unwrap();
        let r = e.execute_sql("SELECT COUNT(*) FROM t WHERE tags @> {1}").unwrap();
        assert_eq!(r.mode, ExecMode::Index);
        assert!(!r.pinned);
    }

    #[test]
    fn estimator_udf_plugs_in() {
        let c = GeneratorConfig::sd(200, 2).generate();
        let e = engine_with(c);
        e.register_estimator_udf("t", Arc::new(|q| q.len() as f64 * 10.0)).unwrap();
        let r = e
            .execute_sql("SELECT COUNT(*) FROM t WHERE tags @> {1, 2} USING estimate")
            .unwrap();
        assert_eq!(r.count, 20.0);
        assert!(!r.exact);
    }

    #[test]
    fn unpinned_count_picks_the_learned_estimate_when_registered() {
        let c = GeneratorConfig::sd(500, 2).generate();
        let e = engine_with(c);
        e.create_index("t").unwrap();
        e.register_estimator_udf("t", Arc::new(|q| q.len() as f64 * 10.0)).unwrap();
        // The O(1) model forward undercuts both exact paths; the result is
        // flagged inexact so callers can tell.
        let r = e.execute_sql("SELECT COUNT(*) FROM t WHERE tags @> {1, 2}").unwrap();
        assert_eq!(r.mode, ExecMode::Estimate);
        assert!(!r.exact);
        assert!(!r.pinned);
        // EXISTS/FIRST never trade exactness without being pinned.
        let r = e.execute_sql("SELECT EXISTS FROM t WHERE tags @> {1, 2}").unwrap();
        assert_ne!(r.mode, ExecMode::Estimate);
        assert!(r.exact);
    }

    #[test]
    fn errors_are_specific() {
        let c = GeneratorConfig::sd(100, 2).generate();
        let e = engine_with(c);
        assert!(matches!(
            e.execute_sql("SELECT COUNT(*) FROM nope WHERE tags @> {1}"),
            Err(EngineError::NoSuchTable(_))
        ));
        assert!(matches!(
            e.execute_sql("SELECT COUNT(*) FROM t WHERE wrong @> {1}"),
            Err(EngineError::NoSuchColumn { .. })
        ));
        assert!(matches!(
            e.execute_sql("SELECT COUNT(*) FROM t WHERE tags @> {1} USING index"),
            Err(EngineError::NoIndex(_))
        ));
        assert!(matches!(
            e.execute_sql("SELECT COUNT(*) FROM t WHERE tags @> {1} USING estimate"),
            Err(EngineError::NoEstimator(_))
        ));
        assert!(matches!(
            e.execute_sql("SELECT BANANA"),
            Err(EngineError::Parse(_))
        ));
    }

    #[test]
    fn boolean_filters_agree_across_exact_paths() {
        let c = GeneratorConfig::rw(600, 21).generate();
        let e = engine_with(c.clone());
        e.create_index("t").unwrap();
        let queries = [
            "tags @> {1} AND tags @> {2}",
            "tags @> {1} OR tags @> {2}",
            "tags @> {1} AND NOT tags @> {2}",
            "NOT (tags @> {1} OR tags @> {2})",
            "(tags @> {1} OR tags @> {2}) AND tags @> {3}",
        ];
        for w in queries {
            for verb in ["COUNT(*)", "EXISTS", "FIRST"] {
                let seq = e
                    .execute_sql(&format!("SELECT {verb} FROM t WHERE {w} USING seqscan"))
                    .unwrap();
                let idx = e
                    .execute_sql(&format!("SELECT {verb} FROM t WHERE {w} USING index"))
                    .unwrap();
                assert_eq!(seq.count, idx.count, "verb {verb} filter {w}");
                assert!(seq.exact && idx.exact);
            }
        }
    }

    #[test]
    fn seqscan_filter_matches_oracle_on_boolean_queries() {
        let c = GeneratorConfig::rw(400, 33).generate();
        let e = engine_with(c.clone());
        // Oracle: count rows satisfying (⊇{1} ∧ ¬⊇{2}) ∨ ⊇{3} by hand.
        let want = c
            .iter()
            .filter(|(_, s)| {
                use setlearn_data::set::is_subset;
                (is_subset(&[1], s) && !is_subset(&[2], s)) || is_subset(&[3], s)
            })
            .count() as f64;
        let got = e
            .execute_sql(
                "SELECT COUNT(*) FROM t WHERE tags @> {1} AND NOT tags @> {2} OR tags @> {3}",
            )
            .unwrap();
        assert_eq!(got.count, want);
        assert!(got.exact);
    }

    #[test]
    fn planner_without_estimator_is_bit_identical_to_direct_execution() {
        let c = GeneratorConfig::rw(500, 8).generate();
        let e = engine_with(c.clone());
        // No estimator, no index: the planner's seq scan must equal the
        // collection oracle exactly.
        for (_, set) in c.iter().take(20) {
            let q: Vec<u32> = set.iter().take(2).copied().collect();
            let lit = q.iter().map(u32::to_string).collect::<Vec<_>>().join(",");
            let r = e
                .execute_sql(&format!("SELECT COUNT(*) FROM t WHERE tags @> {{{lit}}}"))
                .unwrap();
            assert_eq!(r.count, c.cardinality(&q) as f64);
            assert!(r.exact);
        }
        // With an index: still identical.
        e.create_index("t").unwrap();
        for (_, set) in c.iter().take(20) {
            let q: Vec<u32> = set.iter().take(2).copied().collect();
            let lit = q.iter().map(u32::to_string).collect::<Vec<_>>().join(",");
            let r = e
                .execute_sql(&format!("SELECT COUNT(*) FROM t WHERE tags @> {{{lit}}}"))
                .unwrap();
            assert_eq!(r.count, c.cardinality(&q) as f64);
        }
    }

    #[test]
    fn contradictions_fold_to_trivial_plans() {
        let c = GeneratorConfig::sd(100, 2).generate();
        let e = engine_with(c);
        let out = e
            .run_sql("EXPLAIN SELECT COUNT(*) FROM t WHERE tags @> {1} AND NOT tags @> {1}")
            .unwrap();
        assert_eq!(out.result.count, 0.0);
        assert!(out.result.exact);
        let text = out.explain.unwrap();
        assert!(text.contains("Trivial"), "explain:\n{text}");
    }

    #[test]
    fn multi_column_tables_answer_cross_column_queries() {
        let tags = SetCollection::new(vec![vec![0, 1], vec![1, 2], vec![0, 2], vec![2]], 3);
        let mentions = SetCollection::new(vec![vec![5], vec![5, 6], vec![6], vec![5]], 8);
        let e = Engine::new();
        e.create_table(SetTable::from_collection("posts", tags), "tags");
        e.add_column("posts", "mentions", mentions).unwrap();
        // Rows matching tags ⊇ {2} are 1,2,3; mentions ⊇ {5} are 0,1,3.
        let r = e
            .execute_sql("SELECT COUNT(*) FROM posts WHERE tags @> {2} AND mentions @> {5}")
            .unwrap();
        assert_eq!(r.count, 2.0); // rows 1 and 3
        let r = e
            .execute_sql("SELECT COUNT(*) FROM posts WHERE tags @> {2} OR mentions @> {5}")
            .unwrap();
        assert_eq!(r.count, 4.0);
        // Index path agrees after building per-column indexes.
        e.create_index("posts").unwrap();
        let r = e
            .execute_sql(
                "SELECT COUNT(*) FROM posts WHERE tags @> {2} AND mentions @> {5} USING index",
            )
            .unwrap();
        assert_eq!(r.count, 2.0);
        // Row-count mismatch and duplicate columns are rejected.
        let short = SetCollection::new(vec![vec![0]], 2);
        assert!(matches!(
            e.add_column("posts", "links", short),
            Err(EngineError::Unsupported(_))
        ));
        assert!(matches!(
            e.add_column("posts", "tags", SetCollection::new(vec![vec![0]; 4], 2)),
            Err(EngineError::Unsupported(_))
        ));
    }

    #[test]
    fn explain_orders_predicates_by_estimated_selectivity() {
        // Element 0 appears in every row, element 9 in exactly one: the
        // planner must probe {9} before {0} inside the AND.
        let mut rows: Vec<Vec<u32>> = (0..50).map(|i| vec![0, 1 + (i % 3)]).collect();
        rows[7] = vec![0, 9];
        let c = SetCollection::new(rows, 10);
        let e = engine_with(c);
        e.create_index("t").unwrap();
        // Same-column AND predicates merge into one probe, so ordering is
        // observable through OR (children sorted descending by estimated
        // rows): element 0 hits all 50 rows, element 1 about a third, and
        // element 9 exactly one, so the plan must list them in that order
        // even though the query text is reversed.
        let text = e
            .explain_sql("SELECT COUNT(*) FROM t WHERE tags @> {9} OR tags @> {1} OR tags @> {0}")
            .unwrap();
        let pos0 = text.find("{0}").expect("explain mentions {0}");
        let pos1 = text.find("{1}").expect("explain mentions {1}");
        let pos9 = text.find("{9}").expect("explain mentions {9}");
        assert!(
            pos0 < pos1 && pos1 < pos9,
            "OR children should be ordered by descending estimated rows:\n{text}"
        );
        assert!(text.starts_with("plan path="), "grep-able first line:\n{text}");
    }

    #[test]
    fn count_result_reports_executed_path_not_the_hint() {
        let c = GeneratorConfig::sd(150, 4).generate();
        let e = engine_with(c);
        let r = e.execute_sql("SELECT COUNT(*) FROM t WHERE tags @> {1}").unwrap();
        assert_eq!(r.mode, ExecMode::SeqScan);
        assert!(!r.pinned);
        assert!(r.est_cost > 0.0);
        e.create_index("t").unwrap();
        let pinned = e
            .execute_sql("SELECT COUNT(*) FROM t WHERE tags @> {1} USING seqscan")
            .unwrap();
        assert_eq!(pinned.mode, ExecMode::SeqScan);
        assert!(pinned.pinned);
        let chosen = e.execute_sql("SELECT COUNT(*) FROM t WHERE tags @> {1}").unwrap();
        assert_eq!(chosen.mode, ExecMode::Index);
        assert!(!chosen.pinned);
    }
}

#[cfg(test)]
mod verb_tests {
    use super::*;
    use crate::table::SetTable;
    use setlearn::hybrid::GuidedConfig;
    use setlearn::model::DeepSetsConfig;
    use setlearn::tasks::{BloomConfig, IndexConfig, LearnedBloom, LearnedSetIndex};
    use setlearn_data::{workload::membership_queries, GeneratorConfig};

    fn quick_guided() -> GuidedConfig {
        GuidedConfig {
            warmup_epochs: 8,
            rounds: 1,
            epochs_per_round: 4,
            percentile: 0.9,
            batch_size: 64,
            learning_rate: 5e-3,
            seed: 4,
        }
    }

    #[test]
    fn exists_verb_matches_oracle_on_exact_plans() {
        let c = GeneratorConfig::rw(400, 6).generate();
        let e = Engine::new();
        e.create_table(SetTable::from_collection("t", c.clone()), "tags");
        e.create_index("t").unwrap();
        for (_, set) in c.iter().take(20) {
            let lit = set[..2.min(set.len())]
                .iter()
                .map(u32::to_string)
                .collect::<Vec<_>>()
                .join(",");
            let seq = e
                .execute_sql(&format!("SELECT EXISTS FROM t WHERE tags @> {{{lit}}} USING seqscan"))
                .unwrap();
            let idx = e
                .execute_sql(&format!("SELECT EXISTS FROM t WHERE tags @> {{{lit}}} USING index"))
                .unwrap();
            assert_eq!(seq.count, 1.0);
            assert_eq!(idx.count, 1.0);
            assert_eq!(seq.verb, Verb::Exists);
        }
        // A guaranteed-absent combination.
        let absent = e
            .execute_sql("SELECT EXISTS FROM t WHERE tags @> {0, 1, 2, 3, 4, 5, 6, 7, 8}")
            .unwrap();
        assert_eq!(absent.count, 0.0);
    }

    #[test]
    fn first_verb_matches_oracle_on_exact_plans() {
        let c = GeneratorConfig::rw(300, 9).generate();
        let e = Engine::new();
        e.create_table(SetTable::from_collection("t", c.clone()), "tags");
        e.create_index("t").unwrap();
        for (_, set) in c.iter().take(20) {
            let lit = set[..2.min(set.len())]
                .iter()
                .map(u32::to_string)
                .collect::<Vec<_>>()
                .join(",");
            let q: Vec<u32> = set[..2.min(set.len())].to_vec();
            let want = c.first_position(&q).map_or(-1.0, |p| p as f64);
            let seq = e
                .execute_sql(&format!("SELECT FIRST FROM t WHERE tags @> {{{lit}}} USING seqscan"))
                .unwrap();
            let idx = e
                .execute_sql(&format!("SELECT FIRST FROM t WHERE tags @> {{{lit}}} USING index"))
                .unwrap();
            assert_eq!(seq.count, want);
            assert_eq!(idx.count, want);
        }
    }

    #[test]
    fn learned_structures_serve_exists_and_first_estimates() {
        let c = GeneratorConfig::rw(400, 11).generate();
        let e = Engine::new();
        e.create_table(SetTable::from_collection("t", c.clone()), "tags");

        let workload = membership_queries(&c, 300, 300, 4, 3);
        let mut bcfg = BloomConfig::new(DeepSetsConfig::clsm(c.num_elements()));
        bcfg.epochs = 15;
        let (filter, _) = LearnedBloom::build(&workload, &bcfg);
        e.register_membership("t", filter).unwrap();

        let mut icfg = IndexConfig::new(DeepSetsConfig::clsm(c.num_elements()));
        icfg.guided = quick_guided();
        icfg.max_subset_size = 2;
        let (index, _) = LearnedSetIndex::build(&c, &icfg);
        e.register_learned_index("t", index).unwrap();

        let set = c.get(42);
        let lit = set[..2].iter().map(u32::to_string).collect::<Vec<_>>().join(",");
        let exists = e
            .execute_sql(&format!("SELECT EXISTS FROM t WHERE tags @> {{{lit}}} USING estimate"))
            .unwrap();
        assert_eq!(exists.count, 1.0, "trained positive must pass");
        assert!(!exists.exact);

        let first = e
            .execute_sql(&format!("SELECT FIRST FROM t WHERE tags @> {{{lit}}} USING estimate"))
            .unwrap();
        let q: Vec<u32> = set[..2].to_vec();
        assert_eq!(first.count, c.first_position(&q).unwrap() as f64);
    }

    #[test]
    fn missing_learned_structures_error_specifically() {
        let c = GeneratorConfig::sd(100, 2).generate();
        let e = Engine::new();
        e.create_table(SetTable::from_collection("t", c), "tags");
        assert!(matches!(
            e.execute_sql("SELECT EXISTS FROM t WHERE tags @> {1} USING estimate"),
            Err(EngineError::NoMembershipFilter(_))
        ));
        assert!(matches!(
            e.execute_sql("SELECT FIRST FROM t WHERE tags @> {1} USING estimate"),
            Err(EngineError::NoLearnedIndex(_))
        ));
    }
}
