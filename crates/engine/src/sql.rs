//! A tiny SQL-flavored query language for subset queries:
//!
//! ```text
//! SELECT COUNT(*) FROM tweets WHERE tags @> {3, 17, 42} [USING seqscan|index|estimate]
//! SELECT EXISTS   FROM tweets WHERE tags @> {3, 17}     [USING ...]
//! SELECT FIRST    FROM tweets WHERE tags @> {3, 17}     [USING ...]
//! ```
//!
//! `@>` is PostgreSQL's containment operator; the optional `USING` clause
//! pins the execution strategy (Table 12 compares all three). The three verbs
//! map onto the paper's three tasks: COUNT → cardinality estimation,
//! EXISTS → membership, FIRST → indexing.

use std::fmt;

/// Execution strategy for a COUNT query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Full scan of the table (PostgreSQL without an index).
    SeqScan,
    /// Inverted-index intersection (PostgreSQL with an index).
    Index,
    /// Learned estimator UDF (approximate).
    Estimate,
}

/// The query verb: which of the paper's three tasks the query exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verb {
    /// `SELECT COUNT(*)` — cardinality.
    Count,
    /// `SELECT EXISTS` — membership.
    Exists,
    /// `SELECT FIRST` — first-occurrence position.
    First,
}

/// A parsed `SELECT <verb> ... WHERE col @> {..}` query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountQuery {
    /// The query verb.
    pub verb: Verb,
    /// Target table.
    pub table: String,
    /// Set-valued column name.
    pub column: String,
    /// Queried element ids.
    pub elements: Vec<u32>,
    /// Execution strategy, if pinned by `USING`.
    pub mode: Option<ExecMode>,
}

/// Parse error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SQL parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    Number(u32),
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Star,
    Contains, // @>
}

fn tokenize(input: &str) -> Result<Vec<Token>, ParseError> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '(' => {
                chars.next();
                tokens.push(Token::LParen);
            }
            ')' => {
                chars.next();
                tokens.push(Token::RParen);
            }
            '{' => {
                chars.next();
                tokens.push(Token::LBrace);
            }
            '}' => {
                chars.next();
                tokens.push(Token::RBrace);
            }
            ',' => {
                chars.next();
                tokens.push(Token::Comma);
            }
            '*' => {
                chars.next();
                tokens.push(Token::Star);
            }
            ';' => {
                chars.next();
            }
            '@' => {
                chars.next();
                if chars.next() != Some('>') {
                    return Err(ParseError("expected '>' after '@'".into()));
                }
                tokens.push(Token::Contains);
            }
            c if c.is_ascii_digit() => {
                let mut n: u64 = 0;
                while let Some(&d) = chars.peek() {
                    if let Some(v) = d.to_digit(10) {
                        n = n * 10 + v as u64;
                        if n > u32::MAX as u64 {
                            return Err(ParseError("element id overflows u32".into()));
                        }
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Number(n as u32));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(s));
            }
            other => return Err(ParseError(format!("unexpected character '{other}'"))),
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn next(&mut self) -> Result<&Token, ParseError> {
        let t = self.tokens.get(self.pos).ok_or_else(|| ParseError("unexpected end of query".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next()? {
            Token::Ident(s) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(ParseError(format!("expected '{kw}', found {other:?}"))),
        }
    }

    fn expect(&mut self, t: Token) -> Result<(), ParseError> {
        let got = self.next()?;
        if *got == t {
            Ok(())
        } else {
            Err(ParseError(format!("expected {t:?}, found {got:?}")))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next()? {
            Token::Ident(s) => Ok(s.clone()),
            other => Err(ParseError(format!("expected identifier, found {other:?}"))),
        }
    }
}

/// Parses a COUNT/EXISTS/FIRST query.
pub fn parse_count(input: &str) -> Result<CountQuery, ParseError> {
    let mut p = Parser { tokens: tokenize(input)?, pos: 0 };
    p.expect_keyword("SELECT")?;
    let verb_token = p.next()?.clone();
    let verb = match verb_token {
        Token::Ident(s) if s.eq_ignore_ascii_case("COUNT") => {
            p.expect(Token::LParen)?;
            p.expect(Token::Star)?;
            p.expect(Token::RParen)?;
            Verb::Count
        }
        Token::Ident(s) if s.eq_ignore_ascii_case("EXISTS") => Verb::Exists,
        Token::Ident(s) if s.eq_ignore_ascii_case("FIRST") => Verb::First,
        other => {
            return Err(ParseError(format!(
                "expected COUNT(*), EXISTS or FIRST, found {other:?}"
            )))
        }
    };
    p.expect_keyword("FROM")?;
    let table = p.ident()?;
    p.expect_keyword("WHERE")?;
    let column = p.ident()?;
    p.expect(Token::Contains)?;
    p.expect(Token::LBrace)?;
    let mut elements = Vec::new();
    loop {
        match p.next()? {
            Token::Number(n) => elements.push(*n),
            other => return Err(ParseError(format!("expected element id, found {other:?}"))),
        }
        match p.next()? {
            Token::Comma => continue,
            Token::RBrace => break,
            other => return Err(ParseError(format!("expected ',' or '}}', found {other:?}"))),
        }
    }
    if elements.is_empty() {
        return Err(ParseError("empty set literal".into()));
    }
    let mode = if p.pos < p.tokens.len() {
        p.expect_keyword("USING")?;
        let m = p.ident()?;
        Some(match m.to_ascii_lowercase().as_str() {
            "seqscan" => ExecMode::SeqScan,
            "index" => ExecMode::Index,
            "estimate" => ExecMode::Estimate,
            other => return Err(ParseError(format!("unknown mode '{other}'"))),
        })
    } else {
        None
    };
    if p.pos != p.tokens.len() {
        return Err(ParseError("trailing tokens after query".into()));
    }
    Ok(CountQuery { verb, table, column, elements, mode })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_count() {
        let q = parse_count("SELECT COUNT(*) FROM tweets WHERE tags @> {3, 17, 42}").unwrap();
        assert_eq!(q.verb, Verb::Count);
        assert_eq!(q.table, "tweets");
        assert_eq!(q.column, "tags");
        assert_eq!(q.elements, vec![3, 17, 42]);
        assert_eq!(q.mode, None);
    }

    #[test]
    fn parses_exists_and_first_verbs() {
        let q = parse_count("SELECT EXISTS FROM t WHERE s @> {1,2}").unwrap();
        assert_eq!(q.verb, Verb::Exists);
        let q = parse_count("select first from t where s @> {5} using estimate").unwrap();
        assert_eq!(q.verb, Verb::First);
        assert_eq!(q.mode, Some(ExecMode::Estimate));
        assert!(parse_count("SELECT AVG FROM t WHERE s @> {1}").is_err());
    }

    #[test]
    fn parses_using_clause_case_insensitively() {
        let q = parse_count("select count(*) from t where s @> {1} USING Estimate;").unwrap();
        assert_eq!(q.mode, Some(ExecMode::Estimate));
        let q = parse_count("SELECT COUNT(*) FROM t WHERE s @> {1} using seqscan").unwrap();
        assert_eq!(q.mode, Some(ExecMode::SeqScan));
        let q = parse_count("SELECT COUNT(*) FROM t WHERE s @> {1} using index").unwrap();
        assert_eq!(q.mode, Some(ExecMode::Index));
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse_count("SELECT * FROM t").is_err());
        assert!(parse_count("SELECT COUNT(*) FROM t WHERE s @> {}").is_err());
        assert!(parse_count("SELECT COUNT(*) FROM t WHERE s @> {1,}").is_err());
        assert!(parse_count("SELECT COUNT(*) FROM t WHERE s @ {1}").is_err());
        assert!(parse_count("SELECT COUNT(*) FROM t WHERE s @> {1} USING magic").is_err());
        assert!(parse_count("SELECT COUNT(*) FROM t WHERE s @> {1} garbage").is_err());
    }

    #[test]
    fn rejects_overflowing_ids() {
        assert!(parse_count("SELECT COUNT(*) FROM t WHERE s @> {99999999999}").is_err());
    }
}
