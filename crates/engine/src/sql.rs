//! A tiny SQL-flavored query language for subset queries:
//!
//! ```text
//! [EXPLAIN] SELECT COUNT(*) FROM tweets
//!           WHERE tags @> {3, 17} AND tags @> {42} OR NOT mentions @> {7}
//!           [USING seqscan|index|estimate]
//! SELECT EXISTS FROM tweets WHERE tags @> {3, 17} [USING ...]
//! SELECT FIRST  FROM tweets WHERE tags @> {3, 17} [USING ...]
//! ```
//!
//! `@>` is PostgreSQL's containment operator. The `WHERE` clause is a full
//! boolean expression over containment predicates — `NOT` binds tightest,
//! then `AND`, then `OR`, with parentheses for grouping. The optional
//! `USING` clause *hints* the execution strategy (the planner obeys it, or
//! errors if the path is unavailable); without it the cost model chooses.
//! The three verbs map onto the paper's three tasks: COUNT → cardinality,
//! EXISTS → membership, FIRST → indexing.
//!
//! Parse errors carry the byte offset of the offending token and render a
//! caret context line:
//!
//! ```text
//! SQL parse error at byte 33: unknown mode 'magic'
//!   SELECT COUNT(*) ... USING magic
//!                             ^
//! ```

use crate::plan::expr::Expr;
use std::fmt;

/// Execution strategy for a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Full scan of the table (PostgreSQL without an index).
    SeqScan,
    /// Inverted-index intersection (PostgreSQL with an index).
    Index,
    /// Learned estimator UDF (approximate).
    Estimate,
}

/// The query verb: which of the paper's three tasks the query exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verb {
    /// `SELECT COUNT(*)` — cardinality.
    Count,
    /// `SELECT EXISTS` — membership.
    Exists,
    /// `SELECT FIRST` — first-occurrence position.
    First,
}

/// A parsed query with a full boolean filter expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The query verb.
    pub verb: Verb,
    /// Target table.
    pub table: String,
    /// The `WHERE` filter.
    pub filter: Expr,
    /// Execution strategy, if hinted by `USING`.
    pub hint: Option<ExecMode>,
    /// Whether the query was prefixed with `EXPLAIN`.
    pub explain: bool,
}

/// A parsed single-predicate `SELECT <verb> ... WHERE col @> {..}` query —
/// the legacy surface kept for Table 12 call sites. Multi-predicate queries
/// only exist as [`Query`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountQuery {
    /// The query verb.
    pub verb: Verb,
    /// Target table.
    pub table: String,
    /// Set-valued column name.
    pub column: String,
    /// Queried element ids.
    pub elements: Vec<u32>,
    /// Execution strategy, if pinned by `USING`.
    pub mode: Option<ExecMode>,
}

/// Parse error carrying the byte offset of the offending token in the
/// original query text. [`fmt::Display`] renders a caret context line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Byte offset into the query where the error was detected.
    pub offset: usize,
    /// The query text, for the caret rendering.
    pub query: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "SQL parse error at byte {}: {}", self.offset, self.message)?;
        writeln!(f, "  {}", self.query)?;
        // The caret column counts characters, matching the line above.
        let col = self.query[..self.offset.min(self.query.len())].chars().count();
        write!(f, "  {}^", " ".repeat(col))
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    Number(u32),
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Star,
    Contains, // @>
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "'{s}'"),
            Token::Number(n) => write!(f, "number {n}"),
            Token::LParen => f.write_str("'('"),
            Token::RParen => f.write_str("')'"),
            Token::LBrace => f.write_str("'{'"),
            Token::RBrace => f.write_str("'}'"),
            Token::Comma => f.write_str("','"),
            Token::Star => f.write_str("'*'"),
            Token::Contains => f.write_str("'@>'"),
        }
    }
}

/// Tokens with the byte offset where each starts.
fn tokenize(input: &str) -> Result<Vec<(Token, usize)>, ParseError> {
    let err = |message: String, offset: usize| ParseError {
        message,
        offset,
        query: input.to_string(),
    };
    let mut tokens = Vec::new();
    let mut chars = input.char_indices().peekable();
    while let Some(&(at, c)) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '(' => {
                chars.next();
                tokens.push((Token::LParen, at));
            }
            ')' => {
                chars.next();
                tokens.push((Token::RParen, at));
            }
            '{' => {
                chars.next();
                tokens.push((Token::LBrace, at));
            }
            '}' => {
                chars.next();
                tokens.push((Token::RBrace, at));
            }
            ',' => {
                chars.next();
                tokens.push((Token::Comma, at));
            }
            '*' => {
                chars.next();
                tokens.push((Token::Star, at));
            }
            ';' => {
                chars.next();
            }
            '@' => {
                chars.next();
                if chars.next().map(|(_, c)| c) != Some('>') {
                    return Err(err("expected '>' after '@'".into(), at));
                }
                tokens.push((Token::Contains, at));
            }
            c if c.is_ascii_digit() => {
                let mut n: u64 = 0;
                while let Some(&(_, d)) = chars.peek() {
                    if let Some(v) = d.to_digit(10) {
                        n = n * 10 + v as u64;
                        if n > u32::MAX as u64 {
                            return Err(err(
                                format!("element id overflows u32 (max {})", u32::MAX),
                                at,
                            ));
                        }
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push((Token::Number(n as u32), at));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&(_, d)) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push((Token::Ident(s), at));
            }
            other => return Err(err(format!("unexpected character '{other}'"), at)),
        }
    }
    Ok(tokens)
}

struct Parser<'a> {
    input: &'a str,
    tokens: Vec<(Token, usize)>,
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>, offset: usize) -> ParseError {
        ParseError { message: message.into(), offset, query: self.input.to_string() }
    }

    /// Offset of the current token, or end-of-input.
    fn here(&self) -> usize {
        self.tokens.get(self.pos).map_or(self.input.len(), |(_, at)| *at)
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn next(&mut self) -> Result<&Token, ParseError> {
        match self.tokens.get(self.pos) {
            Some((t, _)) => {
                self.pos += 1;
                Ok(t)
            }
            None => Err(self.error("unexpected end of query", self.input.len())),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        let at = self.here();
        match self.next()? {
            Token::Ident(s) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => {
                let msg = format!("expected '{kw}', found {other}");
                Err(self.error(msg, at))
            }
        }
    }

    fn expect(&mut self, t: Token) -> Result<(), ParseError> {
        let at = self.here();
        let got = self.next()?;
        if *got == t {
            Ok(())
        } else {
            let msg = format!("expected {t}, found {got}");
            Err(self.error(msg, at))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        let at = self.here();
        match self.next()? {
            Token::Ident(s) => Ok(s.clone()),
            other => {
                let msg = format!("expected identifier, found {other}");
                Err(self.error(msg, at))
            }
        }
    }

    /// `or_expr := and_expr (OR and_expr)*`
    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut children = vec![self.and_expr()?];
        while self.peek_keyword("OR") {
            self.pos += 1;
            children.push(self.and_expr()?);
        }
        Ok(if children.len() == 1 { children.pop().expect("one child") } else { Expr::Or(children) })
    }

    /// `and_expr := unary (AND unary)*`
    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut children = vec![self.unary()?];
        while self.peek_keyword("AND") {
            self.pos += 1;
            children.push(self.unary()?);
        }
        Ok(if children.len() == 1 {
            children.pop().expect("one child")
        } else {
            Expr::And(children)
        })
    }

    /// `unary := NOT unary | '(' or_expr ')' | ident '@>' '{' ids '}'`
    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.peek_keyword("NOT") {
            self.pos += 1;
            return Ok(Expr::Not(Box::new(self.unary()?)));
        }
        if self.peek() == Some(&Token::LParen) {
            self.pos += 1;
            let inner = self.or_expr()?;
            self.expect(Token::RParen)?;
            return Ok(inner);
        }
        let column = self.ident()?;
        self.expect(Token::Contains)?;
        let brace_at = self.here();
        self.expect(Token::LBrace)?;
        let mut elements = Vec::new();
        loop {
            let at = self.here();
            match self.next() {
                Ok(Token::Number(n)) => elements.push(*n),
                Ok(Token::RBrace) if elements.is_empty() => {
                    return Err(self.error("empty set literal", at));
                }
                Ok(other) => {
                    let msg = format!("expected element id, found {other}");
                    return Err(self.error(msg, at));
                }
                Err(_) => {
                    return Err(self.error("unclosed '{' in set literal", brace_at));
                }
            }
            let at = self.here();
            match self.next() {
                Ok(Token::Comma) => continue,
                Ok(Token::RBrace) => break,
                Ok(other) => {
                    let msg = format!("expected ',' or '}}', found {other}");
                    return Err(self.error(msg, at));
                }
                Err(_) => {
                    return Err(self.error("unclosed '{' in set literal", brace_at));
                }
            }
        }
        Ok(Expr::contains(column, elements))
    }
}

/// Parses a full query: optional `EXPLAIN`, verb, table, boolean `WHERE`
/// expression, optional `USING` hint.
pub fn parse_query(input: &str) -> Result<Query, ParseError> {
    let mut p = Parser { input, tokens: tokenize(input)?, pos: 0 };
    let explain = p.peek_keyword("EXPLAIN");
    if explain {
        p.pos += 1;
    }
    p.expect_keyword("SELECT")?;
    let verb_at = p.here();
    let verb_token = p.next()?.clone();
    let verb = match verb_token {
        Token::Ident(s) if s.eq_ignore_ascii_case("COUNT") => {
            p.expect(Token::LParen)?;
            p.expect(Token::Star)?;
            p.expect(Token::RParen)?;
            Verb::Count
        }
        Token::Ident(s) if s.eq_ignore_ascii_case("EXISTS") => Verb::Exists,
        Token::Ident(s) if s.eq_ignore_ascii_case("FIRST") => Verb::First,
        other => {
            let msg = format!("expected COUNT(*), EXISTS or FIRST, found {other}");
            return Err(p.error(msg, verb_at));
        }
    };
    p.expect_keyword("FROM")?;
    let table = p.ident()?;
    p.expect_keyword("WHERE")?;
    let filter = p.or_expr()?;
    let hint = if p.peek().is_some() {
        let using_at = p.here();
        if !p.peek_keyword("USING") {
            return Err(p.error("trailing tokens after query (expected USING or end)", using_at));
        }
        p.pos += 1;
        let mode_at = p.here();
        let m = p.ident()?;
        Some(match m.to_ascii_lowercase().as_str() {
            "seqscan" => ExecMode::SeqScan,
            "index" => ExecMode::Index,
            "estimate" => ExecMode::Estimate,
            other => {
                let msg =
                    format!("unknown mode '{other}' (expected seqscan, index or estimate)");
                return Err(p.error(msg, mode_at));
            }
        })
    } else {
        None
    };
    if p.pos != p.tokens.len() {
        return Err(p.error("trailing tokens after query", p.here()));
    }
    Ok(Query { verb, table, filter, hint, explain })
}

/// Parses a single-predicate COUNT/EXISTS/FIRST query into the legacy
/// [`CountQuery`] shape. Boolean expressions (AND/OR/NOT, parentheses) and
/// `EXPLAIN` are only available through [`parse_query`].
pub fn parse_count(input: &str) -> Result<CountQuery, ParseError> {
    let q = parse_query(input)?;
    let reject = |message: &str| ParseError {
        message: message.into(),
        offset: 0,
        query: input.to_string(),
    };
    if q.explain {
        return Err(reject("EXPLAIN is not supported by parse_count; use parse_query"));
    }
    match q.filter.as_single_contains() {
        Some((column, elements)) => Ok(CountQuery {
            verb: q.verb,
            table: q.table,
            column: column.to_string(),
            elements: elements.to_vec(),
            mode: q.hint,
        }),
        None => Err(reject(
            "boolean WHERE expressions are not supported by parse_count; use parse_query",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_count() {
        let q = parse_count("SELECT COUNT(*) FROM tweets WHERE tags @> {3, 17, 42}").unwrap();
        assert_eq!(q.verb, Verb::Count);
        assert_eq!(q.table, "tweets");
        assert_eq!(q.column, "tags");
        assert_eq!(q.elements, vec![3, 17, 42]);
        assert_eq!(q.mode, None);
    }

    #[test]
    fn parses_exists_and_first_verbs() {
        let q = parse_count("SELECT EXISTS FROM t WHERE s @> {1,2}").unwrap();
        assert_eq!(q.verb, Verb::Exists);
        let q = parse_count("select first from t where s @> {5} using estimate").unwrap();
        assert_eq!(q.verb, Verb::First);
        assert_eq!(q.mode, Some(ExecMode::Estimate));
        assert!(parse_count("SELECT AVG FROM t WHERE s @> {1}").is_err());
    }

    #[test]
    fn parses_using_clause_case_insensitively() {
        let q = parse_count("select count(*) from t where s @> {1} USING Estimate;").unwrap();
        assert_eq!(q.mode, Some(ExecMode::Estimate));
        let q = parse_count("SELECT COUNT(*) FROM t WHERE s @> {1} using seqscan").unwrap();
        assert_eq!(q.mode, Some(ExecMode::SeqScan));
        let q = parse_count("SELECT COUNT(*) FROM t WHERE s @> {1} using index").unwrap();
        assert_eq!(q.mode, Some(ExecMode::Index));
    }

    #[test]
    fn keywords_are_case_insensitive_throughout() {
        let q = parse_query(
            "explain select count(*) from t where a @> {1} and not b @> {2} or c @> {3}",
        )
        .unwrap();
        assert!(q.explain);
        assert_eq!(q.filter.leaf_count(), 3);
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse_count("SELECT * FROM t").is_err());
        assert!(parse_count("SELECT COUNT(*) FROM t WHERE s @> {}").is_err());
        assert!(parse_count("SELECT COUNT(*) FROM t WHERE s @> {1,}").is_err());
        assert!(parse_count("SELECT COUNT(*) FROM t WHERE s @ {1}").is_err());
        assert!(parse_count("SELECT COUNT(*) FROM t WHERE s @> {1} USING magic").is_err());
        assert!(parse_count("SELECT COUNT(*) FROM t WHERE s @> {1} garbage").is_err());
    }

    #[test]
    fn rejects_overflowing_ids() {
        let e = parse_count("SELECT COUNT(*) FROM t WHERE s @> {99999999999}").unwrap_err();
        assert!(e.message.contains("overflows u32"), "message: {}", e.message);
    }

    #[test]
    fn parses_boolean_expressions_with_precedence() {
        use crate::plan::expr::Expr;
        let q = parse_query(
            "SELECT COUNT(*) FROM t WHERE tags @> {3,17} AND tags @> {42} OR mentions @> {7}",
        )
        .unwrap();
        // AND binds tighter than OR.
        assert_eq!(
            q.filter,
            Expr::Or(vec![
                Expr::And(vec![
                    Expr::contains("tags", vec![3, 17]),
                    Expr::contains("tags", vec![42]),
                ]),
                Expr::contains("mentions", vec![7]),
            ])
        );
        // Parentheses override precedence; NOT binds tightest.
        let q = parse_query(
            "SELECT COUNT(*) FROM t WHERE tags @> {1} AND (tags @> {2} OR NOT m @> {3})",
        )
        .unwrap();
        assert_eq!(
            q.filter,
            Expr::And(vec![
                Expr::contains("tags", vec![1]),
                Expr::Or(vec![
                    Expr::contains("tags", vec![2]),
                    Expr::Not(Box::new(Expr::contains("m", vec![3]))),
                ]),
            ])
        );
    }

    #[test]
    fn explain_prefix_parses_and_is_rejected_by_parse_count() {
        let q = parse_query("EXPLAIN SELECT COUNT(*) FROM t WHERE s @> {1}").unwrap();
        assert!(q.explain);
        assert!(parse_count("EXPLAIN SELECT COUNT(*) FROM t WHERE s @> {1}").is_err());
        assert!(parse_count("SELECT COUNT(*) FROM t WHERE a @> {1} AND b @> {2}").is_err());
    }

    #[test]
    fn duplicate_ids_are_canonicalised() {
        let q = parse_query("SELECT COUNT(*) FROM t WHERE s @> {5, 1, 5, 1}").unwrap();
        assert_eq!(q.filter.as_single_contains().unwrap().1, &[1, 5]);
    }

    #[test]
    fn error_positions_point_at_the_offending_token() {
        // Malformed USING: the unknown mode name is the error site.
        let sql = "SELECT COUNT(*) FROM t WHERE s @> {1} USING magic";
        let e = parse_query(sql).unwrap_err();
        assert_eq!(e.offset, sql.find("magic").unwrap());
        assert!(e.to_string().contains('^'));

        // Unclosed brace: the error points at the '{' that never closed.
        let sql = "SELECT COUNT(*) FROM t WHERE s @> {1, 2";
        let e = parse_query(sql).unwrap_err();
        assert_eq!(e.offset, sql.find('{').unwrap());
        assert!(e.message.contains("unclosed"), "message: {}", e.message);

        // Trailing garbage: the error points at the first stray token.
        let sql = "SELECT COUNT(*) FROM t WHERE s @> {1} garbage";
        let e = parse_query(sql).unwrap_err();
        assert_eq!(e.offset, sql.find("garbage").unwrap());

        // The caret lands under the reported offset.
        let rendered = e.to_string();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[2].len() - 1, 2 + e.offset, "caret column");
    }

    #[test]
    fn empty_set_error_is_positioned() {
        let sql = "SELECT COUNT(*) FROM t WHERE s @> {}";
        let e = parse_query(sql).unwrap_err();
        assert!(e.message.contains("empty set literal"));
        assert_eq!(e.offset, sql.find('}').unwrap());
    }
}
