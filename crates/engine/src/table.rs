//! A table with a set-valued column — the engine's analogue of the paper's
//! PostgreSQL `hstore` import (§8.5.3).

use setlearn_data::{normalize, SetCollection};

/// An append-only table of rows whose single payload column is a set of
/// element ids.
#[derive(Debug, Clone)]
pub struct SetTable {
    name: String,
    collection: SetCollection,
}

impl SetTable {
    /// Wraps an existing collection as a table.
    pub fn from_collection(name: impl Into<String>, collection: SetCollection) -> Self {
        SetTable { name: name.into(), collection }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.collection.len()
    }

    /// The underlying collection.
    pub fn collection(&self) -> &SetCollection {
        &self.collection
    }

    /// Consumes the table, yielding its collection (used when the engine
    /// takes ownership of the rows at `create_table`).
    pub fn into_collection(self) -> SetCollection {
        self.collection
    }

    /// Row payload at `row`.
    pub fn get(&self, row: usize) -> &[u32] {
        self.collection.get(row)
    }

    /// Exact COUNT of rows whose set contains `query` — sequential scan
    /// (PostgreSQL without an index).
    pub fn seq_scan_count(&self, query: &[u32]) -> u64 {
        let q = normalize(query.to_vec());
        self.collection.cardinality(&q)
    }

    /// Approximate resident bytes of the stored rows.
    pub fn size_bytes(&self) -> usize {
        self.collection.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_scan_counts_subset_rows() {
        let c = SetCollection::new(vec![vec![0, 1, 2], vec![1, 2], vec![2, 3]], 4);
        let t = SetTable::from_collection("tags", c);
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.seq_scan_count(&[1, 2]), 2);
        assert_eq!(t.seq_scan_count(&[2, 1]), 2); // order-insensitive input
        assert_eq!(t.seq_scan_count(&[0, 3]), 0);
    }
}
