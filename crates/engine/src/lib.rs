//! # setlearn-engine
//!
//! A small in-memory query engine with a set-valued column type, standing in
//! for the paper's PostgreSQL 13 + hstore integration experiment (§8.5.3,
//! Table 12). It supports three COUNT strategies over subset-containment
//! predicates:
//!
//! * sequential scan (PostgreSQL without an index),
//! * inverted-index posting-list intersection (PostgreSQL's hstore index),
//! * a pluggable learned-estimator UDF ([`setlearn::tasks::LearnedCardinality`]).
//!
//! Queries are expressed in a tiny SQL dialect:
//!
//! ```
//! use setlearn_engine::{Engine, SetTable};
//! use setlearn_data::GeneratorConfig;
//!
//! let collection = GeneratorConfig::sd(100, 1).generate();
//! let engine = Engine::new();
//! engine.create_table(SetTable::from_collection("tweets", collection), "tags");
//! engine.create_index("tweets").unwrap();
//! let r = engine.execute_sql("SELECT COUNT(*) FROM tweets WHERE tags @> {1, 2}").unwrap();
//! assert!(r.exact);
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod inverted;
pub mod plan;
pub mod sql;
pub mod table;

pub use engine::{CountResult, Engine, EngineError, EstimatorUdf, QueryOutput};
pub use inverted::InvertedIndex;
pub use plan::cost::SelSource;
pub use plan::expr::Expr;
pub use plan::{Est, Plan, PlanKind, PlanNode};
pub use sql::{parse_count, parse_query, CountQuery, ExecMode, ParseError, Query, Verb};
pub use table::SetTable;
