//! Traditional Bloom filter and its set-membership wrapper.
//!
//! The competitor of the paper's §8.4: a bit array with `k` double-hashed
//! probes, sized from a target false-positive rate, indexing *all element
//! combinations* of the stored sets up to a size cap (the paper's
//! permutation-invariant adaptation).

use crate::hash::{set_hash, splitmix64};
use serde::{Deserialize, Serialize};
use setlearn_data::{set::for_each_subset, SetCollection};

/// Optimal number of bits for `n` items at false-positive rate `fp`.
pub fn optimal_bits(n: usize, fp: f64) -> usize {
    assert!(fp > 0.0 && fp < 1.0, "fp rate must be in (0,1)");
    let n = n.max(1) as f64;
    (-(n * fp.ln()) / (std::f64::consts::LN_2 * std::f64::consts::LN_2)).ceil() as usize
}

/// Optimal number of hash functions for `m` bits over `n` items.
pub fn optimal_hashes(m: usize, n: usize) -> u32 {
    let k = (m as f64 / n.max(1) as f64 * std::f64::consts::LN_2).round();
    (k as u32).max(1)
}

/// A classic Bloom filter over 64-bit item digests.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: usize,
    num_hashes: u32,
    items: usize,
}

impl BloomFilter {
    /// Sizes the filter for `expected_items` at the target fp rate.
    pub fn new(expected_items: usize, fp_rate: f64) -> Self {
        let num_bits = optimal_bits(expected_items, fp_rate).max(64);
        let num_hashes = optimal_hashes(num_bits, expected_items);
        BloomFilter {
            bits: vec![0u64; num_bits.div_ceil(64)],
            num_bits,
            num_hashes,
            items: 0,
        }
    }

    /// Inserts a pre-hashed item.
    pub fn insert_hash(&mut self, h: u64) {
        let (h1, h2) = (h, splitmix64(h) | 1);
        for i in 0..self.num_hashes as u64 {
            let bit = (h1.wrapping_add(i.wrapping_mul(h2)) % self.num_bits as u64) as usize;
            self.bits[bit / 64] |= 1u64 << (bit % 64);
        }
        self.items += 1;
    }

    /// Membership probe for a pre-hashed item.
    pub fn contains_hash(&self, h: u64) -> bool {
        let (h1, h2) = (h, splitmix64(h) | 1);
        (0..self.num_hashes as u64).all(|i| {
            let bit = (h1.wrapping_add(i.wrapping_mul(h2)) % self.num_bits as u64) as usize;
            self.bits[bit / 64] & (1u64 << (bit % 64)) != 0
        })
    }

    /// Inserts a canonical set.
    pub fn insert_set(&mut self, set: &[u32]) {
        self.insert_hash(set_hash(set));
    }

    /// Probes a canonical set.
    pub fn contains_set(&self, set: &[u32]) -> bool {
        self.contains_hash(set_hash(set))
    }

    /// Number of inserted items.
    pub fn len(&self) -> usize {
        self.items
    }

    /// Whether no items were inserted.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Bit-array size in bytes (the paper's memory measure for BF).
    pub fn size_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

/// Bloom filter answering subset-membership queries over a [`SetCollection`]
/// by indexing all subsets up to `max_query_size` elements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SetMembershipBloom {
    filter: BloomFilter,
    max_query_size: usize,
}

impl SetMembershipBloom {
    /// Builds the filter over every subset (size ≤ `max_query_size`) of every
    /// set in the collection.
    pub fn build(collection: &SetCollection, max_query_size: usize, fp_rate: f64) -> Self {
        // Estimate distinct insertions by enumerating once: acceptable at our
        // scales and exact, so the fp sizing is honest.
        let mut distinct = std::collections::HashSet::new();
        for (_, set) in collection.iter() {
            for_each_subset(set, max_query_size, |sub| {
                distinct.insert(set_hash(sub));
            });
        }
        let mut filter = BloomFilter::new(distinct.len(), fp_rate);
        for h in distinct {
            filter.insert_hash(h);
        }
        SetMembershipBloom { filter, max_query_size }
    }

    /// Probes a canonical query. Queries longer than the build cap report
    /// `false` deterministically (out of the structure's contract).
    pub fn contains(&self, q: &[u32]) -> bool {
        if q.len() > self.max_query_size {
            return false;
        }
        self.filter.contains_set(q)
    }

    /// Size cap the filter was built with.
    pub fn max_query_size(&self) -> usize {
        self.max_query_size
    }

    /// Underlying bit-array size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.filter.size_bytes()
    }

    /// Number of distinct subsets indexed.
    pub fn len(&self) -> usize {
        self.filter.len()
    }

    /// Whether the filter indexed nothing.
    pub fn is_empty(&self) -> bool {
        self.filter.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use setlearn_data::GeneratorConfig;

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::new(1_000, 0.01);
        for i in 0..1_000u64 {
            bf.insert_hash(splitmix64(i));
        }
        for i in 0..1_000u64 {
            assert!(bf.contains_hash(splitmix64(i)));
        }
    }

    #[test]
    fn fp_rate_is_close_to_target() {
        let mut bf = BloomFilter::new(10_000, 0.01);
        let mut rng = StdRng::seed_from_u64(1);
        let inserted: std::collections::HashSet<u64> =
            (0..10_000).map(|_| rng.gen()).collect();
        for &h in &inserted {
            bf.insert_hash(h);
        }
        let mut fps = 0;
        let probes = 50_000;
        for _ in 0..probes {
            let h: u64 = rng.gen();
            if !inserted.contains(&h) && bf.contains_hash(h) {
                fps += 1;
            }
        }
        let rate = fps as f64 / probes as f64;
        assert!(rate < 0.03, "fp rate {rate}");
    }

    #[test]
    fn sizing_matches_theory() {
        // ~9.59 bits/item at 1% fp.
        let bits = optimal_bits(1_000, 0.01);
        assert!((9_000..10_500).contains(&bits), "bits {bits}");
        assert_eq!(optimal_hashes(bits, 1_000), 7);
    }

    #[test]
    fn lower_fp_needs_more_memory() {
        let a = BloomFilter::new(5_000, 0.1).size_bytes();
        let b = BloomFilter::new(5_000, 0.01).size_bytes();
        let c = BloomFilter::new(5_000, 0.001).size_bytes();
        assert!(a < b && b < c, "{a} {b} {c}");
    }

    #[test]
    fn membership_bloom_answers_positive_subsets() {
        let c = GeneratorConfig::rw(500, 3).generate();
        let bloom = SetMembershipBloom::build(&c, 3, 0.01);
        for (_, set) in c.iter().take(50) {
            for_each_subset(set, 3, |sub| {
                assert!(bloom.contains(sub), "missing subset {sub:?}");
            });
        }
    }

    #[test]
    fn membership_bloom_rejects_oversized_queries() {
        let c = GeneratorConfig::rw(100, 3).generate();
        let bloom = SetMembershipBloom::build(&c, 2, 0.01);
        assert!(!bloom.contains(&[0, 1, 2, 3]));
    }
}
