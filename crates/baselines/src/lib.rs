//! # setlearn-baselines
//!
//! The traditional competitors of the paper's §8.1.2, adapted to sets via
//! permutation-invariant hashing:
//!
//! * [`bptree::BPlusTree`] — the index-task competitor (keys are set hashes,
//!   duplicate keys keep all positions) and the hybrid structure's auxiliary
//!   index.
//! * [`bloom::BloomFilter`] / [`bloom::SetMembershipBloom`] — the
//!   Bloom-filter-task competitor and the learned filter's backup.
//! * [`cardmap::CardinalityMap`] — the exact subset-count HashMap competitor
//!   for the cardinality task.
//! * [`hash`] — sorted-FNV and commutative set hashing.

#![warn(missing_docs)]

pub mod bloom;
pub mod bptree;
pub mod cardmap;
pub mod hash;
pub mod independence;

pub use bloom::{BloomFilter, SetMembershipBloom};
pub use bptree::BPlusTree;
pub use cardmap::CardinalityMap;
pub use independence::IndependenceEstimator;
pub use hash::{commutative_hash, set_hash};
